"""Refresh the remaining experiment outputs at a wall-clock-aware size.

Regenerates fig11 (recalibrated energy), fig12, the §V-A projection, and
the ablations, writing the same per-experiment text files as run_all and
merging into results/results.json.  The dfs_vs_bfs and ablation sweeps run
on representative graph subsets to bound runtime; the full sweeps remain
available via run_all.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.experiments import ablations, dfs_vs_bfs, fig11_energy, fig12_lamh
from repro.experiments.run_all import _fig11_text

OUT = Path(sys.argv[1] if len(sys.argv) > 1 else "results")


def record(name: str, text: str, data) -> None:
    print(f"\n{'=' * 70}\n{text}", flush=True)
    (OUT / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    payload_path = OUT / "results.json"
    payload = {}
    if payload_path.exists():
        payload = json.loads(payload_path.read_text(encoding="utf-8"))
    payload[name] = data
    payload_path.write_text(
        json.dumps(payload, indent=2, default=str), encoding="utf-8"
    )


def main() -> None:
    start = time.perf_counter()

    energy = fig11_energy.run_energy("small")
    total = fig11_energy.run_total_time("small")
    record("fig11", _fig11_text(energy, total),
           {"energy": energy, "total_time": total})

    record("fig12", fig12_lamh.main("small"), fig12_lamh.run("small"))

    rows = dfs_vs_bfs.run(
        "small", graphs=["citeseer", "p2p", "astro", "mico"]
    )
    from repro.experiments.harness import format_table

    text = (
        "§V-A quantified — DFS vs (optimistic) BFS execution mode (4-MC)\n"
        + format_table(
            ["Graph", "DFS cycles", "BFS cycles", "BFS slowdown",
             "Intermediates", "Peak level"],
            [
                [r["graph"], str(r["dfs_cycles"]), str(r["bfs_cycles"]),
                 f"{r['slowdown']:.2f}x",
                 f"{r['intermediate_mb']:.1f}MB",
                 f"{r['peak_level_mb']:.2f}MB"]
                for r in rows
            ],
        )
    )
    record("dfs_vs_bfs", text, rows)

    ablation_data = {
        "steal_selector": ablations.run_steal_selector(
            "small", graphs=["p2p", "mico"]
        ),
        "rank_source": ablations.run_rank_source(
            "small", graphs=["p2p", "mico"]
        ),
        "arbitrator": ablations.run_arbitrator_policy(
            "small", graphs=["p2p", "mico"]
        ),
        "partitions": ablations.run_partition_sweep("small"),
    }
    steal = ablation_data["steal_selector"]
    rank = ablation_data["rank_source"]
    arb = ablation_data["arbitrator"]
    parts = ablation_data["partitions"]
    text = "Ablations (small scale, representative graphs)\n\n"
    text += format_table(
        ["Graph", "Buffer vs LFSR speedup", "ON1 vs identity speedup",
         "Degree-balanced vs RR"],
        [
            [
                steal[i]["graph"],
                f"{steal[i]['buffer_speedup']:.2f}x",
                f"{rank[i]['on1_speedup']:.2f}x",
                f"{arb[i]['balanced_speedup']:.2f}x",
            ]
            for i in range(len(steal))
        ],
    )
    text += "\n\nPartition sweep (mico, 5-CF)\n"
    text += format_table(
        ["Partitions", "Cycles", "Speedup vs 1"],
        [
            [str(r["partitions"]), str(r["cycles"]),
             f"{r['speedup_vs_1']:.2f}x"]
            for r in parts
        ],
    )
    record("ablations", text, ablation_data)

    print(f"\nfinal batch done in {time.perf_counter() - start:.0f}s")


if __name__ == "__main__":
    main()
