"""CI gate: the seal -> tamper -> verify -> recover manifest round-trip.

Drives the full distributed-sweep + manifest story end-to-end through
the real CLI (docs/resilience.md §5):

1. ``gramer sweep --workers 2 --seal`` shards a tiny grid over two
   worker processes and seals a Merkle manifest over the artifacts;
2. ``gramer manifest verify`` passes on the intact grid;
3. one byte of one cached artifact is flipped in place — verify must
   fail, name the *exact* spec digest, and quarantine the entry;
4. the victim cell is recomputed and verify passes again against the
   same sealed root (the fingerprint layer absorbs the fresh envelope).

Exits nonzero at the first stage that misbehaves.  The manifest (and
the tamper report) land in ``--out`` for CI artifact upload.
"""

import argparse
import os
import sys
from pathlib import Path

APPS = ["3-CF"]
DATASETS = ["citeseer", "p2p"]
BACKENDS = ["gramer", "fractal"]


def _grid_flags():
    return [
        "--apps", *APPS,
        "--datasets", *DATASETS,
        "--backends", *BACKENDS,
        "--scale", "tiny",
    ]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default="manifest-roundtrip",
        help="output directory for ledger, manifest, and report",
    )
    args = parser.parse_args(argv)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    # Hermetic cache root: worker subprocesses inherit it, and the
    # deliberate corruption below never touches a developer's real cache.
    os.environ.setdefault("GRAMER_CACHE_DIR", str(out / "cache"))

    from repro.cli import main as cli
    from repro.experiments.harness import cell_jobspec
    from repro.runtime import (
        JOB_KIND,
        default_cache,
        load_manifest,
        run_spec,
        spec_digest,
        verify_manifest,
    )

    ledger = out / "run.jsonl"
    manifest_path = out / "run.manifest.json"

    print("== stage 1: distributed sweep + seal ==")
    cli([
        "sweep", *_grid_flags(),
        "--workers", "2",
        "--ledger", str(ledger),
        "--seal", str(manifest_path),
    ])

    print("== stage 2: verify the intact grid ==")
    cli(["manifest", "verify", str(manifest_path), *_grid_flags()])

    print("== stage 3: tamper with one artifact ==")
    victim = cell_jobspec("gramer", "3-CF", "citeseer", "tiny")
    cache = default_cache()
    entry = cache.entry_path(JOB_KIND, victim.cache_key())
    data = bytearray(entry.read_bytes())
    data[len(data) // 2] ^= 0xFF
    entry.write_bytes(bytes(data))
    cache.evict_memory(JOB_KIND, victim.cache_key())

    report = verify_manifest(load_manifest(manifest_path), cache)
    (out / "tamper-report.txt").write_text(report.summary() + "\n")
    print(report.summary())
    if report.ok:
        sys.exit("FAIL: verify accepted a tampered artifact")
    if report.corrupt != [spec_digest(victim)]:
        sys.exit(
            "FAIL: verify did not name the tampered digest "
            f"(expected [{spec_digest(victim)}], got {report.corrupt})"
        )
    if entry.exists():
        sys.exit("FAIL: corrupt entry was not quarantined")

    print("== stage 4: recompute and re-verify the same root ==")
    rerun = run_spec(victim, cache=cache)
    if not rerun.ok or rerun.cached:
        sys.exit("FAIL: victim cell did not recompute cleanly")
    cli(["manifest", "verify", str(manifest_path), *_grid_flags()])
    print(f"round-trip ok: root {load_manifest(manifest_path).root}")


if __name__ == "__main__":
    main()
