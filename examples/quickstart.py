"""Quickstart: mine a graph in software, then on the GRAMER simulator.

Builds a small power-law graph, counts its triangles and 3-vertex motifs
with the software engine, then runs the same workload on the cycle-level
GRAMER model and reports performance and memory behaviour.

Run with::

    python examples/quickstart.py [--engine fast|reference] [--tiny]
"""

import argparse

from repro.accel import GramerConfig, gramer_energy, make_simulator
from repro.graph import degree_stats, powerlaw_cluster
from repro.mining import CliqueFinding, MotifCounting, run_dfs


def main(engine: str = "fast", tiny: bool = False) -> None:
    # 1. A synthetic real-world-like graph (power-law degrees, clustering).
    graph = powerlaw_cluster(
        num_vertices=300 if tiny else 2_000,
        edges_per_vertex=3,
        triad_probability=0.4,
        seed=42,
    )
    print("graph:", degree_stats(graph).describe())

    # 2. Software mining: triangles, then the full 3-vertex motif census.
    triangles = run_dfs(graph, CliqueFinding(3))
    print(f"\ntriangles: {triangles.num_cliques}")

    motifs = run_dfs(graph, MotifCounting(3))
    print("3-vertex motif census:")
    for name, count in sorted(motifs.named_census().items()):
        print(f"  {name:10s} {count:>10,}")

    # 3. The same workload on the GRAMER accelerator model: 8 PUs x 16
    #    slots, locality-aware memory hierarchy sized to ~25% of the graph.
    config = GramerConfig(
        onchip_entries=(graph.num_vertices + len(graph.neighbors)) // 4
    )
    simulator = make_simulator(graph, config, engine=engine)
    result = simulator.run(MotifCounting(3))
    stats = result.stats

    print(f"\nGRAMER @ {config.clock_mhz:.0f} MHz")
    print(f"  cycles            {result.cycles:>12,}")
    print(f"  time              {result.seconds * 1e3:>12.3f} ms")
    print(f"  vertex hit ratio  {stats.vertex_hit_ratio:>12.1%}")
    print(f"  edge hit ratio    {stats.edge_hit_ratio:>12.1%}")
    print(f"  DRAM accesses     {stats.dram_accesses:>12,}")
    print(f"  work steals       {stats.steals:>12,}")
    energy = gramer_energy(stats, config)
    print(f"  on-chip energy    {energy.total_j * 1e3:>12.3f} mJ")

    # The simulator is functionally exact: same counts as the software run.
    assert result.mining.patterns_by_size == motifs.result().patterns_by_size
    print("\nsimulator counts verified against the software engine ✓")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--engine", default="fast",
                        choices=["fast", "reference"])
    parser.add_argument("--tiny", action="store_true",
                        help="shrink the graph (used by the smoke tests)")
    cli = parser.parse_args()
    main(engine=cli.engine, tiny=cli.tiny)
