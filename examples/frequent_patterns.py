"""Frequent subgraph mining on a labeled graph.

Labels a synthetic social-network-like graph with four vertex types, mines
the 3-vertex labeled patterns above a support threshold (the paper's FSM
workload), and shows how the anti-monotone aggregate filter prunes the
search.

Run with::

    python examples/frequent_patterns.py [--tiny]
"""

import argparse

from repro.graph import powerlaw_cluster, random_labels
from repro.mining import FrequentSubgraphMining, run_dfs
from repro.mining.patterns import canonical_code, pattern_name


LABEL_NAMES = {0: "user", 1: "page", 2: "group", 3: "event"}


def describe(code) -> str:
    # Re-canonicalise the shape without labels so it gets its common name
    # (the labeled canonical form permutes vertices by label first).
    shape = pattern_name(canonical_code(code.edges(), code.size))
    labels = "-".join(LABEL_NAMES[l] for l in code.labels)
    return f"{shape} [{labels}]"


def main(tiny: bool = False) -> None:
    scale = 10 if tiny else 1
    graph = random_labels(
        powerlaw_cluster(3_000 // scale, 3, 0.5, seed=11, max_degree=60),
        num_labels=4,
        seed=5,
    )
    print(
        f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges, "
        f"4 labels"
    )

    for threshold in (50 // scale, 200 // scale, 800 // scale):
        app = run_dfs(graph, FrequentSubgraphMining(threshold, max_vertices=3))
        frequent = app.frequent_patterns()
        print(
            f"\nthreshold {threshold}: {len(frequent)} frequent 3-vertex "
            f"patterns (checked {app.candidates_checked:,} candidates)"
        )
        top = sorted(frequent.items(), key=lambda kv: -kv[1])[:8]
        for code, support in top:
            print(f"  {describe(code):45s} support {support:>7,}")

    # Anti-monotonicity in action: raising the threshold prunes the level-2
    # extension frontier, so fewer candidates are even generated.
    lo, hi = max(2, 10 // scale), 5_000 // scale
    low = run_dfs(graph, FrequentSubgraphMining(lo, max_vertices=3))
    high = run_dfs(graph, FrequentSubgraphMining(hi, max_vertices=3))
    print(
        f"\naggregate-filter pruning: {low.candidates_checked:,} candidates "
        f"at threshold {lo} vs {high.candidates_checked:,} at threshold {hi}"
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--engine", default="fast",
                        choices=["fast", "reference"],
                        help="accepted for CLI uniformity with the other "
                        "examples; this one runs the software engine only")
    parser.add_argument("--tiny", action="store_true",
                        help="shrink the graph (used by the smoke tests)")
    main(tiny=parser.parse_args().tiny)
