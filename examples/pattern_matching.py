"""Subgraph matching and the mining-vs-processing access contrast.

Counts embeddings of specific target patterns (diamond, 4-cycle, tailed
triangle) with the pattern-pruned matcher, then contrasts the memory-access
mix of mining against classic vertex-centric processing (BFS / PageRank) on
the same graph — the comparison motivating the paper's §II-B.

Run with::

    python examples/pattern_matching.py [--tiny]
"""

import argparse

from repro.graph import powerlaw_cluster
from repro.locality import StrideClassifier
from repro.mining import MotifCounting, run_dfs
from repro.mining.apps import SubgraphMatching
from repro.mining.patterns import canonical_code, pattern_name
from repro.processing import BreadthFirstSearch, PageRank, run_vertex_program

TARGETS = {
    "4-cycle": [(0, 1), (1, 2), (2, 3), (3, 0)],
    "tailed-triangle": [(0, 1), (1, 2), (0, 2), (2, 3)],
    "diamond": [(0, 1), (1, 2), (0, 2), (0, 3), (2, 3)],
}


def main(tiny: bool = False) -> None:
    graph = powerlaw_cluster(
        300 if tiny else 1_000, 4, 0.5, seed=13, max_degree=40
    )
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges\n")

    # Pattern-pruned matching vs the full 4-motif census.
    census_app = run_dfs(graph, MotifCounting(4))
    census = census_app.named_census()
    print(f"{'pattern':16s} {'matches':>9s} {'census':>9s} "
          f"{'candidates':>11s} {'vs census':>10s}")
    for name, edges in TARGETS.items():
        target = canonical_code(edges, 4)
        match = run_dfs(graph, SubgraphMatching(target))
        assert match.num_matches == census.get(name, 0)
        print(
            f"{name:16s} {match.num_matches:>9,} {census.get(name, 0):>9,} "
            f"{match.candidates_checked:>11,} "
            f"{match.candidates_checked / census_app.candidates_checked:>9.1%}"
        )
    print("\nmatcher counts verified against the motif census ✓")

    # The §II-B contrast: where do the random accesses fall?
    print(f"\n{'workload':12s} {'random vertex':>14s} {'random edge':>12s}")
    workloads = [
        ("BFS", lambda m: run_vertex_program(
            graph, BreadthFirstSearch(0), mem=m)),
        ("PageRank", lambda m: run_vertex_program(
            graph, PageRank(tolerance=1e-3), mem=m)),
        ("3-MC", lambda m: run_dfs(graph, MotifCounting(3), mem=m)),
        ("4-cycle SM", lambda m: run_dfs(
            graph, SubgraphMatching(canonical_code(TARGETS["4-cycle"], 4)),
            mem=m)),
    ]
    for name, runner in workloads:
        classifier = StrideClassifier()
        runner(classifier)
        print(
            f"{name:12s} {classifier.mix.random_vertex_share:>13.1%} "
            f"{classifier.mix.random_edge_share:>12.1%}"
        )
    print(
        "\nprocessing randomises only the vertex dimension; "
        "mining randomises both — the gap GRAMER is built for."
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--engine", default="fast",
                        choices=["fast", "reference"],
                        help="accepted for CLI uniformity with the other "
                        "examples; this one runs the software engine only")
    parser.add_argument("--tiny", action="store_true",
                        help="shrink the graph (used by the smoke tests)")
    main(tiny=parser.parse_args().tiny)
