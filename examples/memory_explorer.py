"""Explore the locality-aware memory hierarchy's design space.

Sweeps the knobs of GRAMER's memory system on one workload — replacement
policy, τ (pinned share), on-chip capacity — and prints how hit ratios and
cycles respond.  A hands-on tour of §IV and Figs. 12/14.

Run with::

    python examples/memory_explorer.py [--engine fast|reference] [--tiny]
"""

import argparse

from repro.accel import GramerConfig, make_simulator
from repro.graph import powerlaw_cluster
from repro.locality import locality_curve, IterationTrace
from repro.mining import MotifCounting, run_dfs


def run(graph, engine="fast", **config_kwargs):
    config = GramerConfig(**config_kwargs)
    result = make_simulator(graph, config, engine=engine).run(MotifCounting(4))
    return result


def main(engine: str = "fast", tiny: bool = False) -> None:
    graph = powerlaw_cluster(250 if tiny else 900, 4, 0.6, seed=3, max_degree=40)
    data_entries = graph.num_vertices + len(graph.neighbors)

    # How concentrated is this workload's traffic?  (the Fig. 5 view)
    trace = IterationTrace()
    run_dfs(graph, MotifCounting(4), mem=trace)
    curve = locality_curve(graph, trace, fraction=0.05)
    print("top-5% access share by iteration:")
    for iteration in sorted(curve.vertex_share_by_iteration):
        print(
            f"  iter {iteration}: vertices "
            f"{curve.vertex_share_by_iteration[iteration]:.1%}, edges "
            f"{curve.edge_share_by_iteration[iteration]:.1%}"
        )

    budget = data_entries // 10
    print(f"\npolicy comparison at 10% on-chip memory ({budget} entries):")
    for policy in ("uniform", "lru", "locality"):
        r = run(graph, engine, onchip_entries=budget, low_policy=policy)
        print(
            f"  {policy:9s} vertex hit {r.stats.vertex_hit_ratio:.3f}  "
            f"edge hit {r.stats.edge_hit_ratio:.3f}  cycles {r.cycles:>11,}"
        )

    print("\ntau sweep (memory sized so tau=50% holds the whole graph):")
    for tau in (0.01, 0.05, 0.20, 0.50):
        r = run(graph, engine, onchip_entries=2 * data_entries, tau=tau)
        print(
            f"  tau={tau:4.0%}  vertex hit {r.stats.vertex_hit_ratio:.3f}  "
            f"edge hit {r.stats.edge_hit_ratio:.3f}  cycles {r.cycles:>11,}"
        )

    print("\ncapacity sweep (paper rule for tau):")
    for divisor in (50, 20, 10, 4, 1):
        r = run(graph, engine, onchip_entries=max(64, data_entries // divisor))
        print(
            f"  {100 // divisor:3d}% of data on chip -> "
            f"DRAM accesses {r.stats.dram_accesses:>9,}  "
            f"cycles {r.cycles:>11,}"
        )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--engine", default="fast",
                        choices=["fast", "reference"])
    parser.add_argument("--tiny", action="store_true",
                        help="shrink the graph (used by the smoke tests)")
    cli = parser.parse_args()
    main(engine=cli.engine, tiny=cli.tiny)
