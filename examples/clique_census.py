"""Clique finding across systems: GRAMER vs the Fractal/RStream models.

Mines k-cliques (k = 3, 4, 5) on a clustered power-law graph — the paper's
CF workload — on all three systems, verifying they agree and reporting the
modeled runtimes and energies side by side (a miniature Table III cell).

Run with::

    python examples/clique_census.py [--engine fast|reference] [--tiny]
"""

import argparse

from repro.accel import GramerConfig, cpu_energy, gramer_energy, make_simulator
from repro.baselines import FractalModel, RStreamModel
from repro.graph import powerlaw_cluster
from repro.mining import CliqueFinding


def main(engine: str = "fast", tiny: bool = False) -> None:
    graph = powerlaw_cluster(
        num_vertices=400 if tiny else 1_500, edges_per_vertex=4,
        triad_probability=0.6, seed=7, max_degree=45,
    )
    config = GramerConfig(
        onchip_entries=(graph.num_vertices + len(graph.neighbors)) // 6
    )

    print(f"{'k':>2s}  {'cliques':>10s}  {'GRAMER':>10s}  {'Fractal':>10s}  "
          f"{'RStream':>10s}  {'speedup':>14s}  {'energy save':>11s}")
    for k in (3, 4, 5):
        sim = make_simulator(graph, config, engine=engine).run(CliqueFinding(k))
        fractal = FractalModel().run(graph, CliqueFinding(k))
        rstream = RStreamModel().run(graph, CliqueFinding(k))

        counts = {
            sim.mining.summary["num_cliques"],
            fractal.mining.summary["num_cliques"],
            rstream.mining.summary["num_cliques"],
        }
        assert len(counts) == 1, "systems disagree on clique counts"

        gramer_j = gramer_energy(sim.stats, config).total_j
        fractal_j = cpu_energy(fractal.seconds)
        print(
            f"{k:>2d}  {sim.mining.summary['num_cliques']:>10,}  "
            f"{sim.seconds * 1e3:>8.2f}ms  "
            f"{fractal.seconds * 1e3:>8.2f}ms  "
            f"{rstream.seconds * 1e3:>8.2f}ms  "
            f"{fractal.seconds / sim.seconds:>7.1f}x vs F  "
            f"{fractal_j / gramer_j:>9.1f}x"
        )

    print("\nall three systems agree on every clique count ✓")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--engine", default="fast",
                        choices=["fast", "reference"])
    parser.add_argument("--tiny", action="store_true",
                        help="shrink the graph (used by the smoke tests)")
    cli = parser.parse_args()
    main(engine=cli.engine, tiny=cli.tiny)
