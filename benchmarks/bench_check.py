"""Measure ``gramer check``: cold analysis vs warm cache-served re-check.

Runs the full static-analysis pipeline (module rules + whole-program
project pass) over ``src/repro`` twice against the same disk cache:

* **cold** — a fresh cache directory; every file is parsed, summarized,
  and analyzed, and the project pass builds its call graph from scratch;
* **warm** — a fresh :class:`ArtifactCache` *instance* over the now
  populated directory, modeling what a new ``gramer check`` process pays
  on an unchanged tree (the pre-commit path): per-file records and
  module summaries come off disk, only the project fixpoint re-runs.

Writes the measurement record to ``benchmarks/BENCH_check.json``.

Run with::

    PYTHONPATH=src python benchmarks/bench_check.py [--smoke]

Not a pytest-benchmark module on purpose: the unit here is a whole CLI
invocation over the live tree (what pre-commit pays), not a single hot
function.
"""

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.analysis import check_paths
from repro.runtime.cache import ArtifactCache

OUT_PATH = Path(__file__).parent / "BENCH_check.json"
TREE = Path(__file__).resolve().parent.parent / "src" / "repro"


def timed_check(cache_root: Path, *, jobs: int = 1) -> tuple[float, int]:
    """One full check of ``src/repro`` against a fresh cache instance."""
    cache = ArtifactCache(root=cache_root)
    start = time.perf_counter()
    findings = check_paths([TREE], cache=cache, jobs=jobs)
    return time.perf_counter() - start, len(findings)


def count_python_files() -> int:
    return sum(1 for _ in TREE.rglob("*.py"))


def measure(repeat: int) -> dict:
    with tempfile.TemporaryDirectory(prefix="gramer-bench-check-") as tmp:
        cache_root = Path(tmp)
        cold_s, cold_findings = timed_check(cache_root)

        warm_s = None
        warm_findings = cold_findings
        for _ in range(repeat):
            elapsed, warm_findings = timed_check(cache_root)
            warm_s = elapsed if warm_s is None else min(warm_s, elapsed)

    assert warm_s is not None
    return {
        "tree": str(TREE.relative_to(TREE.parent.parent)),
        "python_files": count_python_files(),
        "cold_s": cold_s,
        "warm_s": warm_s,
        "warm_best_of": repeat,
        "warm_speedup_x": cold_s / warm_s,
        "findings": {"cold": cold_findings, "warm": warm_findings},
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeat", type=int, default=3,
                        help="warm runs; best-of is recorded (default 3)")
    parser.add_argument("--smoke", action="store_true",
                        help="assert warm >= 5x faster than cold and both "
                             "runs agree on findings (CI gate)")
    parser.add_argument("--out", default=str(OUT_PATH),
                        help=f"output JSON path (default {OUT_PATH})")
    args = parser.parse_args()

    record = measure(args.repeat)
    Path(args.out).write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n"
    )

    print(f"tree: {record['tree']} ({record['python_files']} files)")
    print(f"cold check: {record['cold_s'] * 1e3:9.2f} ms")
    print(f"warm check: {record['warm_s'] * 1e3:9.2f} ms "
          f"({record['warm_speedup_x']:.1f}x faster, "
          f"best of {record['warm_best_of']})")
    print(f"findings: cold {record['findings']['cold']}, "
          f"warm {record['findings']['warm']}")
    print(f"wrote {args.out}")

    if args.smoke:
        speedup = record["warm_speedup_x"]
        assert speedup >= 5.0, (
            f"warm check only {speedup:.1f}x faster than cold; expected "
            ">= 5x — the per-file/summary cache is not being hit"
        )
        assert record["findings"]["cold"] == record["findings"]["warm"], (
            "cache-served findings diverge from cold analysis"
        )
        print(f"smoke ok: {speedup:.1f}x warm speedup, findings stable")
        return
    sys.exit(0)


if __name__ == "__main__":
    main()
