"""Measure the fast engine against the reference on the Table III tiny grid.

Runs every (app, dataset) cell of the tiny grid once per engine, wall-clock
timed, asserts the results stay byte-identical while timing, and writes the
measurement record to ``benchmarks/BENCH_fastsim.json``.

Run with::

    PYTHONPATH=src python benchmarks/bench_fastsim.py [--repeat N]

Not a pytest-benchmark module on purpose: the unit here is the whole grid
(what ``repro.experiments.run_all`` pays), not a single hot function.
"""

import argparse
import json
import time
from pathlib import Path

from repro.accel.config import GramerConfig
from repro.accel.sim import BIT_IDENTICAL_ENGINES, make_simulator
from repro.experiments import datasets
from repro.experiments.paper_data import TABLE3_APPS
from repro.runtime.backends import build_app

OUT_PATH = Path(__file__).parent / "BENCH_fastsim.json"


def time_cell(app_name: str, graph_name: str, engine: str, repeat: int):
    app = build_app(app_name, graph_name, "tiny")
    loader = datasets.load_labeled if app.needs_labels else datasets.load
    graph = loader(graph_name, "tiny")
    best = None
    stats_json = None
    for _ in range(repeat):
        cell_app = build_app(app_name, graph_name, "tiny")
        start = time.perf_counter()
        result = make_simulator(graph, GramerConfig(), engine=engine).run(
            cell_app
        )
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
        stats_json = json.dumps(result.stats.as_dict(), sort_keys=True)
    return best, stats_json


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeat", type=int, default=1,
                        help="timed runs per cell; best-of is recorded")
    args = parser.parse_args()

    cells = []
    totals = dict.fromkeys(BIT_IDENTICAL_ENGINES, 0.0)
    for app_name in TABLE3_APPS:
        for graph_name in datasets.DATASET_ORDER:
            row = {"app": app_name, "graph": graph_name}
            outputs = {}
            for engine in BIT_IDENTICAL_ENGINES:
                wall, stats_json = time_cell(
                    app_name, graph_name, engine, args.repeat
                )
                row[f"{engine}_wall_s"] = round(wall, 4)
                totals[engine] += wall
                outputs[engine] = stats_json
            if outputs["fast"] != outputs["reference"]:
                raise SystemExit(
                    f"engines diverged on {app_name}/{graph_name} — refusing "
                    "to record a benchmark for non-identical results"
                )
            row["speedup"] = round(
                row["reference_wall_s"] / row["fast_wall_s"], 3
            )
            cells.append(row)
            print(
                f"{app_name:5s} {graph_name:9s} "
                f"ref {row['reference_wall_s']:7.3f}s  "
                f"fast {row['fast_wall_s']:7.3f}s  "
                f"{row['speedup']:.2f}x"
            )

    record = {
        "benchmark": "fastsim vs reference, Table III tiny grid",
        "grid": {
            "apps": list(TABLE3_APPS),
            "datasets": list(datasets.DATASET_ORDER),
            "scale": "tiny",
        },
        "repeat": args.repeat,
        "reference_total_s": round(totals["reference"], 3),
        "fast_total_s": round(totals["fast"], 3),
        "speedup": round(totals["reference"] / totals["fast"], 3),
        "results_identical": True,
        "note": (
            "Both engines produce byte-identical SimStats (asserted while "
            "timing; see tests/differential/). The fast engine keeps the "
            "reference's sequential global event order — required for "
            "bit-identity because timing and functional phases share "
            "contention state — so the speedup comes from removing "
            "per-event overhead, not from vectorising the event loop. "
            "See docs/fastsim.md for why the original 5x target is not "
            "reachable under the bit-identity contract."
        ),
        "cells": cells,
    }
    OUT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(
        f"\ntotal: ref {totals['reference']:.2f}s  fast {totals['fast']:.2f}s"
        f"  speedup {record['speedup']:.2f}x\nwrote {OUT_PATH}"
    )


if __name__ == "__main__":
    main()
