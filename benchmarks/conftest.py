"""Benchmark fixtures: everything runs at the 'tiny' dataset scale.

``pytest benchmarks/ --benchmark-only`` times one representative unit of
every paper experiment; the full tables/figures are produced by
``python -m repro.experiments.run_all`` (scale 'small').
"""

import pytest


@pytest.fixture(scope="session")
def scale():
    return "tiny"
