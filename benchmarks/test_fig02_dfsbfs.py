"""Benchmarks for the quantified Fig. 2 contrast and the §V-A projection."""

from repro.experiments import dfs_vs_bfs, fig02_patterns


def test_fig02_access_mix(benchmark, scale):
    rows = benchmark(lambda: fig02_patterns.run(scale))
    mining = [r for r in rows if r["class"] == "mining"]
    processing = [r for r in rows if r["class"] == "processing"]
    assert min(r["random_edge_share"] for r in mining) > max(
        0.0, *(0.0 for _ in processing)
    )


def test_dfs_vs_bfs_projection(benchmark, scale):
    rows = benchmark(lambda: dfs_vs_bfs.run(scale, graphs=["mico", "lj"]))
    for row in rows:
        assert row["slowdown"] >= 1.0
