"""Benchmark Fig. 5: extension-locality tracing and analysis."""

from repro.experiments import fig05_locality


def test_fig05_locality_curves(benchmark, scale):
    rows = benchmark(lambda: fig05_locality.run(scale, max_size=3))
    for row in rows:
        shares = row["vertex_share"]
        # The headline claim: concentration grows with the iteration.
        assert shares[max(shares)] >= shares[min(shares)]
