"""Benchmark Fig. 11: energy comparison over a reduced app set."""

from repro.experiments import fig11_energy, table3_runtime


def test_fig11_energy(benchmark, scale):
    def work():
        cells = table3_runtime.run(scale, apps=["3-CF"], graphs=["p2p", "mico"])
        return fig11_energy.run_energy(scale, cells=cells)

    rows = benchmark(work)
    for row in rows:
        # GRAMER saves energy against both baselines, as in Fig. 11a.
        assert row.get("fractal_min", 1.0) > 1.0


def test_fig11_preprocessing(benchmark, scale):
    rows = benchmark(lambda: fig11_energy.run_total_time(scale, app="3-CF"))
    for row in rows:
        assert 0.0 <= row["preproc_fraction"] < 1.0
