"""Measure the memprofile analyzer: events/second over a synthesized trace.

The offline analyzer (`repro.obs.locality_report.analyze_trace`) is the
post-processing half of ``gramer memprofile``: taxonomy classification,
Fenwick-tree Mattson stack distances, and spatial-utilization byte
unions, per region.  This benchmark drives it with a deterministic
synthesized trace shaped like a real mixed run — a dense sequential
region, a strided region, and a scattered pointer-chase region — and
records throughput in ``benchmarks/BENCH_accessreport.json``.

Run with::

    PYTHONPATH=src python benchmarks/bench_accessreport.py [--smoke]

Not a pytest-benchmark module on purpose: the unit is one whole report
(what a ``memprofile`` invocation pays after the traced run), not a
single hot function.
"""

import argparse
import json
import sys
import time
from pathlib import Path

from repro.obs.access import AccessTrace
from repro.obs.locality_report import analyze_trace

OUT_PATH = Path(__file__).parent / "BENCH_accessreport.json"


def synthesize_trace(events: int) -> AccessTrace:
    """A deterministic trace mixing the three traffic classes."""
    trace = AccessTrace(meta={"backend": "synthetic", "app": "bench"})
    third = events // 3
    # Dense sequential adjacency stream (row hits).
    for i in range(third):
        trace.record("lamh.edge", "adjacency", i * 8, 8, "r", "offchip", i)
    # Constant large stride over vertex records.
    for i in range(third):
        trace.record(
            "lamh.vertex", "on1-rank", i * 4096, 8, "r", "offchip", i
        )
    # Scattered pointer chase with heavy reuse (LCG, fixed seed).
    state = 0xDEADBEEF
    for i in range(events - 2 * third):
        state = (state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
        address = (state >> 16) % (1 << 20)
        trace.record(
            "priority_cache.edge",
            "priority-cache",
            address,
            8,
            "w",
            "low",
            i,
        )
    return trace


def measure(events: int, repeat: int) -> dict:
    trace = synthesize_trace(events)
    best_s = None
    for _ in range(repeat):
        start = time.perf_counter()
        payload = analyze_trace(trace)
        elapsed = time.perf_counter() - start
        best_s = elapsed if best_s is None else min(best_s, elapsed)
    assert best_s is not None
    return {
        "events": len(trace),
        "regions": len(payload["regions"]),
        "analyze_s": best_s,
        "best_of": repeat,
        "events_per_s": len(trace) / best_s,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--events", type=int, default=300_000,
                        help="synthesized trace length (default 300k)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="analyzer runs; best-of is recorded (default 3)")
    parser.add_argument("--smoke", action="store_true",
                        help="small trace + throughput floor (CI gate)")
    parser.add_argument("--out", default=str(OUT_PATH),
                        help=f"output JSON path (default {OUT_PATH})")
    args = parser.parse_args()

    events = 30_000 if args.smoke else args.events
    record = measure(events, args.repeat)
    Path(args.out).write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n"
    )

    print(f"trace: {record['events']:,} events, "
          f"{record['regions']} regions")
    print(f"analyze: {record['analyze_s'] * 1e3:9.2f} ms "
          f"(best of {record['best_of']})")
    print(f"throughput: {record['events_per_s'] / 1e3:,.0f}k events/s")
    print(f"wrote {args.out}")

    if args.smoke:
        floor = 50_000.0
        assert record["events_per_s"] >= floor, (
            f"analyzer at {record['events_per_s']:,.0f} events/s; expected "
            f">= {floor:,.0f} — the O(n log n) reuse engine has regressed"
        )
        print("smoke ok: throughput above floor")
        return
    sys.exit(0)


if __name__ == "__main__":
    main()
