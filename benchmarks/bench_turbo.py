"""Measure the turbo engine against reference and fast on the tiny grid.

Runs every (app, dataset) cell of the Table III tiny grid once per engine,
wall-clock timed.  While timing, each cell's turbo result is checked
against the reference under the tiny-grid tolerance spec (mining counts
exact, timing/energy inside the declared bands) — a benchmark of a wrong
engine is worthless, so divergence aborts the record.

Run with::

    PYTHONPATH=src python benchmarks/bench_turbo.py [--repeat N] [--smoke]

``--smoke`` additionally gates on the acceptance floor: turbo must be
>= 3x the reference engine on the grid total (CI runs this in the turbo
job).  The JSON record is written either way so the CI artifact always
reflects the measured run.
"""

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.accel.config import GramerConfig
from repro.accel.sim import make_simulator
from repro.experiments import datasets
from repro.experiments.paper_data import TABLE3_APPS
from repro.runtime.backends import build_app

from tests.differential.tolerance import TINY_GRID_SPEC, assert_within_tolerance

OUT_PATH = Path(__file__).parent / "BENCH_turbo.json"
ENGINES_TIMED = ("reference", "fast", "turbo")
SPEEDUP_FLOOR = 3.0


def time_cell(app_name: str, graph_name: str, engine: str, repeat: int):
    app = build_app(app_name, graph_name, "tiny")
    loader = datasets.load_labeled if app.needs_labels else datasets.load
    graph = loader(graph_name, "tiny")
    best = None
    snapshot = None
    for _ in range(repeat):
        cell_app = build_app(app_name, graph_name, "tiny")
        start = time.perf_counter()
        result = make_simulator(graph, GramerConfig(), engine=engine).run(
            cell_app
        )
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
        snapshot = {
            "stats": result.stats.as_dict(),
            "embeddings": result.mining.embeddings_by_size,
            "patterns": result.mining.patterns_by_size,
            "candidates": cell_app.candidates_checked,
        }
    return best, snapshot


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeat", type=int, default=1,
                        help="timed runs per cell; best-of is recorded")
    parser.add_argument("--smoke", action="store_true",
                        help=f"also gate turbo >= {SPEEDUP_FLOOR}x reference "
                             "on the grid total (CI gate)")
    args = parser.parse_args()

    cells = []
    totals = dict.fromkeys(ENGINES_TIMED, 0.0)
    for app_name in TABLE3_APPS:
        for graph_name in datasets.DATASET_ORDER:
            row = {"app": app_name, "graph": graph_name}
            snaps = {}
            for engine in ENGINES_TIMED:
                wall, snaps[engine] = time_cell(
                    app_name, graph_name, engine, args.repeat
                )
                row[f"{engine}_wall_s"] = round(wall, 4)
                totals[engine] += wall
            # A benchmark of a diverged engine is worthless: enforce the
            # tolerance contract on every cell while timing.
            assert_within_tolerance(
                TINY_GRID_SPEC,
                snaps["reference"],
                snaps["turbo"],
                context=f"{app_name}/{graph_name}",
            )
            row["speedup_vs_reference"] = round(
                row["reference_wall_s"] / row["turbo_wall_s"], 3
            )
            row["speedup_vs_fast"] = round(
                row["fast_wall_s"] / row["turbo_wall_s"], 3
            )
            cells.append(row)
            print(
                f"{app_name:5s} {graph_name:9s} "
                f"ref {row['reference_wall_s']:7.3f}s  "
                f"fast {row['fast_wall_s']:7.3f}s  "
                f"turbo {row['turbo_wall_s']:7.3f}s  "
                f"{row['speedup_vs_reference']:.2f}x ref / "
                f"{row['speedup_vs_fast']:.2f}x fast"
            )

    speedup_ref = totals["reference"] / totals["turbo"]
    speedup_fast = totals["fast"] / totals["turbo"]
    print(
        f"\ntotal: ref {totals['reference']:.2f}s  fast {totals['fast']:.2f}s"
        f"  turbo {totals['turbo']:.2f}s"
        f"  speedup {speedup_ref:.2f}x ref / {speedup_fast:.2f}x fast"
    )

    record = {
        "benchmark": "turbo vs reference and fast, Table III tiny grid",
        "grid": {
            "apps": list(TABLE3_APPS),
            "datasets": list(datasets.DATASET_ORDER),
            "scale": "tiny",
        },
        "repeat": args.repeat,
        "reference_total_s": round(totals["reference"], 3),
        "fast_total_s": round(totals["fast"], 3),
        "turbo_total_s": round(totals["turbo"], 3),
        "speedup_vs_reference": round(speedup_ref, 3),
        "speedup_vs_fast": round(speedup_fast, 3),
        "tolerance_spec": TINY_GRID_SPEC.name,
        "note": (
            "Turbo decouples the timing model from the functional mining "
            "pass (docs/turbo.md): mining counts and exception behaviour "
            "stay exact (asserted while timing, along with the per-field "
            "timing bands of tests/differential/tolerance.py), which "
            "frees the engine from the sequential global event order "
            "that caps the fast engine near 2x."
        ),
        "cells": cells,
    }
    OUT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {OUT_PATH}")

    if args.smoke:
        if speedup_ref < SPEEDUP_FLOOR:
            raise SystemExit(
                f"turbo grid-total speedup {speedup_ref:.2f}x is below the "
                f"{SPEEDUP_FLOOR}x floor vs the reference engine"
            )
        print(f"smoke gate passed: {speedup_ref:.2f}x >= {SPEEDUP_FLOOR}x")


if __name__ == "__main__":
    main()
