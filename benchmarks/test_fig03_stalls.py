"""Benchmark Fig. 3: the CPU stall-breakdown trace (one graph, one app)."""

from repro.experiments import fig03_stalls


def test_fig03_stall_breakdown(benchmark, scale):
    rows = benchmark(lambda: fig03_stalls.run(scale))
    assert len(rows) == len(fig03_stalls.FIG3_GRAPHS) * len(fig03_stalls.FIG3_APPS)
    for row in rows:
        assert 0.0 <= row["vertex_stall"] + row["edge_stall"] <= 1.0
