"""Benchmark Fig. 13: slot sweep and work stealing on one graph."""

from repro.experiments import fig13_pipeline


def test_fig13_slot_sweep(benchmark, scale):
    rows = benchmark(
        lambda: fig13_pipeline.run_slot_sweep(scale, graphs=["mico"])
    )
    speedup = rows[0]["speedup"]
    # More slots never hurt, and 16 slots is clearly above 1.
    assert speedup[16] >= speedup[4] >= speedup[1] == 1.0
    assert speedup[16] > 1.5


def test_fig13_work_stealing(benchmark, scale):
    rows = benchmark(
        lambda: fig13_pipeline.run_work_stealing(scale, graphs=["mico"])
    )
    assert rows[0]["speedup"] > 1.0
    assert rows[0]["steals"] > 0
