"""Benchmark Fig. 12: the three memory-hierarchy variants on one app."""

from repro.experiments import fig12_lamh


def test_fig12_lamh_variants(benchmark, scale):
    # 4-MC: the deep workload where the extension locality builds up and
    # the paper's vertex-side ordering is robust at proxy scale.
    rows = benchmark(lambda: fig12_lamh.run(scale, apps=["4-MC"]))
    by_variant = {r["variant"]: r for r in rows}
    assert (
        by_variant["LAMH"]["vertex_hit"]
        >= by_variant["Static + LRU"]["vertex_hit"] - 0.02
    )
    assert (
        by_variant["Static + LRU"]["vertex_hit"]
        > by_variant["Uniform LRU"]["vertex_hit"]
    )
