"""Benchmark the extra ablations (steal selector, rank source, partitions)."""

from repro.experiments import ablations


def test_ablation_steal_selector(benchmark, scale):
    rows = benchmark(
        lambda: ablations.run_steal_selector(scale, graphs=["mico"])
    )
    # The stealing buffer should never be materially worse than the LFSR.
    assert rows[0]["buffer_speedup"] > 0.9


def test_ablation_rank_source(benchmark, scale):
    rows = benchmark(lambda: ablations.run_rank_source(scale, graphs=["mico"]))
    # ON1-ranked pinning should beat pinning arbitrary identity-ranked data.
    assert rows[0]["on1_vertex_hit"] >= rows[0]["identity_vertex_hit"] - 0.02


def test_ablation_partitions(benchmark, scale):
    rows = benchmark(
        lambda: ablations.run_partition_sweep(
            scale, partitions=(1, 4, 8)
        )
    )
    by_count = {r["partitions"]: r["cycles"] for r in rows}
    assert by_count[8] <= by_count[1]
