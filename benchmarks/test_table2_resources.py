"""Benchmark Table II: the resource model."""

from repro.experiments import table2_resources


def test_table2_resource_model(benchmark):
    rows = benchmark(table2_resources.run)
    assert len(rows) == 3
    for row in rows:
        assert abs(row["lut"] - row["paper_lut"]) < 0.01
        assert abs(row["bram"] - row["paper_bram"]) < 0.01
