"""Benchmark Fig. 14: tau and lambda sensitivity on one graph."""

from repro.experiments import fig14_sensitivity


def test_fig14_tau_sweep(benchmark, scale):
    rows = benchmark(
        lambda: fig14_sensitivity.run_tau_sweep(scale, graphs=["p2p"])
    )
    normalized = rows[0]["normalized"]
    # Performance improves monotonically-ish toward tau = 50% (Fig. 14a).
    assert normalized[0.50] == 1.0
    assert normalized[0.01] < normalized[0.20] <= 1.05


def test_fig14_lambda_sweep(benchmark, scale):
    rows = benchmark(
        lambda: fig14_sensitivity.run_lambda_sweep(scale, graphs=["p2p"])
    )
    normalized = rows[0]["normalized"]
    # The paper's point: lambda barely matters (0.91x-1.07x).
    assert all(0.8 < v < 1.25 for v in normalized.values())
