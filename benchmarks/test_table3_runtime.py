"""Benchmark Table III: one full three-system cell (3-CF on mico)."""

from repro.experiments import table3_runtime


def test_table3_cell(benchmark, scale):
    cells = benchmark(
        lambda: table3_runtime.run(scale, apps=["3-CF"], graphs=["mico"])
    )
    rows = table3_runtime.speedup_rows(cells)
    assert len(rows) == 1
    row = rows[0]
    # GRAMER wins the cell, as in every Table III row.
    assert row["speedup_vs_fractal"] > 1.0
    assert row["speedup_vs_rstream"] > 1.0
