"""Benchmark Fig. 8: ON_k accuracy/overhead characterization."""

from repro.experiments import fig08_heuristic


def test_fig08_heuristic(benchmark, scale):
    data = benchmark(
        lambda: fig08_heuristic.run(scale=scale, max_size=3, hops=(0, 1, 2))
    )
    overheads = data["overheads"]
    # Deeper hops must cost more (the Fig. 8b blow-up).
    assert overheads[2] > overheads[1]
