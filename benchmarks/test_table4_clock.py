"""Benchmark Table IV: the clock-rate model grid."""

from repro.experiments import table4_clock


def test_table4_clock_grid(benchmark):
    rows = benchmark(table4_clock.run)
    by_design = {r["design"]: r["model"] for r in rows}
    for app in ("CF", "FSM", "MC"):
        assert (
            by_design["w/o AB"][app]
            < by_design["w/ AB"][app]
            < by_design["w/ AB + Compaction"][app]
        )
