"""Measure the graph store: cold build vs warm mmap open, RSS, hashing.

Builds a ~100k-edge synthetic R-MAT graph once (cold: generate +
materialize), then measures

* **warm open** — a fresh :class:`GraphStore` instance opening the
  artifact from disk (header + checksum verification + ``np.memmap``),
  the path every executor pool worker takes;
* **per-worker peak RSS** — worker processes opening the same artifact at
  ``--jobs`` 1/2/4 and touching every array; pages are shared through the
  OS page cache, so per-worker peaks stay flat as the pool widens;
* **per-job hash overhead** — the old per-job full-array SHA-256 versus
  the memoized store digest (:meth:`CSRGraph.content_digest`), i.e. what
  every job used to pay before signatures were memoized.

Writes the measurement record to ``benchmarks/BENCH_graphstore.json``.

Run with::

    PYTHONPATH=src python benchmarks/bench_graphstore.py [--scale N] [--smoke]

``--smoke`` (CI) asserts warm open is >= 10x faster than cold build and
that per-worker peak RSS stays flat (max <= 1.5x min) as jobs grow.

Not a pytest-benchmark module on purpose: the unit here is the artifact
lifecycle the sweep runtime pays, not a single hot function.
"""

import argparse
import hashlib
import json
import multiprocessing
import resource
import sys
import tempfile
import time
from pathlib import Path

from repro.graph.generators import rmat
from repro.graph.store import GraphStore

OUT_PATH = Path(__file__).parent / "BENCH_graphstore.json"


def _touch_arrays(graph) -> int:
    """Fault every page of the graph's arrays in; return a checksum-ish."""
    return int(graph.offsets.sum() + graph.neighbors.sum() + graph.labels.sum())


def _worker_rss(args: tuple[str, str]) -> tuple[int, float]:
    """Open the artifact in a worker; report peak RSS (KB) and open time."""
    root, digest = args
    start = time.perf_counter()
    graph = GraphStore(root).open(digest)
    _touch_arrays(graph)
    elapsed = time.perf_counter() - start
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss, elapsed


def measure(scale: int, root: Path) -> dict:
    store = GraphStore(root)

    start = time.perf_counter()
    graph = rmat(scale, 8, seed=1)
    generate_s = time.perf_counter() - start
    start = time.perf_counter()
    digest = store.put(graph)
    materialize_s = time.perf_counter() - start
    cold_s = generate_s + materialize_s

    # Warm: a fresh store instance per open (no in-process memo), the
    # executor-worker path: header verify + per-array checksums + mmap.
    warm_samples = []
    for _ in range(5):
        fresh = GraphStore(root)
        start = time.perf_counter()
        reopened = fresh.open(digest)
        _touch_arrays(reopened)
        warm_samples.append(time.perf_counter() - start)
    warm_s = min(warm_samples)

    # Per-job hash overhead: full re-hash (the old _graph_signature) vs
    # the memoized digest a store-opened graph carries.
    start = time.perf_counter()
    hasher = hashlib.sha256()
    hasher.update(reopened.offsets.tobytes())
    hasher.update(reopened.neighbors.tobytes())
    hasher.update(reopened.labels.tobytes())
    rehash_s = time.perf_counter() - start
    assert hasher.hexdigest() == digest
    start = time.perf_counter()
    for _ in range(100):
        assert reopened.content_digest() == digest
    memoized_s = (time.perf_counter() - start) / 100

    rss_by_jobs = {}
    for jobs in (1, 2, 4):
        with multiprocessing.get_context("spawn").Pool(jobs) as pool:
            rows = pool.map(_worker_rss, [(str(root), digest)] * jobs)
        rss_by_jobs[str(jobs)] = {
            "peak_rss_kb_per_worker": [rss for rss, _ in rows],
            "max_worker_open_s": max(open_s for _, open_s in rows),
        }

    return {
        "graph": {
            "generator": f"rmat({scale}, 8, seed=1)",
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "artifact_bytes": store.artifact_path(digest).stat().st_size,
            "digest": digest,
        },
        "cold_build_s": cold_s,
        "cold_generate_s": generate_s,
        "cold_materialize_s": materialize_s,
        "warm_open_s": warm_s,
        "warm_speedup_x": cold_s / warm_s,
        "hash_overhead": {
            "full_rehash_s": rehash_s,
            "memoized_digest_s": memoized_s,
            "per_job_delta_s": rehash_s - memoized_s,
        },
        "rss_by_jobs": rss_by_jobs,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=14,
                        help="rmat scale; 2**scale vertices, "
                             "~8*2**scale directed samples (default 14, "
                             "~110k edges after dedup)")
    parser.add_argument("--smoke", action="store_true",
                        help="assert warm open >= 10x faster than cold "
                             "build and flat per-worker RSS (CI gate)")
    parser.add_argument("--out", default=str(OUT_PATH),
                        help=f"output JSON path (default {OUT_PATH})")
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="gramer-bench-store-") as tmp:
        record = measure(args.scale, Path(tmp))
    record["scale_arg"] = args.scale
    Path(args.out).write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    g = record["graph"]
    print(f"graph: |V|={g['num_vertices']:,} |E|={g['num_edges']:,} "
          f"({g['artifact_bytes']:,} bytes)")
    print(f"cold build: {record['cold_build_s'] * 1e3:9.2f} ms "
          f"(generate {record['cold_generate_s'] * 1e3:.2f} + "
          f"materialize {record['cold_materialize_s'] * 1e3:.2f})")
    print(f"warm open:  {record['warm_open_s'] * 1e3:9.2f} ms "
          f"({record['warm_speedup_x']:.1f}x faster)")
    h = record["hash_overhead"]
    print(f"hash/job:   full {h['full_rehash_s'] * 1e3:.3f} ms vs memoized "
          f"{h['memoized_digest_s'] * 1e6:.2f} us "
          f"(delta {h['per_job_delta_s'] * 1e3:.3f} ms/job)")
    peaks = []
    for jobs, row in sorted(record["rss_by_jobs"].items(), key=lambda kv: int(kv[0])):
        worst = max(row["peak_rss_kb_per_worker"])
        peaks.append(worst)
        print(f"jobs={jobs}: peak RSS/worker {worst:,} KB")
    print(f"wrote {args.out}")

    if args.smoke:
        speedup = record["warm_speedup_x"]
        assert speedup >= 10.0, (
            f"warm open only {speedup:.1f}x faster than cold build; "
            "expected >= 10x"
        )
        flatness = max(peaks) / min(peaks)
        assert flatness <= 1.5, (
            f"per-worker peak RSS grew {flatness:.2f}x across jobs 1->4; "
            "pages should be shared, not copied"
        )
        print(f"smoke ok: {speedup:.1f}x warm speedup, "
              f"RSS flatness {flatness:.2f}x")
        return
    sys.exit(0)


if __name__ == "__main__":
    main()
