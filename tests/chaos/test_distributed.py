"""Distributed-sweep chaos: kills, expired leases, and claim races.

The acceptance contract for the distributed layer (docs/resilience.md):
three real ``gramer worker`` processes sharing one ledger, one claim
directory, and one artifact cache — with one worker SIGKILLed mid-cell,
one stalling past its lease with the heartbeat suppressed, and claim
races widened on every acquisition — must converge to results
byte-identical to a fault-free single-worker sweep, with zero
steady-state double-computes and at least one audited lease takeover.
"""

import os
import subprocess
import sys
from pathlib import Path

import repro
from repro.runtime import (
    ArtifactCache,
    load_ledger,
    make_jobspec,
    run_spec,
    spec_digest,
)

APPS = ["3-CF"]
DATASETS = ["citeseer", "p2p"]
BACKENDS = ["gramer", "fractal", "rstream"]
TINY_GRID = [
    make_jobspec(backend, "3-CF", dataset=graph, scale="tiny")
    for graph in DATASETS
    for backend in BACKENDS
]

LEASE_S = 1.0
_SRC = Path(repro.__file__).resolve().parent.parent


def _worker_env(cache_root, faults):
    env = dict(os.environ)
    env["GRAMER_CACHE_DIR"] = str(cache_root)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(_SRC)] + [p for p in [env.get("PYTHONPATH")] if p]
    )
    if faults:
        env["GRAMER_FAULTS"] = faults
    else:
        env.pop("GRAMER_FAULTS", None)
    return env


def _spawn_worker(worker_id, ledger, claims, cache_root, faults=""):
    command = [
        sys.executable, "-m", "repro.cli", "worker",
        "--apps", *APPS,
        "--datasets", *DATASETS,
        "--backends", *BACKENDS,
        "--scale", "tiny",
        "--ledger", str(ledger),
        "--claims", str(claims),
        "--lease", str(LEASE_S),
        "--retries", "1",
        "--worker-id", worker_id,
    ]
    return subprocess.Popen(
        command,
        env=_worker_env(cache_root, faults),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


class TestDistributedChaosConverges:
    def test_kill_lease_expiry_and_claim_races_converge(self, tmp_path):
        """The headline distributed-chaos scenario.

        * ``w1`` SIGKILLs itself inside its first claimed cell (fault
          ``kill@1``) — its claim must expire and be taken over;
        * ``w2`` suppresses its heartbeat and stalls 1.6s (> lease) in
          every cell it claims (``lease-expiry``) — siblings steal its
          cells mid-run and its late finishes are benign duplicates;
        * ``w2``/``w3`` delay before every claim attempt
          (``claim-race``) so contending acquisitions pile onto the
          same cells (and the undelayed ``w1`` reliably claims first).
        """
        ledger = tmp_path / "run.jsonl"
        claims = tmp_path / "claims"
        shared = tmp_path / "shared-cache"
        workers = [
            _spawn_worker("w1", ledger, claims, shared, "kill@1"),
            _spawn_worker(
                "w2", ledger, claims, shared,
                "claim-race:0.1@1;lease-expiry:1.6@1",
            ),
            _spawn_worker("w3", ledger, claims, shared, "claim-race:0.1@1"),
        ]
        codes = [proc.wait(timeout=120) for proc in workers]

        # w1 died by its own injected SIGKILL; the survivors exited clean.
        assert codes[0] == -9
        assert codes[1] == 0 and codes[2] == 0

        state = load_ledger(ledger)
        digests = {spec_digest(spec): spec for spec in TINY_GRID}

        # Convergence: every cell terminal and ok despite the carnage.
        assert state.completed_digests() == set(digests)

        # ≥1 takeover, audited in the ledger with a bumped generation.
        takeovers = state.takeover_digests()
        assert takeovers
        assert all(
            c.generation >= 2
            for c in state.claims
            if c.action == "takeover"
        )

        # Zero steady-state double-computes: any cell whose claim
        # history is free of takeover/lost events ran exactly once.
        disturbed = takeovers | {
            c.digest for c in state.claims if c.action == "lost"
        }
        for digest in set(digests) - disturbed:
            assert state.finish_counts[digest] == 1, digest

        # A killed/stolen cell may legitimately finish twice (straggler
        # duplicate) but never more than once per involved worker.
        for digest in disturbed:
            assert state.finish_counts[digest] <= 2, digest

        # All claims were released or superseded: the directory drains.
        leftovers = [
            p for p in claims.iterdir() if p.name.endswith(".claim")
        ]
        assert leftovers == []

        # Byte-identity: the shared cache's artifacts fingerprint-match
        # a fault-free single-worker sweep in a pristine cache.
        shared_cache = ArtifactCache(root=shared)
        clean_cache = ArtifactCache(root=tmp_path / "clean-cache")
        for spec in TINY_GRID:
            distributed = run_spec(spec, cache=shared_cache)
            assert distributed.cached  # served, not recomputed
            clean = run_spec(spec, cache=clean_cache)
            assert distributed.fingerprint() == clean.fingerprint()

    def test_fault_free_workers_share_without_overlap(self, tmp_path):
        """Steady state: two clean workers, each cell computed once."""
        ledger = tmp_path / "run.jsonl"
        claims = tmp_path / "claims"
        shared = tmp_path / "shared-cache"
        workers = [
            _spawn_worker("w1", ledger, claims, shared),
            _spawn_worker("w2", ledger, claims, shared),
        ]
        codes = [proc.wait(timeout=120) for proc in workers]
        assert codes == [0, 0]

        state = load_ledger(ledger)
        digests = {spec_digest(spec) for spec in TINY_GRID}
        assert state.completed_digests() == digests
        assert not state.takeover_digests()
        for digest in digests:
            assert state.finish_counts[digest] == 1, digest
        # Every claim in the audit trail belongs to a known worker and
        # was cleanly acquired/released — no takeovers, no losses.
        assert {c.worker for c in state.claims} <= {"w1", "w2"}
        assert {c.action for c in state.claims} <= {"claimed", "released"}
        assert state.claims
