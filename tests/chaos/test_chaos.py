"""Chaos harness: fault-injected sweeps must converge to fault-free results.

The acceptance contract for the resilience layer (docs/resilience.md):
with a seeded fault plan injecting worker SIGKILLs, transient exceptions,
and cache corruption into a pool sweep, the retried/recovered results are
byte-identical (``JobResult.fingerprint``) to a fault-free run, and an
interrupted sweep resumed via ``gramer sweep --resume`` completes without
recomputing already-successful cells.
"""

import logging

import pytest

from repro.runtime import (
    ArtifactCache,
    Executor,
    FaultPlan,
    FaultSpec,
    RunLedger,
    load_ledger,
    make_jobspec,
    parse_fault_plan,
    spec_digest,
)
from repro.runtime.backends import _REGISTRY, register_backend
from repro.runtime.retry import RetryPolicy
from repro.runtime.spec import JobResult

FAST = RetryPolicy(max_attempts=3, base_delay_s=0.001, max_delay_s=0.002)

TINY_GRID = [
    make_jobspec(backend, "3-CF", dataset=graph, scale="tiny")
    for graph in ("citeseer", "p2p")
    for backend in ("gramer", "fractal", "rstream")
]

KILLED = "gramer:3-CF@citeseer/tiny"
RAISED = "fractal:3-CF@citeseer/tiny"
CORRUPTED = "rstream:3-CF@citeseer/tiny"

# The corrupt fault fires post-success; collateral pool breakage from the
# kill may push that success to a later attempt, so script it for every
# attempt the retry budget allows (it can only fire once — one success).
CHAOS_PLAN = FaultPlan(
    faults=(
        FaultSpec(kind="kill", attempt=1, match=KILLED),
        FaultSpec(kind="raise", attempt=1, match=RAISED),
        FaultSpec(kind="corrupt", attempt=1, match=CORRUPTED),
        FaultSpec(kind="corrupt", attempt=2, match=CORRUPTED),
        FaultSpec(kind="corrupt", attempt=3, match=CORRUPTED),
    )
)


def _fingerprints(results):
    return [r.fingerprint() for r in results]


def _by_label(results):
    return {r.spec.label(): r for r in results}


class TestFaultInjectedSweepConverges:
    def test_three_fault_kinds_yield_byte_identical_results(self, tmp_path):
        """kill + raise + corrupt injected into a pool sweep: same bytes."""
        clean = Executor(
            jobs=2, cache=ArtifactCache(root=tmp_path / "clean")
        ).run(TINY_GRID)
        chaos_cache = ArtifactCache(root=tmp_path / "chaos")
        chaotic = Executor(
            jobs=2,
            cache=chaos_cache,
            retry=FAST,
            faults=CHAOS_PLAN,
        ).run(TINY_GRID)

        assert all(r.ok for r in clean)
        assert all(r.ok for r in chaotic)
        assert _fingerprints(chaotic) == _fingerprints(clean)

        by_label = _by_label(chaotic)
        # The SIGKILLed worker and the injected raise both forced retries;
        # retries are provenance, so fingerprints still matched above.
        assert by_label[KILLED].retries >= 1
        assert by_label[RAISED].retries >= 1

        # The corrupt fault bit-flipped the stored entry *after* success:
        # a cache replay must quarantine it and recompute, not serve
        # garbage — and the recomputed cell is again byte-identical.
        replay_cache = ArtifactCache(root=tmp_path / "chaos")
        replay = Executor(jobs=1, cache=replay_cache).run(TINY_GRID)
        assert _fingerprints(replay) == _fingerprints(clean)
        replayed = _by_label(replay)
        assert replay_cache.stats.quarantined == 1
        assert not replayed[CORRUPTED].cached  # recomputed from scratch
        healthy = set(replayed) - {CORRUPTED}
        assert all(replayed[label].cached for label in healthy)

    def test_fault_plan_from_environment(self, tmp_path, monkeypatch):
        """$GRAMER_FAULTS wires the same plan without touching call sites."""
        spec = TINY_GRID[1]  # fractal:3-CF@citeseer
        clean = Executor(
            jobs=1, cache=ArtifactCache(root=tmp_path / "clean")
        ).run([spec])
        monkeypatch.setenv("GRAMER_FAULTS", f"raise@1={RAISED}")
        chaotic = Executor(
            jobs=1,
            cache=ArtifactCache(root=tmp_path / "chaos"),
            retry=FAST,
        ).run([spec])
        assert chaotic[0].ok and chaotic[0].retries == 1
        assert chaotic[0].fingerprint() == clean[0].fingerprint()

    def test_malformed_fault_tokens_warn_and_drop(self, caplog):
        """A typo'd GRAMER_FAULTS token never silently disables chaos."""
        with caplog.at_level(logging.WARNING, logger="gramer.runtime"):
            plan = parse_fault_plan("explode@x;raise@2=fractal")
        assert len(plan.faults) == 1
        assert plan.faults[0].kind == "raise"
        assert plan.faults[0].attempt == 2
        messages = [record.getMessage() for record in caplog.records]
        assert any("explode@x" in message for message in messages)


class TestSweepResumeCLI:
    """`gramer sweep --ledger/--resume` end-to-end through the real CLI."""

    APPS = ["3-CF"]
    DATASETS = ["citeseer", "p2p"]
    BACKENDS = ["gramer", "fractal"]
    FAILING = "gramer:3-CF@citeseer/tiny"

    def _sweep(self, ledger, resume=None):
        from repro.cli import main

        argv = [
            "sweep",
            "--apps", *self.APPS,
            "--datasets", *self.DATASETS,
            "--backends", *self.BACKENDS,
            "--scale", "tiny",
            "--jobs", "1",
            "--no-cache",  # resume must come from the ledger, not the cache
            "--retries", "1",
            "--ledger", str(ledger),
        ]
        if resume is not None:
            argv += ["--resume", str(resume)]
        return main(argv)

    def _grid_specs(self):
        from repro.experiments.harness import cell_jobspec

        return {
            f"{backend}:{app}@{graph}/tiny": cell_jobspec(
                backend, app, graph, "tiny"
            )
            for app in self.APPS
            for graph in self.DATASETS
            for backend in self.BACKENDS
        }

    def test_partial_failure_then_resume_completes(
        self, tmp_path, monkeypatch, capsys
    ):
        ledger = tmp_path / "sweep.jsonl"

        # First pass: one cell fails (injected, no retry budget) -> exit 3.
        monkeypatch.setenv("GRAMER_FAULTS", f"raise@1={self.FAILING}")
        with pytest.raises(SystemExit) as excinfo:
            self._sweep(ledger)
        assert excinfo.value.code == 3  # partial: some ok, some failed

        specs = self._grid_specs()
        state = load_ledger(ledger)
        succeeded = [
            label for label in specs if label != self.FAILING
        ]
        for label in succeeded:
            assert state.is_completed(specs[label])
        assert not state.is_completed(specs[self.FAILING])

        # Second pass: faults off, resume from the ledger -> exit 0, and
        # only the failed cell re-ran (attempt counts prove it).
        monkeypatch.delenv("GRAMER_FAULTS")
        self._sweep(ledger, resume=ledger)  # no SystemExit: every cell ok
        capsys.readouterr()

        state = load_ledger(ledger)
        for label, spec in specs.items():
            assert state.is_completed(spec)
        for label in succeeded:
            assert state.attempts[spec_digest(specs[label])] == 1
        assert state.attempts[spec_digest(specs[self.FAILING])] == 2


class _InterruptingBackend:
    """Test backend whose run is a ^C arriving mid-sweep."""

    name = "chaos-interrupt"
    system = "chaos"

    def run(self, spec) -> JobResult:
        raise KeyboardInterrupt


@pytest.fixture
def interrupting_backend():
    register_backend(_InterruptingBackend(), override=True)
    yield _InterruptingBackend.name
    _REGISTRY.pop(_InterruptingBackend.name, None)


class TestInterruptedSweep:
    def test_interrupt_flushes_ledger_and_propagates(
        self, tmp_path, interrupting_backend
    ):
        """^C mid-sweep: completed work is durable, the interrupt escapes."""
        specs = [
            TINY_GRID[0],
            make_jobspec(
                interrupting_backend, "3-CF", dataset="p2p", scale="tiny"
            ),
            TINY_GRID[2],
        ]
        ledger = RunLedger(tmp_path / "run.jsonl")
        executor = Executor(
            jobs=1,
            cache=ArtifactCache(root=tmp_path / "cache"),
            ledger=ledger,
        )
        with pytest.raises(KeyboardInterrupt):
            executor.run(specs)
        ledger.close()

        state = load_ledger(tmp_path / "run.jsonl")
        assert state.is_completed(specs[0])  # finished before the ^C
        assert not state.is_completed(specs[1])  # in flight: start only
        assert state.attempts[spec_digest(specs[1])] == 1
        assert state.entry_for(specs[2]) is None  # never started


class TestResumeVerifiesCachedArtifacts:
    """``--resume`` must not trust an ``ok`` ledger line on faith.

    A ledger can mark a cell ``ok`` while its cached artifact has since
    been deleted or corrupted (disk cleanup, quarantine, a partial
    rsync).  With the cache enabled, resume cross-checks each ``ok``
    digest against the artifact checksum and re-runs cells whose
    artifact is gone — otherwise downstream ``manifest seal`` would have
    nothing to bind.
    """

    APPS = ["3-CF"]
    DATASETS = ["citeseer"]
    BACKENDS = ["gramer", "fractal"]
    VICTIM = "gramer:3-CF@citeseer/tiny"

    @pytest.fixture
    def private_cache(self, tmp_path):
        """A per-test default cache so entry deletion is observable."""
        import os

        from repro.runtime.cache import reset_default_cache

        previous = os.environ.get("GRAMER_CACHE_DIR")
        os.environ["GRAMER_CACHE_DIR"] = str(tmp_path / "cache")
        reset_default_cache()
        yield
        if previous is None:
            os.environ.pop("GRAMER_CACHE_DIR", None)
        else:
            os.environ["GRAMER_CACHE_DIR"] = previous
        reset_default_cache()

    def _sweep(self, ledger, resume=None):
        from repro.cli import main

        argv = [
            "sweep",
            "--apps", *self.APPS,
            "--datasets", *self.DATASETS,
            "--backends", *self.BACKENDS,
            "--scale", "tiny",
            "--jobs", "1",
            "--retries", "1",
            "--ledger", str(ledger),
        ]
        if resume is not None:
            argv += ["--resume", str(resume)]
        return main(argv)

    def _grid_specs(self):
        from repro.experiments.harness import cell_jobspec

        return {
            f"{backend}:{app}@{graph}/tiny": cell_jobspec(
                backend, app, graph, "tiny"
            )
            for app in self.APPS
            for graph in self.DATASETS
            for backend in self.BACKENDS
        }

    def test_ok_cell_with_deleted_artifact_reruns_on_resume(
        self, tmp_path, private_cache, capsys
    ):
        from repro.runtime import JOB_KIND, default_cache

        ledger = tmp_path / "sweep.jsonl"
        self._sweep(ledger)  # clean pass: every cell ok and cached
        capsys.readouterr()

        specs = self._grid_specs()
        entry = default_cache().entry_path(
            JOB_KIND, specs[self.VICTIM].cache_key()
        )
        assert entry.exists()
        entry.unlink()  # the ledger still says ok; the artifact is gone

        self._sweep(ledger, resume=ledger)  # no SystemExit: all cells ok
        out = capsys.readouterr().out
        assert "re-running" in out and self.VICTIM in out

        state = load_ledger(ledger)
        for label, spec in specs.items():
            assert state.is_completed(spec)
            expected = 2 if label == self.VICTIM else 1
            assert state.attempts[spec_digest(spec)] == expected, label
        # The resumed run restored the artifact the ledger promised.
        assert entry.exists()
