"""Trace capture and the extension-locality analyses (Figs. 5, 8a)."""

from collections import Counter

import pytest

from repro.graph.generators import cycle, powerlaw_cluster, star
from repro.locality.analysis import (
    heuristic_accuracy,
    locality_curve,
    top_access_share,
)
from repro.locality.trace import AccessCounter, CallbackMemory, IterationTrace
from repro.mining.apps import MotifCounting
from repro.mining.engine import run_dfs


class TestAccessCounter:
    def test_totals(self):
        mem = AccessCounter()
        mem.vertex(1)
        mem.vertex(1)
        mem.edge(5, 0)
        assert mem.total_vertex_accesses == 2
        assert mem.total_edge_accesses == 1
        assert mem.vertex_counts[1] == 2


class TestIterationTrace:
    def test_buckets_by_depth(self):
        trace = IterationTrace()
        trace.depth = 1
        trace.vertex(0)
        trace.depth = 2
        trace.vertex(0)
        trace.edge(3, 0)
        assert trace.iterations == [1, 2]
        assert trace.vertex_counts(1)[0] == 1
        assert trace.vertex_counts(2)[0] == 1
        assert trace.edge_counts(2)[3] == 1


class TestCallbackMemory:
    def test_forwards(self):
        seen = []
        mem = CallbackMemory(
            on_vertex=lambda v: seen.append(("v", v)),
            on_edge=lambda i, s: seen.append(("e", i, s)),
        )
        mem.vertex(4)
        mem.edge(7, 4)
        assert seen == [("v", 4), ("e", 7, 4)]


class TestTopAccessShare:
    def test_uniform(self):
        counts = Counter({i: 1 for i in range(100)})
        assert top_access_share(counts, 100, 0.05) == pytest.approx(0.05)

    def test_concentrated(self):
        counts = Counter({0: 95, 1: 5})
        assert top_access_share(counts, 100, 0.05) == pytest.approx(1.0)

    def test_empty(self):
        assert top_access_share(Counter(), 10, 0.1) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            top_access_share(Counter(), 10, 0.0)
        with pytest.raises(ValueError):
            top_access_share(Counter(), 0, 0.5)


class TestLocalityCurve:
    def test_skewed_graph_concentrates_over_iterations(self):
        """Fig. 5's core claim: top-5% share grows with embedding size."""
        g = powerlaw_cluster(400, 3, 0.4, seed=5)
        trace = IterationTrace()
        run_dfs(g, MotifCounting(4), mem=trace)
        curve = locality_curve(g, trace, fraction=0.05)
        vshare = curve.vertex_share_by_iteration
        assert vshare[3] > vshare[1]
        # Far above the uniform baseline of 5% by iteration 3 (the paper's
        # graphs, with thousand-degree hubs, reach 40-95%; the proxy-scale
        # hubs here concentrate less in absolute terms).
        assert vshare[3] > 0.2
        eshare = curve.edge_share_by_iteration
        # "The top 5% edges start from a fixed access frequency of 5%" —
        # every edge is streamed exactly once when 1-vertex embeddings
        # extend, so iteration 1 is exactly uniform.
        assert eshare[1] == pytest.approx(0.05, abs=0.01)
        assert eshare[3] > eshare[1]

    def test_uniform_graph_less_concentrated(self):
        def share_at_2(g):
            trace = IterationTrace()
            run_dfs(g, MotifCounting(3), mem=trace)
            return locality_curve(g, trace).vertex_share_by_iteration[2]

        skewed = share_at_2(powerlaw_cluster(400, 3, 0.4, seed=5))
        uniform = share_at_2(cycle(400))
        assert skewed > 2 * uniform
        assert uniform < 0.10  # a cycle has nothing to concentrate on


class TestHeuristicAccuracy:
    def test_on1_beats_on0_on_star_of_stars(self):
        """ON1 sees through to neighbours' degrees; ON0 cannot."""
        g = powerlaw_cluster(300, 3, 0.5, seed=6)
        trace = IterationTrace()
        run_dfs(g, MotifCounting(4), mem=trace)
        acc0 = heuristic_accuracy(g, trace, hops=0)
        acc1 = heuristic_accuracy(g, trace, hops=1)
        # Averaged over iterations, ON1 should not be worse.
        mean0 = sum(acc0.values()) / len(acc0)
        mean1 = sum(acc1.values()) / len(acc1)
        assert mean1 >= mean0 - 0.05

    def test_accuracy_bounds(self):
        g = star(20)
        trace = IterationTrace()
        run_dfs(g, MotifCounting(3), mem=trace)
        for value in heuristic_accuracy(g, trace, hops=1).values():
            assert 0.0 <= value <= 1.0

    def test_high_accuracy_on_skewed(self):
        """Fig. 8a: 1-hop ON accuracy is high (paper: >80%)."""
        g = powerlaw_cluster(400, 3, 0.4, seed=7)
        trace = IterationTrace()
        run_dfs(g, MotifCounting(4), mem=trace)
        acc = heuristic_accuracy(g, trace, hops=1)
        # Iteration 1 is degenerate: every vertex is touched exactly once
        # (uniform counts), so the observed "top set" is tie-broken noise.
        # The meaningful iterations are the deep ones, where the paper
        # reports > 80% for 1-hop ON; proxy-scale hubs give somewhat less.
        assert acc[2] >= 0.45
        assert acc[3] >= 0.5
        assert acc[3] >= acc[1]  # prediction improves as locality builds
