"""ON_k occurrence numbers (Equation 1)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.graph.csr import CSRGraph
from repro.graph.generators import clique, path, powerlaw_cluster, star
from repro.locality.occurrence import (
    edge_scores_from_vertex_scores,
    occurrence_numbers,
    timed_occurrence_numbers,
    top_fraction_vertices,
)

from ..conftest import small_graphs


def brute_force_on(graph, v, hops):
    """Reference ON via explicit BFS distance classes."""
    from collections import deque

    dist = {v: 0}
    queue = deque([v])
    while queue:
        u = queue.popleft()
        if dist[u] >= hops:
            continue
        for w in graph.neighbors_of(u).tolist():
            if w not in dist:
                dist[w] = dist[u] + 1
                queue.append(w)
    product = 1.0
    for d in range(hops + 1):
        product *= sum(
            graph.degree(u) for u, du in dist.items() if du == d
        )
    return product


class TestON0:
    def test_equals_degree(self, pl_graph):
        assert np.array_equal(
            occurrence_numbers(pl_graph, hops=0), pl_graph.degrees()
        )


class TestON1:
    def test_star_hub_dominates(self):
        g = star(10)
        scores = occurrence_numbers(g, hops=1)
        assert scores[0] == max(scores)
        # Hub: deg 10 × (sum of leaf degrees = 10) = 100.
        assert scores[0] == pytest.approx(100.0)
        # Leaf: deg 1 × hub degree 10 = 10.
        assert scores[1] == pytest.approx(10.0)

    def test_path_interior(self):
        g = path(3)  # 0-1-2
        scores = occurrence_numbers(g, hops=1)
        assert scores[1] == pytest.approx(2.0 * 2.0)  # deg 2 × (1+1)
        assert scores[0] == pytest.approx(1.0 * 2.0)

    @given(small_graphs(min_vertices=2, max_vertices=10))
    @settings(max_examples=40, deadline=None)
    def test_matches_brute_force(self, g):
        scores = occurrence_numbers(g, hops=1)
        for v in range(g.num_vertices):
            assert scores[v] == pytest.approx(brute_force_on(g, v, 1))

    def test_figure4_example(self):
        """The worked example of Fig. 4: vertex 8's access frequency grows.

        The sample graph of Fig. 1/Fig. 4: 8 vertices, 12 edges; the hub ❽
        has high ON1 and must land in the top ranks.
        """
        edges = [
            (1, 2), (1, 5), (1, 8),
            (2, 5), (2, 8),
            (3, 4), (3, 6), (3, 8),
            (4, 6),
            (5, 7), (5, 8),
            (4, 8),
        ]
        g = CSRGraph(9, [(u, v) for u, v in edges])  # vertex 0 unused
        scores = occurrence_numbers(g, hops=1)
        ranked = np.argsort(-scores)
        assert ranked[0] == 8  # the highest-degree, best-connected vertex


class TestDeepHops:
    @given(small_graphs(min_vertices=2, max_vertices=8))
    @settings(max_examples=25, deadline=None)
    def test_hops2_matches_brute_force(self, g):
        scores = occurrence_numbers(g, hops=2)
        for v in range(g.num_vertices):
            assert scores[v] == pytest.approx(brute_force_on(g, v, 2))

    def test_clique_uniform(self):
        scores = occurrence_numbers(clique(5), hops=2)
        assert np.allclose(scores, scores[0])

    def test_negative_hops_rejected(self):
        with pytest.raises(ValueError):
            occurrence_numbers(clique(3), hops=-1)


class TestTimedComputation:
    def test_overhead_grows_with_hops(self):
        g = powerlaw_cluster(400, 3, 0.3, seed=4)
        t1 = timed_occurrence_numbers(g, 1)
        t3 = timed_occurrence_numbers(g, 3)
        assert t3.seconds > t1.seconds  # Fig. 8b's trend
        assert t1.hops == 1 and t3.hops == 3


class TestTopFraction:
    def test_count(self):
        scores = np.arange(100, dtype=float)
        top = top_fraction_vertices(scores, 0.05)
        assert top == {99, 98, 97, 96, 95}

    def test_at_least_one(self):
        assert len(top_fraction_vertices(np.array([1.0, 2.0]), 0.01)) == 1

    def test_ties_deterministic(self):
        top = top_fraction_vertices(np.ones(10), 0.2)
        assert top == {0, 1}

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            top_fraction_vertices(np.ones(3), 0.0)


class TestEdgeScores:
    def test_inherits_source(self):
        g = star(3)
        vscores = occurrence_numbers(g, 1)
        escores = edge_scores_from_vertex_scores(g, vscores)
        # Hub's slots carry the hub's score.
        for i in range(g.offsets[0], g.offsets[1]):
            assert escores[i] == vscores[0]
        assert len(escores) == len(g.neighbors)
