"""Stride-based access classification."""

from repro.locality.stride import AccessMix, StrideClassifier


class TestStrideClassifier:
    def test_sequential_edge_run(self):
        c = StrideClassifier()
        for i in range(5):
            c.edge(10 + i, src=3)
        assert c.mix.sequential_edge == 4
        assert c.mix.random_edge == 1  # the first access of a stream

    def test_interleaved_streams_tracked_per_source(self):
        c = StrideClassifier()
        c.edge(0, src=1)
        c.edge(100, src=2)
        c.edge(1, src=1)  # continues stream 1 despite the interleave
        c.edge(101, src=2)
        assert c.mix.sequential_edge == 2
        assert c.mix.random_edge == 2

    def test_random_vertex_jumps(self):
        c = StrideClassifier()
        for v in (5, 90, 7, 200):
            c.vertex(v)
        assert c.mix.random_vertex == 4

    def test_sequential_vertex_sweep(self):
        c = StrideClassifier()
        for v in range(6):
            c.vertex(v)
        assert c.mix.sequential_vertex == 5

    def test_fractions_sum_to_one(self):
        c = StrideClassifier()
        c.vertex(0)
        c.vertex(1)
        c.edge(0, 0)
        fractions = c.mix.fractions()
        assert abs(sum(fractions.values()) - 1.0) < 1e-9

    def test_empty_mix(self):
        mix = AccessMix()
        assert mix.total == 0
        assert mix.random_vertex_share == 0.0
        assert all(v == 0.0 for v in mix.fractions().values())


class TestFig02Experiment:
    def test_mining_randomises_edges_more_than_processing(self):
        from repro.experiments import fig02_patterns

        rows = fig02_patterns.run("tiny")
        processing = [r for r in rows if r["class"] == "processing"]
        mining = [r for r in rows if r["class"] == "mining"]
        avg_proc = sum(r["random_edge_share"] for r in processing) / len(
            processing
        )
        avg_mine = sum(r["random_edge_share"] for r in mining) / len(mining)
        assert avg_mine > avg_proc

    def test_processing_vertex_accesses_mostly_random(self):
        from repro.experiments import fig02_patterns

        rows = fig02_patterns.run("tiny")
        for r in rows:
            if r["class"] == "processing":
                assert r["random_vertex_share"] > 0.8
