"""Golden-stats regression fixtures for the simulator.

Each fixture under ``golden/`` freezes the full ``SimStats.as_dict()`` (plus
mining counts) for one Table III tiny cell.  Any change to simulator timing,
cache behaviour, or mining semantics shows up as a field-level diff naming
the first divergent key — much easier to review than "cycles changed".

Regenerate after an *intentional* semantics change with::

    GRAMER_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/experiments/test_golden_stats.py -q

and commit the updated JSON together with the change that explains it.
"""

import json
import os
from pathlib import Path

import pytest

from repro.accel.config import GramerConfig
from repro.accel.sim import make_simulator
from repro.experiments import datasets
from repro.runtime.backends import build_app

GOLDEN_DIR = Path(__file__).parent / "golden"

CELLS = [
    ("3-CF", "citeseer"),
    ("5-CF", "p2p"),
    ("3-MC", "citeseer"),
    ("4-MC", "p2p"),
    ("FSM", "citeseer"),
    ("4-CF", "astro"),
]


def compute_cell(app_name: str, graph_name: str, scale: str = "tiny") -> dict:
    """Run one cell (fast engine) to its golden-comparable payload."""
    app = build_app(app_name, graph_name, scale)
    loader = datasets.load_labeled if app.needs_labels else datasets.load
    graph = loader(graph_name, scale)
    result = make_simulator(graph, GramerConfig()).run(app)
    return {
        "app": app_name,
        "graph": graph_name,
        "scale": scale,
        "stats": result.stats.as_dict(),
        "embeddings_by_size": {
            str(k): v for k, v in result.mining.embeddings_by_size.items()
        },
        "candidates_checked": app.candidates_checked,
    }


def diff_golden(expected: dict, actual: dict) -> str | None:
    """Field-by-field comparison; returns a message naming the first
    divergent key (stats keys in sorted order), or None when identical."""
    for key in ("app", "graph", "scale", "embeddings_by_size",
                "candidates_checked"):
        if expected.get(key) != actual.get(key):
            return (
                f"{key}: golden={expected.get(key)!r} "
                f"actual={actual.get(key)!r}"
            )
    golden_stats = expected.get("stats", {})
    actual_stats = actual.get("stats", {})
    for key in sorted(set(golden_stats) | set(actual_stats)):
        if golden_stats.get(key) != actual_stats.get(key):
            return (
                f"stats.{key}: golden={golden_stats.get(key)!r} "
                f"actual={actual_stats.get(key)!r}"
            )
    return None


def golden_path(app_name: str, graph_name: str) -> Path:
    return GOLDEN_DIR / f"{app_name}_{graph_name}_tiny.json"


@pytest.mark.parametrize(("app_name", "graph_name"), CELLS)
def test_stats_match_golden(app_name, graph_name):
    path = golden_path(app_name, graph_name)
    actual = compute_cell(app_name, graph_name)
    if os.environ.get("GRAMER_REGEN_GOLDEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(actual, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"regenerated {path.name}")
    assert path.exists(), (
        f"missing golden fixture {path}; regenerate with "
        "GRAMER_REGEN_GOLDEN=1 (see module docstring)"
    )
    expected = json.loads(path.read_text())
    divergence = diff_golden(expected, actual)
    assert divergence is None, f"{app_name}/{graph_name}: {divergence}"


def test_no_stale_golden_fixtures():
    """Every checked-in fixture corresponds to a cell in CELLS."""
    known = {golden_path(a, g).name for a, g in CELLS}
    on_disk = {p.name for p in GOLDEN_DIR.glob("*.json")}
    assert on_disk <= known, f"stale fixtures: {sorted(on_disk - known)}"
