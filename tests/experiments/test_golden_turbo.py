"""Golden tolerance-envelope fixtures for the turbo engine.

Each fixture under ``golden/turbo/`` freezes, for one Table III tiny
cell, the turbo engine's full ``SimStats.as_dict()`` *and* its measured
deviation envelope against the reference engine at freeze time (per
field: reference value, turbo value, relative deviation).  The turbo
engine is deterministic, so the test asserts the current run matches the
frozen turbo stats exactly — any timing-model change shows up as a
field-level diff naming the first divergent key, and the reviewer can
read the committed envelope to see how far from the reference the new
value sits.

The envelope in every fixture must itself respect
``tests.differential.tolerance.TINY_GRID_SPEC`` — regeneration fails
loudly if the engine has drifted out of its declared bands.

Regenerate after an *intentional* timing-model change with::

    GRAMER_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/experiments/test_golden_turbo.py -q

and commit the updated JSON together with the change that explains it.
"""

import json
import os
from pathlib import Path

import pytest

from repro.accel.config import GramerConfig
from repro.accel.sim import make_simulator
from repro.experiments import datasets
from repro.runtime.backends import build_app
from tests.differential.tolerance import TINY_GRID_SPEC, assert_within_tolerance
from tests.experiments.test_golden_stats import CELLS, diff_golden

GOLDEN_DIR = Path(__file__).parent / "golden" / "turbo"


def _run_cell(app_name: str, graph_name: str, engine: str, scale: str = "tiny"):
    app = build_app(app_name, graph_name, scale)
    loader = datasets.load_labeled if app.needs_labels else datasets.load
    graph = loader(graph_name, scale)
    result = make_simulator(graph, GramerConfig(), engine=engine).run(app)
    return {
        "stats": result.stats.as_dict(),
        "embeddings": result.mining.embeddings_by_size,
        "patterns": result.mining.patterns_by_size,
        "candidates": app.candidates_checked,
    }


def compute_cell(app_name: str, graph_name: str, scale: str = "tiny") -> dict:
    """The turbo side of one cell, golden-comparable (no reference run)."""
    turbo = _run_cell(app_name, graph_name, "turbo", scale)
    return {
        "app": app_name,
        "graph": graph_name,
        "scale": scale,
        "stats": turbo["stats"],
        "embeddings_by_size": {
            str(k): v for k, v in turbo["embeddings"].items()
        },
        "candidates_checked": turbo["candidates"],
    }


def compute_envelope(app_name: str, graph_name: str, scale: str = "tiny"):
    """Golden payload + per-field deviation envelope (runs both engines)."""
    reference = _run_cell(app_name, graph_name, "reference", scale)
    turbo = _run_cell(app_name, graph_name, "turbo", scale)
    assert_within_tolerance(
        TINY_GRID_SPEC, reference, turbo, context=f"{app_name}/{graph_name}"
    )
    envelope = {}
    for key, rv in sorted(reference["stats"].items()):
        tv = turbo["stats"][key]
        if isinstance(rv, list):
            continue  # per-PU arrays: the frozen stats already pin them
        entry = {"reference": rv, "turbo": tv}
        if rv:
            entry["rel_dev"] = round((tv - rv) / rv, 4)
        envelope[key] = entry
    payload = compute_cell(app_name, graph_name, scale)
    payload["envelope_vs_reference"] = envelope
    return payload


def golden_path(app_name: str, graph_name: str) -> Path:
    return GOLDEN_DIR / f"{app_name}_{graph_name}_tiny.json"


@pytest.mark.parametrize(("app_name", "graph_name"), CELLS)
def test_turbo_stats_match_golden(app_name, graph_name):
    path = golden_path(app_name, graph_name)
    if os.environ.get("GRAMER_REGEN_GOLDEN"):
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        payload = compute_envelope(app_name, graph_name)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"regenerated {path.name}")
    assert path.exists(), (
        f"missing golden fixture {path}; regenerate with "
        "GRAMER_REGEN_GOLDEN=1 (see module docstring)"
    )
    actual = compute_cell(app_name, graph_name)
    expected = json.loads(path.read_text())
    divergence = diff_golden(expected, actual)
    assert divergence is None, (
        f"{app_name}/{graph_name}: {divergence} — if the timing-model "
        "change is intentional, regenerate (GRAMER_REGEN_GOLDEN=1) and "
        "review the refreshed envelope_vs_reference block"
    )


@pytest.mark.parametrize(("app_name", "graph_name"), CELLS)
def test_frozen_envelope_within_declared_bands(app_name, graph_name):
    """The committed envelope must sit inside TINY_GRID_SPEC's bands.

    Guards against a regeneration that silently freezes an out-of-band
    engine: the bands and the fixtures can only tighten together.
    """
    path = golden_path(app_name, graph_name)
    if not path.exists():
        pytest.skip("fixture not generated yet")
    envelope = json.loads(path.read_text())["envelope_vs_reference"]
    for key, entry in envelope.items():
        band = TINY_GRID_SPEC.band_for(key)
        if band is None:
            continue
        assert band.allows(entry["reference"], entry["turbo"]), (
            f"{app_name}/{graph_name}: frozen {key} "
            f"(reference={entry['reference']} turbo={entry['turbo']}) "
            f"violates its declared band ({band.describe()})"
        )


def test_no_stale_turbo_fixtures():
    """Every checked-in fixture corresponds to a cell in CELLS."""
    known = {golden_path(a, g).name for a, g in CELLS}
    on_disk = {p.name for p in GOLDEN_DIR.glob("*.json")}
    assert on_disk <= known, f"stale fixtures: {sorted(on_disk - known)}"
