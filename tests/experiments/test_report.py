"""Results-digest rendering."""

import json

from repro.experiments.report import main, render_report


def sample_payload():
    return {
        "scale": "small",
        "wall_seconds": 123.4,
        "fig05": [
            {
                "graph": "mico",
                "vertex_share": {"1": 0.05, "2": 0.22, "3": 0.32},
            }
        ],
        "table3": [
            {
                "app": "3-CF", "graph": "mico",
                "speedup_vs_fractal": 14.6, "speedup_vs_rstream": 19.9,
            },
            {
                "app": "4-MC", "graph": "p2p",
                "speedup_vs_fractal": 11.7, "speedup_vs_rstream": 21.3,
            },
        ],
        "fig11": {
            "energy": [
                {"graph": "mico", "fractal_min": 60.0, "fractal_max": 80.0,
                 "rstream_min": 20.0, "rstream_max": 140.0},
            ]
        },
        "fig13": {
            "work_stealing": [
                {"graph": "p2p", "speedup": 1.43},
                {"graph": "mico", "speedup": 1.21},
            ]
        },
    }


class TestRenderReport:
    def test_sections_present(self):
        text = render_report(sample_payload())
        assert "Table III" in text
        assert "Fig. 11a" in text
        assert "Fig. 13b" in text
        assert "Fig. 5" in text

    def test_speedup_ranges(self):
        text = render_report(sample_payload())
        assert "11.7x" in text and "14.6x" in text
        assert "wins 2/2" in text

    def test_best_stealing_graph(self):
        assert "best on p2p" in render_report(sample_payload())

    def test_handles_missing_sections(self):
        text = render_report({"scale": "tiny", "wall_seconds": 1})
        assert "digest" in text

    def test_cli_writes_file(self, tmp_path):
        source = tmp_path / "results.json"
        source.write_text(json.dumps(sample_payload()))
        out = tmp_path / "digest.md"
        main([str(source), "--out", str(out)])
        assert "Table III" in out.read_text()
