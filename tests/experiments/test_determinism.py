"""Bit-determinism regression: the Table III tiny grid, twice, byte-identical.

This is the contract `gramer check`'s determinism rules (GRM1xx) enforce
statically, asserted dynamically: every modeled result is a pure function
of its JobSpec, so two cold back-to-back runs must serialize to the exact
same bytes — not approximately equal, *identical*.
"""

import json
from dataclasses import asdict

from repro.experiments import table3_runtime
from repro.runtime.cache import ArtifactCache
from repro.runtime.executor import Executor

APPS = ["3-CF", "4-MC"]
GRAPHS = ["citeseer", "p2p"]


def _cold_run_bytes(tmp_path, tag: str) -> bytes:
    """One uncached Table III tiny-grid run, serialized canonically."""
    executor = Executor(
        jobs=1,
        use_cache=False,
        cache=ArtifactCache(root=tmp_path / tag, use_disk=False),
    )
    cells = table3_runtime.run(
        "tiny", apps=APPS, graphs=GRAPHS, executor=executor
    )
    payload = []
    for cell in cells:
        record = asdict(cell)
        # Host wall time is the one sanctioned nondeterministic field
        # (JobResult.fingerprint excludes it for the same reason).
        record.pop("wall_seconds")
        payload.append(record)
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    ).encode("utf-8")


class TestTableIIIByteDeterminism:
    def test_back_to_back_runs_are_byte_identical(self, tmp_path):
        first = _cold_run_bytes(tmp_path, "first")
        second = _cold_run_bytes(tmp_path, "second")
        assert first == second

    def test_rendered_table_is_byte_identical(self, tmp_path):
        tables = [
            table3_runtime.main(
                "tiny",
                apps=["3-CF"],
                graphs=["citeseer"],
                verbose=False,
                executor=Executor(
                    jobs=1,
                    use_cache=False,
                    cache=ArtifactCache(
                        root=tmp_path / f"render{i}", use_disk=False
                    ),
                ),
            ).encode("utf-8")
            for i in range(2)
        ]
        assert tables[0] == tables[1]
