"""Experiment harness and paper-data helpers."""

import json

import pytest

from repro.experiments import paper_data
from repro.experiments.harness import (
    build_app,
    experiment_config,
    format_seconds,
    format_table,
    run_fractal_cell,
    run_gramer_cell,
    run_rstream_cell,
    save_results,
)
from repro.mining.apps import CliqueFinding, FrequentSubgraphMining


class TestFormatting:
    def test_format_seconds_units(self):
        assert format_seconds(None) == "N/A"
        assert format_seconds(0) == "0"
        assert format_seconds(5e-7).endswith("us")
        assert format_seconds(0.25).endswith("ms")
        assert format_seconds(12.5) == "12.50s"

    def test_format_seconds_minutes(self):
        # Full-scale baseline cells exceed 60 s (e.g. LiveJournal ~433 s);
        # they must render as minutes + seconds, not "433.20s".
        assert format_seconds(433.2) == "7m 13s"
        assert format_seconds(60.0) == "1m 0s"
        assert format_seconds(59.99) == "59.99s"
        assert format_seconds(3601) == "60m 1s"

    def test_format_table_alignment(self):
        text = format_table(["a", "bbb"], [["x", "y"], ["zz", "w"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line.rstrip()) for line in lines[1:2])) == 1

    def test_save_results(self, tmp_path):
        target = tmp_path / "sub" / "results.json"
        save_results({"x": 1}, target)
        assert json.loads(target.read_text()) == {"x": 1}


class TestBuildApp:
    def test_cf(self):
        app = build_app("5-CF", "mico", "tiny")
        assert isinstance(app, CliqueFinding)
        assert app.max_vertices == 5

    def test_fsm_uses_scaled_threshold(self):
        from repro.experiments import datasets

        app = build_app("FSM", "mico", "tiny")
        assert isinstance(app, FrequentSubgraphMining)
        assert app.threshold == datasets.fsm_threshold("mico", "tiny")

    def test_experiment_config_defaults(self):
        from repro.experiments import datasets

        cfg = experiment_config()
        assert cfg.onchip_entries == datasets.EXPERIMENT_ONCHIP_ENTRIES
        assert experiment_config(num_pus=2).num_pus == 2


class TestCells:
    def test_gramer_cell(self):
        cell = run_gramer_cell("3-CF", "citeseer", "tiny")
        assert cell.system == "GRAMER"
        assert cell.seconds > 0
        assert cell.energy_j > 0
        assert cell.detail["cycles"] > 0

    def test_fractal_cell(self):
        from repro.experiments.harness import SCALE_OVERHEADS

        cell = run_fractal_cell("3-CF", "citeseer", "tiny")
        assert cell.system == "Fractal"
        # Includes the scale-matched fixed task overhead.
        assert cell.seconds > SCALE_OVERHEADS["tiny"].fractal_task_s

    def test_rstream_cell(self):
        cell = run_rstream_cell("3-CF", "citeseer", "tiny")
        assert cell.system == "RStream"
        assert cell.seconds is not None

    def test_custom_config_routes_through_runtime(self):
        from repro.experiments.harness import experiment_config

        cell = run_gramer_cell(
            "3-CF", "citeseer", "tiny", config=experiment_config(num_pus=2)
        )
        assert cell.system == "GRAMER"
        assert cell.detail["cycles"] > 0

    def test_no_direct_model_construction_left(self):
        """The runtime refactor's contract: harness only builds JobSpecs."""
        import inspect

        from repro.experiments import harness

        source = inspect.getsource(harness)
        for forbidden in ("GramerSimulator(", "FractalModel(", "RStreamModel("):
            assert forbidden not in source

    def test_systems_agree_on_counts(self):
        cells = [
            run_gramer_cell("3-CF", "p2p", "tiny"),
            run_fractal_cell("3-CF", "p2p", "tiny"),
            run_rstream_cell("3-CF", "p2p", "tiny"),
        ]
        counts = {
            json.dumps(c.detail["embeddings"], sort_keys=True) for c in cells
        }
        assert len(counts) == 1


class TestPaperData:
    def test_table3_complete(self):
        for app in paper_data.TABLE3_APPS:
            assert set(paper_data.TABLE3_SECONDS[app]) == {
                "citeseer", "p2p", "astro", "mico", "patents", "yt", "lj",
            }

    def test_headline_speedup_range_consistent(self):
        """The 1.11x-129.95x headline is attained by actual cells."""
        best = 0.0
        worst = float("inf")
        for app, rows in paper_data.TABLE3_SECONDS.items():
            for graph in rows:
                for ratio in paper_data.paper_speedup(app, graph):
                    if ratio is not None:
                        best = max(best, ratio)
                        worst = min(worst, ratio)
        low, high = paper_data.HEADLINE_SPEEDUP_RANGE
        assert worst == pytest.approx(low, rel=0.02)
        assert best == pytest.approx(high, rel=0.02)

    def test_paper_speedup_na_cells(self):
        vs_f, vs_r = paper_data.paper_speedup("4-MC", "yt")
        assert vs_f is None and vs_r is None
