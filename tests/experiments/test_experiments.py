"""Shape checks for every experiment module at tiny scale."""

import pytest

from repro.experiments import (
    fig03_stalls,
    fig05_locality,
    fig08_heuristic,
    fig11_energy,
    fig12_lamh,
    fig13_pipeline,
    fig14_sensitivity,
    table2_resources,
    table3_runtime,
    table4_clock,
)


class TestFig03:
    def test_breakdown_rows_and_trend(self):
        rows = fig03_stalls.run("tiny")
        by_graph = {}
        for r in rows:
            assert 0.99 <= r["vertex_stall"] + r["edge_stall"] + r["others"] <= 1.01
            by_graph.setdefault(r["graph"], []).append(
                r["vertex_stall"] + r["edge_stall"]
            )
        # Fig. 3's claim: large graphs stall more than cache-resident ones.
        assert max(by_graph["patents"]) > max(by_graph["citeseer"])

    def test_main_renders(self):
        assert "Fig. 3" in fig03_stalls.main("tiny")


class TestFig05:
    def test_edge_share_starts_at_five_percent(self):
        rows = fig05_locality.run("tiny", max_size=3)
        for r in rows:
            assert r["edge_share"][1] == pytest.approx(0.05, abs=0.012)

    def test_share_grows_on_skewed_graphs(self):
        rows = fig05_locality.run("tiny", max_size=3)
        for r in rows:
            if r["graph"] == "citeseer":
                continue
            assert r["vertex_share"][2] > r["vertex_share"][1]


class TestFig08:
    def test_overheads_grow_with_hops(self):
        data = fig08_heuristic.run(scale="tiny", max_size=3, hops=(0, 1, 2, 3))
        o = data["overheads"]
        assert o[3] > o[2] > o[1]

    def test_accuracy_in_bounds(self):
        data = fig08_heuristic.run(scale="tiny", max_size=3, hops=(1,))
        for value in data["accuracy"][1].values():
            assert 0.0 <= value <= 1.0


class TestTable2:
    def test_matches_paper(self):
        for row in table2_resources.run():
            assert row["lut"] == pytest.approx(row["paper_lut"], rel=0.02)
            assert row["bram"] == pytest.approx(row["paper_bram"], rel=0.02)
            assert row["clock_mhz"] == pytest.approx(
                row["paper_clock_mhz"], rel=0.05
            )


class TestTable3:
    def test_single_cell_gramer_wins(self):
        cells = table3_runtime.run("tiny", apps=["4-CF"], graphs=["mico"])
        rows = table3_runtime.speedup_rows(cells)
        assert rows[0]["speedup_vs_fractal"] > 1.0
        assert rows[0]["speedup_vs_rstream"] > 1.0

    def test_speedup_rows_carry_paper_reference(self):
        cells = table3_runtime.run("tiny", apps=["3-CF"], graphs=["p2p"])
        row = table3_runtime.speedup_rows(cells)[0]
        assert row["paper_speedup_vs_fractal"] == pytest.approx(19.0, rel=0.1)


class TestFig11:
    def test_energy_savings_positive(self):
        cells = table3_runtime.run("tiny", apps=["3-CF"], graphs=["mico", "lj"])
        rows = fig11_energy.run_energy("tiny", cells=cells)
        for row in rows:
            assert row["fractal_min"] > 1.0

    def test_preprocessing_fraction_shrinks_with_workload(self):
        rows = fig11_energy.run_total_time("tiny", app="4-MC")
        fractions = {r["graph"]: r["preproc_fraction"] for r in rows}
        assert all(0.0 <= f < 1.0 for f in fractions.values())
        # §VI-B: preprocessing dominates tiny runs (up to 55% on Citeseer)
        # but becomes negligible as the mining work grows (< 3% on Mico).
        assert fractions["mico"] < fractions["citeseer"]


class TestFig12:
    def test_lamh_effects(self):
        rows = fig12_lamh.run("tiny", apps=["4-CF", "4-MC"])
        grouped = {}
        for r in rows:
            grouped.setdefault(r["app"], {})[r["variant"]] = r
        # The deep workload shows the paper's vertex-side effect: priority
        # pinning beats the uniform cache (shallow CF workloads are within
        # noise at proxy scale — see EXPERIMENTS.md).
        deep = grouped["4-MC"]
        assert deep["LAMH"]["vertex_hit"] > deep["Uniform LRU"]["vertex_hit"]
        assert deep["Static + LRU"]["vertex_hit"] > (
            deep["Uniform LRU"]["vertex_hit"]
        )
        for app, variants in grouped.items():
            # The Eq. 2 policy refinement never regresses materially, and
            # LAMH's overall performance at least matches Uniform's.
            assert variants["LAMH"]["vertex_hit"] >= (
                variants["Static + LRU"]["vertex_hit"] - 0.05
            )
            assert variants["LAMH"]["normalized_performance"] >= (
                variants["Uniform LRU"]["normalized_performance"] - 0.02
            )


class TestTable4:
    def test_ordering_and_paper_match(self):
        rows = table4_clock.run()
        grid = {r["design"]: r for r in rows}
        for app in ("CF", "FSM", "MC"):
            assert (
                grid["w/o AB"]["model"][app]
                < grid["w/ AB"]["model"][app]
                < grid["w/ AB + Compaction"]["model"][app]
            )
            assert grid["w/ AB"]["model"][app] == pytest.approx(
                grid["w/ AB"]["paper"][app], rel=0.05
            )


class TestFig13:
    def test_slot_scaling(self):
        rows = fig13_pipeline.run_slot_sweep("tiny", graphs=["mico", "lj"])
        for r in rows:
            assert r["speedup"][16] > r["speedup"][2] > 1.0

    def test_stealing_helps_most_skewed(self):
        rows = fig13_pipeline.run_work_stealing("tiny")
        speedups = {r["graph"]: r["speedup"] for r in rows}
        assert all(s >= 1.0 for s in speedups.values())
        # Mico is the most skewed and benefits most (§VI-C).
        assert speedups["mico"] == max(speedups.values())


class TestFig14:
    def test_tau_monotone_toward_ideal(self):
        rows = fig14_sensitivity.run_tau_sweep("tiny", graphs=["p2p", "mico"])
        for r in rows:
            n = r["normalized"]
            assert n[0.50] == 1.0
            assert n[0.01] <= n[0.10] <= n[0.50] * 1.05

    def test_lambda_flat(self):
        rows = fig14_sensitivity.run_lambda_sweep("tiny", graphs=["p2p"])
        for r in rows:
            assert all(0.75 < v < 1.3 for v in r["normalized"].values())
