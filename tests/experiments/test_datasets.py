"""Dataset registry: proxies, regimes, and scaled thresholds."""

import numpy as np
import pytest

from repro.experiments import datasets
from repro.graph.stats import degree_stats
from repro.memory.hierarchy import default_tau


class TestRegistry:
    def test_all_seven_present(self):
        assert set(datasets.DATASET_ORDER) == set(datasets.DATASETS)
        assert len(datasets.DATASET_ORDER) == 7

    def test_categories_partition(self):
        assert (
            set(datasets.SMALL_GRAPHS)
            | set(datasets.MEDIUM_GRAPHS)
            | set(datasets.LARGE_GRAPHS)
        ) == set(datasets.DATASET_ORDER)

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError, match="scale"):
            datasets.DATASETS["mico"].build("huge")

    def test_load_memoises(self):
        a = datasets.load("citeseer", "tiny")
        b = datasets.load("citeseer", "tiny")
        assert a is b

    def test_load_is_mmap_backed(self):
        """Proxies come back as read-only views over the store artifact."""
        g = datasets.load("citeseer", "tiny")
        assert isinstance(g.offsets.base, np.memmap)
        assert isinstance(g.neighbors.base, np.memmap)
        assert not g.offsets.flags.writeable
        assert not g.neighbors.flags.writeable

    def test_labeled_variant(self):
        labeled = datasets.load_labeled("mico", "tiny")
        plain = datasets.load("mico", "tiny")
        assert sorted(labeled.edges()) == sorted(plain.edges())
        assert set(int(lab) for lab in labeled.labels) <= set(
            range(datasets.FSM_NUM_LABELS)
        )


class TestProxyShapes:
    @pytest.mark.parametrize("name", datasets.DATASET_ORDER)
    def test_tiny_proxies_are_skewed_or_citeseer(self, name):
        stats = degree_stats(datasets.load(name, "tiny"))
        if name == "citeseer":
            assert stats.top5_degree_share < 0.15  # near-uniform
        else:
            assert stats.top5_degree_share > 0.12  # heavy tail

    def test_tau_regimes_small_scale(self):
        """Small graphs reach the paper's tau=50% regime; large ones don't."""
        budget = datasets.EXPERIMENT_ONCHIP_ENTRIES
        for name in datasets.SMALL_GRAPHS:
            tau = default_tau(datasets.load(name, "small"), budget)
            assert tau == pytest.approx(0.5, abs=0.12)
        for name in datasets.LARGE_GRAPHS:
            tau = default_tau(datasets.load(name, "small"), budget)
            assert tau < 0.25

    def test_sizes_ordered_small_scale(self):
        """Footprints grow along the dataset order (drives Fig. 3)."""
        footprints = [
            datasets.load(name, "small").num_vertices
            + len(datasets.load(name, "small").neighbors)
            for name in datasets.DATASET_ORDER
        ]
        assert footprints == sorted(footprints)


class TestThresholdsAndCPU:
    def test_fsm_threshold_scales_with_edges(self):
        tiny = datasets.fsm_threshold("mico", "tiny")
        small = datasets.fsm_threshold("mico", "small")
        assert 2 <= tiny <= small

    def test_scaled_cpu_config_presets(self):
        small = datasets.scaled_cpu_config("small")
        full = datasets.scaled_cpu_config("full")
        assert small.l3_bytes < full.l3_bytes
        with pytest.raises(ValueError):
            datasets.scaled_cpu_config("huge")

    def test_cpu_regimes_small_scale(self):
        """Citeseer fits private caches; large graphs exceed the LLC."""
        cfg = datasets.scaled_cpu_config("small")
        citeseer = datasets.load("citeseer", "small")
        assert (
            (citeseer.num_vertices + len(citeseer.neighbors))
            * cfg.entry_bytes
            <= cfg.l2_bytes
        )
        for name in datasets.LARGE_GRAPHS:
            g = datasets.load(name, "small")
            assert (
                (g.num_vertices + len(g.neighbors)) * cfg.entry_bytes
                > cfg.l3_bytes
            )
