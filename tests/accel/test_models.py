"""Energy, clock-rate, and resource models."""

import pytest

from repro.accel.clockmodel import (
    ClockModelParams,
    clock_rate_mhz,
    table4_design_points,
)
from repro.accel.config import GramerConfig
from repro.accel.energy import (
    EnergyParams,
    cpu_energy,
    gramer_energy,
)
from repro.accel.resources import (
    PAPER_ONCHIP_ENTRIES,
    estimate_resources,
)
from repro.accel.stats import SimStats
from repro.experiments.paper_data import TABLE2_UTILIZATION, TABLE4_CLOCK_MHZ


class TestEnergy:
    def _stats(self, **overrides):
        stats = SimStats(
            cycles=1_000_000,
            vertex_high_hits=1000,
            vertex_low_hits=500,
            vertex_misses=100,
            edge_high_hits=2000,
            edge_low_hits=800,
            edge_misses=200,
            compute_cycles=5000,
        )
        for key, value in overrides.items():
            setattr(stats, key, value)
        return stats

    def test_breakdown_sums(self):
        e = gramer_energy(self._stats(), GramerConfig())
        assert e.total_j == pytest.approx(e.memory_j + e.compute_j + e.static_j)
        assert e.total_j > 0

    def test_more_misses_more_energy(self):
        base = gramer_energy(self._stats(), GramerConfig())
        worse = gramer_energy(
            self._stats(edge_misses=10_000), GramerConfig()
        )
        assert worse.memory_j > base.memory_j

    def test_static_scales_with_cycles(self):
        cfg = GramerConfig()
        short = gramer_energy(self._stats(cycles=100), cfg)
        long = gramer_energy(self._stats(cycles=10_000_000), cfg)
        assert long.static_j > short.static_j

    def test_cpu_energy_tdp(self):
        assert cpu_energy(2.0) == pytest.approx(240.0)  # 120 W TDP
        assert cpu_energy(1.0, tdp_w=65) == 65.0

    def test_cpu_energy_negative_rejected(self):
        with pytest.raises(ValueError):
            cpu_energy(-1.0)

    def test_custom_params(self):
        params = EnergyParams(static_w=0.0, op_nj=0.0)
        e = gramer_energy(self._stats(), GramerConfig(), params)
        assert e.static_j == 0.0
        assert e.compute_j == 0.0


class TestClockModel:
    def test_matches_table4_within_tolerance(self):
        grid = table4_design_points()
        for design, row in TABLE4_CLOCK_MHZ.items():
            for app, paper_mhz in row.items():
                model_mhz = grid[design][app]
                assert model_mhz == pytest.approx(paper_mhz, rel=0.05), (
                    design, app,
                )

    def test_design_point_ordering(self):
        cfg = GramerConfig()
        for app in ("CF", "FSM", "MC"):
            none = clock_rate_mhz(cfg, app, False, False)
            ab = clock_rate_mhz(cfg, app, True, False)
            full = clock_rate_mhz(cfg, app, True, True)
            assert none < ab < full

    def test_cf_fastest(self):
        cfg = GramerConfig()
        assert clock_rate_mhz(cfg, "CF") > clock_rate_mhz(cfg, "FSM")

    def test_compaction_requires_buffers(self):
        with pytest.raises(ValueError):
            clock_rate_mhz(GramerConfig(), "CF", ancestor_buffers=False,
                           compaction=True)

    def test_deeper_buffers_slow_uncompacted_design(self):
        shallow = clock_rate_mhz(
            GramerConfig(ancestor_depth=8), "CF", True, False
        )
        deep = clock_rate_mhz(
            GramerConfig(ancestor_depth=16), "CF", True, False
        )
        assert shallow > deep

    def test_custom_params_extra_bits(self):
        params = ClockModelParams(app_extra_state_bits={"CF": 512})
        cfg = GramerConfig()
        assert clock_rate_mhz(cfg, "CF", params=params) < clock_rate_mhz(cfg, "CF")


class TestResources:
    def test_matches_table2_ballpark(self):
        # Table II: ~25% LUT, ~13% register, ~66% BRAM at the paper config.
        cfg = GramerConfig(onchip_entries=PAPER_ONCHIP_ENTRIES)
        for app, paper in TABLE2_UTILIZATION.items():
            report = estimate_resources(cfg, app)
            assert report.lut_utilization == pytest.approx(
                paper["LUT"], rel=0.02
            )
            assert report.register_utilization == pytest.approx(
                paper["Register"], rel=0.02
            )
            assert report.bram_utilization == pytest.approx(
                paper["BRAM"], rel=0.02
            )

    def test_fsm_uses_more_logic_than_cf(self):
        cfg = GramerConfig()
        cf = estimate_resources(cfg, "CF")
        fsm = estimate_resources(cfg, "FSM")
        assert fsm.luts_used > cf.luts_used
        assert fsm.registers_used > cf.registers_used

    def test_bram_scales_with_memory(self):
        small = estimate_resources(GramerConfig(onchip_entries=1024))
        large = estimate_resources(GramerConfig(onchip_entries=1 << 20))
        assert large.bram_utilization > small.bram_utilization

    def test_as_row_formatting(self):
        row = estimate_resources(GramerConfig(), "CF").as_row()
        assert set(row) == {"LUT", "Register", "BRAM", "Clock Rate"}
        assert row["Clock Rate"].endswith("MHz")
