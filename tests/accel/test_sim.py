"""The GRAMER cycle simulator: functional equivalence plus timing behaviour."""

import pytest

from repro.accel.config import GramerConfig
from repro.accel.sim import AncestorBufferOverflowError, GramerSimulator
from repro.graph.generators import clique, powerlaw_cluster, random_labels
from repro.mining.apps import CliqueFinding, FrequentSubgraphMining, MotifCounting
from repro.mining.engine import run_dfs


def small_config(**overrides):
    base = dict(onchip_entries=512)
    base.update(overrides)
    return GramerConfig(**base)


@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster(300, 3, 0.4, seed=21)


class TestFunctionalEquivalence:
    """The load-bearing invariant: sim results == software results."""

    def test_clique_counts(self, graph):
        ref = run_dfs(graph, CliqueFinding(4)).result()
        sim = GramerSimulator(graph, small_config()).run(CliqueFinding(4))
        assert sim.mining.embeddings_by_size == ref.embeddings_by_size
        assert sim.mining.patterns_by_size == ref.patterns_by_size

    def test_motif_counts(self, graph):
        ref = run_dfs(graph, MotifCounting(3)).result()
        sim = GramerSimulator(graph, small_config()).run(MotifCounting(3))
        assert sim.mining.patterns_by_size == ref.patterns_by_size

    def test_fsm_counts(self, graph):
        labeled = random_labels(graph, 3, seed=2)
        ref = run_dfs(labeled, FrequentSubgraphMining(5)).frequent_patterns()
        app = FrequentSubgraphMining(5)
        GramerSimulator(labeled, small_config()).run(app)
        assert app.frequent_patterns() == ref

    def test_work_stealing_does_not_change_results(self, graph):
        ref = run_dfs(graph, CliqueFinding(4)).num_cliques
        for stealing in (True, False):
            app = CliqueFinding(4)
            GramerSimulator(
                graph, small_config(work_stealing=stealing)
            ).run(app)
            assert app.num_cliques == ref

    def test_random_victim_select_matches(self, graph):
        ref = run_dfs(graph, CliqueFinding(4)).num_cliques
        app = CliqueFinding(4)
        GramerSimulator(
            graph, small_config(steal_victim_select="random")
        ).run(app)
        assert app.num_cliques == ref

    def test_policy_variants_match(self, graph):
        ref = run_dfs(graph, MotifCounting(3)).result()
        for policy in ("locality", "lru", "uniform"):
            sim = GramerSimulator(
                graph, small_config(low_policy=policy)
            ).run(MotifCounting(3))
            assert sim.mining.patterns_by_size == ref.patterns_by_size


class TestDeterminism:
    def test_same_seed_same_cycles(self, graph):
        a = GramerSimulator(graph, small_config()).run(CliqueFinding(3))
        b = GramerSimulator(graph, small_config()).run(CliqueFinding(3))
        assert a.cycles == b.cycles
        assert a.stats.steals == b.stats.steals


class TestTimingBehaviour:
    def test_cycles_positive_and_seconds_consistent(self, graph):
        res = GramerSimulator(graph, small_config()).run(CliqueFinding(3))
        assert res.cycles > 0
        assert res.seconds == pytest.approx(
            res.cycles / (res.config.clock_mhz * 1e6)
        )

    def test_more_slots_is_faster(self, graph):
        cycles = {}
        for slots in (1, 4, 16):
            res = GramerSimulator(
                graph, small_config(slots_per_pu=slots)
            ).run(CliqueFinding(4))
            cycles[slots] = res.cycles
        assert cycles[1] > cycles[4] > cycles[16]

    def test_more_pus_is_faster(self, graph):
        one = GramerSimulator(graph, small_config(num_pus=1)).run(
            CliqueFinding(4)
        )
        eight = GramerSimulator(graph, small_config(num_pus=8)).run(
            CliqueFinding(4)
        )
        assert one.cycles > eight.cycles

    def test_work_stealing_helps_on_skew(self, graph):
        on = GramerSimulator(
            graph, small_config(work_stealing=True)
        ).run(CliqueFinding(4))
        off = GramerSimulator(
            graph, small_config(work_stealing=False)
        ).run(CliqueFinding(4))
        assert off.cycles > on.cycles
        assert on.stats.steals > 0
        assert off.stats.steals == 0

    def test_larger_memory_not_slower(self, graph):
        small = GramerSimulator(graph, small_config(onchip_entries=64)).run(
            CliqueFinding(4)
        )
        large = GramerSimulator(
            graph, small_config(onchip_entries=4096)
        ).run(CliqueFinding(4))
        assert large.cycles <= small.cycles
        assert large.stats.vertex_hit_ratio >= small.stats.vertex_hit_ratio

    def test_slower_dram_slower_run(self, graph):
        fast = GramerSimulator(graph, small_config(dram_latency=20)).run(
            CliqueFinding(4)
        )
        slow = GramerSimulator(graph, small_config(dram_latency=400)).run(
            CliqueFinding(4)
        )
        assert slow.cycles > fast.cycles


class TestStats:
    def test_access_accounting(self, graph):
        res = GramerSimulator(graph, small_config()).run(MotifCounting(3))
        s = res.stats
        assert s.vertex_accesses > 0 and s.edge_accesses > 0
        assert 0.0 <= s.vertex_hit_ratio <= 1.0
        assert 0.0 <= s.edge_hit_ratio <= 1.0
        assert s.dram_accesses == s.vertex_misses + s.edge_misses
        assert s.candidates_checked > 0
        assert s.embeddings_accepted > 0
        assert s.roots_dispatched == graph.num_vertices

    def test_pu_lists_sized(self, graph):
        cfg = small_config(num_pus=4)
        res = GramerSimulator(graph, cfg).run(CliqueFinding(3))
        assert len(res.stats.pu_finish_cycles) == 4
        assert len(res.stats.pu_busy_cycles) == 4
        assert max(res.stats.pu_finish_cycles) == res.cycles

    def test_load_imbalance_at_least_one(self, graph):
        res = GramerSimulator(graph, small_config()).run(CliqueFinding(3))
        assert res.stats.load_imbalance >= 1.0


class TestValidation:
    def test_ancestor_overflow(self):
        g = clique(12)
        cfg = small_config(ancestor_depth=3)
        with pytest.raises(AncestorBufferOverflowError):
            GramerSimulator(g, cfg).run(CliqueFinding(8))

    def test_bad_rank_length(self, graph):
        import numpy as np

        with pytest.raises(ValueError):
            GramerSimulator(graph, small_config(), vertex_rank=np.arange(3))

    def test_rank_oblivious_mode(self, graph):
        sim = GramerSimulator(graph, small_config(), use_on1_ranks=False)
        assert list(sim.vertex_rank) == list(range(graph.num_vertices))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GramerConfig(num_pus=0)
        with pytest.raises(ValueError):
            GramerConfig(ancestor_depth=1)
        with pytest.raises(ValueError):
            GramerConfig(steal_victim_select="magic")
        with pytest.raises(ValueError):
            GramerConfig(low_policy="plru")
        with pytest.raises(ValueError):
            GramerConfig(clock_mhz=0)

    def test_with_overrides(self):
        cfg = GramerConfig().with_overrides(slots_per_pu=4)
        assert cfg.slots_per_pu == 4
        assert cfg.num_pus == GramerConfig().num_pus

    def test_max_inflight(self):
        assert GramerConfig().max_inflight_embeddings == 128
