"""Arbitrator / prefetcher root dispatch."""

from repro.accel.frontend import dispatch_roots


class TestDispatch:
    def test_round_robin(self):
        d = dispatch_roots(range(10), num_pus=3, prefetch_interval=1)
        assert [root for root, _ in d.queues[0]] == [0, 3, 6, 9]
        assert [root for root, _ in d.queues[1]] == [1, 4, 7]
        assert d.total == 10

    def test_arrival_pacing(self):
        d = dispatch_roots(range(6), num_pus=2, prefetch_interval=4)
        arrivals = [t for _, t in d.queues[0]]
        assert arrivals == [0, 8, 16]  # global stream positions 0, 2, 4

    def test_pop_and_pending(self):
        d = dispatch_roots(range(4), num_pus=2, prefetch_interval=1)
        assert d.pending(0) == 2
        assert d.pop(0) == (0, 0)
        assert d.pending(0) == 1
        d.pop(0)
        assert d.pop(0) is None

    def test_empty_stream(self):
        d = dispatch_roots([], num_pus=2, prefetch_interval=1)
        assert d.total == 0
        assert d.pop(0) is None


class TestDegreeBalanced:
    def test_balances_accumulated_degree(self):
        degrees = [100, 1, 1, 1, 1]
        d = dispatch_roots(
            range(5), num_pus=2, prefetch_interval=1,
            policy="degree_balanced", degrees=degrees,
        )
        # Root 0 (degree 100) lands alone on PU 0; the rest pile on PU 1.
        assert [root for root, _ in d.queues[0]] == [0]
        assert [root for root, _ in d.queues[1]] == [1, 2, 3, 4]

    def test_requires_degrees(self):
        import pytest

        with pytest.raises(ValueError, match="degrees"):
            dispatch_roots(range(3), 2, 1, policy="degree_balanced")

    def test_unknown_policy(self):
        import pytest

        with pytest.raises(ValueError, match="policy"):
            dispatch_roots(range(3), 2, 1, policy="magic")

    def test_sim_results_unchanged(self):
        from repro.accel.config import GramerConfig
        from repro.accel.sim import GramerSimulator
        from repro.graph.generators import powerlaw_cluster
        from repro.mining.apps import CliqueFinding
        from repro.mining.engine import run_dfs

        g = powerlaw_cluster(150, 3, 0.3, seed=44)
        ref = run_dfs(g, CliqueFinding(3)).num_cliques
        app = CliqueFinding(3)
        GramerSimulator(
            g,
            GramerConfig(onchip_entries=256, arbitrator="degree_balanced"),
        ).run(app)
        assert app.num_cliques == ref
