"""Slot scheduling structures: stealing buffer and frame splitting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import clique, star
from repro.mining.engine import Frame, NullMemory, advance_frame, check_candidate
from repro.accel.scheduler import (
    SlotContext,
    StealingBuffer,
    split_frame,
    steal_from_stack,
)

from ..conftest import small_graphs


class TestStealingBuffer:
    def test_fifo_order(self):
        buf = StealingBuffer(4)
        for i in (3, 1, 2):
            buf.push(i)
        assert buf.pop() == 3
        assert buf.pop() == 1

    def test_capacity_drops_oldest(self):
        buf = StealingBuffer(2)
        buf.push(0)
        buf.push(1)
        buf.push(2)
        assert len(buf) == 2
        assert buf.pop() == 1

    def test_empty_pop(self):
        assert StealingBuffer(1).pop() is None

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            StealingBuffer(0)


class TestSlotContext:
    def test_idle_tracking(self):
        slot = SlotContext(0)
        assert slot.idle
        slot.stack.append(Frame((0,), (0,)))
        assert not slot.idle
        assert slot.depth == 1


def drain(graph, frame, clique_only=False):
    """Fully explore a frame (and its descendants), returning found sets."""
    mem = NullMemory()
    found = []
    stack = [frame]
    while stack:
        top = stack[-1]
        candidate = advance_frame(graph, top, mem)
        if candidate is None:
            stack.pop()
            continue
        ok, column = check_candidate(
            graph, top.vertices, top.member_idx, candidate, clique_only, mem
        )
        if ok:
            vertices = top.vertices + (candidate,)
            found.append(vertices)
            if len(vertices) < 3:
                stack.append(Frame(vertices, top.columns + (column,)))
    return found


class TestSplitFrame:
    def test_cursor_split_partitions_work_exactly(self):
        g = star(6)
        mem = NullMemory()
        base = drain(g, Frame((0,), (0,)))

        victim = Frame((0,), (0,))
        first = advance_frame(g, victim, mem)  # consume one candidate
        ok, column = check_candidate(g, (0,), 0, first, False, mem)
        consumed = []
        if ok:
            consumed.append((0, first))
            consumed.extend(drain(g, Frame((0, first), (0, column))))
        thief = split_frame(victim)
        assert thief is not None  # five candidates remain: splittable
        combined = consumed + drain(g, victim) + drain(g, thief)
        assert sorted(combined) == sorted(base)

    def test_exhausted_frame_not_splittable(self):
        g = clique(3)
        frame = Frame((0,), (0,))
        mem = NullMemory()
        while advance_frame(g, frame, mem) is not None:
            pass
        assert split_frame(frame) is None

    def test_single_candidate_not_splittable(self):
        g = star(1)  # vertex 0 has exactly one neighbor
        frame = Frame((0,), (0,))
        advance_frame(g, frame, NullMemory())  # consumes the only candidate
        assert split_frame(frame) is None

    def test_member_split_prefers_members(self):
        frame = Frame((0, 1), (0, 0b1))
        thief = split_frame(frame)
        assert thief is not None
        assert frame.member_limit == 1
        assert thief.member_idx == 1
        assert thief.member_limit == 2

    @given(small_graphs(min_vertices=3, max_vertices=10), st.integers(0, 6))
    @settings(max_examples=40, deadline=None)
    def test_split_never_duplicates_or_drops(self, g, steps):
        """Property: victim + thief enumerate exactly the original work."""
        if g.num_vertices == 0 or g.degree(0) == 0:
            return
        reference = drain(g, Frame((0,), (0,)))
        victim = Frame((0,), (0,))
        mem = NullMemory()
        prefix = []
        # Advance a few steps first so the split happens mid-stream.
        for _ in range(min(steps, 1)):
            c = advance_frame(g, victim, mem)
            if c is None:
                return
            ok, column = check_candidate(
                g, victim.vertices, victim.member_idx, c, False, mem
            )
            if ok:
                prefix.append(victim.vertices + (c,))
                child = Frame(victim.vertices + (c,), victim.columns + (column,))
                prefix.extend(drain(g, child))
        thief = split_frame(victim)
        remainder = drain(g, victim)
        if thief is not None:
            remainder += drain(g, thief)
        assert sorted(prefix + remainder) == sorted(reference)


class TestStealFromStack:
    def test_steals_shallowest(self):
        g = clique(5)
        deep = Frame((0, 1, 2), (0, 0b1, 0b11))
        shallow = Frame((0,), (0,))
        advance_frame(g, shallow, NullMemory())  # make cursor split possible
        stack = [shallow, deep]
        thief = steal_from_stack(stack)
        assert thief is not None
        assert thief.vertices == (0,)  # stolen from the shallow frame

    def test_empty_stack(self):
        assert steal_from_stack([]) is None
