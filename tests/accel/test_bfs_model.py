"""BFS-execution-mode projection (§V-A)."""

import pytest

from repro.accel.bfs_model import estimate_bfs_mode
from repro.accel.config import GramerConfig
from repro.accel.sim import GramerSimulator
from repro.graph.generators import powerlaw_cluster
from repro.mining.apps import CliqueFinding, MotifCounting


@pytest.fixture(scope="module")
def result():
    graph = powerlaw_cluster(300, 4, 0.5, seed=41)
    return GramerSimulator(graph, GramerConfig(onchip_entries=512)).run(
        MotifCounting(4)
    )


class TestEstimate:
    def test_bfs_never_faster(self, result):
        estimate = estimate_bfs_mode(result)
        assert estimate.bfs_cycles >= estimate.dfs_cycles
        assert estimate.slowdown >= 1.0

    def test_intermediates_counted(self, result):
        estimate = estimate_bfs_mode(result)
        by_size = result.mining.embeddings_by_size
        expected = sum(
            2 * count * size * 8
            for size, count in by_size.items()
            if size < result.mining.max_vertices
        )
        assert estimate.intermediate_bytes == expected
        assert estimate.peak_level_bytes > 0

    def test_final_level_not_materialised(self, result):
        estimate = estimate_bfs_mode(result)
        final = result.mining.embeddings_by_size.get(4, 0) * 4 * 8
        assert estimate.peak_level_bytes != final or final == 0

    def test_capacity_check(self, result):
        generous = estimate_bfs_mode(result)
        assert generous.fits_offchip
        tight = estimate_bfs_mode(result, offchip_capacity_bytes=16)
        assert not tight.fits_offchip

    def test_more_intermediates_more_slowdown(self):
        graph = powerlaw_cluster(300, 4, 0.5, seed=41)
        sim = GramerSimulator(graph, GramerConfig(onchip_entries=512))
        shallow = estimate_bfs_mode(sim.run(CliqueFinding(3)))
        deep = estimate_bfs_mode(sim.run(MotifCounting(4)))
        assert deep.intermediate_bytes > shallow.intermediate_bytes


class TestExperiment:
    def test_experiment_rows(self):
        from repro.experiments import dfs_vs_bfs

        rows = dfs_vs_bfs.run("tiny", graphs=["p2p", "mico"])
        assert len(rows) == 2
        for row in rows:
            assert row["slowdown"] >= 1.0
