"""SimStats aggregation helpers: as_dict, merge, registry publication."""

import pytest

from repro.accel.stats import SimStats
from repro.obs.metrics import MetricsRegistry


def _sample(scale=1):
    return SimStats(
        cycles=100 * scale,
        roots_dispatched=4 * scale,
        steals=2 * scale,
        steal_attempts=5 * scale,
        vertex_high_hits=10 * scale,
        vertex_low_hits=5 * scale,
        vertex_misses=1 * scale,
        edge_high_hits=20 * scale,
        edge_low_hits=8 * scale,
        edge_misses=2 * scale,
        compute_cycles=60 * scale,
        vertex_wait_cycles=15 * scale,
        edge_wait_cycles=25 * scale,
        pu_finish_cycles=[90 * scale, 100 * scale],
        pu_busy_cycles=[50 * scale, 70 * scale],
    )


class TestAsDict:
    def test_covers_every_field(self):
        stats = _sample()
        dump = stats.as_dict()
        assert dump["cycles"] == 100
        assert dump["pu_busy_cycles"] == [50, 70]
        assert set(dump) == {
            f for f in stats.__dataclass_fields__
        }

    def test_lists_are_copies(self):
        stats = _sample()
        dump = stats.as_dict()
        dump["pu_busy_cycles"].append(999)
        assert stats.pu_busy_cycles == [50, 70]


class TestMerge:
    def test_empty_merge_is_zero_stats(self):
        merged = SimStats.merge([])
        assert merged == SimStats()

    def test_single_run_merge_is_identity(self):
        stats = _sample()
        merged = SimStats.merge([stats])
        assert merged == stats
        assert merged is not stats

    def test_multi_run_scalars_sum_and_lists_add_elementwise(self):
        merged = SimStats.merge([_sample(), _sample(2)])
        assert merged.cycles == 300
        assert merged.steals == 6
        assert merged.edge_high_hits == 60
        assert merged.pu_busy_cycles == [150, 210]

    def test_mismatched_pu_counts_pad_with_zeros(self):
        narrow = SimStats(pu_busy_cycles=[10])
        wide = SimStats(pu_busy_cycles=[1, 2, 3])
        merged = SimStats.merge([narrow, wide])
        assert merged.pu_busy_cycles == [11, 2, 3]

    def test_merge_does_not_mutate_inputs(self):
        a, b = _sample(), _sample()
        SimStats.merge([a, b])
        assert a == _sample() and b == _sample()

    def test_derived_ratios_recompute_on_merge(self):
        merged = SimStats.merge([_sample(), _sample()])
        assert merged.vertex_hit_ratio == pytest.approx(15 / 16)
        assert merged.dram_accesses == 6


class TestPublish:
    def test_published_counters_match_stats(self):
        registry = MetricsRegistry()
        stats = _sample()
        stats.publish(registry)
        accesses = registry.get("sim_accesses_total")
        assert accesses.value(side="vertex", level="high") == 10
        assert accesses.total() == stats.vertex_accesses + stats.edge_accesses
        steals = registry.get("sim_steal_events_total")
        assert steals.value(outcome="hit") == 2
        assert steals.value(outcome="miss") == 3
        assert registry.get("sim_hit_ratio").value(side="edge") == (
            pytest.approx(stats.edge_hit_ratio)
        )
        assert registry.get("sim_load_imbalance").value() == (
            pytest.approx(stats.load_imbalance)
        )
