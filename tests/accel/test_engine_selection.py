"""Engine selection and validation across the factory and the backend.

The turbo engine tier added a third name to ``ENGINES``; these tests pin
the selection contract: unknown names are rejected up front with a
message listing the valid engines, observability hooks force the
reference engine regardless of the requested name, and the turbo engine
never silently degrades to the reference (its results are
tolerance-banded, not byte-comparable).
"""

import pytest

from repro.accel.config import GramerConfig
from repro.accel.fastsim import FastGramerSimulator
from repro.accel.sim import (
    BIT_IDENTICAL_ENGINES,
    ENGINES,
    GramerSimulator,
    make_simulator,
)
from repro.accel.turbosim import TurboGramerSimulator
from repro.graph import erdos_renyi
from repro.obs import AccessTrace, SimInstrument
from repro.runtime.backends import GramerBackend
from repro.runtime.spec import make_jobspec


@pytest.fixture()
def graph():
    return erdos_renyi(12, 24, seed=5)


def test_engines_registry_shape():
    assert ENGINES == ("fast", "reference", "turbo")
    # Consumers that require byte-equality iterate this subset, not
    # ENGINES: turbo is close-but-not-equal by design.
    assert BIT_IDENTICAL_ENGINES == ("fast", "reference")
    assert set(BIT_IDENTICAL_ENGINES) < set(ENGINES)


@pytest.mark.parametrize(
    ("engine", "expected_type"),
    [
        ("fast", FastGramerSimulator),
        ("reference", GramerSimulator),
        ("turbo", TurboGramerSimulator),
    ],
)
def test_factory_routes_each_engine(graph, engine, expected_type):
    sim = make_simulator(graph, GramerConfig(), engine=engine)
    assert type(sim) is expected_type


def test_factory_rejects_unknown_engine_listing_valid_ones(graph):
    with pytest.raises(ValueError) as excinfo:
        make_simulator(graph, GramerConfig(), engine="warp")
    message = str(excinfo.value)
    assert "'warp'" in message
    for name in ENGINES:
        assert name in message


@pytest.mark.parametrize("engine", ["turbo", "fast"])
def test_instrument_forces_reference_engine(graph, engine):
    sim = make_simulator(
        graph, GramerConfig(), engine=engine, instrument=SimInstrument()
    )
    assert type(sim) is GramerSimulator


@pytest.mark.parametrize("engine", ["turbo", "fast"])
def test_access_trace_forces_reference_engine(graph, engine):
    sim = make_simulator(
        graph, GramerConfig(), engine=engine, access_trace=AccessTrace()
    )
    assert type(sim) is GramerSimulator


def test_turbo_constructor_rejects_instrument(graph):
    with pytest.raises(ValueError, match="instrument"):
        TurboGramerSimulator(graph, GramerConfig(), instrument=SimInstrument())


def test_backend_rejects_unknown_engine_before_running():
    spec = make_jobspec(
        "gramer",
        "3-CF",
        dataset="citeseer",
        scale="tiny",
        params={"engine": "warp"},
    )
    with pytest.raises(ValueError) as excinfo:
        GramerBackend().run(spec)
    message = str(excinfo.value)
    assert "'warp'" in message
    for name in ENGINES:
        assert name in message


def test_backend_turbo_run_matches_fast_mining_counts():
    results = {}
    for engine in ("fast", "turbo"):
        spec = make_jobspec(
            "gramer",
            "3-CF",
            dataset="citeseer",
            scale="tiny",
            params={"engine": engine},
        )
        results[engine] = GramerBackend().run(spec)
    fast, turbo = results["fast"], results["turbo"]
    assert turbo.ok and fast.ok
    assert turbo.detail["embeddings"] == fast.detail["embeddings"]
    assert turbo.detail["summary"] == fast.detail["summary"]


def test_backend_cache_keys_distinguish_engines():
    import json

    keys = set()
    for engine in ENGINES:
        spec = make_jobspec(
            "gramer",
            "3-CF",
            dataset="citeseer",
            scale="tiny",
            params={"engine": engine},
        )
        keys.add(json.dumps(spec.cache_key(), sort_keys=True))
    assert len(keys) == len(ENGINES)
