"""Slot-granular edge rank positions (the reordered-CSR prefix view)."""

import numpy as np
from hypothesis import given, settings

from repro.graph.generators import powerlaw_cluster, star
from repro.graph.reorder import rank_permutation
from repro.locality.occurrence import occurrence_numbers
from repro.memory.hierarchy import edge_rank_positions

from ..conftest import small_graphs


class TestEdgeRankPositions:
    def test_is_permutation_of_slots(self):
        g = powerlaw_cluster(100, 3, 0.3, seed=4)
        rank = rank_permutation(occurrence_numbers(g, 1))
        positions = edge_rank_positions(g, rank)
        assert sorted(positions.tolist()) == list(range(len(g.neighbors)))

    def test_top_ranked_vertex_owns_prefix(self):
        g = star(8)
        rank = np.zeros(9, dtype=np.int64)
        rank[0] = 0  # hub ranked first
        rank[1:] = np.arange(1, 9)
        positions = edge_rank_positions(g, rank)
        hub_slots = positions[g.offsets[0] : g.offsets[1]]
        assert set(hub_slots.tolist()) == set(range(8))

    def test_positions_ordered_by_source_rank(self):
        g = powerlaw_cluster(80, 2, 0.2, seed=5)
        rank = rank_permutation(occurrence_numbers(g, 1))
        positions = edge_rank_positions(g, rank)
        # For any two slots, lower source rank implies earlier position.
        src = np.repeat(np.arange(g.num_vertices), g.degrees())
        order = np.argsort(positions)
        ranks_along_positions = rank[src[order]]
        assert all(
            ranks_along_positions[i] <= ranks_along_positions[i + 1]
            for i in range(len(ranks_along_positions) - 1)
        )

    @given(small_graphs(min_vertices=2, max_vertices=12))
    @settings(max_examples=40, deadline=None)
    def test_identity_rank_gives_identity_positions(self, g):
        identity = np.arange(g.num_vertices, dtype=np.int64)
        positions = edge_rank_positions(g, identity)
        assert np.array_equal(
            positions, np.arange(len(g.neighbors), dtype=np.int64)
        )
