"""Model-based property tests: the cache vs reference implementations.

Two oracles:

* a per-set OrderedDict (most recently used last) — the textbook
  definition of a set-associative LRU cache, and
* an independent transcription of Equation 2 for the locality-preserved
  (LAMH) policy: ``victim = argmax Rank·scale + λ·(clock − last_access)``.

Every access sequence must produce the identical hit/miss sequence.
"""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.cache import SetAssociativeCache
from repro.memory.hierarchy import MemorySide
from repro.memory.policies import (
    LineState,
    LocalityPreservedPolicy,
    LRUPolicy,
)


class ReferenceLRUCache:
    """Oracle: per-set OrderedDict LRU."""

    def __init__(self, num_sets: int, ways: int, line_size: int) -> None:
        self.num_sets = num_sets
        self.ways = ways
        self.line_size = line_size
        self.sets = [OrderedDict() for _ in range(num_sets)]

    def access(self, address: int) -> bool:
        tag = address // self.line_size
        index = tag % self.num_sets
        resident = self.sets[index]
        if tag in resident:
            resident.move_to_end(tag)
            return True
        if len(resident) == self.ways:
            resident.popitem(last=False)
        resident[tag] = True
        return False


@given(
    st.integers(1, 4),  # num_sets
    st.integers(1, 4),  # ways
    st.integers(1, 4),  # line_size
    st.lists(st.integers(0, 120), min_size=1, max_size=400),
)
@settings(max_examples=120, deadline=None)
def test_lru_cache_matches_reference(num_sets, ways, line_size, addresses):
    cache = SetAssociativeCache(
        num_sets=num_sets, ways=ways, line_size=line_size, policy=LRUPolicy()
    )
    reference = ReferenceLRUCache(num_sets, ways, line_size)
    for address in addresses:
        assert cache.access(address) == reference.access(address), address


@given(st.lists(st.integers(0, 60), min_size=1, max_size=300))
@settings(max_examples=60, deadline=None)
def test_resident_set_matches_reference(addresses):
    cache = SetAssociativeCache(num_sets=2, ways=3, policy=LRUPolicy())
    reference = ReferenceLRUCache(2, 3, 1)
    for address in addresses:
        cache.access(address)
        reference.access(address)
    expected = {tag for s in reference.sets for tag in s}
    assert cache.resident_tags() == expected


# ---------------------------------------------------------------------------
# LAMH locality-preserved replacement (Equation 2)
# ---------------------------------------------------------------------------

_lam = st.floats(0.0, 16.0, allow_nan=False, allow_infinity=False)
_rank_scale = st.floats(0.0625, 8.0, allow_nan=False, allow_infinity=False)


def _eq2_scores(lines, clock, lam, rank_scale):
    # Operand order matters for float bit-identity with the policy.
    return [
        line.rank * rank_scale + lam * (clock - line.last_access)
        for line in lines
    ]


@st.composite
def _full_sets(draw):
    """A fully valid cache set plus a clock not older than any access."""
    ways = draw(st.integers(1, 8))
    lines = [
        LineState(
            valid=True,
            tag=way,
            rank=draw(st.integers(0, 500)),
            last_access=draw(st.integers(0, 100)),
        )
        for way in range(ways)
    ]
    clock = max(line.last_access for line in lines) + draw(st.integers(0, 50))
    return lines, clock


@given(_full_sets(), _lam, _rank_scale)
@settings(max_examples=200, deadline=None)
def test_locality_victim_is_first_argmax_of_equation2(set_and_clock, lam, scale):
    """Victim maximality: the chosen way maximises Rank·scale + λ·Rec,
    and ties resolve to the lowest way index (max() keeps the first)."""
    lines, clock = set_and_clock
    policy = LocalityPreservedPolicy(lam=lam, rank_scale=scale)
    victim = policy.victim(lines, clock)
    scores = _eq2_scores(lines, clock, lam, scale)
    assert scores[victim] == max(scores)
    assert victim == scores.index(max(scores))


@given(_full_sets(), _rank_scale)
@settings(max_examples=100, deadline=None)
def test_locality_with_zero_lambda_is_rank_only(set_and_clock, scale):
    """λ = 0 removes recency: the victim is the first highest-rank line."""
    lines, clock = set_and_clock
    policy = LocalityPreservedPolicy(lam=0.0, rank_scale=scale)
    victim = policy.victim(lines, clock)
    ranks = [line.rank for line in lines]
    assert ranks[victim] == max(ranks)
    assert victim == ranks.index(max(ranks))


@given(_full_sets(), st.floats(0.5, 16.0, allow_nan=False))
@settings(max_examples=100, deadline=None)
def test_locality_recency_monotonicity(set_and_clock, lam):
    """Touching a line now (recency 0) never turns it *into* the victim
    while another line is strictly better on Equation 2."""
    lines, clock = set_and_clock
    policy = LocalityPreservedPolicy(lam=lam, rank_scale=1.0)
    before = policy.victim(lines, clock)
    for way, line in enumerate(lines):
        if way == before or len(lines) == 1:
            continue
        old = line.last_access
        line.last_access = clock  # most recent possible touch
        after = policy.victim(lines, clock)
        scores = _eq2_scores(lines, clock, lam, 1.0)
        if after == way:
            # Only acceptable if it still genuinely maximises the score.
            assert scores[way] == max(scores)
        line.last_access = old


@given(st.lists(st.integers(0, 100), min_size=1, max_size=100))
@settings(max_examples=60, deadline=None)
def test_locality_equal_ranks_degenerates_to_lru(addresses):
    """With all ranks equal and λ > 0, Equation 2 orders lines purely by
    staleness — byte-for-byte the LRU hit/miss sequence."""
    locality = SetAssociativeCache(
        num_sets=2,
        ways=3,
        policy=LocalityPreservedPolicy(lam=1.0, rank_scale=1.0),
    )
    lru = SetAssociativeCache(num_sets=2, ways=3, policy=LRUPolicy())
    for address in addresses:
        assert locality.access(address, rank=7) == lru.access(address, rank=7)


class ReferenceLocalityCache:
    """Oracle: slot-list transcription of §IV-B + Equation 2.

    Slots mirror way order (first invalid way fills first; evictions reuse
    the slot in place), so score ties resolve to the same way as the real
    cache's first-max scan.
    """

    def __init__(self, num_sets, ways, lam, rank_scale):
        self.num_sets = num_sets
        self.lam = lam
        self.rank_scale = rank_scale
        self.sets = [[None] * ways for _ in range(num_sets)]
        self.clock = 0

    def access(self, address, rank):
        self.clock += 1
        tag = address
        slots = self.sets[tag % self.num_sets]
        for way, slot in enumerate(slots):
            if slot is not None and slot[0] == tag:
                slots[way] = (tag, slot[1], self.clock)
                return True
        for way, slot in enumerate(slots):
            if slot is None:
                slots[way] = (tag, rank, self.clock)
                return False
        scores = [
            slot[1] * self.rank_scale + self.lam * (self.clock - slot[2])
            for slot in slots
        ]
        slots[scores.index(max(scores))] = (tag, rank, self.clock)
        return False


@given(
    st.integers(1, 3),  # num_sets
    st.integers(1, 3),  # ways
    st.sampled_from([0.0, 0.5, 1.0, 4.0]),  # lam
    st.lists(
        st.tuples(st.integers(0, 40), st.integers(0, 9)),
        min_size=1,
        max_size=250,
    ),
)
@settings(max_examples=120, deadline=None)
def test_locality_cache_matches_reference(num_sets, ways, lam, accesses):
    """The full cache against the oracle: identical hit/miss sequences.

    Ranks are distinct per address (rank = address % 10 would collide, so
    rank is drawn with the address and kept stable per tag by the oracle).
    """
    cache = SetAssociativeCache(
        num_sets=num_sets,
        ways=ways,
        policy=LocalityPreservedPolicy(lam=lam, rank_scale=1.0),
    )
    reference = ReferenceLocalityCache(num_sets, ways, lam, 1.0)
    rank_of = {}
    for address, rank in accesses:
        rank = rank_of.setdefault(address, rank)  # stable rank per address
        assert cache.access(address, rank) == reference.access(address, rank), (
            address,
            rank,
        )


@given(
    st.integers(0, 12),  # scratchpad cutoff
    st.lists(
        st.tuples(st.integers(0, 30), st.integers(0, 20)),
        min_size=1,
        max_size=200,
    ),
)
@settings(max_examples=100, deadline=None)
def test_pinned_scratchpad_entries_never_evicted(cutoff, accesses):
    """Every access with rank < cutoff is served HIGH, always — pinned
    entries are never displaced by any interleaved low-priority traffic,
    and they never occupy (or evict from) the low cache."""
    from repro.memory.hierarchy import AccessLevel

    side = MemorySide(
        "vertex",
        high_cutoff_rank=cutoff,
        low_cache=SetAssociativeCache(
            num_sets=2, ways=2, policy=LocalityPreservedPolicy()
        ),
    )
    for address, rank in accesses:
        level = side.access(address, rank)
        if rank < cutoff:
            assert level is AccessLevel.HIGH
        else:
            assert level is not AccessLevel.HIGH
    # The low cache never saw a pinned request, so no pinned address with
    # rank < cutoff can have claimed or evicted a cache line.
    assert side.stats.high_hits == sum(1 for _, r in accesses if r < cutoff)
