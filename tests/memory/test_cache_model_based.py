"""Model-based property test: the cache vs a reference implementation.

The reference keeps, per set, an ordered dict of resident tags (most
recently used last) — the textbook definition of a set-associative LRU
cache.  Every access sequence must produce the identical hit/miss sequence.
"""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.cache import SetAssociativeCache
from repro.memory.policies import LRUPolicy


class ReferenceLRUCache:
    """Oracle: per-set OrderedDict LRU."""

    def __init__(self, num_sets: int, ways: int, line_size: int) -> None:
        self.num_sets = num_sets
        self.ways = ways
        self.line_size = line_size
        self.sets = [OrderedDict() for _ in range(num_sets)]

    def access(self, address: int) -> bool:
        tag = address // self.line_size
        index = tag % self.num_sets
        resident = self.sets[index]
        if tag in resident:
            resident.move_to_end(tag)
            return True
        if len(resident) == self.ways:
            resident.popitem(last=False)
        resident[tag] = True
        return False


@given(
    st.integers(1, 4),  # num_sets
    st.integers(1, 4),  # ways
    st.integers(1, 4),  # line_size
    st.lists(st.integers(0, 120), min_size=1, max_size=400),
)
@settings(max_examples=120, deadline=None)
def test_lru_cache_matches_reference(num_sets, ways, line_size, addresses):
    cache = SetAssociativeCache(
        num_sets=num_sets, ways=ways, line_size=line_size, policy=LRUPolicy()
    )
    reference = ReferenceLRUCache(num_sets, ways, line_size)
    for address in addresses:
        assert cache.access(address) == reference.access(address), address


@given(st.lists(st.integers(0, 60), min_size=1, max_size=300))
@settings(max_examples=60, deadline=None)
def test_resident_set_matches_reference(addresses):
    cache = SetAssociativeCache(num_sets=2, ways=3, policy=LRUPolicy())
    reference = ReferenceLRUCache(2, 3, 1)
    for address in addresses:
        cache.access(address)
        reference.access(address)
    expected = {tag for s in reference.sets for tag in s}
    assert cache.resident_tags() == expected
