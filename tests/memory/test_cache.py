"""Set-associative cache and replacement policies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.cache import SetAssociativeCache
from repro.memory.policies import (
    FIFOPolicy,
    LineState,
    LocalityPreservedPolicy,
    LRUPolicy,
    RandomPolicy,
)


class TestBasics:
    def test_cold_miss_then_hit(self):
        c = SetAssociativeCache(num_sets=4, ways=2)
        assert not c.access(10)
        assert c.access(10)
        assert c.stats.hits == 1 and c.stats.misses == 1

    def test_line_size_groups_addresses(self):
        c = SetAssociativeCache(num_sets=4, ways=2, line_size=4)
        assert not c.access(8)
        assert c.access(9)  # same line
        assert c.access(11)
        assert not c.access(12)  # next line

    def test_capacity(self):
        c = SetAssociativeCache(num_sets=8, ways=4, line_size=2)
        assert c.capacity_entries == 64

    def test_probe_does_not_mutate(self):
        c = SetAssociativeCache(num_sets=2, ways=1)
        c.access(0)
        hits_before = c.stats.hits
        assert c.probe(0)
        assert not c.probe(2)
        assert c.stats.hits == hits_before

    def test_flush(self):
        c = SetAssociativeCache(num_sets=2, ways=2)
        c.access(0)
        c.flush()
        assert not c.probe(0)
        assert not c.access(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(0, 1)
        with pytest.raises(ValueError):
            SetAssociativeCache(1, 0)

    def test_full_capacity_contiguous_no_conflicts(self):
        """Contiguous addresses exactly filling the cache never evict."""
        c = SetAssociativeCache(num_sets=8, ways=4, line_size=1)
        for address in range(32):
            c.access(address)
        for address in range(32):
            assert c.access(address)
        assert c.stats.evictions == 0

    @given(st.lists(st.integers(0, 200), min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_accounting_invariants(self, addresses):
        c = SetAssociativeCache(num_sets=4, ways=2, line_size=2)
        for a in addresses:
            c.access(a)
        assert c.stats.accesses == len(addresses)
        assert c.stats.hits + c.stats.misses == c.stats.accesses
        assert c.stats.evictions <= c.stats.misses
        assert len(c.resident_tags()) <= 8

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_immediate_rereference_always_hits(self, addresses):
        c = SetAssociativeCache(num_sets=4, ways=2, policy=LRUPolicy())
        for a in addresses:
            c.access(a)
            assert c.probe(a)


class TestLRU:
    def test_evicts_least_recent(self):
        c = SetAssociativeCache(num_sets=1, ways=2, policy=LRUPolicy())
        c.access(0)
        c.access(1)
        c.access(0)  # 1 is now LRU
        c.access(2)  # evicts 1
        assert c.probe(0) and c.probe(2) and not c.probe(1)

    def test_working_set_within_ways_all_hits(self):
        c = SetAssociativeCache(num_sets=1, ways=4, policy=LRUPolicy())
        for _round in range(3):
            for a in range(4):
                c.access(a)
        assert c.stats.misses == 4  # cold only


class TestLocalityPreserved:
    def test_lambda_zero_keeps_best_ranked(self):
        """λ=0: pure rank — the worst-ranked line is always the victim."""
        policy = LocalityPreservedPolicy(lam=0.0)
        c = SetAssociativeCache(num_sets=1, ways=2, policy=policy)
        c.access(0, rank=5)
        c.access(1, rank=100)
        c.access(2, rank=50)  # evicts rank-100 line
        assert c.probe(0) and c.probe(2) and not c.probe(1)

    def test_large_lambda_degenerates_to_lru(self):
        policy = LocalityPreservedPolicy(lam=1e9)
        c = SetAssociativeCache(num_sets=1, ways=2, policy=policy)
        c.access(0, rank=1000)
        c.access(1, rank=0)
        c.access(0, rank=1000)  # refresh 0; line 1 stalest
        c.access(2, rank=500)
        assert c.probe(0) and not c.probe(1)

    def test_balances_rank_and_recency(self):
        policy = LocalityPreservedPolicy(lam=1.0)
        lines = [
            LineState(valid=True, tag=0, rank=100, last_access=10),
            LineState(valid=True, tag=1, rank=0, last_access=1),
        ]
        # clock 12: scores are 100+2=102 vs 0+11=11 -> evict way 0.
        assert policy.victim(lines, clock=12) == 0
        # clock 200: scores 100+190=290 vs 0+199 = 199 -> still way 0.
        assert policy.victim(lines, clock=200) == 0

    def test_negative_lambda_rejected(self):
        with pytest.raises(ValueError):
            LocalityPreservedPolicy(lam=-1)

    def test_protects_hot_ranked_line_better_than_lru(self):
        """A globally-hot (low-rank) line survives a scan under Eq. 2."""
        def run(policy):
            c = SetAssociativeCache(num_sets=1, ways=4, policy=policy)
            hits = 0
            for round_index in range(50):
                hit = c.access(0, rank=0)  # the hot item
                hits += hit
                # Streaming scan of cold, low-priority data.
                for a in range(1 + round_index * 4, 5 + round_index * 4):
                    c.access(a, rank=1_000_000)
            return hits

        assert run(LocalityPreservedPolicy(lam=1.0)) > run(LRUPolicy())


class TestOtherPolicies:
    def test_fifo_evicts_oldest_fill(self):
        c = SetAssociativeCache(num_sets=1, ways=2, policy=FIFOPolicy())
        c.access(0)
        c.access(1)
        c.access(0)  # does not refresh FIFO order
        c.access(2)  # evicts 0
        assert not c.probe(0) and c.probe(1) and c.probe(2)

    def test_random_is_deterministic_per_seed(self):
        def run(seed):
            c = SetAssociativeCache(
                num_sets=1, ways=4, policy=RandomPolicy(seed)
            )
            return [c.access(a % 9, 0) for a in range(100)]

        assert run(3) == run(3)

    def test_policy_invalid_way_detected(self):
        class BrokenPolicy:
            name = "broken"

            def victim(self, lines, clock):
                return 99

        c = SetAssociativeCache(num_sets=1, ways=1, policy=BrokenPolicy())
        c.access(0)
        with pytest.raises(ValueError, match="invalid way"):
            c.access(1)
