"""DRAM channel model and the SSD model."""

import pytest

from repro.memory.disk import DiskModel, OutOfDiskError
from repro.memory.dram import DRAMModel


class TestDRAM:
    def test_latency(self):
        dram = DRAMModel(latency_cycles=100, channels=1, cycles_per_transfer=2)
        assert dram.service(0) == 100

    def test_channel_queueing(self):
        dram = DRAMModel(latency_cycles=100, channels=1, cycles_per_transfer=4)
        first = dram.service(0, address=0)
        second = dram.service(0, address=1)
        assert first == 100
        assert second == 104  # waits one transfer slot

    def test_channel_interleaving_parallel(self):
        dram = DRAMModel(latency_cycles=100, channels=2, cycles_per_transfer=4)
        a = dram.service(0, address=0)
        b = dram.service(0, address=1)  # different channel
        assert a == b == 100

    def test_idle_channel_no_queueing(self):
        dram = DRAMModel(latency_cycles=50, channels=1, cycles_per_transfer=2)
        dram.service(0)
        assert dram.service(1000) == 1050

    def test_counters(self):
        dram = DRAMModel()
        dram.service(0)
        dram.service(10)
        assert dram.transfers == 2
        assert dram.busy_cycles == 2 * dram.cycles_per_transfer

    def test_reset(self):
        dram = DRAMModel(channels=1)
        dram.service(0)
        dram.reset()
        assert dram.transfers == 0
        assert dram.service(0) == dram.latency_cycles

    def test_validation(self):
        with pytest.raises(ValueError):
            DRAMModel(latency_cycles=-1)
        with pytest.raises(ValueError):
            DRAMModel(channels=0)
        with pytest.raises(ValueError):
            DRAMModel(cycles_per_transfer=0)


class TestDisk:
    def test_write_time(self):
        disk = DiskModel(write_bandwidth_bytes_per_s=100e6, batch_latency_s=0)
        assert disk.write(100_000_000) == pytest.approx(1.0)

    def test_read_time(self):
        disk = DiskModel(read_bandwidth_bytes_per_s=200e6, batch_latency_s=0)
        assert disk.read(100_000_000) == pytest.approx(0.5)

    def test_cumulative_seconds(self):
        disk = DiskModel(batch_latency_s=0)
        disk.write(10**8)
        disk.read(10**8)
        assert disk.seconds == pytest.approx(
            10**8 / disk.write_bandwidth_bytes_per_s
            + 10**8 / disk.read_bandwidth_bytes_per_s
        )

    def test_capacity_exceeded(self):
        disk = DiskModel(capacity_bytes=100)
        disk.write(60)
        with pytest.raises(OutOfDiskError):
            disk.write(60)

    def test_free_releases(self):
        disk = DiskModel(capacity_bytes=100)
        disk.write(80)
        disk.free(80)
        disk.write(80)  # fits again
        assert disk.resident_bytes == 80

    def test_zero_write_no_latency(self):
        disk = DiskModel()
        assert disk.write(0) == 0.0

    def test_negative_rejected(self):
        disk = DiskModel()
        with pytest.raises(ValueError):
            disk.write(-1)
        with pytest.raises(ValueError):
            disk.read(-1)
