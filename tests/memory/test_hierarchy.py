"""The locality-aware memory hierarchy (LAMH)."""

import numpy as np
import pytest

from repro.graph.generators import powerlaw_cluster, star
from repro.memory.hierarchy import (
    AccessLevel,
    build_hierarchy,
    default_tau,
    edge_cutoff_rank,
)
from repro.memory.scratchpad import Scratchpad


class TestScratchpad:
    def test_holds_prefix(self):
        spm = Scratchpad(cutoff=5)
        assert spm.holds(0) and spm.holds(4)
        assert not spm.holds(5)

    def test_access_counts_hits(self):
        spm = Scratchpad(cutoff=2)
        assert spm.access(1)
        assert not spm.access(7)
        assert spm.hits == 1

    def test_negative_cutoff_rejected(self):
        with pytest.raises(ValueError):
            Scratchpad(cutoff=-1)


class TestDefaultTau:
    def test_paper_rule(self):
        g = powerlaw_cluster(100, 3, seed=0)
        data = g.num_vertices + len(g.neighbors)
        assert default_tau(g, data * 4) == 0.5  # capped at 50%
        assert default_tau(g, data) == pytest.approx(0.5)
        assert default_tau(g, data // 10) == pytest.approx(0.05, rel=0.2)


class TestEdgeCutoff:
    def test_star_hub_first(self):
        g = star(10)
        rank = np.zeros(11, dtype=np.int64)
        rank[0] = 0
        rank[1:] = np.arange(1, 11)
        cutoff, used = edge_cutoff_rank(g, rank, target_slots=10)
        assert cutoff == 1  # the hub's 10 slots exactly fill the target
        assert used == 10

    def test_zero_target(self):
        g = star(4)
        cutoff, used = edge_cutoff_rank(
            g, np.arange(5, dtype=np.int64), target_slots=0
        )
        assert cutoff == 0 and used == 0


class TestHierarchyRouting:
    def _graph(self):
        return powerlaw_cluster(200, 3, 0.3, seed=1)

    def test_high_priority_always_hits(self):
        g = self._graph()
        h = build_hierarchy(g, total_entries=len(g.neighbors) // 5)
        cutoff = h.vertex_side.scratchpad.cutoff
        # identity rank: vertices below cutoff are pinned.
        for v in range(cutoff):
            assert h.access_vertex(v) is AccessLevel.HIGH
        assert h.vertex_side.stats.misses == 0

    def test_low_priority_miss_then_hit(self):
        g = self._graph()
        h = build_hierarchy(g, total_entries=len(g.neighbors) // 5)
        v = g.num_vertices - 1  # worst rank, surely low priority
        assert h.access_vertex(v) is AccessLevel.MISS
        assert h.access_vertex(v) is AccessLevel.LOW_HIT

    def test_edge_priority_from_source_rank(self):
        g = self._graph()
        h = build_hierarchy(g, total_entries=len(g.neighbors) // 5)
        edge_cutoff = h.edge_side.scratchpad.cutoff
        assert edge_cutoff > 0
        # An edge slot owned by rank-0 vertex is pinned.
        src = 0  # identity rank
        index = int(g.offsets[src])
        if g.degree(src):
            assert h.access_edge(index, src) is AccessLevel.HIGH

    def test_hit_ratios_keys(self):
        g = self._graph()
        h = build_hierarchy(g, total_entries=100)
        h.access_vertex(0)
        assert set(h.hit_ratios()) == {"vertex", "edge"}

    def test_capacity_reporting(self):
        g = self._graph()
        h = build_hierarchy(g, total_entries=400)
        assert h.capacity_entries > 0


class TestVariants:
    def _graph(self):
        return powerlaw_cluster(300, 3, 0.3, seed=2)

    def test_uniform_has_no_pinning(self):
        g = self._graph()
        h = build_hierarchy(g, total_entries=300, low_policy="uniform")
        assert h.vertex_side.scratchpad.cutoff == 0
        assert h.edge_side.scratchpad.cutoff == 0

    def test_lru_variant_same_split_as_lamh(self):
        g = self._graph()
        lamh = build_hierarchy(g, total_entries=300, low_policy="locality")
        static = build_hierarchy(g, total_entries=300, low_policy="lru")
        assert (
            lamh.vertex_side.scratchpad.cutoff
            == static.vertex_side.scratchpad.cutoff
        )

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="low_policy"):
            build_hierarchy(self._graph(), total_entries=100, low_policy="plru")

    def test_tau_override(self):
        g = self._graph()
        h = build_hierarchy(g, total_entries=100, tau=0.10)
        assert h.vertex_side.scratchpad.cutoff == round(0.10 * g.num_vertices)

    def test_bad_tau_rejected(self):
        with pytest.raises(ValueError, match="tau"):
            build_hierarchy(self._graph(), total_entries=100, tau=0.0)

    def test_bad_rank_length_rejected(self):
        g = self._graph()
        with pytest.raises(ValueError, match="vertex_rank"):
            build_hierarchy(g, total_entries=100, vertex_rank=np.arange(5))

    def test_rank_mapping_controls_pinning(self):
        g = star(20)
        # Rank the hub worst: it must NOT be pinned.
        rank = np.zeros(21, dtype=np.int64)
        rank[0] = 20
        rank[1:] = np.arange(20)
        h = build_hierarchy(g, total_entries=20, vertex_rank=rank, tau=0.25)
        assert h.access_vertex(1) is AccessLevel.HIGH  # rank 0
        first = h.access_vertex(0)
        assert first is AccessLevel.MISS  # hub has worst rank


class TestLAMHBeatsLRUOnSkewedTraffic:
    """Fig. 12's ordering under hardware-like interleaved slot streams.

    A single DFS walk has short reuse distances that flatter LRU; the
    accelerator interleaves up to 128 extension paths, multiplying reuse
    distances.  The test replays 64 round-robin-interleaved per-root-group
    streams, which is the traffic the Fig. 12 comparison actually sees.
    """

    def _interleaved_trace(self, g, streams=96):
        from repro.mining.apps import MotifCounting
        from repro.mining.engine import run_dfs

        recorded = []
        for start in range(streams):
            rec = _RecordingAdapter()
            run_dfs(
                g,
                MotifCounting(4),
                mem=rec,
                roots=range(start, g.num_vertices, streams),
            )
            recorded.append(rec.ops)
        cursors = [0] * len(recorded)
        out = []
        alive = True
        while alive:
            alive = False
            for k, ops in enumerate(recorded):
                if cursors[k] < len(ops):
                    out.append(ops[cursors[k]])
                    cursors[k] += 1
                    alive = True
        return out

    def test_hit_ratio_ordering(self):
        from repro.graph.reorder import rank_permutation
        from repro.locality.occurrence import occurrence_numbers

        g = powerlaw_cluster(180, 4, 0.6, seed=3)
        rank = rank_permutation(occurrence_numbers(g, 1))
        budget = (g.num_vertices + len(g.neighbors)) // 20
        trace = self._interleaved_trace(g)

        def replay(policy):
            h = build_hierarchy(
                g,
                total_entries=budget,
                vertex_rank=rank,
                low_policy=policy,
                vertex_line=4,
            )
            for kind, a, b in trace:
                if kind == 0:
                    h.access_vertex(a)
                else:
                    h.access_edge(a, b)
            v = h.vertex_side.stats
            e = h.edge_side.stats
            total = (v.high_hits + v.low_hits + e.high_hits + e.low_hits) / (
                v.accesses + e.accesses
            )
            return v.hit_ratio, e.hit_ratio, total

        lamh_v, lamh_e, lamh_t = replay("locality")
        static_v, static_e, static_t = replay("lru")
        uniform_v, uniform_e, uniform_t = replay("uniform")
        # The big Fig. 12 effect: pinning + isolation beat a uniform cache.
        assert lamh_v > static_v > uniform_v
        assert lamh_t > static_t > uniform_t
        # The replacement-policy refinement is a 1-6% effect in the paper;
        # at unit-test scale it must at least not regress materially.
        assert lamh_e >= static_e - 0.02
        assert lamh_e >= uniform_e - 0.02


class _RecordingAdapter:
    """MemoryModel that records the engine's access stream."""

    def __init__(self):
        self.ops = []
        self.depth = 0

    def vertex(self, vid):
        self.ops.append((0, vid, 0))

    def edge(self, index, src):
        self.ops.append((1, index, src))
