"""Lease-based claims: exclusivity, takeover, heartbeat, lost leases."""

import os
import threading

import pytest

from repro.runtime import ClaimStore, claim_backoff_s

DIGEST = "a" * 64
LABEL = "gramer:3-CF@citeseer/tiny"


def age_claim(store, digest, seconds):
    """Backdate a claim file's mtime so its lease reads as expired."""
    path = store.path_for(digest)
    stat = path.stat()
    os.utime(path, (stat.st_atime - seconds, stat.st_mtime - seconds))


class TestAcquire:
    def test_first_acquire_wins_and_persists(self, tmp_path):
        store = ClaimStore(tmp_path / "claims", "w1", lease_s=30.0)
        claim = store.try_acquire(DIGEST, LABEL)
        assert claim is not None
        assert claim.worker == "w1" and claim.generation == 1
        held = store.holder(DIGEST)
        assert held is not None
        assert held["worker"] == "w1" and held["label"] == LABEL

    def test_second_worker_is_refused_while_lease_lives(self, tmp_path):
        root = tmp_path / "claims"
        ClaimStore(root, "w1", lease_s=30.0).try_acquire(DIGEST, LABEL)
        assert ClaimStore(root, "w2", lease_s=30.0).try_acquire(
            DIGEST, LABEL
        ) is None

    def test_many_threads_exactly_one_winner(self, tmp_path):
        """O_EXCL under real concurrency: N racers, one claim."""
        root = tmp_path / "claims"
        winners = []
        barrier = threading.Barrier(8)

        def racer(name):
            store = ClaimStore(root, name, lease_s=30.0)
            barrier.wait()
            if store.try_acquire(DIGEST, LABEL) is not None:
                winners.append(name)

        threads = [
            threading.Thread(target=racer, args=(f"w{i}",))
            for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(winners) == 1

    def test_release_frees_the_cell(self, tmp_path):
        root = tmp_path / "claims"
        store = ClaimStore(root, "w1", lease_s=30.0)
        claim = store.try_acquire(DIGEST, LABEL)
        assert store.release(claim)
        other = ClaimStore(root, "w2", lease_s=30.0)
        reclaim = other.try_acquire(DIGEST, LABEL)
        assert reclaim is not None and reclaim.generation == 1

    def test_lease_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            ClaimStore(tmp_path, "w1", lease_s=0.0)


class TestTakeover:
    def test_expired_lease_is_taken_over_with_bumped_generation(
        self, tmp_path
    ):
        root = tmp_path / "claims"
        straggler = ClaimStore(root, "w1", lease_s=5.0)
        straggler.try_acquire(DIGEST, LABEL)
        age_claim(straggler, DIGEST, 60.0)
        thief = ClaimStore(root, "w2", lease_s=5.0)
        stolen = thief.try_acquire(DIGEST, LABEL)
        assert stolen is not None
        assert stolen.worker == "w2" and stolen.generation == 2
        held = thief.holder(DIGEST)
        assert held["worker"] == "w2" and held["generation"] == 2

    def test_fresh_lease_cannot_be_taken_over(self, tmp_path):
        root = tmp_path / "claims"
        owner = ClaimStore(root, "w1", lease_s=3600.0)
        owner.try_acquire(DIGEST, LABEL)
        assert ClaimStore(root, "w2", lease_s=3600.0).try_acquire(
            DIGEST, LABEL
        ) is None

    def test_takeover_leaves_no_graveyard_debris(self, tmp_path):
        root = tmp_path / "claims"
        straggler = ClaimStore(root, "w1", lease_s=5.0)
        straggler.try_acquire(DIGEST, LABEL)
        age_claim(straggler, DIGEST, 60.0)
        ClaimStore(root, "w2", lease_s=5.0).try_acquire(DIGEST, LABEL)
        assert sorted(p.name for p in root.iterdir()) == [
            f"{DIGEST}.claim"
        ]

    def test_corrupt_claim_file_is_still_takeover_eligible(self, tmp_path):
        """A torn claim (crash mid-ancient-write) must not wedge the cell."""
        root = tmp_path / "claims"
        straggler = ClaimStore(root, "w1", lease_s=5.0)
        straggler.try_acquire(DIGEST, LABEL)
        store_path = straggler.path_for(DIGEST)
        store_path.write_text("{not json")
        age_claim(straggler, DIGEST, 60.0)
        stolen = ClaimStore(root, "w2", lease_s=5.0).try_acquire(
            DIGEST, LABEL
        )
        assert stolen is not None and stolen.generation == 2


class TestHeartbeatAndLoss:
    def test_refresh_bumps_the_lease_clock(self, tmp_path):
        store = ClaimStore(tmp_path / "claims", "w1", lease_s=5.0)
        claim = store.try_acquire(DIGEST, LABEL)
        age_claim(store, DIGEST, 60.0)
        assert store.refresh(claim)
        # A refreshed claim is no longer expired: takeover is refused.
        assert ClaimStore(
            tmp_path / "claims", "w2", lease_s=5.0
        ).try_acquire(DIGEST, LABEL) is None

    def test_refresh_detects_lost_lease_and_does_not_resurrect(
        self, tmp_path
    ):
        root = tmp_path / "claims"
        straggler = ClaimStore(root, "w1", lease_s=5.0)
        claim = straggler.try_acquire(DIGEST, LABEL)
        age_claim(straggler, DIGEST, 60.0)
        thief = ClaimStore(root, "w2", lease_s=5.0)
        assert thief.try_acquire(DIGEST, LABEL) is not None
        assert not straggler.refresh(claim)  # reports the loss...
        held = straggler.holder(DIGEST)
        assert held["worker"] == "w2"  # ...and never overwrites the thief

    def test_release_of_lost_lease_is_a_noop(self, tmp_path):
        root = tmp_path / "claims"
        straggler = ClaimStore(root, "w1", lease_s=5.0)
        claim = straggler.try_acquire(DIGEST, LABEL)
        age_claim(straggler, DIGEST, 60.0)
        thief = ClaimStore(root, "w2", lease_s=5.0)
        thief.try_acquire(DIGEST, LABEL)
        assert not straggler.release(claim)
        assert straggler.holder(DIGEST)["worker"] == "w2"


class TestBackoff:
    def test_backoff_is_deterministic_per_token(self):
        assert claim_backoff_s("w1", 3) == claim_backoff_s("w1", 3)
        assert claim_backoff_s("w1", 3) != claim_backoff_s("w2", 3)

    def test_backoff_grows_then_caps(self):
        small = claim_backoff_s("w1", 1, base_s=0.05, cap_s=1.0)
        assert small < 0.1
        capped = claim_backoff_s("w1", 20, base_s=0.05, cap_s=1.0)
        assert capped <= 1.5  # cap × max jitter factor
