"""Executor fan-out: determinism, caching, and failure isolation."""

import logging
import time

from repro.runtime import (
    ArtifactCache,
    Executor,
    FaultPlan,
    FaultSpec,
    make_jobspec,
    resolve_jobs,
    run_spec,
)
from repro.runtime.retry import NO_RETRY, RetryPolicy

TINY_GRID = [
    make_jobspec(backend, "3-CF", dataset=graph, scale="tiny")
    for graph in ("citeseer", "p2p")
    for backend in ("gramer", "fractal", "rstream")
]


def _fingerprints(results):
    return [r.fingerprint() for r in results]


class TestResolveJobs:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("GRAMER_JOBS", "8")
        assert resolve_jobs(2) == 2

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("GRAMER_JOBS", "3")
        assert resolve_jobs() == 3

    def test_default_and_garbage(self, monkeypatch):
        monkeypatch.setenv("GRAMER_JOBS", "many")
        assert resolve_jobs() == 1
        monkeypatch.delenv("GRAMER_JOBS")
        assert resolve_jobs() == 1
        assert resolve_jobs(0) == 1

    def test_garbage_env_value_is_warned_about(self, monkeypatch, caplog):
        """A typo'd GRAMER_JOBS must not silently serialize the sweep."""
        monkeypatch.setenv("GRAMER_JOBS", "many")
        with caplog.at_level(logging.WARNING, logger="gramer.runtime"):
            assert resolve_jobs() == 1
        messages = [record.getMessage() for record in caplog.records]
        assert any(
            "GRAMER_JOBS" in message and "many" in message
            for message in messages
        )


class TestDeterminism:
    def test_serial_and_pool_results_identical(self, tmp_path):
        """--jobs 1 and --jobs 4 must be byte-identical, fresh either way."""
        serial = Executor(
            jobs=1, cache=ArtifactCache(root=tmp_path / "a")
        ).run(TINY_GRID)
        pooled = Executor(
            jobs=4, cache=ArtifactCache(root=tmp_path / "b"), timeout_s=300
        ).run(TINY_GRID)
        assert all(r.ok for r in serial)
        assert not any(r.cached for r in serial + pooled)
        assert _fingerprints(serial) == _fingerprints(pooled)

    def test_cached_result_equals_fresh(self, tmp_path):
        cache = ArtifactCache(root=tmp_path)
        spec = TINY_GRID[0]
        fresh = run_spec(spec, cache=cache)
        replay = run_spec(spec, cache=cache)
        assert not fresh.cached and replay.cached
        assert replay.fingerprint() == fresh.fingerprint()

    def test_pool_results_arrive_in_spec_order(self, tmp_path):
        results = Executor(
            jobs=2, cache=ArtifactCache(root=tmp_path), use_cache=False
        ).run(TINY_GRID)
        assert [r.spec for r in results] == TINY_GRID

    def test_cross_process_cache_reuse(self, tmp_path):
        """Pool workers persist results the next (serial) run can replay."""
        cache_root = tmp_path / "shared"
        first = Executor(jobs=2, cache=ArtifactCache(root=cache_root)).run(
            TINY_GRID
        )
        second = Executor(jobs=1, cache=ArtifactCache(root=cache_root)).run(
            TINY_GRID
        )
        assert all(r.cached for r in second)
        assert _fingerprints(first) == _fingerprints(second)


class TestFailureIsolation:
    def test_poisoned_job_does_not_kill_siblings(self, tmp_path):
        """An AncestorBufferOverflowError cell fails alone, siblings finish."""
        poison = make_jobspec(
            "gramer", "5-CF", dataset="mico", scale="tiny",
            config={"ancestor_depth": 2},
        )
        specs = [TINY_GRID[0], poison, TINY_GRID[1]]
        for jobs in (1, 3):
            results = Executor(
                jobs=jobs, cache=ArtifactCache(root=tmp_path / str(jobs))
            ).run(specs)
            assert [r.ok for r in results] == [True, False, True]
            assert "AncestorBufferOverflowError" in results[1].error

    def test_unknown_backend_is_a_failed_result(self, tmp_path):
        spec = make_jobspec("warp-drive", "3-CF", dataset="p2p", scale="tiny")
        result = run_spec(spec, cache=ArtifactCache(root=tmp_path))
        assert not result.ok
        assert "unknown backend" in result.error

    def test_unknown_dataset_is_a_failed_result(self, tmp_path):
        spec = make_jobspec("gramer", "3-CF", dataset="atlantis", scale="tiny")
        result = run_spec(spec, cache=ArtifactCache(root=tmp_path))
        assert not result.ok
        assert result.detail["error_type"] == "KeyError"

    def test_failures_never_cached(self, tmp_path):
        cache = ArtifactCache(root=tmp_path)
        spec = make_jobspec("gramer", "3-CF", dataset="atlantis", scale="tiny")
        run_spec(spec, cache=cache)
        replay = run_spec(spec, cache=cache)
        assert not replay.cached

    def test_one_hung_job_does_not_reap_healthy_siblings(self, tmp_path):
        """Regression: a single timeout used to cancel the whole pool.

        One job hangs far past the timeout while two siblings run
        normally in the same pool.  The siblings must complete on their
        first attempt; only the hung job is failed/retried, and the stuck
        worker is reaped at round end (wall time stays far below the
        injected hang).
        """
        hang = make_jobspec("gramer", "3-CF", dataset="citeseer", scale="tiny")
        healthy = [
            make_jobspec("fractal", "3-CF", dataset="citeseer", scale="tiny"),
            make_jobspec("rstream", "3-CF", dataset="citeseer", scale="tiny"),
        ]
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    kind="hang",
                    match="gramer:3-CF@citeseer",
                    attempt=1,
                    hang_s=60.0,
                ),
            )
        )
        started = time.perf_counter()
        results = Executor(
            jobs=3,
            timeout_s=5.0,
            cache=ArtifactCache(root=tmp_path),
            retry=RetryPolicy(
                max_attempts=2, base_delay_s=0.01, max_delay_s=0.02
            ),
            faults=plan,
        ).run([hang] + healthy)
        elapsed = time.perf_counter() - started
        assert [r.ok for r in results] == [True, True, True]
        assert results[0].retries == 1  # timed out once, then recovered
        assert results[1].retries == 0 and results[2].retries == 0
        assert elapsed < 45  # never waited out the 60s hang


class TestBackendResults:
    def test_gramer_detail_matches_legacy_cell_shape(self, tmp_path):
        result = run_spec(TINY_GRID[0], cache=ArtifactCache(root=tmp_path))
        assert result.system == "GRAMER"
        assert result.seconds > 0 and result.energy_j > 0
        for key in ("cycles", "execution_seconds", "fixed_overhead_seconds",
                    "vertex_hit_ratio", "edge_hit_ratio", "steals",
                    "embeddings", "summary"):
            assert key in result.detail

    def test_all_backends_agree_on_counts(self, tmp_path):
        cache = ArtifactCache(root=tmp_path)
        counts = {
            frozenset(
                run_spec(
                    make_jobspec(b, "3-CF", dataset="p2p", scale="tiny"),
                    cache=cache,
                ).detail["embeddings"].items()
            )
            for b in ("gramer", "fractal", "rstream", "software")
        }
        assert len(counts) == 1

    def test_software_backend_reports_counts_without_model_time(self, tmp_path):
        spec = make_jobspec("software", "3-CF", dataset="citeseer", scale="tiny")
        result = run_spec(spec, cache=ArtifactCache(root=tmp_path))
        assert result.ok and result.seconds is None
        assert result.detail["candidates_checked"] > 0
        assert result.wall_seconds > 0

    def test_edge_list_jobs_run_from_files(self, tmp_path):
        target = tmp_path / "triangle.txt"
        target.write_text("0 1\n1 2\n0 2\n")
        spec = make_jobspec("software", "3-CF", graph_path=str(target))
        result = run_spec(spec, cache=ArtifactCache(root=tmp_path / "cache"))
        assert result.ok
        assert result.detail["embeddings"][3] == 1

    def test_timeout_produces_failed_result(self, tmp_path):
        heavy = make_jobspec("gramer", "4-MC", dataset="lj", scale="small")
        results = Executor(
            jobs=2,
            timeout_s=0.01,
            cache=ArtifactCache(root=tmp_path),
            retry=NO_RETRY,  # timeouts are transient; don't retry here
        ).run([heavy])
        assert not results[0].ok
        assert "Timeout" in results[0].error
        assert results[0].retries == 0


class TestVertexRankCache:
    def test_on1_ranks_content_addressed(self):
        import numpy as np

        from repro.experiments import datasets
        from repro.graph.reorder import rank_permutation
        from repro.locality.occurrence import occurrence_numbers
        from repro.runtime import cached_vertex_rank

        graph = datasets.load("p2p", "tiny")
        expected = rank_permutation(occurrence_numbers(graph, hops=1))
        np.testing.assert_array_equal(cached_vertex_rank(graph), expected)
        # Second call is a memory hit returning the identical array.
        assert cached_vertex_rank(graph) is cached_vertex_rank(graph)
