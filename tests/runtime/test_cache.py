"""The content-addressed artifact cache."""

import hashlib
import pickle

import pytest

from repro.runtime.cache import CACHE_VERSION, ArtifactCache, stable_hash
from repro.runtime.chaos import corrupt_entry


class TestStableHash:
    def test_dict_order_invariant(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_tuple_and_list_equivalent(self):
        assert stable_hash((1, 2, "x")) == stable_hash([1, 2, "x"])

    def test_distinct_values_distinct_hashes(self):
        assert stable_hash({"scale": "tiny"}) != stable_hash({"scale": "small"})

    def test_numpy_scalars_canonicalize(self):
        np = pytest.importorskip("numpy")
        assert stable_hash(np.int64(7)) == stable_hash(7)

    def test_non_canonical_key_rejected(self):
        with pytest.raises(TypeError, match="JSON-canonical"):
            stable_hash(object())


class TestArtifactCache:
    def test_roundtrip_memory(self, tmp_path):
        cache = ArtifactCache(root=tmp_path)
        cache.store("thing", {"k": 1}, [1, 2, 3])
        hit, value = cache.lookup("thing", {"k": 1})
        assert hit and value == [1, 2, 3]
        assert cache.stats.memory_hits == 1

    def test_miss(self, tmp_path):
        cache = ArtifactCache(root=tmp_path)
        hit, value = cache.lookup("thing", {"k": 1})
        assert not hit and value is None
        assert cache.stats.misses == 1

    def test_disk_tier_survives_new_instance(self, tmp_path):
        ArtifactCache(root=tmp_path).store("graph", {"n": "x"}, {"v": 42})
        fresh = ArtifactCache(root=tmp_path)
        hit, value = fresh.lookup("graph", {"n": "x"})
        assert hit and value == {"v": 42}
        assert fresh.stats.disk_hits == 1

    def test_get_or_create_runs_producer_once(self, tmp_path):
        cache = ArtifactCache(root=tmp_path)
        calls = []

        def producer():
            calls.append(1)
            return "value"

        assert cache.get_or_create("k", {"a": 1}, producer) == "value"
        assert cache.get_or_create("k", {"a": 1}, producer) == "value"
        assert len(calls) == 1

    def test_same_object_returned_in_process(self, tmp_path):
        cache = ArtifactCache(root=tmp_path)
        first = cache.get_or_create("k", {"a": 1}, lambda: {"payload": 1})
        second = cache.get_or_create("k", {"a": 1}, lambda: {"payload": 1})
        assert first is second

    def test_lru_eviction_bounded(self, tmp_path):
        cache = ArtifactCache(root=tmp_path, memory_items=2, use_disk=False)
        for i in range(5):
            cache.store("k", {"i": i}, i)
        assert len(cache._memory) == 2
        hit, _ = cache.lookup("k", {"i": 0})
        assert not hit  # evicted, and no disk tier to fall back on

    def test_memory_only_mode_writes_nothing(self, tmp_path):
        cache = ArtifactCache(root=tmp_path, use_disk=False)
        cache.store("k", {"a": 1}, "v")
        assert not any(tmp_path.iterdir())

    def test_corrupt_disk_entry_degrades_to_miss(self, tmp_path):
        cache = ArtifactCache(root=tmp_path)
        cache.store("k", {"a": 1}, "v")
        cache.clear_memory()
        path = cache.entry_path("k", {"a": 1})
        path.write_bytes(b"not a pickle")
        hit, _ = cache.lookup("k", {"a": 1})
        assert not hit
        assert cache.stats.quarantined == 1
        assert not path.exists()  # moved aside, not left to fail again

    def test_disk_entries_are_checksummed_envelopes(self, tmp_path):
        cache = ArtifactCache(root=tmp_path)
        cache.store("k", {"a": 1}, [1, 2])
        envelope = pickle.loads(cache.entry_path("k", {"a": 1}).read_bytes())
        assert envelope["cache_version"] == CACHE_VERSION
        payload = envelope["payload"]
        assert hashlib.sha256(payload).hexdigest() == envelope["sha256"]
        assert pickle.loads(payload) == [1, 2]

    def test_version_salt_changes_address(self, tmp_path, monkeypatch):
        cache = ArtifactCache(root=tmp_path)
        before = cache.digest({"a": 1})
        monkeypatch.setattr(
            "repro.runtime.cache.CACHE_VERSION", CACHE_VERSION + 1
        )
        assert cache.digest({"a": 1}) != before


class TestCacheIntegrity:
    """Corruption degrades to miss + quarantine — never exceptions or garbage.

    See docs/resilience.md: every on-disk entry is a checksummed envelope,
    verified on read; anything that fails verification is moved to
    ``<root>/quarantine/`` and counted in ``CacheStats.quarantined``.
    """

    KEY = {"a": 1}
    VALUE = {"payload": [1, 2, 3]}

    def _seeded(self, root):
        cache = ArtifactCache(root=root)
        cache.store("k", self.KEY, self.VALUE)
        cache.clear_memory()
        return cache, cache.entry_path("k", self.KEY)

    def _assert_quarantined(self, cache, path):
        hit, value = cache.lookup("k", self.KEY)
        assert not hit and value is None
        assert cache.stats.quarantined == 1
        assert cache.stats.misses == 1
        assert not path.exists()
        quarantine = cache.root / "quarantine"
        assert len(list(quarantine.iterdir())) == 1
        # The slot is usable again: a recompute stores and replays cleanly.
        cache.store("k", self.KEY, self.VALUE)
        cache.clear_memory()
        hit, value = cache.lookup("k", self.KEY)
        assert hit and value == self.VALUE
        assert cache.stats.quarantined == 1  # no new quarantine

    def test_truncated_entry(self, tmp_path):
        cache, path = self._seeded(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        self._assert_quarantined(cache, path)

    def test_bit_flipped_payload(self, tmp_path):
        cache, path = self._seeded(tmp_path)
        assert corrupt_entry(cache, "k", self.KEY)
        self._assert_quarantined(cache, path)

    def test_version_skew_entry(self, tmp_path):
        cache, path = self._seeded(tmp_path)
        payload = pickle.dumps(self.VALUE)
        stale = {
            "cache_version": CACHE_VERSION - 1,
            "sha256": hashlib.sha256(payload).hexdigest(),
            "payload": payload,
        }
        path.write_bytes(pickle.dumps(stale))
        self._assert_quarantined(cache, path)

    def test_pre_envelope_plain_pickle(self, tmp_path):
        """A bare pickle from before the envelope format reads as skew."""
        cache, path = self._seeded(tmp_path)
        path.write_bytes(pickle.dumps(self.VALUE))
        self._assert_quarantined(cache, path)

    def test_checksum_mismatch_with_valid_pickles(self, tmp_path):
        """A decodable envelope whose checksum lies still quarantines."""
        cache, path = self._seeded(tmp_path)
        payload = pickle.dumps(self.VALUE)
        lying = {
            "cache_version": CACHE_VERSION,
            "sha256": "0" * 64,
            "payload": payload,
        }
        path.write_bytes(pickle.dumps(lying))
        self._assert_quarantined(cache, path)

    def test_memory_tier_not_affected_by_disk_corruption(self, tmp_path):
        cache = ArtifactCache(root=tmp_path)
        cache.store("k", self.KEY, self.VALUE)
        path = cache.entry_path("k", self.KEY)
        path.write_bytes(b"garbage")
        hit, value = cache.lookup("k", self.KEY)  # memory tier still good
        assert hit and value == self.VALUE
        assert cache.stats.quarantined == 0


class TestDatasetMemoization:
    def test_load_served_from_disk_across_store_instances(self, tmp_path, monkeypatch):
        """Proxy graphs are generated once, then mmap'd from the store."""
        import repro.graph.store as store_mod
        from repro.experiments import datasets

        monkeypatch.setenv("GRAMER_CACHE_DIR", str(tmp_path))
        store_mod.reset_default_graph_store()
        spec = datasets.DATASETS["citeseer"]
        real_builder = spec.builders["tiny"]
        calls = {"n": 0}

        def counting_builder():
            calls["n"] += 1
            return real_builder()

        monkeypatch.setitem(spec.builders, "tiny", counting_builder)
        try:
            first = datasets.load("citeseer", "tiny")
            assert calls["n"] == 1
            # Fresh process simulation: new store singleton, same disk root.
            store_mod.reset_default_graph_store()
            again = datasets.load("citeseer", "tiny")
            assert calls["n"] == 1  # served from the materialized artifact
            assert again is not first
            assert sorted(again.edges()) == sorted(first.edges())
        finally:
            store_mod.reset_default_graph_store()

    def test_fsm_threshold_memoized(self, tmp_path, monkeypatch):
        import repro.runtime.cache as cache_mod
        from repro.experiments import datasets

        monkeypatch.setenv("GRAMER_CACHE_DIR", str(tmp_path))
        cache_mod.reset_default_cache()
        try:
            first = datasets.fsm_threshold("mico", "tiny")
            stats = cache_mod.default_cache().stats
            hits_before = stats.memory_hits
            assert datasets.fsm_threshold("mico", "tiny") == first
            assert stats.memory_hits > hits_before
        finally:
            cache_mod.reset_default_cache()
