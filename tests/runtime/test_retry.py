"""Retry policy: classification, deterministic backoff, run_spec wiring."""

import pickle
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.runtime import (
    ArtifactCache,
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
    RetryPolicy,
    classify_error,
    make_jobspec,
    run_spec,
)
from repro.runtime.retry import DEFAULT_RETRY, NO_RETRY, PERMANENT, TRANSIENT


class TestClassification:
    @pytest.mark.parametrize(
        "error",
        [
            OSError("disk hiccup"),
            TimeoutError("too slow"),
            BrokenProcessPool("worker died"),
            pickle.PicklingError("unpicklable"),
            EOFError(),
            MemoryError(),
            InjectedFaultError("chaos"),
            ConnectionResetError(),
        ],
    )
    def test_host_breakage_is_transient(self, error):
        assert classify_error(error) == TRANSIENT

    @pytest.mark.parametrize(
        "error",
        [
            ValueError("bad config"),
            AssertionError("invariant broken"),
            KeyError("unknown backend"),
            TypeError("wrong arg"),
            RuntimeError("model error"),
        ],
    )
    def test_job_defects_are_permanent(self, error):
        assert classify_error(error) == PERMANENT

    def test_string_messages_classify_like_their_type(self):
        assert classify_error("TimeoutError: job exceeded 5s") == TRANSIENT
        assert classify_error("BrokenProcessPool: abrupt death") == TRANSIENT
        assert classify_error("ValueError: unknown scale") == PERMANENT
        assert (
            classify_error(
                "concurrent.futures.process.BrokenProcessPool: x"
            )
            == TRANSIENT
        )

    def test_unknown_types_default_to_permanent(self):
        class WeirdError(Exception):
            pass

        assert classify_error(WeirdError()) == PERMANENT
        assert classify_error("WeirdError: who knows") == PERMANENT


class TestRetryPolicy:
    def test_should_retry_respects_budget_and_class(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry(OSError(), 1)
        assert policy.should_retry(OSError(), 2)
        assert not policy.should_retry(OSError(), 3)  # budget exhausted
        assert not policy.should_retry(ValueError(), 1)  # permanent

    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(
            base_delay_s=0.1, max_delay_s=0.5, jitter=0.0
        )
        assert policy.delay_s(1) == pytest.approx(0.1)
        assert policy.delay_s(2) == pytest.approx(0.2)
        assert policy.delay_s(3) == pytest.approx(0.4)
        assert policy.delay_s(4) == pytest.approx(0.5)  # capped
        assert policy.delay_s(9) == pytest.approx(0.5)

    def test_jitter_is_deterministic_and_seeded(self):
        a = RetryPolicy(seed=1)
        b = RetryPolicy(seed=1)
        c = RetryPolicy(seed=2)
        assert a.delay_s(1, token="job-x") == b.delay_s(1, token="job-x")
        assert a.delay_s(1, token="job-x") != c.delay_s(1, token="job-x")
        assert a.delay_s(1, token="job-x") != a.delay_s(1, token="job-y")

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(base_delay_s=0.1, jitter=0.5)
        for attempt in range(1, 5):
            for token in ("a", "b", "c"):
                base = min(0.1 * 2 ** (attempt - 1), policy.max_delay_s)
                delay = policy.delay_s(attempt, token=token)
                assert 0.5 * base <= delay <= 1.5 * base

    def test_invalid_policies_rejected(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError, match="1-based"):
            RetryPolicy().delay_s(0)

    def test_default_policies_are_picklable(self):
        for policy in (DEFAULT_RETRY, NO_RETRY):
            assert pickle.loads(pickle.dumps(policy)) == policy


FAST = RetryPolicy(base_delay_s=0.001, max_delay_s=0.002)


class TestRunSpecRetry:
    SPEC = make_jobspec("gramer", "3-CF", dataset="citeseer", scale="tiny")

    def test_transient_fault_recovers_with_identical_result(self, tmp_path):
        clean = run_spec(self.SPEC, cache=ArtifactCache(root=tmp_path / "a"))
        plan = FaultPlan(faults=(FaultSpec(kind="raise", attempt=1),))
        recovered = run_spec(
            self.SPEC,
            cache=ArtifactCache(root=tmp_path / "b"),
            retry=FAST,
            faults=plan,
        )
        assert recovered.ok
        assert recovered.retries == 1
        assert recovered.fingerprint() == clean.fingerprint()

    def test_transient_exhaustion_reports_attempts(self, tmp_path):
        plan = FaultPlan(
            faults=tuple(
                FaultSpec(kind="raise", attempt=k) for k in (1, 2, 3)
            )
        )
        result = run_spec(
            self.SPEC,
            cache=ArtifactCache(root=tmp_path),
            retry=FAST,
            faults=plan,
        )
        assert not result.ok
        assert result.retries == 2  # 3 attempts, all injected failures
        assert "InjectedFaultError" in result.error

    def test_permanent_failure_never_retried(self, tmp_path):
        spec = make_jobspec("gramer", "3-CF", dataset="atlantis", scale="tiny")
        result = run_spec(spec, cache=ArtifactCache(root=tmp_path), retry=FAST)
        assert not result.ok
        assert result.retries == 0

    def test_no_retry_policy_fails_on_first_transient(self, tmp_path):
        plan = FaultPlan(faults=(FaultSpec(kind="raise", attempt=1),))
        result = run_spec(
            self.SPEC,
            cache=ArtifactCache(root=tmp_path),
            retry=NO_RETRY,
            faults=plan,
        )
        assert not result.ok and result.retries == 0

    def test_first_attempt_offsets_fault_numbering(self, tmp_path):
        """A resubmitted job (attempt 2) skips faults scripted for attempt 1."""
        plan = FaultPlan(faults=(FaultSpec(kind="raise", attempt=1),))
        result = run_spec(
            self.SPEC,
            cache=ArtifactCache(root=tmp_path),
            retry=FAST,
            faults=plan,
            first_attempt=2,
        )
        assert result.ok and result.retries == 1
