"""Run ledger: append/replay roundtrip, torn-line tolerance, attempt counts."""

import json

from repro.runtime import (
    RunLedger,
    load_ledger,
    make_jobspec,
    spec_digest,
)
from repro.runtime.spec import JobResult, failed_result

SPEC_A = make_jobspec("gramer", "3-CF", dataset="citeseer", scale="tiny")
SPEC_B = make_jobspec("gramer", "3-MC", dataset="wiki-vote", scale="tiny")


def ok_result(spec, retries=0):
    return JobResult(
        spec=spec,
        system="GRAMER",
        ok=True,
        seconds=1.25,
        energy_j=0.5,
        detail={},
        wall_seconds=0.01,
        retries=retries,
    )


class TestRoundTrip:
    def test_empty_or_missing_ledger_loads_empty(self, tmp_path):
        state = load_ledger(tmp_path / "never-written.jsonl")
        assert state.entries == {} and state.attempts == {}

    def test_finish_records_replay_to_final_state(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLedger(path) as ledger:
            ledger.sweep_started(total=2)
            ledger.job_started(SPEC_A, attempt=1)
            ledger.job_finished(ok_result(SPEC_A, retries=1))
            ledger.job_started(SPEC_B, attempt=1)
            ledger.job_finished(failed_result(SPEC_B, "ValueError: nope"))
        state = load_ledger(path)
        entry_a = state.entry_for(SPEC_A)
        assert entry_a is not None and entry_a.completed
        assert entry_a.retries == 1
        assert entry_a.seconds == 1.25 and entry_a.energy_j == 0.5
        assert entry_a.system == "GRAMER"
        entry_b = state.entry_for(SPEC_B)
        assert entry_b is not None and not entry_b.completed
        assert entry_b.status == "failed"
        assert "ValueError" in (entry_b.error or "")
        assert state.is_completed(SPEC_A) and not state.is_completed(SPEC_B)

    def test_started_but_never_finished_reads_as_incomplete(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLedger(path) as ledger:
            ledger.job_started(SPEC_A, attempt=1)
        state = load_ledger(path)
        entry = state.entry_for(SPEC_A)
        assert entry is not None and entry.status == "started"
        assert not state.is_completed(SPEC_A)

    def test_later_records_win(self, tmp_path):
        """A re-run (resume) overwrites an earlier failure for the digest."""
        path = tmp_path / "run.jsonl"
        with RunLedger(path) as ledger:
            ledger.job_finished(failed_result(SPEC_A, "TimeoutError: slow"))
            ledger.job_started(SPEC_A, attempt=2)
            ledger.job_finished(ok_result(SPEC_A))
        state = load_ledger(path)
        assert state.is_completed(SPEC_A)

    def test_attempt_counts_track_start_events(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLedger(path) as ledger:
            ledger.job_started(SPEC_A, attempt=1)
            ledger.job_started(SPEC_A, attempt=2)
            ledger.job_started(SPEC_B, attempt=1)
            ledger.job_finished(ok_result(SPEC_A))
            ledger.job_finished(ok_result(SPEC_B))
        state = load_ledger(path)
        assert state.attempts[spec_digest(SPEC_A)] == 2
        assert state.attempts[spec_digest(SPEC_B)] == 1


class TestCrashTolerance:
    def test_torn_final_line_is_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLedger(path) as ledger:
            ledger.job_finished(ok_result(SPEC_A))
            ledger.job_started(SPEC_B, attempt=1)
        # Simulate a crash mid-write: chop the last line in half.
        text = path.read_text()
        path.write_text(text[: len(text) - 12])
        state = load_ledger(path)
        assert state.truncated_lines == 1
        assert state.is_completed(SPEC_A)  # earlier history survives
        assert not state.is_completed(SPEC_B)

    def test_garbage_lines_are_counted_and_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLedger(path) as ledger:
            ledger.job_finished(ok_result(SPEC_A))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write('["a", "list", "record"]\n')
            handle.write("\n")  # blank lines are simply ignored
        state = load_ledger(path)
        assert state.truncated_lines == 2
        assert state.is_completed(SPEC_A)

    def test_each_record_is_one_complete_json_line(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLedger(path) as ledger:
            ledger.sweep_started(total=1)
            ledger.job_started(SPEC_A, attempt=1)
            ledger.job_finished(ok_result(SPEC_A))
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        for line in lines:
            record = json.loads(line)  # every line parses standalone
            assert isinstance(record, dict) and "event" in record


class TestDigests:
    def test_digest_is_stable_and_spec_sensitive(self):
        assert spec_digest(SPEC_A) == spec_digest(SPEC_A)
        assert spec_digest(SPEC_A) != spec_digest(SPEC_B)

    def test_append_mode_accumulates_across_handles(self, tmp_path):
        """Reopening the ledger (a resumed sweep) appends, never truncates."""
        path = tmp_path / "run.jsonl"
        with RunLedger(path) as ledger:
            ledger.job_finished(failed_result(SPEC_A, "OSError: flaky"))
        with RunLedger(path) as ledger:
            ledger.job_finished(ok_result(SPEC_A, retries=1))
        state = load_ledger(path)
        assert state.is_completed(SPEC_A)
        entry = state.entry_for(SPEC_A)
        assert entry is not None and entry.retries == 1
