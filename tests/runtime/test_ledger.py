"""Run ledger: append/replay roundtrip, torn-line tolerance, attempt counts."""

import json

import pytest

from repro.runtime import (
    LEDGER_VERSION,
    LedgerVersionError,
    RunLedger,
    load_ledger,
    make_jobspec,
    spec_digest,
)
from repro.runtime.spec import JobResult, failed_result

SPEC_A = make_jobspec("gramer", "3-CF", dataset="citeseer", scale="tiny")
SPEC_B = make_jobspec("gramer", "3-MC", dataset="wiki-vote", scale="tiny")


def ok_result(spec, retries=0):
    return JobResult(
        spec=spec,
        system="GRAMER",
        ok=True,
        seconds=1.25,
        energy_j=0.5,
        detail={},
        wall_seconds=0.01,
        retries=retries,
    )


class TestRoundTrip:
    def test_empty_or_missing_ledger_loads_empty(self, tmp_path):
        state = load_ledger(tmp_path / "never-written.jsonl")
        assert state.entries == {} and state.attempts == {}

    def test_finish_records_replay_to_final_state(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLedger(path) as ledger:
            ledger.sweep_started(total=2)
            ledger.job_started(SPEC_A, attempt=1)
            ledger.job_finished(ok_result(SPEC_A, retries=1))
            ledger.job_started(SPEC_B, attempt=1)
            ledger.job_finished(failed_result(SPEC_B, "ValueError: nope"))
        state = load_ledger(path)
        entry_a = state.entry_for(SPEC_A)
        assert entry_a is not None and entry_a.completed
        assert entry_a.retries == 1
        assert entry_a.seconds == 1.25 and entry_a.energy_j == 0.5
        assert entry_a.system == "GRAMER"
        entry_b = state.entry_for(SPEC_B)
        assert entry_b is not None and not entry_b.completed
        assert entry_b.status == "failed"
        assert "ValueError" in (entry_b.error or "")
        assert state.is_completed(SPEC_A) and not state.is_completed(SPEC_B)

    def test_started_but_never_finished_reads_as_incomplete(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLedger(path) as ledger:
            ledger.job_started(SPEC_A, attempt=1)
        state = load_ledger(path)
        entry = state.entry_for(SPEC_A)
        assert entry is not None and entry.status == "started"
        assert not state.is_completed(SPEC_A)

    def test_later_records_win(self, tmp_path):
        """A re-run (resume) overwrites an earlier failure for the digest."""
        path = tmp_path / "run.jsonl"
        with RunLedger(path) as ledger:
            ledger.job_finished(failed_result(SPEC_A, "TimeoutError: slow"))
            ledger.job_started(SPEC_A, attempt=2)
            ledger.job_finished(ok_result(SPEC_A))
        state = load_ledger(path)
        assert state.is_completed(SPEC_A)

    def test_attempt_counts_track_start_events(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLedger(path) as ledger:
            ledger.job_started(SPEC_A, attempt=1)
            ledger.job_started(SPEC_A, attempt=2)
            ledger.job_started(SPEC_B, attempt=1)
            ledger.job_finished(ok_result(SPEC_A))
            ledger.job_finished(ok_result(SPEC_B))
        state = load_ledger(path)
        assert state.attempts[spec_digest(SPEC_A)] == 2
        assert state.attempts[spec_digest(SPEC_B)] == 1


class TestCrashTolerance:
    def test_torn_final_line_is_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLedger(path) as ledger:
            ledger.job_finished(ok_result(SPEC_A))
            ledger.job_started(SPEC_B, attempt=1)
        # Simulate a crash mid-write: chop the last line in half.
        text = path.read_text()
        path.write_text(text[: len(text) - 12])
        state = load_ledger(path)
        assert state.truncated_lines == 1
        assert state.is_completed(SPEC_A)  # earlier history survives
        assert not state.is_completed(SPEC_B)

    def test_garbage_lines_are_counted_and_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLedger(path) as ledger:
            ledger.job_finished(ok_result(SPEC_A))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write('["a", "list", "record"]\n')
            handle.write("\n")  # blank lines are simply ignored
        state = load_ledger(path)
        assert state.truncated_lines == 2
        assert state.is_completed(SPEC_A)

    def test_each_record_is_one_complete_json_line(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLedger(path) as ledger:
            ledger.sweep_started(total=1)
            ledger.job_started(SPEC_A, attempt=1)
            ledger.job_finished(ok_result(SPEC_A))
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        for line in lines:
            record = json.loads(line)  # every line parses standalone
            assert isinstance(record, dict) and "event" in record


class TestVersioning:
    """Reject-newer / accept-older: the ledger_version header contract."""

    def test_header_declares_current_version(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLedger(path) as ledger:
            ledger.sweep_started(total=1)
        header = json.loads(path.read_text().splitlines()[0])
        assert header["ledger_version"] == LEDGER_VERSION
        assert load_ledger(path).version == LEDGER_VERSION

    def test_newer_version_is_rejected_with_clear_error(self, tmp_path):
        path = tmp_path / "future.jsonl"
        header = {
            "event": "sweep_start",
            "ledger_version": LEDGER_VERSION + 1,
            "total": 1,
            "note": "",
        }
        path.write_text(json.dumps(header) + "\n")
        with pytest.raises(LedgerVersionError) as excinfo:
            load_ledger(path)
        message = str(excinfo.value)
        assert str(LEDGER_VERSION + 1) in message
        assert str(LEDGER_VERSION) in message
        assert "future.jsonl" in message

    def test_older_version_replays_fine(self, tmp_path):
        """A v1 ledger (no worker/claim records) must keep resuming."""
        path = tmp_path / "v1.jsonl"
        digest = spec_digest(SPEC_A)
        records = [
            {"event": "sweep_start", "ledger_version": 1, "total": 1,
             "note": ""},
            {"event": "start", "digest": digest,
             "label": SPEC_A.label(), "attempt": 1},
            {"event": "finish", "digest": digest,
             "label": SPEC_A.label(), "status": "ok", "retries": 0,
             "wall_seconds": 0.01, "seconds": 1.0, "energy_j": 0.1,
             "system": "GRAMER", "error": None, "cached": False},
        ]
        path.write_text(
            "".join(json.dumps(r) + "\n" for r in records)
        )
        state = load_ledger(path)
        assert state.version == 1
        assert state.is_completed(SPEC_A)

    def test_versionless_seed_ledger_replays_fine(self, tmp_path):
        """Pre-versioning ledgers have no header field at all."""
        path = tmp_path / "v0.jsonl"
        digest = spec_digest(SPEC_A)
        records = [
            {"event": "sweep_start", "total": 1, "note": ""},
            {"event": "finish", "digest": digest,
             "label": SPEC_A.label(), "status": "ok", "retries": 0,
             "wall_seconds": 0.01, "seconds": 1.0, "energy_j": 0.1,
             "system": "GRAMER", "error": None, "cached": False},
        ]
        path.write_text(
            "".join(json.dumps(r) + "\n" for r in records)
        )
        state = load_ledger(path)
        assert state.version is None
        assert state.is_completed(SPEC_A)

    def test_unknown_event_kinds_are_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLedger(path) as ledger:
            ledger.job_finished(ok_result(SPEC_A))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(
                json.dumps({"event": "telemetry", "digest": "zzz"}) + "\n"
            )
        state = load_ledger(path)
        assert state.is_completed(SPEC_A)
        assert state.truncated_lines == 0  # unknown ≠ garbage


class TestClaimRecords:
    def test_claim_lifecycle_replays_into_audit_trail(self, tmp_path):
        path = tmp_path / "run.jsonl"
        digest = spec_digest(SPEC_A)
        with RunLedger(path, worker="w1") as ledger:
            ledger.claim_event(digest, SPEC_A.label(), 1, "claimed")
        with RunLedger(path, worker="w2") as ledger:
            ledger.claim_event(digest, SPEC_A.label(), 2, "takeover")
            ledger.job_started(SPEC_A, attempt=1)
            ledger.job_finished(ok_result(SPEC_A))
            ledger.claim_event(digest, SPEC_A.label(), 2, "released")
        state = load_ledger(path)
        assert [c.action for c in state.claims] == [
            "claimed", "takeover", "released",
        ]
        assert state.claims[1].worker == "w2"
        assert state.claims[1].generation == 2
        assert state.takeover_digests() == {digest}
        assert state.finish_counts[digest] == 1

    def test_worker_provenance_lands_in_records(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLedger(path, worker="host-7") as ledger:
            ledger.job_started(SPEC_A, attempt=1)
            ledger.job_finished(ok_result(SPEC_A))
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert all(r["worker"] == "host-7" for r in records)

    def test_terminal_digests_cover_ok_and_failed(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLedger(path) as ledger:
            ledger.job_finished(ok_result(SPEC_A))
            ledger.job_finished(failed_result(SPEC_B, "ValueError: perm"))
        state = load_ledger(path)
        assert state.terminal_digests() == {
            spec_digest(SPEC_A), spec_digest(SPEC_B),
        }
        assert state.completed_digests() == {spec_digest(SPEC_A)}


class TestDigests:
    def test_digest_is_stable_and_spec_sensitive(self):
        assert spec_digest(SPEC_A) == spec_digest(SPEC_A)
        assert spec_digest(SPEC_A) != spec_digest(SPEC_B)

    def test_append_mode_accumulates_across_handles(self, tmp_path):
        """Reopening the ledger (a resumed sweep) appends, never truncates."""
        path = tmp_path / "run.jsonl"
        with RunLedger(path) as ledger:
            ledger.job_finished(failed_result(SPEC_A, "OSError: flaky"))
        with RunLedger(path) as ledger:
            ledger.job_finished(ok_result(SPEC_A, retries=1))
        state = load_ledger(path)
        assert state.is_completed(SPEC_A)
        entry = state.entry_for(SPEC_A)
        assert entry is not None and entry.retries == 1
