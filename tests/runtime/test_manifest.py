"""Merkle manifests: seal, load, verify, and every tamper route."""

import json

import pytest

from repro.runtime import (
    JOB_KIND,
    ArtifactCache,
    ManifestError,
    build_manifest,
    load_manifest,
    make_jobspec,
    run_spec,
    seal_manifest,
    spec_digest,
    verify_manifest,
)
from repro.runtime.manifest import leaf_hash, merkle_root

SPECS = [
    make_jobspec("gramer", "3-CF", dataset="citeseer", scale="tiny"),
    make_jobspec("fractal", "3-CF", dataset="citeseer", scale="tiny"),
]


@pytest.fixture
def cache(tmp_path):
    return ArtifactCache(root=tmp_path / "cache")


@pytest.fixture
def full_cache(cache):
    """A cache holding every SPECS artifact (a completed tiny sweep)."""
    for spec in SPECS:
        result = run_spec(spec, cache=cache)
        assert result.ok
    return cache


class TestMerkle:
    def test_empty_root_is_defined(self):
        assert merkle_root([]) == merkle_root([])

    def test_root_changes_with_any_leaf(self):
        a = leaf_hash({"spec_digest": "x"})
        b = leaf_hash({"spec_digest": "y"})
        assert merkle_root([a, b]) != merkle_root([a])
        assert merkle_root([a, b]) != merkle_root([b, a])

    def test_odd_leaf_counts_fold(self):
        hashes = [leaf_hash({"i": i}) for i in range(5)]
        assert len(merkle_root(hashes)) == 64


class TestSealRoundTrip:
    def test_seal_then_load_preserves_everything(
        self, tmp_path, full_cache
    ):
        path = tmp_path / "m.json"
        sealed = seal_manifest(path, SPECS, full_cache)
        loaded = load_manifest(path)
        assert loaded.root == sealed.root
        assert loaded.spec_digests() == {spec_digest(s) for s in SPECS}
        assert loaded.grid["cells"] == len(SPECS)
        assert sorted(loaded.grid["backends"]) == ["fractal", "gramer"]

    def test_sealing_an_incomplete_grid_names_the_missing_cells(
        self, cache
    ):
        result = run_spec(SPECS[0], cache=cache)
        assert result.ok
        with pytest.raises(ManifestError) as excinfo:
            build_manifest(SPECS, cache)
        assert spec_digest(SPECS[1]) in str(excinfo.value)

    def test_newer_manifest_version_is_rejected(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({
            "manifest_version": 99, "root": "", "grid": {}, "leaves": [],
        }))
        with pytest.raises(ManifestError):
            load_manifest(path)

    def test_garbage_file_is_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{torn")
        with pytest.raises(ManifestError):
            load_manifest(path)


class TestVerify:
    def test_intact_grid_verifies(self, tmp_path, full_cache):
        path = tmp_path / "m.json"
        manifest = seal_manifest(path, SPECS, full_cache)
        report = verify_manifest(manifest, full_cache, SPECS)
        assert report.ok and report.root_ok

    def test_flipped_artifact_byte_names_the_exact_digest(
        self, tmp_path, full_cache
    ):
        manifest = seal_manifest(tmp_path / "m.json", SPECS, full_cache)
        victim = SPECS[0]
        entry = full_cache.entry_path(JOB_KIND, victim.cache_key())
        data = bytearray(entry.read_bytes())
        data[len(data) // 2] ^= 0xFF
        entry.write_bytes(bytes(data))
        report = verify_manifest(manifest, full_cache, SPECS)
        assert not report.ok
        assert report.corrupt == [spec_digest(victim)]
        # quarantine-and-recompute: the bad entry has been moved aside,
        # so a re-run recomputes it rather than re-reading garbage.
        assert not entry.exists()
        assert full_cache.stats.quarantined == 1

    def test_deleted_artifact_reports_missing(self, tmp_path, full_cache):
        manifest = seal_manifest(tmp_path / "m.json", SPECS, full_cache)
        victim = SPECS[1]
        full_cache.entry_path(JOB_KIND, victim.cache_key()).unlink()
        report = verify_manifest(manifest, full_cache, SPECS)
        assert report.missing == [spec_digest(victim)]
        assert not report.corrupt

    def test_tampered_manifest_leaf_breaks_the_root(
        self, tmp_path, full_cache
    ):
        path = tmp_path / "m.json"
        seal_manifest(path, SPECS, full_cache)
        record = json.loads(path.read_text())
        record["leaves"][0]["artifact_sha256"] = "f" * 64
        path.write_text(json.dumps(record))
        report = verify_manifest(load_manifest(path), full_cache, SPECS)
        assert not report.root_ok
        assert not report.ok

    def test_partial_manifest_fails_completeness_against_grid(
        self, tmp_path, full_cache
    ):
        manifest = seal_manifest(
            tmp_path / "m.json", SPECS[:1], full_cache
        )
        report = verify_manifest(manifest, full_cache, SPECS)
        assert report.unmanifested == [spec_digest(SPECS[1])]
        assert not report.ok

    def test_recompute_after_quarantine_verifies_again(
        self, tmp_path, full_cache
    ):
        """The full corruption loop: tamper → verify names it →
        recompute → verify passes with the same sealed root."""
        path = tmp_path / "m.json"
        manifest = seal_manifest(path, SPECS, full_cache)
        victim = SPECS[0]
        entry = full_cache.entry_path(JOB_KIND, victim.cache_key())
        data = bytearray(entry.read_bytes())
        data[-3] ^= 0xFF
        entry.write_bytes(bytes(data))
        assert not verify_manifest(manifest, full_cache, SPECS).ok
        rerun = run_spec(victim, cache=full_cache)
        assert rerun.ok and not rerun.cached
        report = verify_manifest(manifest, full_cache, SPECS)
        # Bytes differ (fresh wall time) but the deterministic
        # fingerprint matches: same result, reported as recomputed.
        assert report.ok
        assert report.recomputed == [spec_digest(victim)]
        assert "recomputed" in report.summary()
