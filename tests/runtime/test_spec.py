"""JobSpec/JobResult invariants."""

import pickle

import pytest

from repro.runtime.spec import JobResult, failed_result, make_jobspec


class TestJobSpec:
    def test_requires_exactly_one_graph_source(self):
        with pytest.raises(ValueError, match="exactly one"):
            make_jobspec("gramer", "3-CF")
        with pytest.raises(ValueError, match="exactly one"):
            make_jobspec("gramer", "3-CF", dataset="p2p", graph_path="x.txt")

    def test_config_normalized_sorted(self):
        a = make_jobspec("gramer", "3-CF", dataset="p2p",
                         config={"num_pus": 2, "lam": 0.5})
        b = make_jobspec("gramer", "3-CF", dataset="p2p",
                         config={"lam": 0.5, "num_pus": 2})
        assert a == b
        assert a.config == (("lam", 0.5), ("num_pus", 2))

    def test_non_scalar_override_rejected(self):
        with pytest.raises(TypeError, match="scalar"):
            make_jobspec("gramer", "3-CF", dataset="p2p",
                         config={"bad": [1, 2]})

    def test_hashable_and_picklable(self):
        spec = make_jobspec("gramer", "3-CF", dataset="p2p", scale="tiny")
        assert hash(spec) == hash(pickle.loads(pickle.dumps(spec)))

    def test_cache_key_covers_result_determining_fields(self):
        base = make_jobspec("gramer", "3-CF", dataset="p2p", scale="tiny")
        for other in (
            make_jobspec("fractal", "3-CF", dataset="p2p", scale="tiny"),
            make_jobspec("gramer", "4-CF", dataset="p2p", scale="tiny"),
            make_jobspec("gramer", "3-CF", dataset="mico", scale="tiny"),
            make_jobspec("gramer", "3-CF", dataset="p2p", scale="small"),
            make_jobspec("gramer", "3-CF", dataset="p2p", scale="tiny",
                         config={"num_pus": 2}),
            make_jobspec("gramer", "3-CF", dataset="p2p", scale="tiny", seed=1),
        ):
            assert base.cache_key() != other.cache_key()

    def test_label_names_backend_app_graph(self):
        spec = make_jobspec("rstream", "4-MC", dataset="lj", scale="full")
        assert spec.label() == "rstream:4-MC@lj/full"


class TestJobResult:
    def _result(self, **overrides):
        spec = make_jobspec("gramer", "3-CF", dataset="p2p", scale="tiny")
        fields = dict(
            spec=spec, system="GRAMER", ok=True, seconds=1.0,
            energy_j=2.0, detail={"cycles": 10}, wall_seconds=0.5,
        )
        fields.update(overrides)
        return JobResult(**fields)

    def test_fingerprint_ignores_wall_time_and_cache_flag(self):
        a = self._result(wall_seconds=0.1)
        b = self._result(wall_seconds=9.9).as_cached()
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_sees_deterministic_fields(self):
        assert (
            self._result(seconds=1.0).fingerprint()
            != self._result(seconds=2.0).fingerprint()
        )
        assert (
            self._result(detail={"cycles": 10}).fingerprint()
            != self._result(detail={"cycles": 11}).fingerprint()
        )

    def test_failed_result_captures_exception(self):
        spec = make_jobspec("gramer", "3-CF", dataset="p2p")
        failure = failed_result(spec, ValueError("boom"))
        assert not failure.ok
        assert failure.seconds is None
        assert failure.error == "ValueError: boom"
        assert failure.detail["error_type"] == "ValueError"
