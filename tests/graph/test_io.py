"""Edge-list IO round trips and parsing."""

from pathlib import Path

import pytest

from repro.graph.generators import powerlaw_cluster
from repro.graph.io import load_edge_list, parse_edge_list, save_edge_list

FIXTURES = Path(__file__).parent / "fixtures"


class TestParse:
    def test_basic(self):
        g = parse_edge_list(["0 1", "1 2"])
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_comments_and_blanks_skipped(self):
        g = parse_edge_list(["# SNAP header", "", "0 1", "  ", "# more", "1 2"])
        assert g.num_edges == 2

    def test_sparse_ids_compacted(self):
        g = parse_edge_list(["100 900", "900 5000"])
        assert g.num_vertices == 3
        assert g.has_edge(0, 1) and g.has_edge(1, 2)

    def test_extra_columns_ignored(self):
        g = parse_edge_list(["0 1 42"])
        assert g.num_edges == 1

    def test_bad_line_raises_with_lineno(self):
        with pytest.raises(ValueError, match="line 2"):
            parse_edge_list(["0 1", "zzz"])

    def test_non_integer_raises(self):
        with pytest.raises(ValueError, match="non-integer"):
            parse_edge_list(["a b"])


class TestRealFormatQuirks:
    """Real SNAP files: CRLF, comments, sparse IDs, duplicate directed
    pairs — including duplicates that straddle parser chunk boundaries."""

    FIXTURE = FIXTURES / "snap_tiny.txt"

    def test_fixture_really_is_crlf(self):
        assert b"\r\n" in self.FIXTURE.read_bytes()

    def test_snap_fixture_parses(self):
        g = load_edge_list(self.FIXTURE)
        # IDs {7, 42, 100, 900, 5000} compact to 0..4; the reversed and
        # repeated (100, 900) records collapse to one undirected edge.
        assert g.num_vertices == 5
        assert g.num_edges == 5
        assert g.has_edge(2, 3)  # 100 -- 900

    def test_crlf_and_trailing_whitespace_lines(self):
        g = parse_edge_list(["0 1\r\n", "1 2 \n", "2 0\t\r\n", "  \r\n"])
        assert g.num_vertices == 3
        assert g.num_edges == 3

    def test_duplicates_across_chunk_boundaries(self):
        # chunk_lines=2 forces the duplicate pairs into different chunks;
        # de-duplication is global, so chunking cannot change the graph.
        lines = ["0 1", "1 0", "0 1", "2 1", "1 2", "0 2"]
        chunked = parse_edge_list(lines, chunk_lines=2)
        whole = parse_edge_list(lines)
        assert chunked.num_edges == whole.num_edges == 3
        assert sorted(chunked.edges()) == sorted(whole.edges())

    def test_any_chunking_matches_unchunked(self):
        g = powerlaw_cluster(80, 3, 0.2, seed=9)
        lines = [f"{u} {v}" for u, v in g.edges()]
        for chunk_lines in (1, 3, 7, 10_000):
            h = parse_edge_list(lines, chunk_lines=chunk_lines)
            assert sorted(h.edges()) == sorted(g.edges())

    def test_load_edge_list_chunked(self, tmp_path):
        g = powerlaw_cluster(60, 2, 0.2, seed=10)
        target = tmp_path / "g.txt"
        save_edge_list(g, target)
        h = load_edge_list(target, chunk_lines=5)
        assert sorted(h.edges()) == sorted(g.edges())

    def test_error_lineno_survives_chunking(self):
        with pytest.raises(ValueError, match="line 4"):
            parse_edge_list(["0 1", "1 2", "2 3", "oops"], chunk_lines=2)

    def test_file_changed_between_passes(self, tmp_path):
        """The two-pass loader refuses a file that shrank mid-load."""
        import repro.graph.io as io_mod

        target = tmp_path / "grew.txt"
        target.write_text("0 1\n1 2\n")
        original = io_mod._parse_chunk

        def shrinking(chunk, comment_prefix):
            target.write_text("0 1\n")
            return original(chunk[:1], comment_prefix)

        io_mod._parse_chunk = shrinking
        try:
            with pytest.raises(ValueError, match="shrank"):
                load_edge_list(target)
        finally:
            io_mod._parse_chunk = original


class TestRoundTrip:
    def test_save_load(self, tmp_path):
        g = powerlaw_cluster(80, 3, 0.2, seed=6)
        target = tmp_path / "graph.txt"
        save_edge_list(g, target)
        h = load_edge_list(target)
        assert h.num_vertices == g.num_vertices
        assert sorted(h.edges()) == sorted(g.edges())

    def test_header_comment_written(self, tmp_path):
        g = powerlaw_cluster(30, 2, seed=1)
        target = tmp_path / "g.txt"
        save_edge_list(g, target)
        assert target.read_text().startswith("#")
