"""Edge-list IO round trips and parsing."""

import pytest

from repro.graph.generators import powerlaw_cluster
from repro.graph.io import load_edge_list, parse_edge_list, save_edge_list


class TestParse:
    def test_basic(self):
        g = parse_edge_list(["0 1", "1 2"])
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_comments_and_blanks_skipped(self):
        g = parse_edge_list(["# SNAP header", "", "0 1", "  ", "# more", "1 2"])
        assert g.num_edges == 2

    def test_sparse_ids_compacted(self):
        g = parse_edge_list(["100 900", "900 5000"])
        assert g.num_vertices == 3
        assert g.has_edge(0, 1) and g.has_edge(1, 2)

    def test_extra_columns_ignored(self):
        g = parse_edge_list(["0 1 42"])
        assert g.num_edges == 1

    def test_bad_line_raises_with_lineno(self):
        with pytest.raises(ValueError, match="line 2"):
            parse_edge_list(["0 1", "zzz"])

    def test_non_integer_raises(self):
        with pytest.raises(ValueError, match="non-integer"):
            parse_edge_list(["a b"])


class TestRoundTrip:
    def test_save_load(self, tmp_path):
        g = powerlaw_cluster(80, 3, 0.2, seed=6)
        target = tmp_path / "graph.txt"
        save_edge_list(g, target)
        h = load_edge_list(target)
        assert h.num_vertices == g.num_vertices
        assert sorted(h.edges()) == sorted(g.edges())

    def test_header_comment_written(self, tmp_path):
        g = powerlaw_cluster(30, 2, seed=1)
        target = tmp_path / "g.txt"
        save_edge_list(g, target)
        assert target.read_text().startswith("#")
