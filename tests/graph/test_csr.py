"""CSRGraph construction, queries, and transformations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import CSRGraph

from ..conftest import small_graphs


class TestConstruction:
    def test_simple_triangle(self):
        g = CSRGraph(3, [(0, 1), (1, 2), (0, 2)])
        assert g.num_vertices == 3
        assert g.num_edges == 3
        assert all(g.degree(v) == 2 for v in range(3))

    def test_duplicate_edges_dropped(self):
        g = CSRGraph(3, [(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1

    def test_self_loops_dropped(self):
        g = CSRGraph(3, [(0, 0), (1, 1), (0, 1)])
        assert g.num_edges == 1

    def test_empty_graph(self):
        g = CSRGraph(5, [])
        assert g.num_edges == 0
        assert list(g.edges()) == []

    def test_zero_vertices(self):
        g = CSRGraph(0, [])
        assert g.num_vertices == 0

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            CSRGraph(3, [(0, 3)])
        with pytest.raises(ValueError, match="out of range"):
            CSRGraph(3, [(-1, 0)])

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph(-1, [])

    def test_labels_default_zero(self):
        g = CSRGraph(4, [(0, 1)])
        assert [g.label(v) for v in range(4)] == [0, 0, 0, 0]

    def test_labels_stored(self):
        g = CSRGraph(3, [(0, 1)], labels=[5, 6, 7])
        assert [g.label(v) for v in range(3)] == [5, 6, 7]

    def test_labels_wrong_length_rejected(self):
        with pytest.raises(ValueError, match="labels"):
            CSRGraph(3, [(0, 1)], labels=[1, 2])

    def test_adjacency_sorted(self):
        g = CSRGraph(5, [(2, 4), (2, 0), (2, 3), (2, 1)])
        assert list(g.neighbors_of(2)) == [0, 1, 3, 4]


class TestFromArrays:
    def test_round_trip(self):
        g = CSRGraph(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        h = CSRGraph.from_arrays(g.offsets, g.neighbors)
        assert h.num_vertices == g.num_vertices
        assert h.num_edges == g.num_edges
        assert np.array_equal(h.neighbors, g.neighbors)

    def test_bad_offsets_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph.from_arrays(np.array([0, 2, 1]), np.array([1, 0]))

    def test_offsets_must_start_at_zero(self):
        with pytest.raises(ValueError):
            CSRGraph.from_arrays(np.array([1, 2]), np.array([0]))

    def test_neighbor_range_checked(self):
        with pytest.raises(ValueError, match="range"):
            CSRGraph.from_arrays(np.array([0, 1]), np.array([5]))

    def test_offsets_end_must_match(self):
        with pytest.raises(ValueError, match="offsets"):
            CSRGraph.from_arrays(np.array([0, 3]), np.array([0, 0]))


class TestQueries:
    def test_has_edge(self):
        g = CSRGraph(4, [(0, 1), (2, 3)])
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert g.has_edge(2, 3)
        assert not g.has_edge(0, 2)
        assert not g.has_edge(0, 0)

    def test_edge_index_is_physical_address(self):
        g = CSRGraph(3, [(0, 1), (0, 2), (1, 2)])
        idx = g.edge_index(1, 2)
        assert idx is not None
        assert g.neighbors[idx] == 2
        assert g.offsets[1] <= idx < g.offsets[2]

    def test_edge_index_missing(self):
        g = CSRGraph(3, [(0, 1)])
        assert g.edge_index(0, 2) is None

    def test_edges_iterates_once_each(self):
        pairs = [(0, 1), (1, 2), (0, 2), (2, 3)]
        g = CSRGraph(4, pairs)
        assert sorted(g.edges()) == sorted(pairs)

    def test_degrees_matches_offsets(self):
        g = CSRGraph(4, [(0, 1), (0, 2), (0, 3)])
        assert list(g.degrees()) == [3, 1, 1, 1]

    def test_induced_adjacency_triangle(self):
        g = CSRGraph(4, [(0, 1), (1, 2), (0, 2)])
        mask = g.induced_adjacency([0, 1, 2])
        # All three pairs adjacent: 6 bits set (symmetric).
        assert bin(mask).count("1") == 6

    @given(small_graphs())
    @settings(max_examples=40, deadline=None)
    def test_has_edge_symmetric(self, g):
        for u in range(g.num_vertices):
            for v in g.neighbors_of(u):
                assert g.has_edge(u, int(v))
                assert g.has_edge(int(v), u)

    @given(small_graphs())
    @settings(max_examples=40, deadline=None)
    def test_degree_sum_is_twice_edges(self, g):
        assert int(g.degrees().sum()) == 2 * g.num_edges


class TestRelabeled:
    def test_identity(self):
        g = CSRGraph(3, [(0, 1), (1, 2)])
        h = g.relabeled([0, 1, 2])
        assert sorted(h.edges()) == sorted(g.edges())

    def test_reverse_permutation(self):
        g = CSRGraph(3, [(0, 1)], labels=[10, 20, 30])
        h = g.relabeled([2, 1, 0])
        assert h.has_edge(2, 1)
        assert not h.has_edge(0, 1)
        assert h.label(2) == 10 and h.label(0) == 30

    def test_invalid_permutation_rejected(self):
        g = CSRGraph(3, [(0, 1)])
        with pytest.raises(ValueError, match="bijection"):
            g.relabeled([0, 0, 1])

    @given(small_graphs(min_vertices=2), st.randoms())
    @settings(max_examples=30, deadline=None)
    def test_relabel_preserves_structure(self, g, rnd):
        perm = list(range(g.num_vertices))
        rnd.shuffle(perm)
        h = g.relabeled(perm)
        assert h.num_edges == g.num_edges
        for u, v in g.edges():
            assert h.has_edge(perm[u], perm[v])
