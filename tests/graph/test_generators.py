"""Synthetic graph generators."""

import pytest

from repro.graph.generators import (
    clique,
    complete_bipartite,
    cycle,
    erdos_renyi,
    grid,
    path,
    powerlaw_cluster,
    random_labels,
    rmat,
    star,
)
from repro.graph.stats import degree_stats, gini_coefficient


class TestErdosRenyi:
    def test_exact_edge_count(self):
        g = erdos_renyi(100, 250, seed=1)
        assert g.num_vertices == 100
        assert g.num_edges == 250

    def test_deterministic(self):
        a = erdos_renyi(50, 100, seed=9)
        b = erdos_renyi(50, 100, seed=9)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_different_seeds_differ(self):
        a = erdos_renyi(50, 100, seed=1)
        b = erdos_renyi(50, 100, seed=2)
        assert sorted(a.edges()) != sorted(b.edges())

    def test_too_many_edges_rejected(self):
        with pytest.raises(ValueError, match="possible"):
            erdos_renyi(4, 7)

    def test_complete_graph_possible(self):
        g = erdos_renyi(5, 10, seed=0)
        assert g.num_edges == 10


class TestPowerlawCluster:
    def test_basic_shape(self):
        g = powerlaw_cluster(500, 3, 0.4, seed=0)
        assert g.num_vertices == 500
        # ~3 edges per arriving vertex.
        assert 1000 < g.num_edges < 1600

    def test_skewed_degrees(self):
        pl = powerlaw_cluster(500, 3, 0.3, seed=1)
        er = erdos_renyi(500, pl.num_edges, seed=1)
        assert gini_coefficient(pl.degrees()) > gini_coefficient(er.degrees())

    def test_max_degree_cap_enforced(self):
        g = powerlaw_cluster(800, 3, 0.3, seed=2, max_degree=20)
        assert int(g.degrees().max()) <= 20

    def test_cap_preserves_skew(self):
        g = powerlaw_cluster(800, 3, 0.3, seed=2, max_degree=25)
        stats = degree_stats(g)
        assert stats.top5_degree_share > 0.10  # hubs still dominate

    def test_deterministic(self):
        a = powerlaw_cluster(200, 2, 0.2, seed=5)
        b = powerlaw_cluster(200, 2, 0.2, seed=5)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            powerlaw_cluster(10, 0)
        with pytest.raises(ValueError):
            powerlaw_cluster(3, 5)
        with pytest.raises(ValueError):
            powerlaw_cluster(10, 2, triad_probability=1.5)
        with pytest.raises(ValueError):
            powerlaw_cluster(10, 3, max_degree=2)


class TestStructured:
    def test_clique(self):
        g = clique(6)
        assert g.num_edges == 15
        assert all(g.degree(v) == 5 for v in range(6))

    def test_star(self):
        g = star(7)
        assert g.num_vertices == 8
        assert g.degree(0) == 7
        assert all(g.degree(v) == 1 for v in range(1, 8))

    def test_cycle(self):
        g = cycle(5)
        assert g.num_edges == 5
        assert all(g.degree(v) == 2 for v in range(5))

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            cycle(2)

    def test_path(self):
        g = path(5)
        assert g.num_edges == 4
        assert g.degree(0) == 1 and g.degree(4) == 1

    def test_complete_bipartite(self):
        g = complete_bipartite(2, 3)
        assert g.num_edges == 6
        assert not g.has_edge(0, 1)  # same side
        assert g.has_edge(0, 2)

    def test_grid(self):
        g = grid(3, 4)
        assert g.num_vertices == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical


class TestRMAT:
    def test_vertex_count_power_of_two(self):
        g = rmat(scale=8, edge_factor=4, seed=1)
        assert g.num_vertices == 256
        assert g.num_edges > 0

    def test_skewed_degrees(self):
        g = rmat(scale=9, edge_factor=8, seed=2)
        stats = degree_stats(g)
        assert stats.top5_degree_share > 0.15
        assert stats.max_degree > 4 * stats.mean_degree

    def test_deterministic(self):
        a = rmat(scale=7, seed=3)
        b = rmat(scale=7, seed=3)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_validation(self):
        with pytest.raises(ValueError):
            rmat(scale=0)
        with pytest.raises(ValueError):
            rmat(scale=5, edge_factor=0)
        with pytest.raises(ValueError):
            rmat(scale=5, probabilities=(0.5, 0.5, 0.5, 0.5))

    def test_mineable(self):
        from repro.mining.apps import CliqueFinding
        from repro.mining.engine import run_dfs

        g = rmat(scale=8, edge_factor=4, seed=4)
        app = run_dfs(g, CliqueFinding(3))
        assert app.num_cliques >= 0  # runs to completion


class TestRandomLabels:
    def test_labels_in_range(self):
        g = random_labels(cycle(20), 4, seed=3)
        assert set(int(lab) for lab in g.labels) <= set(range(4))

    def test_topology_unchanged(self):
        base = powerlaw_cluster(100, 2, seed=4)
        labeled = random_labels(base, 3, seed=4)
        assert sorted(labeled.edges()) == sorted(base.edges())

    def test_invalid_label_count(self):
        with pytest.raises(ValueError):
            random_labels(cycle(5), 0)
