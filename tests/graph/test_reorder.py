"""Graph reordering (the §IV-C rank == ID trick)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import powerlaw_cluster, star
from repro.graph.reorder import (
    rank_permutation,
    reorder_by_on1,
    reorder_by_scores,
)


class TestRankPermutation:
    def test_descending_scores(self):
        perm = rank_permutation(np.array([10.0, 30.0, 20.0]))
        # vertex 1 has the top score -> rank 0.
        assert list(perm) == [2, 0, 1]

    def test_ties_broken_by_id(self):
        perm = rank_permutation(np.array([5.0, 5.0, 5.0]))
        assert list(perm) == [0, 1, 2]

    @given(st.lists(st.floats(0, 1e6, allow_nan=False), min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_is_a_permutation(self, scores):
        perm = rank_permutation(np.array(scores))
        assert sorted(perm.tolist()) == list(range(len(scores)))

    @given(st.lists(st.floats(0, 1e6, allow_nan=False), min_size=2, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_rank_order_matches_score_order(self, scores):
        arr = np.array(scores)
        perm = rank_permutation(arr)
        by_rank = np.empty(len(arr))
        by_rank[perm] = arr
        # Scores must be non-increasing along ranks.
        assert all(by_rank[i] >= by_rank[i + 1] for i in range(len(arr) - 1))


class TestReorderByScores:
    def test_top_vertex_becomes_zero(self):
        g = star(9)  # hub is vertex 0 already; invert scores to move it
        scores = np.array([0.0] + [float(i) for i in range(1, 10)])
        h = reorder_by_scores(g, scores)
        # Highest score was old vertex 9 -> becomes new vertex 0.
        assert h.degree(9) != 0  # structure retained somewhere
        assert h.num_edges == g.num_edges

    def test_wrong_length_rejected(self):
        g = star(3)
        with pytest.raises(ValueError):
            reorder_by_scores(g, np.array([1.0, 2.0]))


class TestReorderByOn1:
    def test_rank_zero_is_hub(self):
        g = star(20)
        result = reorder_by_on1(g)
        # After reordering the hub (max ON1) must be vertex 0.
        assert result.graph.degree(0) == 20
        assert result.permutation[0] == 0  # old hub -> rank 0

    def test_structure_preserved(self):
        g = powerlaw_cluster(150, 3, 0.3, seed=8)
        result = reorder_by_on1(g)
        assert result.graph.num_edges == g.num_edges
        assert sorted(result.graph.degrees().tolist()) == sorted(
            g.degrees().tolist()
        )

    def test_identity_invariant_rank_equals_id(self):
        g = powerlaw_cluster(120, 2, 0.2, seed=9)
        result = reorder_by_on1(g)
        # Re-scoring the reordered graph must rank vertex IDs ascending:
        # the reordered graph's ON1 scores are non-increasing in ID.
        from repro.locality.occurrence import occurrence_numbers

        scores = occurrence_numbers(result.graph, hops=1)
        assert all(scores[i] >= scores[i + 1] for i in range(len(scores) - 1))

    def test_timing_recorded(self):
        result = reorder_by_on1(star(10))
        assert result.seconds >= 0.0
