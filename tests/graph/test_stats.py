"""Degree statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import clique, erdos_renyi, star
from repro.graph.stats import degree_stats, gini_coefficient, top_share


class TestGini:
    def test_uniform_is_zero(self):
        assert gini_coefficient(np.full(10, 7.0)) == pytest.approx(0.0)

    def test_concentrated_is_high(self):
        values = np.zeros(100)
        values[0] = 1000
        assert gini_coefficient(values) > 0.95

    def test_zero_total(self):
        assert gini_coefficient(np.zeros(5)) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            gini_coefficient(np.array([]))

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_bounds(self, values):
        g = gini_coefficient(np.array(values, dtype=float))
        assert -1e-9 <= g < 1.0

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_scale_invariant(self, values):
        arr = np.array(values, dtype=float)
        assert gini_coefficient(arr) == pytest.approx(
            gini_coefficient(arr * 3.5), abs=1e-9
        )


class TestTopShare:
    def test_full_fraction_is_one(self):
        assert top_share(np.array([1.0, 2, 3]), 1.0) == pytest.approx(1.0)

    def test_star_concentration(self):
        g = star(99)  # vertex 0 holds half the endpoint mass
        assert top_share(g.degrees(), 0.01) == pytest.approx(0.5)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            top_share(np.array([1.0]), 0.0)
        with pytest.raises(ValueError):
            top_share(np.array([1.0]), 1.5)

    def test_zero_mass(self):
        assert top_share(np.zeros(10), 0.5) == 0.0


class TestDegreeStats:
    def test_clique(self):
        s = degree_stats(clique(5))
        assert s.min_degree == s.max_degree == 4
        assert s.mean_degree == pytest.approx(4.0)
        assert s.gini == pytest.approx(0.0)

    def test_describe_contains_counts(self):
        s = degree_stats(erdos_renyi(40, 60, seed=2))
        text = s.describe()
        assert "|V|=40" in text and "|E|=60" in text

    def test_empty_graph_rejected(self):
        from repro.graph.csr import CSRGraph

        with pytest.raises(ValueError):
            degree_stats(CSRGraph(0, []))
