"""GraphStore: round trips, digest stability, corruption, memoization."""

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings

import repro.graph.csr as csr_mod
import repro.graph.store as store_mod
from repro.graph.csr import CSRGraph
from repro.graph.generators import powerlaw_cluster, random_labels
from repro.graph.io import save_edge_list
from repro.graph.store import (
    GraphArtifactError,
    GraphStore,
    default_graph_store,
    reset_default_graph_store,
)

from ..conftest import small_graphs


def _assert_same_graph(a: CSRGraph, b: CSRGraph) -> None:
    """Full behavioural equality: arrays, degrees, membership, labels."""
    assert np.array_equal(a.offsets, b.offsets)
    assert np.array_equal(a.neighbors, b.neighbors)
    assert np.array_equal(a.labels, b.labels)
    assert a.num_vertices == b.num_vertices
    assert a.num_edges == b.num_edges
    assert np.array_equal(a.degrees(), b.degrees())
    for u in range(a.num_vertices):
        for v in range(a.num_vertices):
            assert a.has_edge(u, v) == b.has_edge(u, v)


class TestRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(graph=small_graphs())
    def test_mmap_round_trip_indistinguishable(self, graph, tmp_path_factory):
        """A store round trip behaves exactly like the build-path graph."""
        store = GraphStore(tmp_path_factory.mktemp("store-prop"))
        digest = store.put(graph)
        reopened = store.open(digest)
        _assert_same_graph(graph, reopened)
        assert reopened.content_digest() == digest
        # Read-only mmap backing, not copies.
        assert not reopened.offsets.flags.writeable
        assert not reopened.labels.flags.writeable

    def test_labeled_round_trip(self, tmp_path):
        store = GraphStore(tmp_path)
        graph = random_labels(powerlaw_cluster(60, 3, 0.3, seed=3), 4, seed=9)
        reopened = store.open(store.put(graph))
        _assert_same_graph(graph, reopened)

    def test_digest_is_the_raw_array_hash(self, tmp_path):
        """The store address == SHA-256 over offsets+neighbors+labels bytes.

        This is the exact digest the ON1-rank cache keyed on before the
        store existed; equality keeps old cache entries addressable.
        """
        graph = powerlaw_cluster(50, 2, 0.2, seed=4)
        expected = hashlib.sha256()
        expected.update(graph.offsets.tobytes())
        expected.update(graph.neighbors.tobytes())
        expected.update(graph.labels.tobytes())
        assert GraphStore(tmp_path).put(graph) == expected.hexdigest()

    def test_open_memoizes_per_digest(self, tmp_path):
        store = GraphStore(tmp_path)
        digest = store.put(powerlaw_cluster(40, 2, 0.2, seed=5))
        assert store.open(digest) is store.open(digest)

    def test_put_is_idempotent(self, tmp_path):
        store = GraphStore(tmp_path)
        graph = powerlaw_cluster(40, 2, 0.2, seed=6)
        assert store.put(graph) == store.put(graph)
        assert len(store.digests()) == 1


class TestNamedSources:
    def test_materialize_builds_once(self, tmp_path):
        store = GraphStore(tmp_path)
        calls = {"n": 0}

        def builder():
            calls["n"] += 1
            return powerlaw_cluster(40, 2, 0.2, seed=7)

        key = {"dataset": "x", "scale": "tiny"}
        first = store.materialize(key, builder)
        assert store.materialize(key, builder) == first
        assert calls["n"] == 1
        # A fresh store over the same root serves from disk, not builder.
        assert GraphStore(tmp_path).materialize(key, builder) == first
        assert calls["n"] == 1

    def test_import_edge_list_parses_once_per_content(self, tmp_path, monkeypatch):
        store = GraphStore(tmp_path / "root")
        graph = powerlaw_cluster(30, 2, 0.2, seed=8)
        target = tmp_path / "edges.txt"
        save_edge_list(graph, target)
        calls = {"n": 0}
        real = store_mod.load_edge_list

        def counting(path, **kwargs):
            calls["n"] += 1
            return real(path, **kwargs)

        monkeypatch.setattr(store_mod, "load_edge_list", counting)
        digest = store.import_edge_list(target)
        assert store.import_edge_list(target) == digest
        assert calls["n"] == 1
        _assert_same_graph(store.open(digest), graph)

    def test_default_store_follows_cache_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("GRAMER_CACHE_DIR", str(tmp_path / "a"))
        reset_default_graph_store()
        try:
            store_a = default_graph_store()
            assert store_a is default_graph_store()
            monkeypatch.setenv("GRAMER_CACHE_DIR", str(tmp_path / "b"))
            store_b = default_graph_store()
            assert store_b is not store_a
            assert store_b.cache_root == tmp_path / "b"
        finally:
            reset_default_graph_store()


class TestCorruptionMatrix:
    """Truncation, bit flips, version skew: quarantine + rebuild, never a
    wrong graph."""

    KEY = {"dataset": "corrupt-me", "scale": "tiny"}

    def _seeded(self, tmp_path):
        store = GraphStore(tmp_path)
        graph = powerlaw_cluster(50, 3, 0.3, seed=10)
        digest = store.materialize(self.KEY, lambda: graph)
        store._open_graphs.clear()  # force the next open to hit disk
        return store, graph, digest

    def _assert_quarantined_and_rebuilt(self, store, tmp_path, graph, digest):
        path = store.artifact_path(digest)
        with pytest.raises(GraphArtifactError):
            store.open(digest)
        assert not path.exists()
        quarantine = tmp_path / "quarantine"
        assert list(quarantine.glob("graphstore-*")), "artifact not quarantined"
        assert store.quarantined == 1
        # The ref now dangles; load() rebuilds via the builder and the
        # rebuilt graph is the original, bit for bit.
        rebuilt = store.load(self.KEY, lambda: graph)
        _assert_same_graph(rebuilt, graph)
        assert rebuilt.content_digest() == digest

    def test_truncated_artifact(self, tmp_path):
        store, graph, digest = self._seeded(tmp_path)
        path = store.artifact_path(digest)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        self._assert_quarantined_and_rebuilt(store, tmp_path, graph, digest)

    def test_bit_flipped_array(self, tmp_path):
        store, graph, digest = self._seeded(tmp_path)
        path = store.artifact_path(digest)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # last byte sits inside the labels array
        path.write_bytes(bytes(data))
        self._assert_quarantined_and_rebuilt(store, tmp_path, graph, digest)

    def test_header_bit_flip(self, tmp_path):
        store, graph, digest = self._seeded(tmp_path)
        path = store.artifact_path(digest)
        data = bytearray(path.read_bytes())
        data[40] ^= 0x01  # inside the JSON header
        path.write_bytes(bytes(data))
        self._assert_quarantined_and_rebuilt(store, tmp_path, graph, digest)

    def test_version_skew(self, tmp_path, monkeypatch):
        store, graph, digest = self._seeded(tmp_path)
        # A runtime that moved on to format v2 must not trust v1 bytes.
        monkeypatch.setattr(
            store_mod, "GRAPH_FORMAT_VERSION", store_mod.GRAPH_FORMAT_VERSION + 1
        )
        path = store.artifact_path(digest)
        with pytest.raises(GraphArtifactError):
            store.open(digest)
        assert not path.exists()
        assert store.quarantined == 1

    def test_wrong_digest_address(self, tmp_path):
        """An artifact stored under the wrong name never comes back."""
        store, graph, digest = self._seeded(tmp_path)
        other = "0" * 64
        store.artifact_path(digest).rename(store.artifact_path(other))
        with pytest.raises(GraphArtifactError):
            store.open(other)
        assert store.quarantined == 1

    def test_verify_quarantines_from_disk(self, tmp_path):
        store, graph, digest = self._seeded(tmp_path)
        assert store.verify(digest)["num_vertices"] == graph.num_vertices
        path = store.artifact_path(digest)
        data = bytearray(path.read_bytes())
        data[-8] ^= 0x10
        path.write_bytes(bytes(data))
        with pytest.raises(GraphArtifactError):
            store.verify(digest)
        assert store.quarantined == 1


class _CountingHashlib:
    """hashlib stand-in that counts sha256 constructions."""

    def __init__(self):
        self.calls = 0

    def sha256(self, *args):
        self.calls += 1
        return hashlib.sha256(*args)


class TestSignatureMemoization:
    """Regression for the per-job re-hash: one hash per distinct graph per
    process, zero for store-opened graphs."""

    def test_content_digest_hashes_once(self, monkeypatch):
        graph = powerlaw_cluster(40, 2, 0.2, seed=11)
        counter = _CountingHashlib()
        monkeypatch.setattr(csr_mod, "hashlib", counter)
        assert graph.content_digest() == graph.content_digest()
        graph.content_digest()
        assert counter.calls == 1

    def test_graph_signature_uses_the_memo(self, monkeypatch):
        from repro.runtime.backends import _graph_signature

        graph = powerlaw_cluster(40, 2, 0.2, seed=12)
        counter = _CountingHashlib()
        monkeypatch.setattr(csr_mod, "hashlib", counter)
        first = _graph_signature(graph)
        assert _graph_signature(graph) == first
        assert counter.calls == 1

    def test_store_opened_graph_never_hashes(self, tmp_path, monkeypatch):
        store = GraphStore(tmp_path)
        digest = store.put(powerlaw_cluster(40, 2, 0.2, seed=13))
        store._open_graphs.clear()
        reopened = store.open(digest)
        counter = _CountingHashlib()
        monkeypatch.setattr(csr_mod, "hashlib", counter)
        assert reopened.content_digest() == digest
        assert counter.calls == 0  # digest rode in from the verified header

    def test_distinct_graphs_hash_distinctly(self, monkeypatch):
        a = powerlaw_cluster(40, 2, 0.2, seed=14)
        b = powerlaw_cluster(40, 2, 0.2, seed=15)
        counter = _CountingHashlib()
        monkeypatch.setattr(csr_mod, "hashlib", counter)
        assert a.content_digest() != b.content_digest()
        assert counter.calls == 2
