"""Differential verification: the turbo engine vs the reference engine.

The contract is statistical, not byte-identical (that is the fast
engine's suite, ``test_engine_equivalence.py``): mining counts, mining
results and exception types must match the reference exactly, while
timing/energy fields must land inside the per-field bands declared in
:mod:`tolerance`.  Randomized examples run derandomized so the bands —
calibrated against a fixed sweep — cannot flake CI on a lucky draw; the
corpus still moves whenever the strategies or the engines change.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.config import GramerConfig
from repro.accel.sim import AncestorBufferOverflowError, make_simulator
from repro.experiments import datasets
from repro.experiments.paper_data import TABLE3_APPS
from repro.graph import erdos_renyi
from repro.mining import make_app
from repro.runtime.backends import build_app
from tests.differential.test_engine_equivalence import (
    APPS,
    configs,
    er_graphs,
    pl_graphs,
)
from tests.differential.tolerance import (
    CORPUS_SPEC,
    TINY_GRID_SPEC,
    Band,
    ToleranceSpec,
    assert_within_tolerance,
    compare,
    snapshot_run,
)


def assert_turbo_within(graph, config, app_name, spec, vertex_rank=None):
    reference = snapshot_run(graph, config, app_name, "reference", vertex_rank)
    turbo = snapshot_run(graph, config, app_name, "turbo", vertex_rank)
    assert_within_tolerance(spec, reference, turbo, context=app_name)


@given(er_graphs(), configs, st.sampled_from(APPS))
@settings(max_examples=60, deadline=None, derandomize=True)
def test_turbo_tolerance_on_random_graphs(graph, config, app_name):
    assert_turbo_within(graph, config, app_name, CORPUS_SPEC)


@given(pl_graphs(), configs, st.sampled_from(APPS))
@settings(max_examples=40, deadline=None, derandomize=True)
def test_turbo_tolerance_on_powerlaw_graphs(graph, config, app_name):
    assert_turbo_within(graph, config, app_name, CORPUS_SPEC)


@given(er_graphs(), configs, st.sampled_from(["3-CF", "3-MC"]))
@settings(max_examples=20, deadline=None, derandomize=True)
def test_turbo_tolerance_with_identity_ranks(graph, config, app_name):
    import numpy as np

    identity = np.arange(graph.num_vertices, dtype=np.int64)
    assert_turbo_within(
        graph, config, app_name, CORPUS_SPEC, vertex_rank=identity
    )


def test_turbo_exception_parity_on_ancestor_overflow():
    """Overflow is schedule-independent without stealing: both must raise."""
    graph = erdos_renyi(8, 28, seed=3)  # complete K8: 4-cliques guaranteed
    config = GramerConfig(ancestor_depth=2, work_stealing=False)
    for engine in ("reference", "turbo"):
        app = make_app("4-CF")
        with pytest.raises(AncestorBufferOverflowError):
            make_simulator(graph, config, engine=engine).run(app)


def _grid_cell(app_name, graph_name):
    scale = "tiny"
    app = build_app(app_name, graph_name, scale)
    loader = datasets.load_labeled if app.needs_labels else datasets.load
    graph = loader(graph_name, scale)
    config = GramerConfig()
    snaps = {}
    for engine in ("reference", "turbo"):
        cell_app = build_app(app_name, graph_name, scale)
        result = make_simulator(graph, config, engine=engine).run(cell_app)
        snaps[engine] = {
            "stats": result.stats.as_dict(),
            "embeddings": result.mining.embeddings_by_size,
            "patterns": result.mining.patterns_by_size,
            "candidates": cell_app.candidates_checked,
        }
    assert_within_tolerance(
        TINY_GRID_SPEC,
        snaps["reference"],
        snaps["turbo"],
        context=f"{app_name}/{graph_name}",
    )


@pytest.mark.parametrize(
    ("app_name", "graph_name"),
    [("3-CF", "citeseer"), ("4-MC", "p2p"), ("FSM", "citeseer")],
)
def test_table3_tiny_subset_within_tolerance(app_name, graph_name):
    """A fast, always-on slice of the Table III grid."""
    _grid_cell(app_name, graph_name)


@pytest.mark.skipif(
    not os.environ.get("GRAMER_DIFF_GRID"),
    reason="full Table III grid diff; set GRAMER_DIFF_GRID=1 to enable",
)
@pytest.mark.parametrize("app_name", TABLE3_APPS)
@pytest.mark.parametrize("graph_name", datasets.DATASET_ORDER)
def test_table3_tiny_full_grid_within_tolerance(app_name, graph_name):
    """Every Table III tiny cell, turbo inside the tiny-grid bands."""
    _grid_cell(app_name, graph_name)


# -- the framework itself ---------------------------------------------------


def _snap(**stats):
    base = {
        "cycles": 1000,
        "candidates_checked": 50,
        "embeddings_accepted": 10,
        "roots_dispatched": 5,
        "steals": 0,
        "steal_attempts": 0,
        "vertex_high_hits": 100,
        "vertex_low_hits": 20,
        "vertex_misses": 5,
        "edge_high_hits": 200,
        "edge_low_hits": 40,
        "edge_misses": 10,
        "compute_cycles": 500,
        "vertex_wait_cycles": 300,
        "edge_wait_cycles": 600,
        "pu_finish_cycles": [1000, 900],
        "pu_busy_cycles": [800, 700],
    }
    base.update(stats)
    return {
        "stats": base,
        "embeddings": {3: 7},
        "patterns": {3: 2},
        "candidates": 50,
    }


def test_band_is_relative_plus_absolute():
    band = Band(rel=0.1, abs=5)
    assert band.allows(100, 115)  # 10 + 5 allowed
    assert not band.allows(100, 116)
    assert band.allows(0, 5)  # abs floor carries zero references
    assert not band.allows(0, 6)


def test_compare_accepts_within_band():
    assert compare(TINY_GRID_SPEC, _snap(), _snap(cycles=1100)) == []


def test_exact_fields_never_tolerated():
    divs = compare(TINY_GRID_SPEC, _snap(), _snap(candidates_checked=51))
    assert [d.field for d in divs] == ["candidates_checked"]
    assert divs[0].kind == "exact"


def test_mining_results_never_tolerated():
    turbo = _snap()
    turbo["patterns"] = {3: 3}
    divs = compare(TINY_GRID_SPEC, _snap(), turbo)
    assert [d.field for d in divs] == ["patterns"]


def test_exception_types_must_match():
    divs = compare(
        TINY_GRID_SPEC, {"error": "AncestorBufferOverflowError"}, _snap()
    )
    assert len(divs) == 1 and divs[0].kind == "error"
    assert (
        compare(TINY_GRID_SPEC, {"error": "ValueError"}, {"error": "ValueError"})
        == []
    )


def test_failure_reports_first_field_with_values_and_band():
    spec = ToleranceSpec(
        name="unit", bands={"cycles": Band(rel=0.01, abs=0)}
    )
    with pytest.raises(AssertionError) as excinfo:
        assert_within_tolerance(
            spec, _snap(), _snap(cycles=2000), context="3-CF/unit"
        )
    message = str(excinfo.value)
    assert "'cycles'" in message
    assert "reference=1000" in message
    assert "turbo=2000" in message
    assert "rel=0.01" in message
    assert "3-CF/unit" in message


def test_exact_divergence_sorts_before_band_divergence():
    divs = compare(
        TINY_GRID_SPEC,
        _snap(),
        _snap(candidates_checked=51, cycles=100000),
    )
    assert divs[0].field == "candidates_checked"
    assert divs[1].field == "cycles"


def test_elementwise_band_flags_single_pu():
    turbo = _snap(pu_finish_cycles=[1000, 90])
    divs = compare(TINY_GRID_SPEC, _snap(), turbo)
    assert [d.field for d in divs] == ["pu_finish_cycles[1]"]
