"""Statistical-tolerance contract between the turbo and reference engines.

The fast engine promises byte-identity and is checked with ``==`` (see
``test_engine_equivalence.py``).  The turbo engine deliberately gives that
up: its timing model is decoupled from the functional mining pass, so
timing-facing ``SimStats`` fields land *near* the reference, not on it.
"Near" must not mean "whatever the implementation happens to produce" —
this module pins it down as a declarative :class:`ToleranceSpec`:

* an **exact set**: mining counts, mining results and exception types
  must match the reference byte-for-byte on every input, and
* **per-field bands**: each timing/energy field carries a relative +
  absolute tolerance (``|turbo - ref| <= rel * |ref| + abs``) calibrated
  against a 160-sample sweep of the hypothesis config space and the
  Table III tiny grid, with ~1.3-1.5x safety margin on the observed
  worst case.

Two specs are published:

* :data:`TINY_GRID_SPEC` — the Table III tiny grid under the default
  ``GramerConfig``.  This is the configuration the paper's results use,
  and the bands are tight (cycles within 20%, waits within 35%).
* :data:`CORPUS_SPEC` — the adversarial hypothesis space (1-PU configs,
  16-entry caches, single DRAM channels...).  Tiny workloads amplify
  schedule divergence, so the bands are wider; the exact set is
  identical.

Comparisons never use ad-hoc ``==`` on timing fields — that is exactly
the mistake the GRM702 check (``repro.analysis.rules.timing_tolerance``)
exists to catch.  Use :func:`assert_within_tolerance` (or
:func:`compare`) instead; failures report the first out-of-band field
with the reference value, the turbo value, and the violated band.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.accel.config import GramerConfig
from repro.accel.energy import gramer_energy
from repro.accel.sim import make_simulator
from repro.accel.stats import SimStats
from repro.mining import make_app

__all__ = [
    "Band",
    "Divergence",
    "ToleranceSpec",
    "EXACT_FIELDS",
    "TINY_GRID_SPEC",
    "CORPUS_SPEC",
    "snapshot_run",
    "compare",
    "assert_within_tolerance",
]


# SimStats fields whose values are schedule-invariant: the turbo engine
# must reproduce them exactly, on every input, or it is mining a
# different answer.  (Mining results and exception types are handled
# structurally by ``compare`` and are always exact.)
EXACT_FIELDS = frozenset(
    {"candidates_checked", "embeddings_accepted", "roots_dispatched"}
)


@dataclass(frozen=True)
class Band:
    """One field's tolerance: pass iff ``|got - ref| <= rel*|ref| + abs``.

    The additive form keeps small reference values honest: a pure
    relative band would reject noise-level deviations on near-zero
    counters, and a pure absolute band would let large cells drift.
    """

    rel: float = 0.0
    abs: float = 0.0

    def allows(self, ref: float, got: float) -> bool:
        return abs(got - ref) <= self.rel * abs(ref) + self.abs

    def describe(self) -> str:
        return f"rel={self.rel:g} abs={self.abs:g}"


@dataclass(frozen=True)
class Divergence:
    """One field outside its declared tolerance."""

    field: str
    ref: object
    got: object
    band: Band | None  # None for exact/structural divergences
    kind: str  # "exact" | "band" | "error" | "structure"

    def __str__(self) -> str:
        if self.band is None:
            return (
                f"{self.kind} divergence on {self.field!r}: "
                f"reference={self.ref!r} turbo={self.got!r}"
            )
        return (
            f"{self.field!r} out of tolerance ({self.band.describe()}): "
            f"reference={self.ref!r} turbo={self.got!r} "
            f"|diff|={abs(float(self.got) - float(self.ref)):g} > "
            f"allowed={self.band.rel * abs(float(self.ref)) + self.band.abs:g}"
        )


@dataclass(frozen=True)
class ToleranceSpec:
    """Declarative contract for one engine-vs-reference comparison."""

    name: str
    bands: Mapping[str, Band]
    #: Derived metrics (computed from the stats dict, not stored in it).
    derived: Mapping[str, Band] = field(default_factory=dict)
    #: List-valued fields compared element by element under one band.
    elementwise: Mapping[str, Band] = field(default_factory=dict)
    exact: frozenset = EXACT_FIELDS

    def band_for(self, name: str) -> Band | None:
        return self.bands.get(name) or self.derived.get(name)


def _derived_metrics(stats_dict: Mapping[str, Any]) -> dict[str, float]:
    """Ratios and energy derived from a SimStats dict.

    Reconstructs a ``SimStats`` so the derivations are the library's own
    (hit-ratio properties, ``gramer_energy``), not a reimplementation.
    """
    stats = SimStats(**stats_dict)  # type: ignore[arg-type]
    energy = gramer_energy(stats, GramerConfig())
    return {
        "vertex_hit_ratio": stats.vertex_hit_ratio,
        "edge_hit_ratio": stats.edge_hit_ratio,
        "load_imbalance": stats.load_imbalance,
        "energy_total_j": energy.total_j,
    }


def snapshot_run(graph, config, app_name, engine, vertex_rank=None):
    """Run one engine to a comparable snapshot.

    Returns ``{"stats": ..., "embeddings": ..., "patterns": ...,
    "candidates": ...}`` on success or ``{"error": <type name>}`` when
    the run raises — the exception type is part of the contract.
    """
    app = make_app(app_name)
    try:
        result = make_simulator(
            graph, config, engine=engine, vertex_rank=vertex_rank
        ).run(app)
    except Exception as error:  # noqa: BLE001 - the type IS the payload
        return {"error": type(error).__name__}
    return {
        "stats": result.stats.as_dict(),
        "embeddings": result.mining.embeddings_by_size,
        "patterns": result.mining.patterns_by_size,
        "candidates": app.candidates_checked,
    }


def compare(spec: ToleranceSpec, reference, turbo) -> list[Divergence]:
    """All divergences of ``turbo`` from ``reference`` under ``spec``.

    Exact/structural divergences sort first so the leading entry of a
    failure is always the most alarming one.
    """
    ref_err = "error" in reference
    got_err = "error" in turbo
    if ref_err or got_err:
        if reference.get("error") == turbo.get("error"):
            return []
        return [
            Divergence(
                "exception",
                reference.get("error"),
                turbo.get("error"),
                None,
                "error",
            )
        ]

    exact_div: list[Divergence] = []
    band_div: list[Divergence] = []
    for name in ("embeddings", "patterns", "candidates"):
        if reference[name] != turbo[name]:
            exact_div.append(
                Divergence(
                    name, reference[name], turbo[name], None, "structure"
                )
            )
    ref_stats, got_stats = reference["stats"], turbo["stats"]
    for name in sorted(spec.exact):
        if ref_stats[name] != got_stats[name]:
            exact_div.append(
                Divergence(
                    name, ref_stats[name], got_stats[name], None, "exact"
                )
            )
    for name, band in spec.bands.items():
        if not band.allows(ref_stats[name], got_stats[name]):
            band_div.append(
                Divergence(name, ref_stats[name], got_stats[name], band, "band")
            )
    for name, band in spec.elementwise.items():
        ref_list, got_list = ref_stats[name], got_stats[name]
        if len(ref_list) != len(got_list):
            exact_div.append(
                Divergence(name, ref_list, got_list, None, "structure")
            )
            continue
        for i, (rv, gv) in enumerate(zip(ref_list, got_list)):
            if not band.allows(rv, gv):
                band_div.append(
                    Divergence(f"{name}[{i}]", rv, gv, band, "band")
                )
    if spec.derived:
        ref_d = _derived_metrics(ref_stats)
        got_d = _derived_metrics(got_stats)
        for name, band in spec.derived.items():
            if not band.allows(ref_d[name], got_d[name]):
                band_div.append(
                    Divergence(name, ref_d[name], got_d[name], band, "band")
                )
    return exact_div + band_div


def assert_within_tolerance(
    spec: ToleranceSpec, reference, turbo, context: str = ""
) -> None:
    """Raise with the first out-of-band field (ref vs turbo vs band)."""
    divergences = compare(spec, reference, turbo)
    if not divergences:
        return
    first = divergences[0]
    rest = (
        f" (+{len(divergences) - 1} more: "
        f"{', '.join(d.field for d in divergences[1:])})"
        if len(divergences) > 1
        else ""
    )
    where = f" [{context}]" if context else ""
    raise AssertionError(f"[{spec.name}]{where} {first}{rest}")


def _spec(name: str, scale: float, **overrides: Band) -> ToleranceSpec:
    """Build a spec from the tight (tiny-grid) bands scaled by ``scale``."""
    base = {
        "cycles": Band(rel=0.20, abs=16),
        "compute_cycles": Band(rel=0.02, abs=8),
        "vertex_high_hits": Band(rel=0.05, abs=4),
        "edge_high_hits": Band(rel=0.01, abs=2),
        "vertex_low_hits": Band(rel=0.15, abs=16),
        "edge_low_hits": Band(rel=0.15, abs=16),
        "vertex_misses": Band(rel=0.45, abs=16),
        "edge_misses": Band(rel=0.40, abs=16),
        "vertex_wait_cycles": Band(rel=0.35, abs=32),
        "edge_wait_cycles": Band(rel=0.35, abs=32),
        "steals": Band(rel=0.45, abs=16),
        "steal_attempts": Band(rel=1.30, abs=48),
    }
    derived = {
        "vertex_hit_ratio": Band(abs=0.06),
        "edge_hit_ratio": Band(abs=0.04),
        "load_imbalance": Band(rel=0.40, abs=0.3),
        "energy_total_j": Band(rel=0.25, abs=1e-6),
    }
    elementwise = {
        "pu_finish_cycles": Band(rel=0.55, abs=32),
        "pu_busy_cycles": Band(rel=0.50, abs=32),
    }
    for table in (base, derived, elementwise):
        for key, band in table.items():
            if key in overrides:
                table[key] = overrides[key]
            elif scale != 1.0:
                table[key] = Band(
                    rel=round(band.rel * scale, 4), abs=band.abs * scale
                )
    return ToleranceSpec(
        name=name, bands=base, derived=derived, elementwise=elementwise
    )


#: Table III tiny grid under the default GramerConfig — the paper-facing
#: configuration.  Observed worst cases across the full 6x7 grid:
#: cycles -0.11, waits -0.23, vertex_misses -0.33 (on counts of ~150),
#: vertex_high_hits -0.03, steals -0.34, steal_attempts +1.07.
TINY_GRID_SPEC = _spec("tiny-grid", scale=1.0)

#: Hypothesis corpus: tiny adversarial workloads (down to 1 PU x 1 slot,
#: 16-entry caches, one DRAM channel) where a handful of schedule-
#: dependent cache misses moves every downstream field by a large
#: fraction.  Observed worst cases across the 160-sample calibration
#: sweep: cycles 0.86, waits 0.65, pu_finish 1.15, steal_attempts 0.90.
CORPUS_SPEC = _spec(
    "hypothesis-corpus",
    scale=1.0,
    cycles=Band(rel=1.2, abs=64),
    compute_cycles=Band(rel=0.08, abs=16),
    vertex_high_hits=Band(rel=0.12, abs=8),
    edge_high_hits=Band(rel=0.02, abs=4),
    vertex_low_hits=Band(rel=0.35, abs=32),
    edge_low_hits=Band(rel=0.60, abs=24),
    vertex_misses=Band(rel=0.65, abs=24),
    edge_misses=Band(rel=0.50, abs=20),
    # A miss-count deviation inside its own band (abs ~20) shows up in
    # the wait fields multiplied by dram_latency (up to 100 cycles), so
    # the additive term here must absorb ~20 x 100 on tiny workloads.
    vertex_wait_cycles=Band(rel=0.90, abs=2400),
    edge_wait_cycles=Band(rel=0.90, abs=2400),
    steals=Band(rel=0.65, abs=24),
    steal_attempts=Band(rel=1.50, abs=96),
    pu_finish_cycles=Band(rel=2.0, abs=2400),
    pu_busy_cycles=Band(rel=1.20, abs=2400),
    # Ratios over tiny denominators (corpus graphs reach ~50 accesses)
    # swing hard on a handful of schedule-dependent misses.
    vertex_hit_ratio=Band(abs=0.25),
    edge_hit_ratio=Band(abs=0.25),
    load_imbalance=Band(rel=0.8, abs=0.6),
    energy_total_j=Band(rel=1.2, abs=1e-6),
)
