"""Differential verification: the fast engine vs the reference engine.

The batched engine (:mod:`repro.accel.fastsim`) promises *bit-identical*
``SimStats`` — not approximately equal, byte-for-byte equal after JSON
serialisation — for every configuration and workload.  This suite is the
proof:

* randomized property tests (hypothesis) over the GramerConfig space ×
  random graphs × applications, and
* the Table III tiny grid, as a small always-on subset plus the full
  6-app × 7-dataset sweep gated behind ``GRAMER_DIFF_GRID=1`` (the CI
  differential job sets it; locally it adds ~2 minutes).

When the engines throw (e.g. ancestor-buffer overflow on deep patterns
with a shallow buffer), they must throw the *same* exception type.
"""

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.config import GramerConfig
from repro.accel.sim import BIT_IDENTICAL_ENGINES, make_simulator
from repro.experiments import datasets
from repro.experiments.paper_data import TABLE3_APPS
from repro.graph import erdos_renyi, powerlaw_cluster, random_labels
from repro.mining import make_app
from repro.runtime.backends import build_app

APPS = ["3-CF", "4-CF", "3-MC", "4-MC", "FSM-2"]


def _snapshot(graph, config, app_name, engine, vertex_rank=None):
    """Run one engine to a comparable value: stats + counts, or the error.

    Construction and run are folded together because the reference engine
    validates (and builds the hierarchy) in ``__init__`` while the fast
    engine defers to ``run`` — a config rejected by one must compare equal
    to the same rejection by the other.
    """
    app = make_app(app_name)
    try:
        result = make_simulator(
            graph, config, engine=engine, vertex_rank=vertex_rank
        ).run(app)
    except Exception as error:  # noqa: BLE001 - the type IS the payload
        return {"error": type(error).__name__}
    return {
        "stats": json.dumps(result.stats.as_dict(), sort_keys=True),
        "embeddings": result.mining.embeddings_by_size,
        "patterns": result.mining.patterns_by_size,
        "candidates": app.candidates_checked,
    }


def assert_engines_agree(graph, config, app_name, vertex_rank=None):
    fast, reference = (
        _snapshot(graph, config, app_name, engine, vertex_rank)
        for engine in BIT_IDENTICAL_ENGINES
    )
    if fast != reference:
        for key in reference:
            if fast.get(key) != reference.get(key):
                raise AssertionError(
                    f"engines diverge on {key!r} for {app_name}: "
                    f"fast={fast.get(key)!r} reference={reference.get(key)!r}"
                )
    assert fast == reference


configs = st.builds(
    GramerConfig,
    num_pus=st.integers(1, 4),
    slots_per_pu=st.integers(1, 6),
    ancestor_depth=st.integers(4, 16),
    work_stealing=st.booleans(),
    steal_victim_select=st.sampled_from(["stealing_buffer", "random"]),
    arbitrator=st.sampled_from(["round_robin", "degree_balanced"]),
    onchip_entries=st.sampled_from([16, 48, 128, 512]),
    num_partitions=st.sampled_from([1, 2, 4, 8]),
    cache_ways=st.integers(1, 4),
    vertex_line_entries=st.integers(1, 4),
    edge_line_entries=st.integers(1, 4),
    tau=st.sampled_from([None, 0.25, 0.75]),
    lam=st.sampled_from([0.0, 0.5, 1.0, 8.0]),
    low_policy=st.sampled_from(["locality", "lru", "uniform"]),
    probe_mode=st.sampled_from(["binary", "scan"]),
    dram_latency=st.sampled_from([20, 100]),
    dram_channels=st.sampled_from([1, 2, 4]),
    dram_cycles_per_transfer=st.integers(1, 2),
    issue_cycles=st.integers(1, 2),
    check_cycles=st.integers(1, 2),
    process_cycles=st.integers(1, 3),
    prefetch_interval=st.integers(1, 4),
)


@st.composite
def er_graphs(draw):
    n = draw(st.integers(6, 32))
    max_edges = n * (n - 1) // 2
    m = draw(st.integers(min(n, max_edges), min(3 * n, max_edges)))
    graph = erdos_renyi(n, m, seed=draw(st.integers(0, 2**16)))
    return random_labels(graph, draw(st.integers(1, 3)), seed=7)


@st.composite
def pl_graphs(draw):
    graph = powerlaw_cluster(
        num_vertices=draw(st.integers(10, 40)),
        edges_per_vertex=draw(st.integers(2, 3)),
        triad_probability=draw(st.sampled_from([0.1, 0.5])),
        seed=draw(st.integers(0, 2**16)),
    )
    return random_labels(graph, draw(st.integers(1, 3)), seed=11)


@given(er_graphs(), configs, st.sampled_from(APPS))
@settings(max_examples=120, deadline=None)
def test_engines_bit_identical_on_random_graphs(graph, config, app_name):
    assert_engines_agree(graph, config, app_name)


@given(pl_graphs(), configs, st.sampled_from(APPS))
@settings(max_examples=80, deadline=None)
def test_engines_bit_identical_on_powerlaw_graphs(graph, config, app_name):
    assert_engines_agree(graph, config, app_name)


@given(er_graphs(), configs, st.sampled_from(["3-CF", "3-MC"]))
@settings(max_examples=40, deadline=None)
def test_engines_bit_identical_with_identity_ranks(graph, config, app_name):
    """The rank source is orthogonal to the engine: identity ranks too."""
    import numpy as np

    identity = np.arange(graph.num_vertices, dtype=np.int64)
    assert_engines_agree(graph, config, app_name, vertex_rank=identity)


def _grid_cell(app_name, graph_name):
    scale = "tiny"
    app = build_app(app_name, graph_name, scale)
    loader = datasets.load_labeled if app.needs_labels else datasets.load
    graph = loader(graph_name, scale)
    config = GramerConfig()
    results = {}
    for engine in BIT_IDENTICAL_ENGINES:
        cell_app = build_app(app_name, graph_name, scale)
        result = make_simulator(graph, config, engine=engine).run(cell_app)
        results[engine] = (
            json.dumps(result.stats.as_dict(), sort_keys=True),
            result.mining.embeddings_by_size,
            result.mining.patterns_by_size,
            cell_app.candidates_checked,
        )
    assert results["fast"] == results["reference"], (app_name, graph_name)


@pytest.mark.parametrize(
    ("app_name", "graph_name"),
    [("3-CF", "citeseer"), ("4-MC", "p2p"), ("FSM", "citeseer")],
)
def test_table3_tiny_subset(app_name, graph_name):
    """A fast, always-on slice of the Table III grid."""
    _grid_cell(app_name, graph_name)


@pytest.mark.skipif(
    not os.environ.get("GRAMER_DIFF_GRID"),
    reason="full Table III grid diff; set GRAMER_DIFF_GRID=1 to enable",
)
@pytest.mark.parametrize("app_name", TABLE3_APPS)
@pytest.mark.parametrize("graph_name", datasets.DATASET_ORDER)
def test_table3_tiny_full_grid(app_name, graph_name):
    """Every Table III tiny cell, both engines, byte-identical."""
    _grid_cell(app_name, graph_name)
