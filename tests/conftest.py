"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import strategies as st

from repro.graph.csr import CSRGraph
from repro.graph.generators import erdos_renyi, powerlaw_cluster


@st.composite
def small_graphs(draw, min_vertices=1, max_vertices=12, connected_bias=True):
    """Random small CSRGraph instances for property tests."""
    n = draw(st.integers(min_vertices, max_vertices))
    max_edges = n * (n - 1) // 2
    all_pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(all_pairs), max_size=max_edges, unique=True)
        if all_pairs
        else st.just([])
    )
    return CSRGraph(n, edges)


@pytest.fixture(scope="session")
def er_graph():
    """A fixed sparse Erdős–Rényi graph."""
    return erdos_renyi(300, 600, seed=42)


@pytest.fixture(scope="session")
def pl_graph():
    """A fixed skewed preferential-attachment graph."""
    return powerlaw_cluster(300, 3, 0.4, seed=42)


@pytest.fixture(scope="session")
def dense_graph():
    """A small, dense, clustered graph (plenty of cliques and motifs)."""
    return powerlaw_cluster(120, 6, 0.7, seed=7)
