"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import os

import pytest
from hypothesis import strategies as st

from repro.graph.csr import CSRGraph
from repro.graph.generators import erdos_renyi, powerlaw_cluster


@pytest.fixture(scope="session", autouse=True)
def _isolated_artifact_cache(tmp_path_factory):
    """Point the runtime artifact cache at a per-session temp dir.

    Keeps the suite hermetic (no writes under ``~/.cache``) and keeps runs
    independent of whatever a previous session cached.  Executor pool
    workers inherit the environment variable, so they share the same root.
    """
    from repro.graph.store import reset_default_graph_store
    from repro.runtime.cache import reset_default_cache

    root = tmp_path_factory.mktemp("gramer-cache")
    previous = os.environ.get("GRAMER_CACHE_DIR")
    os.environ["GRAMER_CACHE_DIR"] = str(root)
    reset_default_cache()
    reset_default_graph_store()
    yield
    if previous is None:
        os.environ.pop("GRAMER_CACHE_DIR", None)
    else:
        os.environ["GRAMER_CACHE_DIR"] = previous
    reset_default_cache()
    reset_default_graph_store()


@st.composite
def small_graphs(draw, min_vertices=1, max_vertices=12, connected_bias=True):
    """Random small CSRGraph instances for property tests."""
    n = draw(st.integers(min_vertices, max_vertices))
    max_edges = n * (n - 1) // 2
    all_pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(all_pairs), max_size=max_edges, unique=True)
        if all_pairs
        else st.just([])
    )
    return CSRGraph(n, edges)


@pytest.fixture(scope="session")
def er_graph():
    """A fixed sparse Erdős–Rényi graph."""
    return erdos_renyi(300, 600, seed=42)


@pytest.fixture(scope="session")
def pl_graph():
    """A fixed skewed preferential-attachment graph."""
    return powerlaw_cluster(300, 3, 0.4, seed=42)


@pytest.fixture(scope="session")
def dense_graph():
    """A small, dense, clustered graph (plenty of cliques and motifs)."""
    return powerlaw_cluster(120, 6, 0.7, seed=7)
