"""Smoke tests: every example runs end-to-end on the fast engine.

Each example gained ``--tiny`` (shrunk graph) and ``--engine`` flags so
this suite can execute them as real subprocesses — the same way a user
would — and assert they exit cleanly.  The examples self-check their own
results (e.g. quickstart asserts simulator counts equal the software
engine's), so exit code 0 is a meaningful signal, not just "didn't crash".
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
EXAMPLES = sorted(
    p.name for p in (REPO_ROOT / "examples").glob("*.py")
)


def test_examples_are_enumerated():
    assert EXAMPLES, "examples/ directory is empty?"


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs_on_fast_engine(example):
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    completed = subprocess.run(
        [
            sys.executable,
            str(REPO_ROOT / "examples" / example),
            "--tiny",
            "--engine",
            "fast",
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
        cwd=REPO_ROOT,
    )
    assert completed.returncode == 0, (
        f"{example} failed (exit {completed.returncode}):\n"
        f"{completed.stdout[-2000:]}\n{completed.stderr[-2000:]}"
    )
    assert completed.stdout.strip(), f"{example} produced no output"


def test_final_batch_script_imports():
    """scripts/final_batch.py is too slow to smoke-run; importing it
    still catches interface drift against the experiment modules."""
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    completed = subprocess.run(
        [
            sys.executable,
            "-c",
            "import importlib.util as u; "
            "spec = u.spec_from_file_location('final_batch', "
            "'scripts/final_batch.py'); "
            "module = u.module_from_spec(spec); "
            "spec.loader.exec_module(module)",
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
        cwd=REPO_ROOT,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
