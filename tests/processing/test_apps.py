"""Vertex-centric applications against networkx oracles."""

import math

import networkx as nx
import pytest
from hypothesis import given, settings

from repro.graph.generators import cycle, path, star
from repro.processing import (
    BreadthFirstSearch,
    ConnectedComponents,
    IterationLimitError,
    PageRank,
    SingleSourceShortestPaths,
    run_vertex_program,
)

from ..conftest import small_graphs


def to_networkx(graph):
    g = nx.Graph(list(graph.edges()))
    g.add_nodes_from(range(graph.num_vertices))
    return g


class TestBFS:
    def test_path_distances(self):
        g = path(5)
        values, _ = run_vertex_program(g, BreadthFirstSearch(0))
        assert values == [0, 1, 2, 3, 4]

    def test_unreachable_stays_infinite(self):
        from repro.graph.csr import CSRGraph

        g = CSRGraph(4, [(0, 1)])
        values, _ = run_vertex_program(g, BreadthFirstSearch(0))
        assert values[0] == 0 and values[1] == 1
        assert math.isinf(values[2]) and math.isinf(values[3])

    def test_matches_networkx(self, pl_graph):
        values, _ = run_vertex_program(pl_graph, BreadthFirstSearch(0))
        expected = nx.single_source_shortest_path_length(
            to_networkx(pl_graph), 0
        )
        for v in range(pl_graph.num_vertices):
            if v in expected:
                assert values[v] == expected[v]
            else:
                assert math.isinf(values[v])

    @given(small_graphs(min_vertices=2, max_vertices=12))
    @settings(max_examples=30, deadline=None)
    def test_random_graphs(self, g):
        values, _ = run_vertex_program(g, BreadthFirstSearch(0))
        expected = nx.single_source_shortest_path_length(to_networkx(g), 0)
        for v, d in expected.items():
            assert values[v] == d


class TestSSSP:
    def test_matches_dijkstra(self, er_graph):
        program = SingleSourceShortestPaths(0)
        values, _ = run_vertex_program(er_graph, program)
        G = to_networkx(er_graph)
        for u, v in G.edges():
            G[u][v]["weight"] = program.weight_fn(u, v)
        expected = nx.single_source_dijkstra_path_length(G, 0)
        for v, d in expected.items():
            assert values[v] == d

    def test_weights_symmetric_requirement(self):
        # The default weight function is symmetric in (u, v).
        program = SingleSourceShortestPaths(0)
        assert program.weight_fn(3, 7) == program.weight_fn(7, 3)


class TestCC:
    def test_two_components(self):
        from repro.graph.csr import CSRGraph

        g = CSRGraph(5, [(0, 1), (1, 2), (3, 4)])
        values, _ = run_vertex_program(g, ConnectedComponents())
        assert values[0] == values[1] == values[2] == 0
        assert values[3] == values[4] == 3

    def test_matches_networkx(self, pl_graph):
        values, _ = run_vertex_program(pl_graph, ConnectedComponents())
        for component in nx.connected_components(to_networkx(pl_graph)):
            labels = {values[v] for v in component}
            assert labels == {min(component)}

    @given(small_graphs(max_vertices=14))
    @settings(max_examples=30, deadline=None)
    def test_random_graphs(self, g):
        values, _ = run_vertex_program(g, ConnectedComponents())
        for component in nx.connected_components(to_networkx(g)):
            assert {values[v] for v in component} == {min(component)}


class TestPageRank:
    def test_uniform_on_cycle(self):
        g = cycle(8)
        values, _ = run_vertex_program(g, PageRank(tolerance=1e-10))
        assert all(v == pytest.approx(1 / 8, rel=1e-3) for v in values)

    def test_hub_ranks_highest(self):
        g = star(10)
        values, _ = run_vertex_program(g, PageRank(tolerance=1e-9))
        assert values[0] == max(values)

    def test_close_to_networkx(self, pl_graph):
        values, _ = run_vertex_program(pl_graph, PageRank(tolerance=1e-9))
        expected = nx.pagerank(to_networkx(pl_graph), alpha=0.85, tol=1e-10)
        for v in range(pl_graph.num_vertices):
            assert values[v] == pytest.approx(expected[v], abs=5e-4)

    def test_damping_validated(self):
        with pytest.raises(ValueError):
            PageRank(damping=1.5)


class TestEngine:
    def test_iteration_limit(self):
        g = cycle(30)
        with pytest.raises(IterationLimitError):
            run_vertex_program(g, BreadthFirstSearch(0), max_iterations=2)

    def test_supersteps_counted(self):
        g = path(6)
        _, steps = run_vertex_program(g, BreadthFirstSearch(0))
        assert steps >= 5  # distance-5 chain needs at least 5 waves

    def test_bad_initial_values_rejected(self):
        class Broken(BreadthFirstSearch):
            def initial_values(self, graph):
                return [0]

        with pytest.raises(ValueError, match="one value per vertex"):
            run_vertex_program(cycle(4), Broken(0))

    def test_memory_charged(self):
        from repro.locality.trace import AccessCounter

        mem = AccessCounter()
        run_vertex_program(cycle(6), BreadthFirstSearch(0), mem=mem)
        assert mem.total_vertex_accesses > 0
        assert mem.total_edge_accesses > 0
