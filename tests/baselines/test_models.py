"""Fractal-model and RStream-model baselines."""

import pytest

from repro.baselines.cpu import CPUConfig
from repro.baselines.fractal import FractalModel
from repro.baselines.rstream import RStreamModel
from repro.graph.generators import clique, powerlaw_cluster
from repro.memory.disk import DiskModel
from repro.mining.apps import CliqueFinding, MotifCounting
from repro.mining.engine import run_dfs


@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster(250, 3, 0.4, seed=31)


class TestFractal:
    def test_counts_match_reference(self, graph):
        ref = run_dfs(graph, CliqueFinding(4)).result()
        result = FractalModel().run(graph, CliqueFinding(4))
        assert result.mining.embeddings_by_size == ref.embeddings_by_size
        assert result.available

    def test_task_overhead_dominates_tiny_graphs(self):
        g = clique(5)
        result = FractalModel(task_overhead_s=0.14).run(g, CliqueFinding(3))
        # Mining K5 is microseconds; the modeled time is ~the fixed overhead.
        assert result.seconds == pytest.approx(0.14, rel=0.05)

    def test_no_overhead_config(self, graph):
        fast = FractalModel(task_overhead_s=0.0).run(graph, CliqueFinding(3))
        slow = FractalModel(task_overhead_s=1.0).run(graph, CliqueFinding(3))
        assert slow.seconds == pytest.approx(fast.seconds + 1.0)

    def test_breakdown_attached(self, graph):
        result = FractalModel().run(graph, MotifCounting(3))
        assert result.breakdown.accesses > 0
        assert result.breakdown.total_cycles > 0


class TestRStream:
    def test_counts_match_reference(self, graph):
        ref = run_dfs(graph, MotifCounting(3)).result()
        result = RStreamModel().run(graph, MotifCounting(3))
        assert result.mining.patterns_by_size == ref.patterns_by_size
        assert result.available

    def test_disk_traffic_charged(self, graph):
        disk = DiskModel()
        result = RStreamModel(disk=disk).run(graph, MotifCounting(3))
        # Join intermediates + embeddings stream out; only embeddings
        # stream back as the next level's input.
        assert disk.bytes_written > disk.bytes_read > 0
        assert result.seconds > disk.seconds * 0.5  # disk time included
        assert disk.resident_bytes == 0  # levels recycled

    def test_frontier_overflow_is_na(self):
        g = clique(14)
        result = RStreamModel(max_frontier=100).run(g, MotifCounting(4))
        assert not result.available
        assert result.failed == "N/A"
        assert result.seconds is not None  # inf marker

    def test_out_of_disk_is_na(self, graph):
        disk = DiskModel(capacity_bytes=10)
        result = RStreamModel(disk=disk).run(graph, MotifCounting(3))
        assert not result.available

    def test_slower_than_fractal_when_intermediates_large(self):
        g = powerlaw_cluster(400, 4, 0.5, seed=32)
        fractal = FractalModel(task_overhead_s=0.0).run(g, MotifCounting(4))
        rstream = RStreamModel(startup_overhead_s=0.0).run(g, MotifCounting(4))
        assert rstream.seconds > fractal.seconds


class TestSharedCPUModel:
    def test_same_cpu_config_comparable(self, graph):
        cfg = CPUConfig(l1_bytes=1024, l2_bytes=4096, l3_bytes=16384)
        fractal = FractalModel(cfg).run(graph, CliqueFinding(3))
        rstream = RStreamModel(cfg).run(graph, CliqueFinding(3))
        assert fractal.mining.embeddings_by_size == (
            rstream.mining.embeddings_by_size
        )
