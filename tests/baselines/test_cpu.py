"""CPU cache-hierarchy timing model."""

import pytest

from repro.baselines.cpu import CPUConfig, CPUMemory
from repro.graph.generators import erdos_renyi, powerlaw_cluster
from repro.mining.apps import MotifCounting
from repro.mining.engine import run_dfs


class TestConfig:
    def test_effective_parallelism(self):
        cfg = CPUConfig(cores=14, parallel_efficiency=0.85)
        assert cfg.effective_parallelism == pytest.approx(11.9)


class TestCPUMemory:
    def test_l1_hit_costs_no_stall(self):
        g = erdos_renyi(50, 100, seed=1)
        mem = CPUMemory(g)
        mem.vertex(0)
        mem.vertex(0)  # L1 hit
        assert mem.breakdown.vertex_stall_cycles > 0  # first access missed
        stalls = mem.breakdown.vertex_stall_cycles
        mem.vertex(0)
        assert mem.breakdown.vertex_stall_cycles == stalls

    def test_vertex_edge_attribution(self):
        g = erdos_renyi(50, 100, seed=1)
        mem = CPUMemory(g)
        mem.vertex(0)
        assert mem.breakdown.edge_stall_cycles == 0
        mem.edge(0, 0)
        assert mem.breakdown.edge_stall_cycles > 0

    def test_line_spatial_locality(self):
        g = erdos_renyi(50, 100, seed=1)
        mem = CPUMemory(g)
        mem.edge(0, 0)
        before = mem.breakdown.edge_stall_cycles
        mem.edge(1, 0)  # same 64-byte line: 8 entries per line
        assert mem.breakdown.edge_stall_cycles == before

    def test_bigger_footprint_more_stalls(self):
        """Fig. 3's trend: stall share grows as graphs outgrow the caches."""
        small_cfg = CPUConfig(l1_bytes=512, l2_bytes=1024, l3_bytes=4096)

        def stall_share(n, m):
            g = powerlaw_cluster(n, 3, 0.3, seed=2, max_degree=m)
            mem = CPUMemory(g, small_cfg)
            run_dfs(g, MotifCounting(3), mem=mem)
            fractions = mem.breakdown.stall_fractions()
            return fractions["vertex"] + fractions["edge"]

        assert stall_share(2000, 40) > stall_share(100, 20)

    def test_stall_fractions_sum_to_one(self):
        g = erdos_renyi(100, 300, seed=3)
        mem = CPUMemory(g)
        run_dfs(g, MotifCounting(3), mem=mem)
        fractions = mem.breakdown.stall_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert all(0 <= v <= 1 for v in fractions.values())

    def test_empty_breakdown(self):
        g = erdos_renyi(10, 10, seed=0)
        mem = CPUMemory(g)
        assert mem.breakdown.stall_fractions() == {
            "vertex": 0.0, "edge": 0.0, "others": 1.0,
        }

    def test_seconds_parallel_division(self):
        g = erdos_renyi(100, 300, seed=3)
        mem = CPUMemory(g)
        run_dfs(g, MotifCounting(3), mem=mem)
        cfg = mem.config
        expected = mem.breakdown.total_cycles / (cfg.freq_ghz * 1e9)
        assert mem.seconds() == pytest.approx(
            expected / cfg.effective_parallelism
        )
        assert mem.seconds(extra_overhead_s=1.0) == pytest.approx(
            mem.seconds() + 1.0
        )

    def test_charge_candidate(self):
        g = erdos_renyi(10, 10, seed=0)
        mem = CPUMemory(g)
        before = mem.breakdown.compute_cycles
        mem.charge_candidate(10)
        assert (
            mem.breakdown.compute_cycles
            == before + 10 * mem.config.cycles_per_candidate
        )
