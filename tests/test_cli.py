"""The gramer CLI."""

import pytest

from repro.cli import main


class TestCLI:
    def test_datasets_listing(self, capsys):
        main(["datasets", "--scale", "tiny"])
        out = capsys.readouterr().out
        assert "citeseer" in out and "lj" in out
        assert "paper:" in out

    def test_mine_dataset(self, capsys):
        main(["mine", "--dataset", "citeseer", "--scale", "tiny",
              "--app", "3-CF"])
        out = capsys.readouterr().out
        assert "mined in" in out
        assert "embeddings by size" in out

    def test_mine_edge_list_file(self, tmp_path, capsys):
        target = tmp_path / "g.txt"
        target.write_text("0 1\n1 2\n0 2\n")
        main(["mine", "--graph", str(target), "--app", "3-CF"])
        out = capsys.readouterr().out
        assert "3: 1" in out  # exactly one triangle

    def test_mine_fsm(self, capsys):
        main(["mine", "--dataset", "p2p", "--scale", "tiny",
              "--app", "FSM-5"])
        out = capsys.readouterr().out
        assert "summary" in out

    def test_simulate(self, capsys):
        main(["simulate", "--dataset", "p2p", "--scale", "tiny",
              "--app", "3-CF", "--slots", "4"])
        out = capsys.readouterr().out
        assert "cycles" in out
        assert "hit ratios" in out

    def test_simulate_no_stealing(self, capsys):
        main(["simulate", "--dataset", "citeseer", "--scale", "tiny",
              "--app", "3-CF", "--no-stealing"])
        assert "steals 0" in capsys.readouterr().out

    def test_missing_graph_errors(self):
        with pytest.raises(SystemExit):
            main(["mine", "--app", "3-CF"])

    def test_experiment_subset(self, tmp_path, capsys):
        main(["experiment", "--scale", "tiny", "--only", "table4",
              "--out", str(tmp_path)])
        assert (tmp_path / "table4.txt").exists()
        assert (tmp_path / "results.json").exists()
