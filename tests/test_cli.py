"""The gramer CLI."""

import pytest

from repro.cli import main


class TestCLI:
    def test_datasets_listing(self, capsys):
        main(["datasets", "--scale", "tiny"])
        out = capsys.readouterr().out
        assert "citeseer" in out and "lj" in out
        assert "paper:" in out

    def test_mine_dataset(self, capsys):
        main(["mine", "--dataset", "citeseer", "--scale", "tiny",
              "--app", "3-CF"])
        out = capsys.readouterr().out
        assert "mined in" in out
        assert "embeddings by size" in out

    def test_mine_edge_list_file(self, tmp_path, capsys):
        target = tmp_path / "g.txt"
        target.write_text("0 1\n1 2\n0 2\n")
        main(["mine", "--graph", str(target), "--app", "3-CF"])
        out = capsys.readouterr().out
        assert "3: 1" in out  # exactly one triangle

    def test_mine_fsm(self, capsys):
        main(["mine", "--dataset", "p2p", "--scale", "tiny",
              "--app", "FSM-5"])
        out = capsys.readouterr().out
        assert "summary" in out

    def test_simulate(self, capsys):
        main(["simulate", "--dataset", "p2p", "--scale", "tiny",
              "--app", "3-CF", "--slots", "4"])
        out = capsys.readouterr().out
        assert "cycles" in out
        assert "hit ratios" in out

    def test_simulate_no_stealing(self, capsys):
        main(["simulate", "--dataset", "citeseer", "--scale", "tiny",
              "--app", "3-CF", "--no-stealing"])
        assert "steals 0" in capsys.readouterr().out

    def test_missing_graph_errors(self):
        with pytest.raises(SystemExit):
            main(["mine", "--app", "3-CF"])

    def test_experiment_subset(self, tmp_path, capsys):
        main(["experiment", "--scale", "tiny", "--only", "table4",
              "--out", str(tmp_path)])
        assert (tmp_path / "table4.txt").exists()
        assert (tmp_path / "results.json").exists()

    def test_experiment_accepts_jobs_and_no_cache(self, tmp_path, capsys):
        main(["experiment", "--scale", "tiny", "--only", "table2",
              "--out", str(tmp_path), "--jobs", "2", "--no-cache"])
        assert (tmp_path / "table2.txt").exists()

    def test_sweep(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        main(["sweep", "--apps", "3-CF", "--datasets", "citeseer",
              "--backends", "gramer", "fractal", "--scale", "tiny",
              "--out", str(out)])
        text = capsys.readouterr().out
        assert "GRAMER" in text and "Fractal" in text
        assert "2 jobs" in text
        import json

        payload = json.loads(out.read_text())
        assert {r["backend"] for r in payload["results"]} == {"gramer", "fractal"}
        assert all(r["ok"] for r in payload["results"])

    def test_sweep_parallel_and_unknown_backend(self, capsys):
        main(["sweep", "--apps", "3-CF", "--datasets", "citeseer", "p2p",
              "--backends", "gramer", "--scale", "tiny", "--jobs", "2",
              "--no-cache"])
        assert "2 jobs" in capsys.readouterr().out
        with pytest.raises(SystemExit, match="unknown backend"):
            main(["sweep", "--apps", "3-CF", "--backends", "warp"])
        with pytest.raises(SystemExit, match="unknown dataset"):
            main(["sweep", "--apps", "3-CF", "--datasets", "nope"])

    def test_sweep_exit_code_reflects_failures(self, capsys):
        """A sweep containing failed cells must exit nonzero for scripts."""
        with pytest.raises(SystemExit) as info:
            main(["sweep", "--apps", "4-MC", "--datasets", "lj",
                  "--backends", "gramer", "--scale", "tiny", "--jobs", "2",
                  "--timeout", "0.01", "--no-cache"])
        assert info.value.code == 1
        assert "1 failed" in capsys.readouterr().out

    def test_simulate_with_trace(self, tmp_path, capsys):
        trace = tmp_path / "sim-trace.json"
        main(["simulate", "--dataset", "citeseer", "--scale", "tiny",
              "--app", "3-CF", "--trace", str(trace)])
        out = capsys.readouterr().out
        assert "cycles" in out
        assert "categories:" in out
        import json

        payload = json.loads(trace.read_text())
        assert payload["traceEvents"]

    def test_trace_command(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        jsonl = tmp_path / "trace.jsonl"
        main(["trace", "3-CF", "citeseer", "--scale", "tiny",
              "--out", str(trace), "--jsonl", str(jsonl)])
        out = capsys.readouterr().out
        assert "cycles" in out and "perfetto" in out.lower()
        import json

        from repro.obs import validate_event

        payload = json.loads(trace.read_text())
        categories = {
            e["cat"] for e in payload["traceEvents"] if e["ph"] != "M"
        }
        assert {"pu", "memory", "steal", "executor"} <= categories
        lines = jsonl.read_text().splitlines()
        assert json.loads(lines[0])["kind"] == "gramer-trace"  # header
        for line in lines[1:]:
            assert validate_event(json.loads(line)) == []

    def test_memprofile_text_report(self, capsys):
        main(["memprofile", "--dataset", "citeseer", "--scale", "tiny",
              "--app", "3-CF", "--backends", "gramer", "--no-cache"])
        out = capsys.readouterr().out
        assert "memory access profile: gramer" in out
        assert "adjacency" in out
        assert "1024B rows x 8 streams" in out

    def test_memprofile_compare_and_out(self, tmp_path, capsys):
        report = tmp_path / "compare.txt"
        main(["memprofile", "--dataset", "citeseer", "--scale", "tiny",
              "--app", "3-CF", "--compare", "gramer", "fractal",
              "--no-cache", "--out", str(report)])
        assert "wrote" in capsys.readouterr().out
        text = report.read_text()
        assert "seq gramer" in text and "seq fractal" in text

    def test_memprofile_json_is_machine_readable(self, capsys):
        main(["memprofile", "--dataset", "citeseer", "--scale", "tiny",
              "--app", "3-CF", "--backends", "fractal", "--no-cache",
              "--format", "json"])
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["fractal"]["schema_version"] == 1

    def test_memprofile_requires_dataset(self):
        with pytest.raises(SystemExit, match="--dataset"):
            main(["memprofile", "--app", "3-CF"])
        with pytest.raises(SystemExit, match="unknown dataset"):
            main(["memprofile", "--dataset", "nope", "--app", "3-CF"])

    def test_sweep_access_report(self, tmp_path, capsys):
        report = tmp_path / "access.md"
        main(["sweep", "--apps", "3-CF", "--datasets", "citeseer",
              "--backends", "gramer", "fractal", "--scale", "tiny",
              "--access-report", str(report)])
        out = capsys.readouterr().out
        assert "traced cell" in out
        text = report.read_text()
        assert text.startswith("| cell |")
        assert "gramer:3-CF@citeseer/tiny" in text

    def test_trace_unknown_dataset_errors(self):
        with pytest.raises(SystemExit, match="unknown dataset"):
            main(["trace", "3-CF", "nope"])

    def test_profile_command(self, capsys):
        main(["profile", "--dataset", "citeseer", "--scale", "tiny",
              "--app", "3-CF", "--metrics"])
        out = capsys.readouterr().out
        assert "stall attribution" in out
        assert "cache-set pressure" in out
        assert "timeline" in out
        assert "sim_cycles_total" in out  # --metrics dump

    def test_sweep_reports_slowest_jobs(self, capsys):
        main(["sweep", "--apps", "3-CF", "--datasets", "citeseer",
              "--backends", "gramer", "--scale", "tiny", "--no-cache"])
        assert "slowest jobs" in capsys.readouterr().out

    def test_check_clean_file(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("VALUE = 3\n")
        main(["check", str(target)])
        assert "clean" in capsys.readouterr().out

    def test_check_flags_bad_file_and_exits_nonzero(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text("import time\nstamp = time.time()\n")
        with pytest.raises(SystemExit) as info:
            main(["check", str(target)])
        assert info.value.code == 1
        out = capsys.readouterr().out
        assert "GRM101" in out and "1 finding" in out

    def test_check_github_format(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text("import time\nstamp = time.time()\n")
        with pytest.raises(SystemExit):
            main(["check", str(target), "--format", "github"])
        assert "::error file=" in capsys.readouterr().out

    def test_check_select_and_list_rules(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text("import time\nstamp = time.time()\n")
        main(["check", str(target), "--select", "units"])
        assert "clean" in capsys.readouterr().out
        main(["check", "--list-rules"])
        out = capsys.readouterr().out
        assert "GRM101" in out and "GRM501" in out

    def test_check_unknown_rule_errors(self, tmp_path):
        target = tmp_path / "clean.py"
        target.write_text("VALUE = 3\n")
        with pytest.raises(SystemExit, match="unknown rule"):
            main(["check", str(target), "--select", "NOPE"])

    def test_check_explain_prints_rationale(self, capsys):
        main(["check", "--explain", "GRM1002"])
        out = capsys.readouterr().out
        assert "GRM1002" in out
        assert "cache" in out.lower()
        # Rationale body, not just the one-line summary.
        assert len(out.splitlines()) > 2

    def test_check_explain_unknown_rule_errors(self):
        with pytest.raises(SystemExit, match="unknown rule"):
            main(["check", "--explain", "GRM424242"])

    def test_check_sarif_format(self, tmp_path, capsys):
        import json

        target = tmp_path / "bad.py"
        target.write_text("import time\nstamp = time.time()\n")
        with pytest.raises(SystemExit) as info:
            main(["check", str(target), "--format", "sarif"])
        assert info.value.code == 1
        captured = capsys.readouterr()
        log = json.loads(captured.out)
        assert log["version"] == "2.1.0"
        (run,) = log["runs"]
        assert any(r["ruleId"] == "GRM101" for r in run["results"])
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"GRM002", "GRM1001", "GRM1002", "GRM1003"} <= rule_ids
        # Human summary goes to stderr so stdout stays valid JSON.
        assert "finding" in captured.err

    def test_check_changed_scopes_to_modified_files(self, tmp_path, capsys, monkeypatch):
        import subprocess

        monkeypatch.chdir(tmp_path)
        subprocess.run(["git", "init", "-q"], check=True)
        subprocess.run(["git", "config", "user.email", "t@t"], check=True)
        subprocess.run(["git", "config", "user.name", "t"], check=True)
        committed = tmp_path / "old.py"
        committed.write_text("import time\nstamp = time.time()\n")
        subprocess.run(["git", "add", "-A"], check=True)
        subprocess.run(["git", "commit", "-q", "-m", "seed"], check=True)
        fresh = tmp_path / "fresh.py"
        fresh.write_text("import time\nlater = time.time()\n")
        # Only the untracked file's findings are reported.
        with pytest.raises(SystemExit):
            main(["check", str(tmp_path), "--changed", "HEAD"])
        out = capsys.readouterr().out
        assert "fresh.py" in out
        assert "old.py" not in out

    def test_check_changed_works_from_subdirectory(
        self, tmp_path, capsys, monkeypatch
    ):
        import subprocess

        monkeypatch.chdir(tmp_path)
        subprocess.run(["git", "init", "-q"], check=True)
        subprocess.run(["git", "config", "user.email", "t@t"], check=True)
        subprocess.run(["git", "config", "user.name", "t"], check=True)
        tracked = tmp_path / "tracked.py"
        tracked.write_text("VALUE = 1\n")
        subprocess.run(["git", "add", "-A"], check=True)
        subprocess.run(["git", "commit", "-q", "-m", "seed"], check=True)
        tracked.write_text("import time\nstamp = time.time()\n")
        (tmp_path / "fresh.py").write_text("import time\nlater = time.time()\n")
        # Git names are repo-root-relative; running from a subdirectory
        # must not silently drop them (a falsely green pre-commit).
        sub = tmp_path / "sub"
        sub.mkdir()
        monkeypatch.chdir(sub)
        with pytest.raises(SystemExit):
            main(["check", str(tmp_path), "--changed", "HEAD"])
        out = capsys.readouterr().out
        assert "tracked.py" in out
        assert "fresh.py" in out

    def test_check_changed_with_no_modifications_is_clean(
        self, tmp_path, capsys, monkeypatch
    ):
        import subprocess

        monkeypatch.chdir(tmp_path)
        subprocess.run(["git", "init", "-q"], check=True)
        subprocess.run(["git", "config", "user.email", "t@t"], check=True)
        subprocess.run(["git", "config", "user.name", "t"], check=True)
        (tmp_path / "mod.py").write_text("VALUE = 3\n")
        subprocess.run(["git", "add", "-A"], check=True)
        subprocess.run(["git", "commit", "-q", "-m", "seed"], check=True)
        main(["check", str(tmp_path), "--changed"])
        assert "clean" in capsys.readouterr().out
