"""Canonical pattern codes."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mining.patterns import (
    MAX_PATTERN_SIZE,
    canonical_code,
    code_from_columns,
    pattern_name,
)


class TestCanonicalCode:
    def test_triangle_known(self):
        code = canonical_code([(0, 1), (1, 2), (0, 2)], 3)
        assert code.size == 3
        assert code.num_edges == 3
        assert code.is_clique
        assert pattern_name(code) == "triangle"

    def test_wedge_known(self):
        code = canonical_code([(0, 1), (1, 2)], 3)
        assert pattern_name(code) == "wedge"
        assert not code.is_clique

    def test_wedge_center_invariant(self):
        # All three choices of wedge center give the same code.
        codes = {
            canonical_code([(0, 1), (0, 2)], 3),
            canonical_code([(1, 0), (1, 2)], 3),
            canonical_code([(2, 0), (2, 1)], 3),
        }
        assert len(codes) == 1

    def test_four_vertex_census_has_six_connected_patterns(self):
        codes = set()
        for edge_subset in _all_graphs(4):
            code = canonical_code(edge_subset, 4)
            if code.is_connected:
                codes.add(code)
        assert len(codes) == 6  # path, star, cycle, tailed-tri, diamond, clique

    def test_named_four_patterns(self):
        names = {
            pattern_name(canonical_code(e, 4))
            for e in (
                [(0, 1), (1, 2), (2, 3)],
                [(0, 1), (0, 2), (0, 3)],
                [(0, 1), (1, 2), (2, 3), (3, 0)],
                [(0, 1), (1, 2), (0, 2), (2, 3)],
                [(0, 1), (1, 2), (0, 2), (0, 3), (2, 3)],
                list(itertools.combinations(range(4), 2)),
            )
        }
        assert names == {
            "3-path", "3-star", "4-cycle",
            "tailed-triangle", "diamond", "4-clique",
        }

    def test_size_limit(self):
        with pytest.raises(ValueError, match="MAX_PATTERN_SIZE"):
            canonical_code([], MAX_PATTERN_SIZE + 1)

    def test_bad_edge_rejected(self):
        with pytest.raises(ValueError):
            canonical_code([(0, 3)], 3)
        with pytest.raises(ValueError):
            canonical_code([(1, 1)], 3)

    def test_labels_distinguish(self):
        plain = canonical_code([(0, 1)], 2, (0, 0))
        labeled = canonical_code([(0, 1)], 2, (0, 1))
        assert plain != labeled

    def test_label_permutation_invariant(self):
        a = canonical_code([(0, 1), (1, 2)], 3, (5, 9, 5))
        b = canonical_code([(2, 1), (1, 0)], 3, (5, 9, 5))
        assert a == b

    def test_label_length_checked(self):
        with pytest.raises(ValueError):
            canonical_code([(0, 1)], 2, (1,))


def _all_graphs(n):
    pairs = list(itertools.combinations(range(n), 2))
    for r in range(len(pairs) + 1):
        for subset in itertools.combinations(pairs, r):
            yield list(subset)


class TestIsomorphismInvariance:
    @given(
        st.integers(3, 5),
        st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_permutation_invariance(self, n, data):
        pairs = list(itertools.combinations(range(n), 2))
        edges = data.draw(
            st.lists(st.sampled_from(pairs), unique=True, max_size=len(pairs))
        )
        labels = tuple(data.draw(st.integers(0, 2)) for _ in range(n))
        perm = data.draw(st.permutations(range(n)))
        permuted_edges = [(perm[u], perm[v]) for u, v in edges]
        permuted_labels = tuple(labels[perm.index(i)] for i in range(n))
        assert canonical_code(edges, n, labels) == canonical_code(
            permuted_edges, n, permuted_labels
        )

    def test_non_isomorphic_differ(self):
        import networkx as nx

        n = 4
        codes = {}
        for edges in _all_graphs(n):
            code = canonical_code(edges, n)
            key = code
            g = nx.Graph(edges)
            g.add_nodes_from(range(n))
            if key in codes:
                assert nx.is_isomorphic(g, codes[key])
            else:
                codes[key] = g


class TestCodeFromColumns:
    def test_matches_edge_form(self):
        # Triangle built incrementally: columns[1]=0b1, columns[2]=0b11.
        code = code_from_columns((0, 0b1, 0b11))
        assert pattern_name(code) == "triangle"

    def test_wedge_columns(self):
        code = code_from_columns((0, 0b1, 0b10))
        assert pattern_name(code) == "wedge"


class TestPatternCode:
    def test_connected_detection(self):
        connected = canonical_code([(0, 1), (1, 2)], 3)
        assert connected.is_connected
        disconnected = canonical_code([(0, 1)], 3)
        assert not disconnected.is_connected

    def test_edges_round_trip(self):
        original = [(0, 1), (1, 2), (2, 3)]
        code = canonical_code(original, 4)
        assert canonical_code(code.edges(), 4) == code

    def test_str_contains_name(self):
        assert "triangle" in str(canonical_code([(0, 1), (1, 2), (0, 2)], 3))

    def test_unknown_pattern_name_is_descriptive(self):
        code = canonical_code([(0, 1), (2, 3), (4, 0)], 5)
        assert "n=5" in pattern_name(code)

    def test_codes_are_hashable_and_ordered(self):
        a = canonical_code([(0, 1)], 2)
        b = canonical_code([(0, 1), (1, 2)], 3)
        assert len({a, b}) == 2
        assert (a < b) or (b < a)
