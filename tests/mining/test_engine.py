"""The extend-check engine: DFS/BFS equivalence, memory events, oracles."""

import math

import networkx as nx
import pytest
from hypothesis import given, settings

from repro.graph.generators import clique, cycle, path, star
from repro.locality.trace import AccessCounter, IterationTrace
from repro.mining.apps import CliqueFinding, MotifCounting
from repro.mining.engine import (
    Frame,
    FrontierOverflowError,
    NullMemory,
    advance_frame,
    run_bfs,
    run_dfs,
)

from ..conftest import small_graphs
from .test_canonical import brute_force_connected_subsets


def to_networkx(graph):
    g = nx.Graph(list(graph.edges()))
    g.add_nodes_from(range(graph.num_vertices))
    return g


class TestCliqueOracles:
    @pytest.mark.parametrize("n,k", [(5, 3), (6, 4), (7, 5)])
    def test_complete_graph(self, n, k):
        assert run_dfs(clique(n), CliqueFinding(k)).num_cliques == math.comb(n, k)

    def test_triangle_free(self):
        assert run_dfs(cycle(8), CliqueFinding(3)).num_cliques == 0

    def test_networkx_oracle(self, pl_graph):
        G = to_networkx(pl_graph)
        for k in (3, 4):
            expected = sum(
                1 for c in nx.enumerate_all_cliques(G) if len(c) == k
            )
            assert run_dfs(pl_graph, CliqueFinding(k)).num_cliques == expected

    @given(small_graphs(max_vertices=10))
    @settings(max_examples=40, deadline=None)
    def test_triangles_match_networkx(self, g):
        G = to_networkx(g)
        expected = sum(nx.triangles(G).values()) // 3
        assert run_dfs(g, CliqueFinding(3)).num_cliques == expected


class TestMotifOracles:
    def test_star_wedges(self):
        n = 6
        app = run_dfs(star(n), MotifCounting(3))
        assert app.named_census() == {"wedge": math.comb(n, 2)}

    def test_cycle_motifs(self):
        app = run_dfs(cycle(7), MotifCounting(4))
        # C7: 7 paths of 3 edges; no other connected 4-subgraphs.
        assert app.named_census() == {"3-path": 7}

    def test_clique_census(self):
        app = run_dfs(clique(5), MotifCounting(4))
        assert app.named_census() == {"4-clique": 5}

    def test_path_graph(self):
        app = run_dfs(path(5), MotifCounting(3))
        assert app.named_census() == {"wedge": 3}

    @given(small_graphs(max_vertices=9))
    @settings(max_examples=30, deadline=None)
    def test_total_equals_connected_subsets(self, g):
        app = run_dfs(g, MotifCounting(3))
        total = sum(app.motif_census(3).values())
        assert total == len(brute_force_connected_subsets(g, 3))


class TestDFSEqualsBFS:
    @given(small_graphs(max_vertices=10))
    @settings(max_examples=30, deadline=None)
    def test_motif_counting(self, g):
        a = run_dfs(g, MotifCounting(4)).result()
        b = run_bfs(g, MotifCounting(4)).result()
        assert a.embeddings_by_size == b.embeddings_by_size
        assert a.patterns_by_size == b.patterns_by_size

    def test_cliques_on_fixed_graph(self, dense_graph):
        a = run_dfs(dense_graph, CliqueFinding(4)).result()
        b = run_bfs(dense_graph, CliqueFinding(4)).result()
        assert a.embeddings_by_size == b.embeddings_by_size

    def test_access_totals_match(self, er_graph):
        """The two execution orders touch the same multiset of addresses."""
        mem_a, mem_b = AccessCounter(), AccessCounter()
        run_dfs(er_graph, MotifCounting(3), mem=mem_a)
        run_bfs(er_graph, MotifCounting(3), mem=mem_b)
        assert mem_a.vertex_counts == mem_b.vertex_counts
        assert mem_a.edge_counts == mem_b.edge_counts


class TestFrontierOverflow:
    def test_raises_beyond_limit(self):
        g = clique(12)
        with pytest.raises(FrontierOverflowError):
            run_bfs(g, MotifCounting(4), max_frontier=50)

    def test_observer_sees_levels(self):
        levels = {}
        candidates = {}

        def observe(size, count, cands):
            levels[size] = count
            candidates[size] = cands

        run_bfs(cycle(6), MotifCounting(3), frontier_observer=observe)
        assert levels[2] == 6  # six edges -> six 2-vertex embeddings
        assert levels[3] == 6  # six wedges
        assert candidates[2] >= levels[2]  # raw candidates >= accepted


class TestMemoryEvents:
    def test_iteration_attribution(self):
        trace = IterationTrace()
        run_dfs(cycle(6), MotifCounting(3), mem=trace)
        # Iteration 1 extends 1-vertex embeddings, iteration 2 extends pairs.
        assert set(trace.iterations) == {1, 2}

    def test_vertex_access_includes_members_and_candidates(self):
        mem = AccessCounter()
        run_dfs(path(3), MotifCounting(3), mem=mem)
        assert mem.total_vertex_accesses > 0
        assert mem.total_edge_accesses > 0

    def test_edge_accesses_cover_all_slots(self):
        g = cycle(5)
        mem = AccessCounter()
        run_dfs(g, MotifCounting(3), mem=mem)
        # Every adjacency slot is streamed at least once (for the roots).
        assert set(mem.edge_counts) == set(range(len(g.neighbors)))


class TestProbeModes:
    def test_scan_and_binary_agree(self, pl_graph):
        from repro.mining.engine import check_candidate

        mem = NullMemory()
        for m, u in ((0, 5), (0, 50), (1, 7)):
            vertices = (2, 40) if m == 1 else (2,)
            binary = check_candidate(
                pl_graph, vertices, m if m < len(vertices) else 0, u,
                False, mem, probe="binary",
            )
            scan = check_candidate(
                pl_graph, vertices, m if m < len(vertices) else 0, u,
                False, mem, probe="scan",
            )
            assert binary == scan

    def test_scan_mode_on_simulator(self, pl_graph):
        from repro.accel import GramerConfig, GramerSimulator

        ref = run_dfs(pl_graph, CliqueFinding(3)).num_cliques
        app = CliqueFinding(3)
        binary_res = GramerSimulator(
            pl_graph, GramerConfig(onchip_entries=256, probe_mode="binary")
        ).run(CliqueFinding(3))
        scan_res = GramerSimulator(
            pl_graph, GramerConfig(onchip_entries=256, probe_mode="scan")
        ).run(app)
        assert app.num_cliques == ref
        assert binary_res.mining.embeddings_by_size == (
            scan_res.mining.embeddings_by_size
        )
        # Scanning touches at least as many edge slots as binary search.
        assert (
            scan_res.stats.edge_accesses >= binary_res.stats.edge_accesses
        )

    def test_bad_probe_mode_rejected(self):
        from repro.accel import GramerConfig
        import pytest

        with pytest.raises(ValueError, match="probe_mode"):
            GramerConfig(probe_mode="linear")


class TestFrame:
    def test_advance_streams_sorted_adjacency(self):
        g = star(4)
        frame = Frame((0,), (0,))
        mem = NullMemory()
        produced = []
        while True:
            candidate = advance_frame(g, frame, mem)
            if candidate is None:
                break
            produced.append(candidate)
        assert produced == [1, 2, 3, 4]
        assert frame.exhausted()

    def test_member_limit_respected(self):
        g = clique(4)
        frame = Frame((0, 1), (0, 0b1))
        frame.member_limit = 1  # only member 0 may be scanned
        mem = NullMemory()
        produced = []
        while (c := advance_frame(g, frame, mem)) is not None:
            produced.append(c)
        assert produced == [1, 2, 3]  # vertex 0's neighbors only

    def test_cursor_limit_respected(self):
        g = star(5)
        frame = Frame((0,), (0,))
        mem = NullMemory()
        advance_frame(g, frame, mem)  # loads member, cursor=1
        frame.cursor_limit = 3
        produced = []
        while (c := advance_frame(g, frame, mem)) is not None:
            produced.append(c)
        assert produced == [2, 3]  # cursor 1 and 2 only

    def test_roots_argument_restricts(self):
        g = clique(4)
        app = run_dfs(g, CliqueFinding(3), roots=[0])
        # Only cliques whose canonical minimum is 0.
        assert app.num_cliques == math.comb(3, 2)
