"""Applications: CF, MC, FSM primitives and the factory."""

import math

import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import clique, cycle, powerlaw_cluster, random_labels
from repro.mining.apps import (
    CliqueFinding,
    FrequentSubgraphMining,
    MotifCounting,
    make_app,
)
from repro.mining.engine import run_bfs, run_dfs
from repro.mining.patterns import canonical_code


class TestCliqueFinding:
    def test_counts_only_target_size(self):
        app = run_dfs(clique(6), CliqueFinding(4))
        assert set(app.patterns_by_size) == {4}
        assert app.num_cliques == math.comb(6, 4)

    def test_summary(self):
        app = run_dfs(clique(4), CliqueFinding(3))
        assert app.summary() == {"num_cliques": 4, "k": 3}

    def test_intermediate_embeddings_are_cliques(self):
        app = run_dfs(powerlaw_cluster(80, 4, 0.5, seed=1), CliqueFinding(4))
        # 2- and 3-vertex intermediates were accepted, so they were cliques.
        assert app.embeddings_by_size[2] > 0

    def test_max_vertices_validated(self):
        with pytest.raises(ValueError):
            CliqueFinding(1)


class TestMotifCounting:
    def test_census_at_intermediate_size(self):
        app = run_dfs(clique(5), MotifCounting(4))
        assert app.named_census(3) == {"triangle": math.comb(5, 3)}

    def test_named_census_default_max_size(self):
        app = run_dfs(cycle(5), MotifCounting(3))
        assert app.named_census() == {"wedge": 5}

    def test_reset_clears(self):
        app = run_dfs(cycle(5), MotifCounting(3))
        app.reset()
        assert app.motif_census() == {}
        assert app.candidates_checked == 0


def labeled_triangle_graph():
    """Two labeled triangles plus one rare-labeled triangle."""
    edges = [
        (0, 1), (1, 2), (0, 2),
        (3, 4), (4, 5), (3, 5),
        (6, 7), (7, 8), (6, 8),
    ]
    labels = [0, 0, 0, 0, 0, 0, 1, 1, 1]
    return CSRGraph(9, edges, labels=labels)


class TestFSM:
    def test_threshold_filters_patterns(self):
        g = labeled_triangle_graph()
        app = run_dfs(g, FrequentSubgraphMining(threshold=2, max_vertices=3))
        frequent = app.frequent_patterns(3)
        # The all-zero triangle occurs twice (>= 2); the label-1 one once.
        zero_triangle = canonical_code(
            [(0, 1), (1, 2), (0, 2)], 3, (0, 0, 0)
        )
        one_triangle = canonical_code(
            [(0, 1), (1, 2), (0, 2)], 3, (1, 1, 1)
        )
        assert frequent[zero_triangle] == 2
        assert one_triangle not in frequent

    def test_size2_supports_exact(self):
        g = labeled_triangle_graph()
        app = FrequentSubgraphMining(threshold=1, max_vertices=3)
        app.prepare(g)
        edge00 = canonical_code([(0, 1)], 2, (0, 0))
        edge11 = canonical_code([(0, 1)], 2, (1, 1))
        assert app._edge_pattern_support[edge00] == 6
        assert app._edge_pattern_support[edge11] == 3

    def test_aggregate_filter_prunes_infrequent_edges(self):
        g = labeled_triangle_graph()
        pruned = run_dfs(g, FrequentSubgraphMining(threshold=5, max_vertices=3))
        # Only the label-0 edge pattern (support 6) survives extension, so no
        # label-1 triangles are even enumerated.
        assert all(
            set(code.labels) == {0}
            for code in pruned.patterns_by_size.get(3, {})
        )

    def test_dfs_equals_bfs(self):
        g = random_labels(powerlaw_cluster(80, 3, 0.4, seed=2), 3, seed=1)
        a = run_dfs(g, FrequentSubgraphMining(threshold=3)).frequent_patterns()
        b = run_bfs(g, FrequentSubgraphMining(threshold=3)).frequent_patterns()
        assert a == b

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            FrequentSubgraphMining(threshold=0)

    def test_frequent_patterns_size2(self):
        g = labeled_triangle_graph()
        app = run_dfs(g, FrequentSubgraphMining(threshold=4, max_vertices=3))
        assert len(app.frequent_patterns(2)) == 1  # only the 0-0 edge

    def test_summary_fields(self):
        g = labeled_triangle_graph()
        app = run_dfs(g, FrequentSubgraphMining(threshold=2, max_vertices=3))
        summary = app.summary()
        assert summary["threshold"] == 2
        assert summary["num_frequent_patterns"] >= 1


class TestMakeApp:
    def test_cf(self):
        app = make_app("4-CF")
        assert isinstance(app, CliqueFinding)
        assert app.max_vertices == 4

    def test_mc(self):
        app = make_app("3-mc")
        assert isinstance(app, MotifCounting)
        assert app.max_vertices == 3

    def test_fsm_with_k_suffix(self):
        app = make_app("FSM-2K")
        assert isinstance(app, FrequentSubgraphMining)
        assert app.threshold == 2000

    def test_fsm_plain(self):
        assert make_app("FSM-250").threshold == 250

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown application"):
            make_app("7-XYZ")


class TestMiningResult:
    def test_snapshot_immutable_view(self):
        app = run_dfs(clique(4), MotifCounting(3))
        result = app.result()
        assert result.total_embeddings == sum(
            result.embeddings_by_size.values()
        )
        triangle = canonical_code([(0, 1), (1, 2), (0, 2)], 3)
        assert result.pattern_count(triangle) == 4

    def test_pattern_count_missing_is_zero(self):
        app = run_dfs(cycle(5), MotifCounting(3))
        triangle = canonical_code([(0, 1), (1, 2), (0, 2)], 3)
        assert app.result().pattern_count(triangle) == 0
