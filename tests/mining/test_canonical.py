"""Canonicality: exactly-once enumeration of connected induced subgraphs."""

from itertools import combinations, permutations

import pytest
from hypothesis import given, settings

from repro.graph.generators import clique, cycle, path, star
from repro.mining.canonical import (
    canonical_order,
    first_neighbor_index,
    id_checks_pass,
    is_canonical_embedding,
)
from repro.mining.engine import NullMemory, check_candidate

from ..conftest import small_graphs


def brute_force_connected_subsets(graph, k):
    """All connected induced k-subsets, as frozensets (oracle)."""
    result = set()
    for subset in combinations(range(graph.num_vertices), k):
        seen = {subset[0]}
        stack = [subset[0]]
        members = set(subset)
        while stack:
            v = stack.pop()
            for u in members - seen:
                if graph.has_edge(v, u):
                    seen.add(u)
                    stack.append(u)
        if seen == members:
            result.add(frozenset(subset))
    return result


class TestCanonicalOrder:
    def test_triangle(self):
        g = clique(3)
        assert canonical_order(g, [2, 0, 1]) == (0, 1, 2)

    def test_path_order_follows_adjacency(self):
        g = path(4)  # 0-1-2-3
        # {1, 2, 3}: starts at 1, then must take 2 (only neighbor), then 3.
        assert canonical_order(g, [3, 1, 2]) == (1, 2, 3)

    def test_disconnected_rejected(self):
        g = path(4)
        with pytest.raises(ValueError, match="not connected"):
            canonical_order(g, [0, 3])

    def test_duplicates_rejected(self):
        g = clique(3)
        with pytest.raises(ValueError, match="duplicates"):
            canonical_order(g, [0, 0, 1])

    def test_empty(self):
        assert canonical_order(clique(3), []) == ()

    def test_unique_per_set(self):
        g = cycle(5)
        orders = {
            canonical_order(g, perm)
            for perm in permutations([0, 1, 4])
        }
        assert len(orders) == 1


class TestIsCanonical:
    def test_only_one_order_canonical(self):
        g = clique(4)
        subset = (0, 1, 2)
        canonical = [
            perm
            for perm in permutations(subset)
            if is_canonical_embedding(g, perm)
        ]
        assert len(canonical) == 1

    def test_disconnected_not_canonical(self):
        g = path(4)
        assert not is_canonical_embedding(g, (0, 3))


class TestIdChecks:
    def test_membership_rejected(self):
        assert not id_checks_pass((1, 2), 0, 2)

    def test_smaller_than_first_rejected(self):
        assert not id_checks_pass((3, 5), 1, 2)

    def test_smaller_than_later_member_rejected(self):
        # candidate from member 0 must exceed members after index 0.
        assert not id_checks_pass((1, 7), 0, 5)

    def test_larger_accepted(self):
        assert id_checks_pass((1, 3), 1, 7)


class TestFirstNeighbor:
    def test_finds_first(self):
        g = path(4)
        assert first_neighbor_index(g, (0, 1, 2), 3) == 2

    def test_not_adjacent_raises(self):
        g = path(4)
        with pytest.raises(ValueError):
            first_neighbor_index(g, (0,), 3)


class TestExactlyOnceEnumeration:
    """The core invariant: the incremental rule == brute force, exactly once."""

    def _enumerate(self, graph, k):
        """Enumerate via the engine's incremental rule; returns list of sets."""
        mem = NullMemory()
        found = []

        def extend(vertices):
            if len(vertices) == k:
                found.append(frozenset(vertices))
                return
            for m, member in enumerate(vertices):
                for u in graph.neighbors_of(member).tolist():
                    accepted, _ = check_candidate(
                        graph, vertices, m, u, False, mem
                    )
                    if accepted:
                        extend(vertices + (u,))

        for v in range(graph.num_vertices):
            extend((v,))
        return found

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_cycle(self, k):
        g = cycle(6)
        found = self._enumerate(g, k)
        expected = brute_force_connected_subsets(g, k)
        assert len(found) == len(set(found)) == len(expected)
        assert set(found) == expected

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_clique(self, k):
        g = clique(5)
        found = self._enumerate(g, k)
        expected = brute_force_connected_subsets(g, k)
        assert len(found) == len(set(found)) == len(expected)
        assert set(found) == expected

    def test_star(self):
        g = star(5)
        found = self._enumerate(g, 3)
        assert set(found) == brute_force_connected_subsets(g, 3)

    @given(small_graphs(max_vertices=9))
    @settings(max_examples=60, deadline=None)
    def test_random_graphs_k3(self, g):
        found = self._enumerate(g, 3)
        expected = brute_force_connected_subsets(g, 3)
        assert len(found) == len(set(found)), "duplicate embedding generated"
        assert set(found) == expected

    @given(small_graphs(max_vertices=8))
    @settings(max_examples=30, deadline=None)
    def test_random_graphs_k4(self, g):
        found = self._enumerate(g, 4)
        expected = brute_force_connected_subsets(g, 4)
        assert len(found) == len(set(found))
        assert set(found) == expected
