"""The user-facing Embedding wrapper."""

import pytest

from repro.graph.generators import clique, cycle, path
from repro.mining.embedding import Embedding


class TestEmbedding:
    def test_size_and_edges(self):
        g = clique(4)
        e = Embedding(g, (0, 1, 2))
        assert e.size == 3
        assert sorted(e.edges()) == [(0, 1), (0, 2), (1, 2)]

    def test_pattern_names(self):
        g = cycle(5)
        assert Embedding(g, (0, 1, 2)).pattern_name() == "wedge"
        assert Embedding(clique(3), (0, 1, 2)).pattern_name() == "triangle"

    def test_labeled_pattern(self):
        from repro.graph.csr import CSRGraph

        g = CSRGraph(3, [(0, 1), (1, 2), (0, 2)], labels=[1, 2, 3])
        code = Embedding(g, (0, 1, 2)).pattern(labeled=True)
        assert sorted(code.labels) == [1, 2, 3]

    def test_is_clique(self):
        assert Embedding(clique(4), (0, 1, 2, 3)).is_clique
        assert not Embedding(path(3), (0, 1, 2)).is_clique

    def test_is_canonical(self):
        g = path(3)
        assert Embedding(g, (0, 1, 2)).is_canonical
        assert not Embedding(g, (2, 1, 0)).is_canonical

    def test_duplicate_vertices_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            Embedding(clique(3), (0, 0, 1))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="range"):
            Embedding(clique(3), (0, 5))
