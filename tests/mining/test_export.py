"""MiningResult export / import round trips."""

import json

from repro.graph.generators import clique, powerlaw_cluster, random_labels
from repro.mining.apps import FrequentSubgraphMining, MotifCounting
from repro.mining.engine import run_dfs
from repro.mining.export import (
    load_result,
    result_from_json,
    result_to_csv,
    result_to_json,
    result_to_records,
    save_result,
)


def sample_result():
    return run_dfs(clique(5), MotifCounting(4)).result()


class TestRecords:
    def test_rows_per_pattern(self):
        records = result_to_records(sample_result())
        assert {r["size"] for r in records} == {3, 4}
        names = {r["pattern"] for r in records}
        assert names == {"triangle", "4-clique"}

    def test_counts_preserved(self):
        result = sample_result()
        records = result_to_records(result)
        total = sum(r["count"] for r in records if r["size"] == 3)
        assert total == sum(result.patterns_by_size[3].values())


class TestJSONRoundTrip:
    def test_lossless(self):
        original = sample_result()
        restored = result_from_json(result_to_json(original))
        assert restored.app_name == original.app_name
        assert restored.embeddings_by_size == original.embeddings_by_size
        assert restored.patterns_by_size == original.patterns_by_size

    def test_labeled_patterns_survive(self):
        g = random_labels(powerlaw_cluster(60, 3, 0.4, seed=1), 3, seed=2)
        original = run_dfs(g, FrequentSubgraphMining(2)).result()
        restored = result_from_json(result_to_json(original))
        assert restored.patterns_by_size == original.patterns_by_size

    def test_json_is_valid(self):
        payload = json.loads(result_to_json(sample_result()))
        assert payload["app_name"] == "MC"

    def test_file_round_trip(self, tmp_path):
        original = sample_result()
        target = tmp_path / "result.json"
        save_result(original, target)
        assert load_result(target).patterns_by_size == original.patterns_by_size


class TestCSV:
    def test_header_and_rows(self):
        text = result_to_csv(sample_result())
        lines = text.strip().splitlines()
        assert lines[0] == "size,pattern,adjacency,labels,count"
        assert len(lines) == 1 + len(result_to_records(sample_result()))

    def test_labels_joined(self):
        g = random_labels(clique(4), 2, seed=3)
        result = run_dfs(g, FrequentSubgraphMining(1)).result()
        text = result_to_csv(result)
        assert "|" in text or result.patterns_by_size == {}
