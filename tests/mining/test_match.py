"""Subgraph matching."""

import itertools

import pytest
from hypothesis import given, settings

from repro.graph.csr import CSRGraph
from repro.graph.generators import cycle, powerlaw_cluster
from repro.mining.apps import CliqueFinding, MotifCounting, SubgraphMatching
from repro.mining.apps.match import can_embed_induced
from repro.mining.engine import run_bfs, run_dfs
from repro.mining.patterns import canonical_code

from ..conftest import small_graphs

TRIANGLE = canonical_code([(0, 1), (1, 2), (0, 2)], 3)
WEDGE = canonical_code([(0, 1), (1, 2)], 3)
FOUR_CYCLE = canonical_code([(0, 1), (1, 2), (2, 3), (3, 0)], 4)
THREE_PATH = canonical_code([(0, 1), (1, 2), (2, 3)], 4)


def brute_force_matches(graph, pattern):
    """Count induced k-subsets whose canonical code equals the pattern."""
    count = 0
    k = pattern.size
    for subset in itertools.combinations(range(graph.num_vertices), k):
        edges = [
            (i, j)
            for i, j in itertools.combinations(range(k), 2)
            if graph.has_edge(subset[i], subset[j])
        ]
        labels = tuple(graph.label(v) for v in subset)
        use_labels = any(lab != 0 for lab in pattern.labels)
        code = canonical_code(edges, k, labels if use_labels else None)
        if code == pattern and code.is_connected:
            count += 1
    return count


class TestCanEmbedInduced:
    def test_wedge_in_triangle_is_not_induced(self):
        # A wedge is NOT an induced subgraph of a triangle (missing edge
        # would have to be absent).
        assert not can_embed_induced(WEDGE, TRIANGLE)

    def test_edge_in_triangle(self):
        edge = canonical_code([(0, 1)], 2)
        assert can_embed_induced(edge, TRIANGLE)

    def test_path_prefix_of_cycle(self):
        wedge = WEDGE
        assert can_embed_induced(wedge, FOUR_CYCLE)

    def test_too_large_rejected(self):
        assert not can_embed_induced(FOUR_CYCLE, TRIANGLE)

    def test_labels_respected(self):
        labeled_edge = canonical_code([(0, 1)], 2, (1, 1))
        labeled_triangle = canonical_code(
            [(0, 1), (1, 2), (0, 2)], 3, (0, 0, 0)
        )
        assert not can_embed_induced(labeled_edge, labeled_triangle)


class TestSubgraphMatching:
    def test_triangle_equals_3cf(self, pl_graph):
        match = run_dfs(pl_graph, SubgraphMatching(TRIANGLE))
        cf = run_dfs(pl_graph, CliqueFinding(3))
        assert match.num_matches == cf.num_cliques

    def test_wedge_equals_motif_census(self, pl_graph):
        match = run_dfs(pl_graph, SubgraphMatching(WEDGE))
        mc = run_dfs(pl_graph, MotifCounting(3))
        assert match.num_matches == mc.named_census().get("wedge", 0)

    def test_four_cycle_on_cycle_graph(self):
        assert run_dfs(cycle(4), SubgraphMatching(FOUR_CYCLE)).num_matches == 1
        assert run_dfs(cycle(6), SubgraphMatching(FOUR_CYCLE)).num_matches == 0

    def test_three_path_brute_force(self, dense_graph):
        match = run_dfs(dense_graph, SubgraphMatching(THREE_PATH))
        assert match.num_matches == brute_force_matches(
            dense_graph, THREE_PATH
        )

    @given(small_graphs(max_vertices=10))
    @settings(max_examples=25, deadline=None)
    def test_random_graphs_four_cycle(self, g):
        match = run_dfs(g, SubgraphMatching(FOUR_CYCLE))
        assert match.num_matches == brute_force_matches(g, FOUR_CYCLE)

    def test_dfs_equals_bfs(self, pl_graph):
        a = run_dfs(pl_graph, SubgraphMatching(THREE_PATH)).num_matches
        b = run_bfs(pl_graph, SubgraphMatching(THREE_PATH)).num_matches
        assert a == b

    def test_labeled_matching(self):
        g = CSRGraph(
            6,
            [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)],
            labels=[1, 1, 1, 1, 1, 2],
        )
        all_ones = canonical_code([(0, 1), (1, 2), (0, 2)], 3, (1, 1, 1))
        match = run_dfs(g, SubgraphMatching(all_ones))
        assert match.num_matches == 1  # only the first triangle

    def test_disconnected_pattern_rejected(self):
        disconnected = canonical_code([(0, 1)], 3)
        with pytest.raises(ValueError, match="connected"):
            SubgraphMatching(disconnected)

    def test_pruning_reduces_candidates(self):
        g = powerlaw_cluster(200, 3, 0.4, seed=9)
        match = run_dfs(g, SubgraphMatching(FOUR_CYCLE))
        census = run_dfs(g, MotifCounting(4))
        # Matching prunes branches the full census must explore.
        assert match.candidates_checked <= census.candidates_checked

    def test_works_on_simulator(self, pl_graph):
        from repro.accel import GramerConfig, GramerSimulator

        app = SubgraphMatching(TRIANGLE)
        GramerSimulator(pl_graph, GramerConfig(onchip_entries=256)).run(app)
        ref = run_dfs(pl_graph, SubgraphMatching(TRIANGLE))
        assert app.num_matches == ref.num_matches
