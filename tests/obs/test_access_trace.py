"""The access-event channel: schema, serialization, zero perturbation."""

import json

import pytest

from repro.obs.access import (
    ACCESS_SCHEMA_VERSION,
    AccessSchemaError,
    AccessTrace,
    AccessTraceSet,
    validate_access_event,
)
from repro.obs.tracer import Tracer, TraceSchemaError, read_jsonl


def _populated_trace() -> AccessTrace:
    trace = AccessTrace(meta={"backend": "gramer", "app": "3-CF"})
    trace.record("lamh.edge", "adjacency", 0, 8, "r", "offchip", cycle=10)
    trace.cycle = 20
    trace.record("lamh.vertex", "on1-rank", 64, 8, "r", "low")
    trace.record("pu.scheduler", "ancestor-buffer", 128, 8, "w", "high")
    return trace


class TestAccessEventSchema:
    def test_recorded_events_validate(self):
        for event in _populated_trace().events:
            assert validate_access_event(event.as_record()) == []

    def test_missing_key_and_bad_enums_reported(self):
        record = _populated_trace().events[0].as_record()
        del record["component"]
        record["region"] = "heap"
        record["rw"] = "x"
        record["level"] = "l4"
        problems = " ".join(validate_access_event(record))
        assert "component" in problems
        assert "heap" in problems
        assert "rw" in problems
        assert "l4" in problems

    def test_negative_address_rejected(self):
        record = _populated_trace().events[0].as_record()
        record["address"] = -1
        assert any(
            "negative" in p for p in validate_access_event(record)
        )

    def test_bool_is_not_an_int(self):
        record = _populated_trace().events[0].as_record()
        record["cycle"] = True
        assert validate_access_event(record)


class TestSelectors:
    def test_regions_in_canonical_order(self):
        assert _populated_trace().regions() == [
            "adjacency",
            "on1-rank",
            "ancestor-buffer",
        ]

    def test_select_by_region_and_level(self):
        trace = _populated_trace()
        assert len(trace.select(region="adjacency")) == 1
        assert len(trace.select(level="offchip")) == 1
        assert trace.select(region="adjacency", level="high") == []

    def test_record_stamps_trace_clock(self):
        trace = _populated_trace()
        assert [e.cycle for e in trace.events] == [10, 20, 20]


class TestAccessJsonlRoundtrip:
    def test_header_then_events(self, tmp_path):
        path = _populated_trace().write_jsonl(tmp_path / "a.jsonl")
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["schema_version"] == ACCESS_SCHEMA_VERSION
        assert header["kind"] == "gramer-access-trace"
        assert header["meta"]["backend"] == "gramer"
        assert len(lines) == 4

    def test_roundtrip_preserves_events_and_meta(self, tmp_path):
        original = _populated_trace()
        loaded = AccessTrace.read_jsonl(
            original.write_jsonl(tmp_path / "a.jsonl")
        )
        assert loaded.meta == original.meta
        assert loaded.events == original.events

    def test_newer_schema_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        header = {
            "schema_version": ACCESS_SCHEMA_VERSION + 1,
            "kind": "gramer-access-trace",
        }
        path.write_text(json.dumps(header) + "\n")
        with pytest.raises(AccessSchemaError, match="newer"):
            AccessTrace.read_jsonl(path)

    def test_older_schema_parses_best_effort(self, tmp_path):
        original = _populated_trace()
        path = original.write_jsonl(tmp_path / "old.jsonl")
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["schema_version"] = 0
        path.write_text("\n".join([json.dumps(header), *lines[1:]]) + "\n")
        assert AccessTrace.read_jsonl(path).events == original.events

    def test_headerless_pre_versioning_file_parses(self, tmp_path):
        original = _populated_trace()
        path = tmp_path / "legacy.jsonl"
        path.write_text(
            "\n".join(
                json.dumps(e.as_record()) for e in original.events
            )
            + "\n"
        )
        assert AccessTrace.read_jsonl(path).events == original.events

    def test_invalid_event_lines_dropped(self, tmp_path):
        path = _populated_trace().write_jsonl(tmp_path / "a.jsonl")
        with path.open("a") as handle:
            handle.write('{"region": "heap"}\n')
        assert len(AccessTrace.read_jsonl(path).events) == 3

    def test_empty_file_is_empty_trace(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert len(AccessTrace.read_jsonl(path)) == 0


class TestTracerJsonlVersioning:
    """Regression: the tracer channel enforces the same version contract."""

    def _tracer(self) -> Tracer:
        tracer = Tracer()
        tracer.instant("job a", "executor", 1.0, 1, 0)
        return tracer

    def test_roundtrip(self, tmp_path):
        path = self._tracer().write_jsonl(tmp_path / "t.jsonl")
        records = read_jsonl(path)
        assert len(records) == 1
        assert records[0]["name"] == "job a"

    def test_newer_schema_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(
            json.dumps({"schema_version": 99, "kind": "gramer-trace"})
            + "\n"
        )
        with pytest.raises(TraceSchemaError, match="newer"):
            read_jsonl(path)

    def test_pre_versioning_trace_still_readable(self, tmp_path):
        # Traces written before the header existed: bare event lines.
        path = tmp_path / "legacy.jsonl"
        path.write_text(
            json.dumps(
                {
                    "name": "job a",
                    "cat": "executor",
                    "ph": "i",
                    "ts": 1.0,
                    "pid": 1,
                    "tid": 0,
                }
            )
            + "\n"
        )
        assert len(read_jsonl(path)) == 1


class TestAccessTraceSet:
    def test_open_get_iterate(self):
        traces = AccessTraceSet()
        trace = traces.open("gramer:3-CF@p2p/tiny", backend="gramer")
        assert traces.get("gramer:3-CF@p2p/tiny") is trace
        assert trace.meta["label"] == "gramer:3-CF@p2p/tiny"
        assert dict(traces) == {"gramer:3-CF@p2p/tiny": trace}
