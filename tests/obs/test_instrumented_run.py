"""End-to-end observability: zero perturbation, valid traces, full coverage.

These tests pin the acceptance contract of the observability subsystem:
instrumenting a simulation must not change its results by a single byte,
and the traces it produces must be schema-valid and loadable.
"""

import json

import pytest

from repro.accel.config import GramerConfig
from repro.accel.sim import GramerSimulator
from repro.graph.generators import powerlaw_cluster
from repro.mining.apps import CliqueFinding
from repro.obs import (
    CATEGORY_EXECUTOR,
    CATEGORY_MEMORY,
    CATEGORY_PU,
    CATEGORY_STEAL,
    MetricsRegistry,
    SimInstrument,
    Tracer,
    validate_event,
)
from repro.runtime import Executor, make_jobspec


@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster(120, 3, 0.4, seed=7)


def _run(graph, instrument=None):
    config = GramerConfig(onchip_entries=128)
    sim = GramerSimulator(graph, config, instrument=instrument)
    return sim.run(CliqueFinding(3))


class TestZeroPerturbation:
    def test_traced_stats_identical_to_untraced(self, graph):
        baseline = _run(graph)
        instrument = SimInstrument(tracer=Tracer(), window_cycles=256)
        traced = _run(graph, instrument=instrument)
        assert traced.stats.as_dict() == baseline.stats.as_dict()
        assert traced.cycles == baseline.cycles

    def test_executor_path_is_also_unperturbed(self, graph):
        spec = make_jobspec("gramer", "3-CF", dataset="citeseer", scale="tiny")
        baseline = Executor(jobs=1, use_cache=False).run([spec])[0]
        instrument = SimInstrument(tracer=Tracer())
        traced = Executor(jobs=1, use_cache=False, tracer=Tracer()).run(
            [spec], instrument=instrument
        )[0]
        assert traced.ok and baseline.ok
        assert traced.fingerprint() == baseline.fingerprint()


class TestTraceContent:
    @pytest.fixture(scope="class")
    def traced(self, graph):
        tracer = Tracer()
        instrument = SimInstrument(tracer=tracer, window_cycles=256)
        result = _run(graph, instrument=instrument)
        return tracer, instrument, result

    def test_sim_categories_present(self, traced):
        tracer, _, _ = traced
        assert {CATEGORY_PU, CATEGORY_MEMORY, CATEGORY_STEAL} <= (
            tracer.categories()
        )

    def test_executor_category_joins_through_executor(self):
        spec = make_jobspec("gramer", "3-CF", dataset="citeseer", scale="tiny")
        tracer = Tracer()
        instrument = SimInstrument(tracer=tracer)
        results = Executor(jobs=1, use_cache=False, tracer=tracer).run(
            [spec], instrument=instrument
        )
        assert results[0].ok
        # The full acceptance set: all four categories in one trace.
        assert {
            CATEGORY_PU,
            CATEGORY_MEMORY,
            CATEGORY_STEAL,
            CATEGORY_EXECUTOR,
        } <= tracer.categories()

    def test_chrome_export_is_valid_json_with_monotone_ts(
        self, traced, tmp_path
    ):
        tracer, _, _ = traced
        payload = json.loads(
            tracer.write_chrome(tmp_path / "trace.json").read_text()
        )
        timestamps = [e["ts"] for e in payload["traceEvents"]]
        assert timestamps and timestamps == sorted(timestamps)

    def test_every_jsonl_record_passes_schema(self, traced, tmp_path):
        tracer, _, _ = traced
        path = tracer.write_jsonl(tmp_path / "trace.jsonl")
        lines = path.read_text().splitlines()
        # Line 0 is the schema header (docs/observability.md); every
        # following line is an event record.
        assert len(lines) > 1
        header = json.loads(lines[0])
        assert header["schema_version"] == 1
        assert header["kind"] == "gramer-trace"
        for line in lines[1:]:
            assert validate_event(json.loads(line)) == []

    def test_timeline_windows_partition_the_run(self, traced):
        _, instrument, result = traced
        windows = instrument.sampler.windows
        assert windows
        assert windows[0].start_cycle == 0
        assert windows[-1].end_cycle == result.cycles
        for prev, cur in zip(windows, windows[1:]):
            assert cur.start_cycle == prev.end_cycle

    def test_window_deltas_sum_to_run_totals(self, traced):
        _, instrument, result = traced
        windows = instrument.sampler.windows
        stats = result.stats
        assert sum(w.steals for w in windows) == stats.steals
        assert sum(w.compute_cycles for w in windows) == stats.compute_cycles
        assert sum(w.vertex_accesses for w in windows) == (
            stats.vertex_high_hits + stats.vertex_low_hits
            + stats.vertex_misses
        )

    def test_registry_publication(self, graph):
        registry = MetricsRegistry()
        instrument = SimInstrument(
            tracer=Tracer(), window_cycles=256, registry=registry
        )
        result = _run(graph, instrument=instrument)
        counter = registry.get("sim_accesses_total")
        assert counter is not None
        assert counter.total() == (
            result.stats.vertex_high_hits + result.stats.vertex_low_hits
            + result.stats.vertex_misses + result.stats.edge_high_hits
            + result.stats.edge_low_hits + result.stats.edge_misses
        )
        assert registry.get("sim_cycles_total").total() == result.cycles
