"""The event tracer: emission, schema validation, serialization."""

import json

from repro.obs.tracer import (
    CATEGORY_EXECUTOR,
    CATEGORY_MEMORY,
    CATEGORY_PU,
    NullTracer,
    PID_EXECUTOR,
    PID_TIMELINE,
    Tracer,
    validate_event,
)


def _populated_tracer():
    tracer = Tracer()
    tracer.metadata(PID_EXECUTOR, 0, "process_name", "executor")
    tracer.complete("extend", CATEGORY_PU, ts_us=50.0, dur_us=4.0, pid=10,
                    tid=1, depth=2)
    tracer.instant("root", CATEGORY_PU, ts_us=10.0, pid=10, tid=0, vertex=7)
    tracer.counter("hit_ratio", CATEGORY_MEMORY, 1024.0, PID_TIMELINE,
                   {"vertex": 0.9, "edge": 0.5})
    tracer.complete("job a", CATEGORY_EXECUTOR, ts_us=0.0, dur_us=100.0,
                    pid=PID_EXECUTOR, tid=0)
    return tracer


class TestTracer:
    def test_len_and_categories(self):
        tracer = _populated_tracer()
        assert len(tracer) == 5
        # metadata's "__metadata" pseudo-category must not leak out.
        assert tracer.categories() == {
            CATEGORY_PU,
            CATEGORY_MEMORY,
            CATEGORY_EXECUTOR,
        }

    def test_chrome_payload_ts_is_monotone_with_metadata_first(self):
        events = _populated_tracer().chrome_payload()["traceEvents"]
        assert events[0]["ph"] == "M"
        timestamps = [e["ts"] for e in events]
        assert timestamps == sorted(timestamps)

    def test_phase_specific_fields(self):
        by_phase = {
            e["ph"]: e
            for e in _populated_tracer().chrome_payload()["traceEvents"]
        }
        assert by_phase["X"]["dur"] >= 0
        assert by_phase["i"]["s"] == "t"
        assert "dur" not in by_phase["i"]
        assert by_phase["C"]["args"] == {"vertex": 0.9, "edge": 0.5}

    def test_every_emitted_event_passes_validation(self):
        for event in _populated_tracer().events:
            assert validate_event(event.as_chrome()) == []

    def test_write_chrome_round_trips(self, tmp_path):
        path = _populated_tracer().write_chrome(tmp_path / "sub" / "t.json")
        payload = json.loads(path.read_text())
        assert len(payload["traceEvents"]) == 5
        assert payload["displayTimeUnit"] == "ms"

    def test_write_jsonl_header_then_one_valid_record_per_line(
        self, tmp_path
    ):
        path = _populated_tracer().write_jsonl(tmp_path / "t.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == 6
        header = json.loads(lines[0])
        assert header == {"schema_version": 1, "kind": "gramer-trace"}
        for line in lines[1:]:
            assert validate_event(json.loads(line)) == []

    def test_empty_jsonl_is_header_only(self, tmp_path):
        path = Tracer().write_jsonl(tmp_path / "empty.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["kind"] == "gramer-trace"


class TestValidateEvent:
    def _good(self):
        return {"name": "n", "cat": "c", "ph": "i", "ts": 1.0, "pid": 1,
                "tid": 0}

    def test_good_record_is_clean(self):
        assert validate_event(self._good()) == []

    def test_missing_key(self):
        record = self._good()
        del record["cat"]
        assert any("missing" in p for p in validate_event(record))

    def test_bool_is_not_an_int(self):
        record = self._good()
        record["pid"] = True
        assert any("pid" in p for p in validate_event(record))

    def test_unknown_phase(self):
        record = self._good()
        record["ph"] = "Z"
        assert any("unknown phase" in p for p in validate_event(record))

    def test_complete_requires_duration(self):
        record = self._good()
        record["ph"] = "X"
        assert any("dur" in p for p in validate_event(record))
        record["dur"] = -1
        assert any("negative duration" in p for p in validate_event(record))

    def test_negative_timestamp(self):
        record = self._good()
        record["ts"] = -5
        assert any("negative timestamp" in p for p in validate_event(record))

    def test_args_must_be_mapping(self):
        record = self._good()
        record["args"] = [1, 2]
        assert any("args" in p for p in validate_event(record))


class TestNullTracer:
    def test_discards_everything(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        tracer.complete("x", CATEGORY_PU, 0.0, 1.0, 1, 0)
        tracer.instant("x", CATEGORY_PU, 0.0, 1, 0)
        tracer.counter("x", CATEGORY_PU, 0.0, 1, {"v": 1.0})
        tracer.metadata(1, 0, "process_name", "x")
        assert len(tracer) == 0
        assert tracer.categories() == set()
