"""The paper's locality claim, measured end-to-end through the observatory.

GRAMER's LAMH keeps the hot working set on chip and its ON1 rank-space
layout compacts the off-chip residue into few DRAM rows, so on the
off-chip adjacency channel GRAMER must show a strictly higher sequential
share AND a strictly lower median reuse distance than both CPU baselines.
(The full 4-dataset x 2-app grid is asserted nightly via
``gramer sweep --access-report``; here two contrasting datasets keep the
tier-1 suite fast.)
"""

import pytest

from repro.experiments.harness import cell_jobspec
from repro.obs import AccessTrace, analyze_trace
from repro.runtime import run_spec


def _adjacency_row(backend: str, dataset: str) -> tuple[float, int]:
    spec = cell_jobspec(backend, "3-CF", dataset, "tiny")
    trace = AccessTrace()
    result = run_spec(spec, use_cache=False, access_trace=trace)
    assert result.ok, result.error
    traffic = analyze_trace(trace)["regions"]["adjacency"]["traffic"]
    median = traffic["reuse"]["median"]
    assert median is not None, f"{backend}/{dataset}: empty channel"
    return traffic["taxonomy"]["sequential"], median


# p2p (sparse, fits mostly on chip) and mico (dense, heavy residue) are
# the two extremes of the proxy set; patents/astro sit between them.
@pytest.mark.parametrize("dataset", ["p2p", "mico"])
class TestAdjacencyLocality:
    def test_gramer_beats_both_baselines(self, dataset):
        gramer = _adjacency_row("gramer", dataset)
        for rival in ("fractal", "rstream"):
            seq, median = _adjacency_row(rival, dataset)
            assert gramer[0] > seq, (
                f"{dataset}: gramer sequential share {gramer[0]:.3f} "
                f"not above {rival}'s {seq:.3f}"
            )
            assert gramer[1] < median, (
                f"{dataset}: gramer median reuse {gramer[1]} "
                f"not below {rival}'s {median}"
            )
