"""The windowed timeline sampler: boundaries, deltas, partial windows."""

import pytest

from repro.obs.timeline import TimelineSampler


class FakeStats:
    """Mutable counter bag mimicking SimStats.as_dict()."""

    def __init__(self):
        self.counters = {
            "vertex_high_hits": 0,
            "vertex_low_hits": 0,
            "vertex_misses": 0,
            "edge_high_hits": 0,
            "edge_low_hits": 0,
            "edge_misses": 0,
            "compute_cycles": 0,
            "vertex_wait_cycles": 0,
            "edge_wait_cycles": 0,
            "steals": 0,
            "steal_attempts": 0,
            "roots_dispatched": 0,
        }

    def bump(self, **deltas):
        for key, amount in deltas.items():
            self.counters[key] += amount

    def as_dict(self):
        # Non-int values must be ignored by the snapshot filter.
        return {**self.counters, "per_pu": [1, 2], "flag": True}


class FakePU:
    def __init__(self, busy_slots):
        self.busy_slots = busy_slots


class TestTimelineSampler:
    def test_window_cycles_must_be_positive(self):
        with pytest.raises(ValueError):
            TimelineSampler(0)

    def test_deltas_are_per_window_not_cumulative(self):
        sampler = TimelineSampler(100)
        stats = FakeStats()
        pus = [FakePU(2), FakePU(1)]
        sampler.begin(stats)

        stats.bump(vertex_high_hits=3, vertex_misses=1, steals=2)
        closed = sampler.advance(100, stats, pus)
        assert len(closed) == 1
        first = closed[0]
        assert (first.start_cycle, first.end_cycle) == (0, 100)
        assert first.vertex_accesses == 4
        assert first.vertex_hits == 3
        assert first.vertex_hit_ratio == pytest.approx(0.75)
        assert first.dram_accesses == 1
        assert first.steals == 2
        assert first.active_slots == 3

        stats.bump(edge_low_hits=5)
        second = sampler.advance(200, stats, pus)[0]
        assert second.vertex_accesses == 0  # only the fresh delta
        assert second.edge_hits == 5
        assert second.edge_hit_ratio == 1.0

    def test_no_window_closes_before_boundary(self):
        sampler = TimelineSampler(100)
        stats = FakeStats()
        sampler.begin(stats)
        assert sampler.advance(99, stats, []) == []
        assert sampler.windows == []

    def test_clock_jump_closes_multiple_windows(self):
        sampler = TimelineSampler(10)
        stats = FakeStats()
        sampler.begin(stats)
        stats.bump(compute_cycles=7)
        closed = sampler.advance(35, stats, [])
        assert [(w.start_cycle, w.end_cycle) for w in closed] == [
            (0, 10),
            (10, 20),
            (20, 30),
        ]
        # The whole delta lands in the first closed window of the jump.
        assert closed[0].compute_cycles == 7
        assert closed[1].compute_cycles == 0

    def test_finish_emits_partial_final_window(self):
        sampler = TimelineSampler(100)
        stats = FakeStats()
        sampler.begin(stats)
        stats.bump(edge_misses=2)
        sampler.advance(100, stats, [])
        stats.bump(edge_misses=3)
        closed = sampler.finish(130, stats, [])
        assert [(w.start_cycle, w.end_cycle) for w in closed] == [(100, 130)]
        assert closed[0].dram_accesses == 3
        # Windows partition [0, 130) exactly.
        spans = [(w.start_cycle, w.end_cycle) for w in sampler.windows]
        assert spans == [(0, 100), (100, 130)]

    def test_finish_on_short_run_yields_one_window(self):
        sampler = TimelineSampler(1000)
        stats = FakeStats()
        sampler.begin(stats)
        stats.bump(vertex_high_hits=1)
        closed = sampler.finish(40, stats, [FakePU(4)])
        assert len(closed) == 1 and len(sampler.windows) == 1
        assert closed[0].end_cycle == 40
        assert closed[0].vertex_hits == 1

    def test_finish_exactly_on_boundary_adds_no_empty_tail(self):
        sampler = TimelineSampler(50)
        stats = FakeStats()
        sampler.begin(stats)
        sampler.advance(50, stats, [])
        closed = sampler.finish(50, stats, [])
        assert closed == []
        assert len(sampler.windows) == 1

    def test_as_dict_includes_derived_ratios(self):
        sampler = TimelineSampler(10)
        stats = FakeStats()
        sampler.begin(stats)
        stats.bump(vertex_high_hits=1, vertex_misses=1)
        window = sampler.finish(5, stats, [])[0]
        dump = window.as_dict()
        assert dump["vertex_hit_ratio"] == pytest.approx(0.5)
        assert dump["end_cycle"] == 5.0
