"""The memprofile analyzer: classifier, reuse, utilization, reports."""

from repro.obs.access import AccessTrace
from repro.obs.locality_report import (
    aggregate_reports,
    analyze_trace,
    classify_accesses,
    compare_reports,
    reuse_profile,
    run_length_stats,
    spatial_utilization,
    taxonomy,
)
from repro.obs.report import (
    render_access_table_markdown,
    render_memprofile,
    render_memprofile_compare,
    render_memprofile_markdown,
)


class TestClassifier:
    def test_dense_ramp_is_sequential_after_warmup(self):
        labels = classify_accesses(
            list(range(0, 8192, 8)), row_bytes=1024, streams=8
        )
        assert labels[0] == "random"  # no row open yet
        assert all(label == "sequential" for label in labels[1:])

    def test_next_row_counts_as_sequential(self):
        # One access per 1 KiB row: each lands directly after the open row.
        labels = classify_accesses(
            [0, 1024, 2048, 3072], row_bytes=1024, streams=8
        )
        assert labels == ["random", "sequential", "sequential", "sequential"]

    def test_constant_large_stride_detected(self):
        labels = classify_accesses(
            [0, 5000, 10000, 15000, 20000], row_bytes=1024, streams=8
        )
        assert labels[:2] == ["random", "random"]  # no delta history yet
        assert all(label == "strided" for label in labels[2:])

    def test_scattered_stream_is_random(self):
        addresses = [0, 70000, 9000, 250000, 31000, 500000]
        labels = classify_accesses(addresses, row_bytes=1024, streams=8)
        assert all(label == "random" for label in labels)

    def test_lru_eviction_bounds_open_rows(self):
        # 9 distinct rows visit once, then the first row returns: with
        # only 8 tracked streams it has been evicted -> not sequential.
        addresses = [row * 4096 for row in range(9)] + [0]
        labels = classify_accesses(addresses, row_bytes=1024, streams=8)
        assert labels[-1] == "random"
        # With 9 streams the returning access is a row hit.
        labels = classify_accesses(addresses, row_bytes=1024, streams=9)
        assert labels[-1] == "sequential"

    def test_interleaved_streams_stay_sequential(self):
        # Two interleaved dense streams far apart: both rows stay open.
        a = list(range(0, 512, 8))
        b = list(range(1 << 20, (1 << 20) + 512, 8))
        interleaved = [x for pair in zip(a, b) for x in pair]
        labels = classify_accesses(interleaved, row_bytes=1024, streams=8)
        assert labels.count("sequential") == len(labels) - 2

    def test_run_length_stats(self):
        stats = run_length_stats(
            ["sequential"] * 3 + ["random"] + ["sequential"] * 2
        )
        assert stats["sequential"] == {"count": 2.0, "mean": 2.5, "max": 3.0}
        assert stats["random"]["count"] == 1.0
        assert stats["strided"] == {"count": 0.0, "mean": 0.0, "max": 0.0}

    def test_taxonomy_shares_sum_to_one(self):
        tax = taxonomy([0, 8, 16, 5000, 123456], row_bytes=1024, streams=8)
        assert abs(
            tax["sequential"] + tax["strided"] + tax["random"] - 1.0
        ) < 1e-12

    def test_empty_stream(self):
        tax = taxonomy([], row_bytes=1024, streams=8)
        assert tax["sequential"] == 0.0 and tax["random"] == 0.0


class TestReuseProfile:
    def test_all_unique_is_all_cold(self):
        profile = reuse_profile([i * 64 for i in range(10)], line_bytes=64)
        assert profile["cold"] == 10
        assert profile["refs"] == 0
        assert profile["median"] is None and profile["p90"] is None

    def test_immediate_rereference_distance_zero(self):
        profile = reuse_profile([0, 0, 0], line_bytes=64)
        assert profile["cold"] == 1
        assert profile["median"] == 0
        assert profile["histogram"] == {"0": 2}

    def test_line_granularity(self):
        # 0 and 63 share a 64-byte line; 64 does not.
        profile = reuse_profile([0, 64, 63], line_bytes=64)
        assert profile["cold"] == 2
        assert profile["median"] == 1  # one distinct other line between

    def test_histogram_buckets_are_log2(self):
        addresses = []
        for k in range(6):  # touch 5 lines, re-touch the first
            addresses.append(k % 6 * 64)
        profile = reuse_profile(addresses + [0], line_bytes=64)
        assert "4-7" in profile["histogram"]


class TestSpatialUtilization:
    @staticmethod
    def _make(address, size):
        trace = AccessTrace()
        trace.record("c", "adjacency", address, size, "r", "offchip")
        return trace.events[0]

    def test_pointer_chase_floor(self):
        events = [self._make(line * 64, 8) for line in range(4)]
        assert spatial_utilization(events, line_bytes=64) == 8 / 64

    def test_dense_stream_is_full(self):
        events = [self._make(offset, 8) for offset in range(0, 128, 8)]
        assert spatial_utilization(events, line_bytes=64) == 1.0

    def test_straddling_event_touches_both_lines(self):
        util = spatial_utilization([self._make(60, 8)], line_bytes=64)
        assert util == 8 / 128

    def test_empty_stream_is_zero(self):
        assert spatial_utilization([], line_bytes=64) == 0.0


def _toy_trace() -> AccessTrace:
    trace = AccessTrace(meta={"backend": "toy", "app": "3-CF"})
    for i in range(16):
        trace.record("lamh.edge", "adjacency", i * 8, 8, "r", "offchip")
        trace.record("lamh.edge", "adjacency", i * 8, 8, "r", "high")
    for i in range(4):
        trace.record("pu.scheduler", "ancestor-buffer", i * 8, 8, "w", "high")
    return trace


class TestAnalyzeTrace:
    def test_offchip_channel_selected_for_data_regions(self):
        payload = analyze_trace(_toy_trace())
        adjacency = payload["regions"]["adjacency"]
        assert adjacency["events"] == 32
        assert adjacency["levels"]["offchip"] == 16
        assert adjacency["traffic"]["requests"] == 16  # offchip only
        assert adjacency["traffic"]["channel_level"] == "offchip"

    def test_onchip_regions_analyzed_over_all_events(self):
        payload = analyze_trace(_toy_trace())
        ancestors = payload["regions"]["ancestor-buffer"]
        assert ancestors["traffic"]["requests"] == 4
        assert ancestors["traffic"]["channel_level"] == "all"

    def test_payload_carries_meta_and_channel_config(self):
        payload = analyze_trace(_toy_trace(), row_bytes=512, streams=4)
        assert payload["meta"]["backend"] == "toy"
        assert payload["channel"]["row_bytes"] == 512
        assert payload["channel"]["streams"] == 4

    def test_compare_and_aggregate_shapes(self):
        a = analyze_trace(_toy_trace())
        b = analyze_trace(_toy_trace())
        diff = compare_reports("a", a, "b", b)
        assert diff["regions"]["adjacency"]["delta"]["sequential"] == 0.0
        rows = aggregate_reports([("a", a), ("b", b)])
        assert {row["label"] for row in rows} == {"a", "b"}
        assert any(row["region"] == "adjacency" for row in rows)


class TestRenderers:
    def test_text_report_lists_regions_and_channel(self):
        text = render_memprofile({"toy": analyze_trace(_toy_trace())})
        assert "adjacency" in text
        assert "1024B rows x 8 streams" in text
        assert "toy (3-CF)" in text

    def test_markdown_report_is_a_table(self):
        text = render_memprofile_markdown(
            {"toy": analyze_trace(_toy_trace())}
        )
        assert text.startswith("## ")
        assert "| adjacency |" in text

    def test_compare_renderer(self):
        payload = analyze_trace(_toy_trace())
        text = render_memprofile_compare(
            compare_reports("x", payload, "y", payload)
        )
        assert "seq x" in text and "seq y" in text

    def test_infinite_median_renders_as_inf(self):
        trace = AccessTrace()
        for line in range(4):  # all-unique lines: no re-references
            trace.record("c", "adjacency", line * 64, 8, "r", "offchip")
        text = render_memprofile({"cold": analyze_trace(trace)})
        assert "inf" in text

    def test_sweep_table_renderer(self):
        rows = aggregate_reports([("cell", analyze_trace(_toy_trace()))])
        text = render_access_table_markdown(rows)
        assert text.splitlines()[0].startswith("| cell |")
        assert "| adjacency |" in text
