"""The metrics registry: counters, gauges, histograms, labels."""

import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    _escape_label_value,
    percentile,
)


class TestLabelEscaping:
    """Prometheus exposition format: ``\\``, ``"`` and newline escape."""

    def test_backslash_first_then_quote_and_newline(self):
        assert _escape_label_value('a\\b"c\nd') == 'a\\\\b\\"c\\nd'

    def test_plain_values_untouched(self):
        assert _escape_label_value("gramer:3-CF@p2p/tiny") == (
            "gramer:3-CF@p2p/tiny"
        )

    def test_escaped_sequence_does_not_double_escape_its_own_output(self):
        # \n -> \\n -> \\\\n: escaping is deterministic, not idempotent,
        # but a single pass never produces an unescaped quote.
        once = _escape_label_value('"\n')
        assert '"' not in once.replace('\\"', "")

    def test_render_text_emits_escaped_label_values(self):
        registry = MetricsRegistry()
        registry.counter("events").inc(1, path='a"b\\c\nd')
        text = registry.render_text()
        assert 'path="a\\"b\\\\c\\nd"' in text
        assert "\n".join(text.splitlines()) == text  # no stray newlines

    def test_render_text_with_clean_labels_unchanged(self):
        registry = MetricsRegistry()
        registry.counter("events").inc(2, side="vertex")
        assert 'side="vertex"' in registry.render_text()


class TestCounter:
    def test_labeled_series_accumulate_independently(self):
        registry = MetricsRegistry()
        counter = registry.counter("accesses")
        counter.inc(3, side="vertex")
        counter.inc(2, side="edge")
        counter.inc(1, side="vertex")
        assert counter.value(side="vertex") == 4
        assert counter.value(side="edge") == 2
        assert counter.total() == 6

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc(1, a=1, b=2)
        counter.inc(1, b=2, a=1)
        assert counter.value(a=1, b=2) == 2

    def test_unlabeled_series(self):
        counter = MetricsRegistry().counter("c")
        counter.inc()
        counter.inc()
        assert counter.value() == 2

    def test_decrease_rejected(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)


class TestGaugeAndHistogram:
    def test_gauge_overwrites(self):
        gauge = MetricsRegistry().gauge("ratio")
        gauge.set(0.5, side="vertex")
        gauge.set(0.7, side="vertex")
        assert gauge.value(side="vertex") == 0.7

    def test_histogram_summary(self):
        histogram = MetricsRegistry().histogram("latency")
        for value in [1, 2, 3, 4, 100]:
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 5
        assert summary["min"] == 1
        assert summary["max"] == 100
        assert summary["p50"] == 3

    def test_empty_histogram_summary_is_zeros(self):
        summary = MetricsRegistry().histogram("h").summary()
        assert summary["count"] == 0 and summary["p99"] == 0


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_render_text_is_deterministic_and_sorted(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("zeta").inc(1, b="2", a="1")
            registry.gauge("alpha").set(0.25)
            registry.histogram("mid").observe(7)
            return registry.render_text()

        text = build()
        assert text == build()
        assert text.index("alpha") < text.index("mid") < text.index("zeta")
        assert 'a="1",b="2"' in text

    def test_as_dict_round_trips_through_json(self):
        import json

        registry = MetricsRegistry()
        registry.counter("c", "help text").inc(2, side="edge")
        payload = json.loads(json.dumps(registry.as_dict()))
        assert payload["c"]["kind"] == "counter"
        assert payload["c"]["series"]['{side="edge"}'] == 2


class TestPercentile:
    def test_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == 50
        assert percentile(values, 99) == 99
        assert percentile(values, 100) == 100

    def test_bounds(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)
