"""The Fenwick-tree stack-distance engine vs a brute-force oracle."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.locality_report import stack_distances


def oracle(lines):
    """Textbook Mattson: distinct other lines since the last reference."""
    out = []
    last = {}
    for i, line in enumerate(lines):
        prev = last.get(line)
        if prev is None:
            out.append(None)
        else:
            out.append(len(set(lines[prev + 1 : i])))
        last[line] = i
    return out


streams = st.lists(st.integers(min_value=0, max_value=12), max_size=200)


class TestAgainstOracle:
    @given(streams)
    @settings(max_examples=300, deadline=None)
    def test_matches_brute_force(self, lines):
        assert stack_distances(lines) == oracle(lines)

    @given(st.lists(st.integers(min_value=0, max_value=2), max_size=64))
    @settings(max_examples=200, deadline=None)
    def test_tiny_alphabet_distances_bounded(self, lines):
        # With k distinct lines a warm distance can never reach k.
        k = len(set(lines))
        for distance in stack_distances(lines):
            assert distance is None or 0 <= distance < max(k, 1)

    @given(streams)
    @settings(max_examples=100, deadline=None)
    def test_cold_misses_are_exactly_first_references(self, lines):
        distances = stack_distances(lines)
        seen = set()
        for line, distance in zip(lines, distances):
            assert (distance is None) == (line not in seen)
            seen.add(line)


class TestAdversarialStreams:
    def test_all_unique_is_all_cold(self):
        lines = list(range(1000))
        assert stack_distances(lines) == [None] * 1000

    def test_all_repeat_is_distance_zero(self):
        lines = [7] * 1000
        assert stack_distances(lines) == [None] + [0] * 999

    def test_two_way_interleave_is_distance_one(self):
        lines = [0, 1] * 500
        distances = stack_distances(lines)
        assert distances[:2] == [None, None]
        assert distances[2:] == [1] * 998

    def test_cyclic_scan_distance_is_working_set_size(self):
        # A cyclic scan over k lines re-hits each at distance k-1 — the
        # classic LRU-worst-case pattern.
        k = 32
        lines = list(range(k)) * 4
        distances = stack_distances(lines)
        assert distances[:k] == [None] * k
        assert distances[k:] == [k - 1] * (3 * k)

    def test_nested_stack_pattern(self):
        # A B C B A: inner re-reference at 1, outer at 2 (B and C seen).
        assert stack_distances([0, 1, 2, 1, 0]) == [None, None, None, 1, 2]

    def test_matches_oracle_on_descending_triangle(self):
        lines = [i for width in range(20, 0, -1) for i in range(width)]
        assert stack_distances(lines) == oracle(lines)
