"""An ``access_trace=`` run must be bit-identical to an untraced one."""

import pytest

from repro.experiments.harness import cell_jobspec
from repro.obs import AccessTrace, AccessTraceSet, SimInstrument
from repro.runtime import Executor, run_spec


def _pair(backend: str):
    """(untraced, traced, trace) results for one tiny cell."""
    spec = cell_jobspec(backend, "3-CF", "citeseer", "tiny")
    plain = run_spec(spec, use_cache=False)
    trace = AccessTrace()
    traced = run_spec(spec, use_cache=False, access_trace=trace)
    assert plain.ok and traced.ok
    return plain, traced, trace


class TestZeroPerturbationAccessTrace:
    @pytest.mark.parametrize("backend", ["gramer", "fractal", "rstream"])
    def test_detail_and_timings_identical(self, backend):
        plain, traced, _ = _pair(backend)
        # detail embeds the full stats dict (SimStats.as_dict() for the
        # simulator, the CPU breakdown for the baselines): byte-identical.
        assert traced.detail == plain.detail
        assert traced.seconds == plain.seconds
        assert traced.energy_j == plain.energy_j
        assert traced.system == plain.system

    def test_gramer_trace_captures_all_regions(self):
        _, _, trace = _pair("gramer")
        assert {"adjacency", "on1-rank", "ancestor-buffer"} <= set(
            trace.regions()
        )
        assert len(trace) > 0

    def test_baseline_traces_capture_postl2_channel(self):
        for backend in ("fractal", "rstream"):
            spec = cell_jobspec(backend, "3-CF", "p2p", "tiny")
            trace = AccessTrace()
            result = run_spec(spec, use_cache=False, access_trace=trace)
            assert result.ok
            assert trace.select(region="adjacency", level="offchip")

    def test_traced_runs_never_touch_the_job_cache(self):
        from repro.runtime import ArtifactCache

        cache = ArtifactCache(use_disk=False)
        spec = cell_jobspec("fractal", "3-CF", "citeseer", "tiny")
        run_spec(spec, cache=cache, access_trace=AccessTrace())
        hit, _ = cache.lookup("job", spec.cache_key())
        assert not hit

    def test_instrument_and_access_trace_cannot_combine(self):
        spec = cell_jobspec("gramer", "3-CF", "citeseer", "tiny")
        with pytest.raises(ValueError, match="cannot be combined"):
            run_spec(
                spec,
                use_cache=False,
                instrument=SimInstrument(),
                access_trace=AccessTrace(),
            )
        with pytest.raises(ValueError, match="cannot be combined"):
            Executor(jobs=1).run(
                [spec],
                instrument=SimInstrument(),
                access_traces=AccessTraceSet(),
            )

    def test_executor_opens_one_trace_per_spec(self):
        specs = [
            cell_jobspec("fractal", "3-CF", "citeseer", "tiny"),
            cell_jobspec("rstream", "3-CF", "citeseer", "tiny"),
        ]
        traces = AccessTraceSet()
        results = Executor(jobs=1).run(specs, access_traces=traces)
        assert all(r.ok for r in results)
        assert len(traces) == 2
        for spec in specs:
            trace = traces.get(spec.label())
            assert trace is not None
            assert trace.meta["backend"] == spec.backend
