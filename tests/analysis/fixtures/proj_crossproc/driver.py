"""GRM1003 corpus: graph-sized / unpicklable payloads reaching a pool.

GRM501 sees only the literal call site; these violations need the
project pass — the graph comes out of a loader in another module, and
the unpicklable callables are a nested function and a name bound to a
lambda rather than a lambda literal.
"""

from loader import load_graph


def process(item):
    return item


def fan_out(pool, text):
    g = load_graph(text)
    futures = [pool.submit(process, g) for _ in range(4)]  # bad: graph arg

    def local_work(x):
        return x + 1

    pool.submit(local_work, 1)  # bad: nested function
    handle = lambda x: x  # noqa: E731
    pool.submit(handle, 2)  # bad: name bound to a lambda
    digest = "sha256:abc"
    pool.submit(process, digest)  # allowed: scalar content address
    return futures
