"""Helper that materializes a whole graph — the GRM1003 taint origin."""

from repro.graph.io import parse_edge_list


def load_graph(text):
    return parse_edge_list(text)
