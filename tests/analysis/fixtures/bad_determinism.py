"""Known-bad fixture: every determinism rule (GRM1xx) must fire here."""

import random
import time
from datetime import datetime

import numpy as np


def stamp_result():
    return time.time()  # GRM101: wall-clock read


def stamp_result_ns():
    started = time.time_ns()  # GRM101
    return started


def label_run():
    return datetime.now().isoformat()  # GRM101


def jitter():
    return random.random()  # GRM102: process-global RNG


def pick(items):
    return random.choice(items)  # GRM102


def make_rng():
    return random.Random()  # GRM102: seedless Random()


def seeded_rng_is_fine(seed):
    return random.Random(seed)  # allowed: explicit seed


def legacy_numpy():
    return np.random.rand(4)  # GRM103: hidden global RNG


def shuffle_vertices(ids):
    np.random.shuffle(ids)  # GRM103
    return ids


def seedless_generator():
    return np.random.default_rng()  # GRM103: OS entropy


def seeded_generator_is_fine(seed):
    return np.random.default_rng(seed)  # allowed
