"""Known-bad corpus for the engine-selection family (GRM7xx)."""

from repro.accel import sim
from repro.accel.sim import GramerSimulator, make_simulator


def pinned_to_reference(graph, config):
    # GRM701: direct construction bypasses engine selection.
    return GramerSimulator(graph, config)


def pinned_via_module(graph, config):
    # GRM701: attribute access is the same bypass.
    return sim.GramerSimulator(graph, config)


def selected_properly(graph, config):
    # allowed: the factory keeps the engine a parameter.
    return make_simulator(graph, config, engine="reference")
