"""Known-bad fixture: every spec-immutability rule (GRM3xx) must fire here."""

from dataclasses import dataclass


@dataclass
class SweepSpec:  # GRM301: spec-like dataclass not frozen
    app: str
    dataset: str


@dataclass(frozen=False)
class TuningConfig:  # GRM301: explicitly unfrozen
    depth: int = 3


@dataclass(frozen=True)
class FrozenJobSpec:  # allowed
    app: str


@dataclass
class ScratchCounters:  # allowed: not a Spec/Result/Config/Params name
    hits: int = 0


def retarget(spec, dataset):
    spec.dataset = dataset  # GRM302: mutates a spec after construction
    return spec


def widen(config):
    config.depth += 1  # GRM302 (augmented assignment)
    return config
