"""Fixture: suppressions inside fixture-excluded paths are GRM002-exempt.

The second suppression below silences nothing, but because this file
lives under ``tests/analysis/fixtures`` the engine must not report it —
fixture corpora deliberately carry suppressions for tests to point at.
"""

import time

used = time.time()  # gramer: ignore[GRM101] -- silences a real finding
unused = 1  # gramer: ignore[GRM101] -- silences nothing, still exempt here
