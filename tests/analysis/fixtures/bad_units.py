"""Known-bad fixture: every units rule (GRM4xx) must fire here."""


def total_latency(setup_s, dram_cycles):
    return setup_s + dram_cycles  # GRM401: seconds + cycles


def energy_headroom(budget_j, spent_nj):
    return budget_j - spent_nj  # GRM401: joules - nanojoules


def too_slow(elapsed_ns, limit_s):
    return elapsed_ns > limit_s  # GRM401: ordering across scales


def same_unit_is_fine(memory_j, compute_j):
    return memory_j + compute_j  # allowed


def conversion_is_fine(cycles, clock_mhz):
    return cycles / (clock_mhz * 1e6)  # allowed: * and / convert


def hit_budget(energy_j):
    return energy_j == 0.125  # GRM402: float equality on energy


def same_runtime(seconds, other_seconds):
    return seconds == other_seconds  # GRM402: equality on measured time


def na_sentinel_is_fine(seconds):
    return seconds == 0  # allowed: exact-zero N/A sentinel
