"""GRM1002 corpus: backends whose run call graphs read undigested fields."""

from shaping import effective_tile
from spec import FullSpec, MiniSpec, ParamSpec


class TileBackend:
    def run(self, spec: MiniSpec):
        # The offending read happens one file away, in shaping.py.
        width = effective_tile(spec)
        return {"width": width, "key": spec.cache_key()}


class KnobBackend:
    def run(self, spec: ParamSpec):
        params = spec.params_dict()
        engine = params.get("engine", "fast")  # bad: params not digested
        return engine


class CleanBackend:
    def run(self, spec: FullSpec):
        # allowed: FullSpec's digest is complete (asdict covers tile)
        return spec.tile
