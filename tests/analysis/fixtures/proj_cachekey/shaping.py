"""Helper whose spec-field read only a whole-program pass can attribute."""


def effective_tile(spec):
    return spec.tile_size * 2
