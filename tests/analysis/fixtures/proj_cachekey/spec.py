"""GRM1002 corpus: spec classes with incomplete and complete digests."""

from dataclasses import asdict, dataclass


@dataclass(frozen=True)
class MiniSpec:
    app: str
    dataset: str
    tile_size: int

    def cache_key(self):
        # bad: tile_size never reaches the digest
        return {"app": self.app, "dataset": self.dataset}


@dataclass(frozen=True)
class ParamSpec:
    name: str
    params: tuple

    def cache_key(self):
        # bad: params never reaches the digest
        return {"name": self.name}

    def params_dict(self):
        return dict(self.params)


@dataclass(frozen=True)
class FullSpec:
    app: str
    tile: int

    def cache_key(self):
        # allowed: serializing the whole object covers every field
        return {"spec": asdict(self)}
