"""Known-bad fixture: the cross-process rule (GRM5xx) must fire here."""

from concurrent.futures import ProcessPoolExecutor


def run_cell(graph, app):
    return (graph.num_vertices, app)


def fan_out(specs, graph, trace):
    pool = ProcessPoolExecutor()
    futures = [
        pool.submit(run_cell, graph, spec)  # GRM501: graph by value
        for spec in specs
    ]
    pool.submit(lambda: run_cell(graph, None))  # GRM501: closure capture
    pool.map(run_cell, trace)  # GRM501: trace by value
    return futures


def keys_are_fine(pool, specs, cache_root):
    return [pool.submit(run_cell, spec, cache_root) for spec in specs]
