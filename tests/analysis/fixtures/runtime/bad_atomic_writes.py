"""Known-bad corpus for GRM802: non-atomic writes to shared runtime state.

This file lives under a ``runtime/`` path on purpose — GRM802 scopes
itself to the runtime package, where written files are shared durable
state (cache envelopes, claim files, manifests) read by concurrent sweep
workers.  Every flagged shape below tears under crash or contention; the
``# allowed`` shapes are the blessed alternatives and must NOT fire.
"""

import json
import os
from pathlib import Path


def clobber_with_open(path, payload):
    with open(path, "w") as handle:  # GRM802: write-in-place
        handle.write(json.dumps(payload))


def clobber_binary(path, data):
    handle = open(path, "wb")  # GRM802: write-in-place
    handle.write(data)
    handle.close()


def clobber_keyword_mode(path, text):
    with open(path, mode="w+", encoding="utf-8") as handle:  # GRM802
        handle.write(text)


def clobber_write_text(path, text):
    Path(path).write_text(text)  # GRM802: no tmp+fsync+rename


def clobber_write_bytes(path, data):
    Path(path).write_bytes(data)  # GRM802: no tmp+fsync+rename


def journal_append(path, line):
    # allowed: append-mode journal handle, one write() per whole line
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(line + "\n")


def read_back(path):
    # allowed: reads never tear writers
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def claim_create(path, text):
    # allowed: O_CREAT|O_EXCL is the blessed claim primitive
    fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
    try:
        os.write(fd, text.encode("utf-8"))
        os.fsync(fd)
    finally:
        os.close(fd)


def computed_mode(path, mode, text):
    # allowed: non-literal mode is outside conservative scope
    with open(path, mode) as handle:
        handle.write(text)
