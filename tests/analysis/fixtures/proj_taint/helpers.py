"""Helpers the GRM1001 fixtures launder nondeterminism through.

Nothing in this module is a sink; the violations only become visible
when the project pass follows the cross-file call chains from
``backend.py`` into these returns.
"""

import os
import time


def stamp():
    return time.perf_counter()


def relabel(value):
    # Launders the wall-clock read through one more hop.
    return stamp()


def run_tag():
    return os.getenv("RUN_TAG", "dev")
