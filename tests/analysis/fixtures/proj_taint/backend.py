"""GRM1001 corpus: nondeterministic values flowing into deterministic sinks.

Each bad flow crosses a file boundary (see ``helpers.py``), which is
exactly what the per-module determinism rules cannot see.  The
sanctioned idioms sit alongside: host wall time may flow into
``JobResult.wall_seconds`` (excluded from fingerprints), and spec-derived
values may flow anywhere.
"""

from helpers import relabel, run_tag

from repro.accel.stats import SimStats
from repro.runtime.spec import JobResult


def measure():
    return relabel(0.0)


def finish(spec):
    elapsed = measure()
    return JobResult(spec=spec, seconds=elapsed, ok=True)  # bad: seconds


def finish_ok(spec, model_seconds):
    wall = measure()
    # allowed: wall_seconds is host provenance, excluded from fingerprints
    return JobResult(spec=spec, seconds=model_seconds, ok=True, wall_seconds=wall)


def cache_tag(cache):
    return cache.get_or_create("kind", {"tag": run_tag()}, lambda: 1)  # bad: env key


def cache_tag_ok(cache, spec):
    # allowed: the key is a pure function of the spec
    return cache.get_or_create("kind", {"tag": spec.label}, lambda: 1)


def snapshot():
    return SimStats(total_cycles=int(relabel(1.0)))  # bad: stats counter
