"""Known-bad corpus for the graph-store family (GRM9xx)."""

from repro.graph import io
from repro.graph.generators import erdos_renyi, powerlaw_cluster, rmat
from repro.graph.io import load_edge_list, parse_edge_list
from repro.graph.store import default_graph_store


def reparsed_per_call(path):
    # GRM901: every caller re-parses the file; no digest, no mmap sharing.
    return load_edge_list(path)


def reparsed_via_module(path):
    # GRM901: attribute access is the same bypass.
    return io.load_edge_list(path)


def parsed_inline(lines):
    # GRM901: parse_edge_list outside the graph layer.
    return parse_edge_list(lines)


def regenerated_per_process(n):
    # GRM901: generator calls rebuild the proxy in every process.
    sparse = erdos_renyi(n, 2 * n, seed=1)
    dense = powerlaw_cluster(n, 3, 0.2, seed=2)
    synthetic = rmat(10, 8, seed=3)
    return sparse, dense, synthetic


def through_the_store(path):
    # allowed: the store materializes once and memory-maps everywhere.
    store = default_graph_store()
    return store.open(store.import_edge_list(path))
