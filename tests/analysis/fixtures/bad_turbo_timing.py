"""Known-bad corpus for GRM702: ad-hoc exact turbo-timing assertions."""

import pytest

from repro.accel.sim import make_simulator


def test_turbo_cycles_compared_exactly(graph, config, app, reference):
    result = make_simulator(graph, config, engine="turbo").run(app)
    # GRM702: turbo cycles are tolerance-banded, never exactly equal.
    assert result.stats.cycles == reference.stats.cycles


def test_turbo_fixture_hit_ratio(turbo_result, reference):
    # GRM702: a fixture-delivered turbo run is still banded; the turbo
    # evidence here is the parameter name.
    assert turbo_result.stats.vertex_hit_ratio != reference.stats.vertex_hit_ratio


def test_mining_counts_stay_exact(turbo_result, reference):
    # allowed: mining counts are byte-exact in every engine.
    assert (
        turbo_result.stats.candidates_checked
        == reference.stats.candidates_checked
    )


def test_approx_is_not_an_exact_comparison(turbo_result):
    # allowed: pytest.approx carries its own tolerance.
    assert turbo_result.stats.vertex_hit_ratio == pytest.approx(0.9)


def test_bit_identical_engines_may_compare_exactly(graph, config, app):
    fast = make_simulator(graph, config, engine="fast").run(app)
    ref = make_simulator(graph, config, engine="reference").run(app)
    # allowed: fast and reference are bit-identical; no turbo in scope.
    assert fast.stats.cycles == ref.stats.cycles
