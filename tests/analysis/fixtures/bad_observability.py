"""Fixture: observability violations (GRM6xx)."""


def report_progress(done: int, total: int) -> None:
    print(f"progress {done}/{total}")  # GRM601: bare print in library code


def debug_dump(values: list[int]) -> None:
    for value in values:
        print(value)  # GRM601


def main() -> str:
    return "summary"


if __name__ == "__main__":
    print(main())  # exempt: script entry point under the __main__ guard
