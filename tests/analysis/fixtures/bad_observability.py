"""Fixture: observability violations (GRM6xx)."""


def report_progress(done: int, total: int) -> None:
    print(f"progress {done}/{total}")  # GRM601: bare print in library code


def debug_dump(values: list[int]) -> None:
    for value in values:
        print(value)  # GRM601


def trace_job(tracer, label: str, now_us: float) -> None:
    tracer.instant(f"job {label}", "executor", now_us, 1, 0)  # GRM602


class Runner:
    def __init__(self, tracer) -> None:
        self._tracer = tracer

    def finish(self, label: str, start_us: float, dur_us: float) -> None:
        self._tracer.complete(  # GRM602: raw primitive on self._tracer
            f"job {label}", "executor", start_us, dur_us, 1, 0
        )

    def publish(self, registry) -> None:
        # allowed: registry.counter is a metrics accessor, not a trace emit
        registry.counter("jobs_total", "jobs finished").increment()


def main() -> str:
    return "summary"


if __name__ == "__main__":
    print(main())  # exempt: script entry point under the __main__ guard
