"""Fixture: resilience violations (GRM8xx)."""

import logging

logger = logging.getLogger("fixture")


def swallow_bare(path: str) -> str | None:
    try:
        return open(path).read()
    except:  # noqa: E722  GRM801: bare except, silent pass
        pass


def swallow_exception(value: str) -> int:
    try:
        return int(value)
    except Exception:  # GRM801: broad type, nothing handled
        pass
    return 0


def swallow_base_exception() -> None:
    try:
        raise RuntimeError("boom")
    except BaseException:  # GRM801: broadest possible, body is `...`
        ...


def swallow_tuple(value: str) -> int:
    try:
        return int(value)
    except (ValueError, Exception):  # GRM801: tuple containing Exception
        pass
    return 0


def narrow_pass_allowed(path: str) -> None:
    try:
        open(path)
    except OSError:  # allowed: narrow, sanctioned best-effort degradation
        pass


def broad_but_logged(value: str) -> int:
    try:
        return int(value)
    except Exception as exc:  # allowed: the failure is surfaced
        logger.warning("bad value %r: %s", value, exc)
        return 0


def broad_but_reraised(value: str) -> int:
    try:
        return int(value)
    except Exception as exc:  # allowed: re-raised with context
        raise ValueError(f"could not parse {value!r}") from exc


def broad_with_fallback_work(value: str) -> int:
    try:
        return int(value)
    except Exception:  # allowed (conservative scope): body does real work
        return len(value)
