"""Known-bad fixture: every cache-purity rule (GRM2xx) must fire here."""

import functools
import os

seen_graphs = {}  # GRM202: lowercase mutable module global
pending = []  # GRM202
worker_slots = set()  # GRM202

KNOWN_APPS = {"3-CF": 3}  # allowed: UPPER_CASE constant


def read_tuning():
    return os.environ.get("GRAMER_TUNING", "")  # GRM201


def read_tuning_getenv():
    return os.getenv("GRAMER_TUNING")  # GRM201


class TunedBackend:
    name = "tuned"

    def run(self, spec):
        flavor = os.environ["FLAVOR"]  # GRM201 + GRM203 (memoized scope)
        with open("/tmp/tuning.json") as handle:  # GRM203
            return (flavor, handle.read(), spec)


@functools.lru_cache(maxsize=16)
def cached_profile(name):
    with open(name) as handle:  # GRM203: memoized function reads the fs
        return handle.read()


def warm(cache, key):
    return cache.get_or_create(
        "profile",
        key,
        lambda: open("/tmp/profile.bin").read(),  # GRM203: impure producer
    )
