"""Suppression edge cases and the GRM002 unused-suppression rule."""

from pathlib import Path

from repro.analysis import check_paths, check_source, select_rules

FIXTURES = Path(__file__).parent / "fixtures"

DATACLASS_SPEC = (
    "from dataclasses import dataclass\n"
    "\n"
    "# gramer: ignore[GRM301] -- scratch holder, mutability deliberate\n"
    "@dataclass\n"
    "class ScratchSpec:\n"
    "    x: int = 0\n"
)


def ids(source: str, **kwargs) -> list[str]:
    return [f.rule_id for f in check_source(source, "snippet.py", **kwargs)]


class TestSuppressionEdgeCases:
    def test_standalone_above_decorated_def(self):
        # The comment covers the decorator line; the finding anchors at
        # the class line — decorator aliasing must bridge them.
        assert ids(DATACLASS_SPEC) == []

    def test_trailing_on_decorator_line(self):
        source = (
            "from dataclasses import dataclass\n"
            "@dataclass  # gramer: ignore[GRM301] -- scratch holder\n"
            "class ScratchSpec:\n"
            "    x: int = 0\n"
        )
        assert ids(source) == []

    def test_unsuppressed_decorated_def_still_fires(self):
        source = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class ScratchSpec:\n"
            "    x: int = 0\n"
        )
        assert "GRM301" in ids(source)

    def test_trailing_on_last_line_of_multiline_statement(self):
        source = (
            "import time\n"
            "x = (\n"
            "    time.time()\n"
            ")  # gramer: ignore[GRM101] -- wall time only\n"
        )
        assert ids(source) == []

    def test_trailing_on_first_line_of_multiline_statement(self):
        source = (
            "import time\n"
            "x = (  # gramer: ignore[GRM101] -- wall time only\n"
            "    time.time()\n"
            ")\n"
        )
        assert ids(source) == []

    def test_multiline_coverage_does_not_leak_to_next_statement(self):
        source = (
            "import time\n"
            "x = (\n"
            "    time.time()\n"
            ")  # gramer: ignore[GRM101]\n"
            "y = time.time()\n"
        )
        findings = check_source(source, "snippet.py")
        assert [f.line for f in findings] == [5]

    def test_function_body_is_not_covered_by_def_line_suppression(self):
        # A def-line suppression covers the signature, not the body: the
        # statement-unit widening must stop at the header.
        source = (
            "import time\n"
            "def f():  # gramer: ignore[GRM101] -- header only\n"
            "    return time.time()\n"
        )
        findings = check_source(source, "snippet.py")
        assert "GRM101" in {f.rule_id for f in findings}

    def test_multiline_def_signature_suppression(self):
        source = (
            "def f(\n"
            "    a_s,\n"
            "    b_cycles,\n"
            "):  # gramer: ignore[GRM401, GRM002] -- header unit check\n"
            "    return 1\n"
        )
        assert ids(source) == []


class TestUnusedSuppressionRule:
    def test_unused_listed_suppression_is_flagged(self):
        findings = check_source(
            "y = 1  # gramer: ignore[GRM101] -- stale\n", "snippet.py"
        )
        assert [f.rule_id for f in findings] == ["GRM002"]
        assert "GRM101" in findings[0].message
        assert findings[0].line == 1

    def test_unused_bare_suppression_is_flagged(self):
        findings = check_source("y = 1  # gramer: ignore\n", "snippet.py")
        assert [f.rule_id for f in findings] == ["GRM002"]

    def test_used_suppression_is_not_flagged(self):
        source = "import time\nx = time.time()  # gramer: ignore[GRM101]\n"
        assert ids(source) == []

    def test_partially_used_entry_counts_as_used(self):
        # One entry naming two rules is "used" if either fires.
        source = (
            "import time\n"
            "x = time.time()  # gramer: ignore[GRM101, GRM401]\n"
        )
        assert ids(source) == []

    def test_grm002_acknowledgment_keeps_entry(self):
        source = "y = 1  # gramer: ignore[GRM101, GRM002] -- kept on purpose\n"
        assert ids(source) == []

    def test_grm002_is_not_self_suppressible(self):
        # The bare entry silences every rule on line 1 — except GRM002
        # itself, or no unused suppression could ever be reported.
        findings = check_source("y = 1  # gramer: ignore\n", "snippet.py")
        assert [f.rule_id for f in findings] == ["GRM002"]

    def test_not_reported_when_grm002_unselected(self):
        rules = select_rules(["determinism"])
        findings = check_source(
            "y = 1  # gramer: ignore[GRM101]\n", "snippet.py", rules=rules
        )
        assert findings == []

    def test_fixture_paths_are_exempt(self):
        relpath = "tests/analysis/fixtures/suppressions/edge.py"
        findings = check_source(
            "y = 1  # gramer: ignore[GRM101]\n", relpath, relpath=relpath
        )
        assert findings == []

    def test_fixture_exemption_applies_through_check_paths(self):
        findings = check_paths(
            [FIXTURES / "suppressions" / "edge.py"], use_cache=False
        )
        assert not any(f.rule_id == "GRM002" for f in findings)

    def test_suppression_used_by_project_finding_counts(self, tmp_path):
        # A suppression whose only effect is silencing a GRM10xx project
        # finding must not be reported unused.
        (tmp_path / "helpers.py").write_text(
            "import time\n\n\ndef stamp():\n    return time.perf_counter()\n"
        )
        (tmp_path / "backend.py").write_text(
            "from helpers import stamp\n"
            "\n"
            "\n"
            "def finish(spec):\n"
            "    # gramer: ignore[GRM1001] -- modeled seconds, reviewed\n"
            "    return JobResult(spec=spec, seconds=stamp(), ok=True)\n"
        )
        findings = check_paths([tmp_path], use_cache=False)
        assert not any(f.rule_id == "GRM1001" for f in findings)
        assert not any(f.rule_id == "GRM002" for f in findings)
