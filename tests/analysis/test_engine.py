"""The `gramer check` rule engine: registry, suppressions, formatting."""

import pytest

from repro.analysis import (
    RuleError,
    all_rules,
    check_paths,
    check_source,
    format_finding,
    get_rule,
    select_rules,
)

WALL_CLOCK_LINE = "import time\nstamp = time.time()\n"


class TestRegistry:
    def test_all_five_families_registered(self):
        families = {rule.family for rule in all_rules()}
        assert families >= {
            "determinism",
            "purity",
            "immutability",
            "units",
            "crossproc",
        }

    def test_rule_ids_sorted_and_unique(self):
        ids = [rule.rule_id for rule in all_rules()]
        assert ids == sorted(ids)
        assert len(ids) == len(set(ids))

    def test_get_rule_resolves(self):
        assert get_rule("GRM101").family == "determinism"

    def test_unknown_rule_raises(self):
        with pytest.raises(RuleError):
            get_rule("GRM999")

    def test_select_by_family_and_id(self):
        by_family = select_rules(["units"])
        assert {r.family for r in by_family} == {"units"}
        by_id = select_rules(["GRM501"])
        assert [r.rule_id for r in by_id] == ["GRM501"]

    def test_select_unknown_raises(self):
        with pytest.raises(RuleError):
            select_rules(["NOPE"])


class TestSuppressions:
    def _ids(self, source):
        return [f.rule_id for f in check_source(source, "snippet.py")]

    def test_unsuppressed_finding_fires(self):
        assert "GRM101" in self._ids(WALL_CLOCK_LINE)

    def test_same_line_suppression(self):
        source = "import time\nstamp = time.time()  # gramer: ignore[GRM101]\n"
        assert self._ids(source) == []

    def test_bare_ignore_suppresses_every_rule(self):
        source = "import time\nstamp = time.time()  # gramer: ignore\n"
        assert self._ids(source) == []

    def test_standalone_comment_covers_next_code_line(self):
        source = (
            "import time\n"
            "# gramer: ignore[GRM101] -- reason spanning\n"
            "# a second comment line\n"
            "stamp = time.time()\n"
        )
        assert self._ids(source) == []

    def test_mismatched_id_does_not_suppress(self):
        source = "import time\nstamp = time.time()  # gramer: ignore[GRM401]\n"
        assert "GRM101" in self._ids(source)

    def test_suppression_is_line_scoped(self):
        source = (
            "import time\n"
            "a = time.time()  # gramer: ignore[GRM101]\n"
            "b = time.time()\n"
        )
        findings = check_source(source, "snippet.py")
        assert [f.line for f in findings] == [3]

    def test_marker_inside_string_is_not_a_suppression(self):
        source = (
            "import time\n"
            'text = "# gramer: ignore[GRM101]"\n'
            "stamp = time.time()\n"
        )
        assert "GRM101" in self._ids(source)

    def test_multiple_ids_in_one_comment(self):
        source = (
            "import time, random\n"
            "x = time.time() + random.random()"
            "  # gramer: ignore[GRM101, GRM102]\n"
        )
        assert self._ids(source) == []


class TestEngine:
    def test_syntax_error_becomes_grm000(self):
        findings = check_source("def broken(:\n", "bad.py")
        assert [f.rule_id for f in findings] == ["GRM000"]

    def test_findings_are_sorted_and_positioned(self):
        source = "import time\nb = time.time()\na = time.time()\n"
        findings = check_source(source, "snippet.py")
        assert [f.line for f in findings] == [2, 3]
        assert all(f.path == "snippet.py" for f in findings)

    def test_check_paths_walks_directories(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "mod.py").write_text(WALL_CLOCK_LINE)
        (tmp_path / "pkg" / "notes.txt").write_text("not python")
        findings = check_paths([tmp_path])
        assert [f.rule_id for f in findings] == ["GRM101"]

    def test_check_paths_rejects_non_python_file(self, tmp_path):
        target = tmp_path / "data.json"
        target.write_text("{}")
        with pytest.raises(FileNotFoundError):
            check_paths([target])

    def test_select_limits_rules_run(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(WALL_CLOCK_LINE)
        assert check_paths([target], select=["units"]) == []
        assert len(check_paths([target], select=["determinism"])) == 1


class TestFormatting:
    def _finding(self):
        return check_source(WALL_CLOCK_LINE, "pkg/mod.py")[0]

    def test_text_format(self):
        line = format_finding(self._finding(), style="text")
        assert line.startswith("pkg/mod.py:2:")
        assert "GRM101" in line

    def test_github_format(self):
        line = format_finding(self._finding(), style="github")
        assert line.startswith("::error file=pkg/mod.py,line=2,")
        assert "title=GRM101" in line

    def test_unknown_format_raises(self):
        with pytest.raises(ValueError):
            format_finding(self._finding(), style="json")
