"""The whole-program pass: summaries, resolution, call graph, GRM10xx rules."""

from pathlib import Path

import pytest

from repro.analysis import check_paths
from repro.analysis.callgraph import CallGraph
from repro.analysis.project import ProjectAnalysis, analysis_digest
from repro.analysis.summary import summarize_module
from repro.analysis.taint import sink_taint, tainted_returns
from repro.runtime.cache import ArtifactCache

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


def line_of(path: Path, needle: str) -> int:
    source = path.read_text()
    return next(
        i
        for i, line in enumerate(source.splitlines(), start=1)
        if needle in line
    )


def project_findings(root: Path) -> list:
    return check_paths([root], select=["project"], use_cache=False)


class TestSummarizer:
    def test_wallclock_source_reaches_return(self):
        summary = summarize_module(
            "import time\n\ndef stamp():\n    return time.perf_counter()\n",
            "m",
            "m.py",
        )
        (fn,) = summary.functions
        assert "src:wallclock" in fn.return_atoms

    def test_unresolved_call_is_a_call_atom(self):
        summary = summarize_module(
            "def f():\n    return make_thing()\n", "m", "m.py"
        )
        (fn,) = summary.functions
        assert "call:make_thing" in fn.return_atoms

    def test_branches_merge_by_union(self):
        source = (
            "import time\n"
            "def f(flag):\n"
            "    if flag:\n"
            "        x = time.perf_counter()\n"
            "    else:\n"
            "        x = 0.0\n"
            "    return x\n"
        )
        (fn,) = summarize_module(source, "m", "m.py").functions
        assert "src:wallclock" in fn.return_atoms

    def test_loop_carried_taint_stabilizes(self):
        source = (
            "import time\n"
            "def f(n):\n"
            "    acc = 0.0\n"
            "    for _ in range(n):\n"
            "        acc = acc + time.perf_counter()\n"
            "    return acc\n"
        )
        (fn,) = summarize_module(source, "m", "m.py").functions
        assert "src:wallclock" in fn.return_atoms

    def test_jobresult_sink_splits_deterministic_fields(self):
        source = (
            "def f(spec, wall, model):\n"
            "    return JobResult(spec=spec, seconds=model, wall_seconds=wall)\n"
        )
        (fn,) = summarize_module(source, "m", "m.py").functions
        details = {s.detail for s in fn.sinks}
        assert "seconds" in details
        assert "wall_seconds" not in details

    def test_spec_class_asdict_is_complete(self):
        source = (
            "from dataclasses import asdict, dataclass\n"
            "@dataclass(frozen=True)\n"
            "class S:\n"
            "    a: int\n"
            "    def cache_key(self):\n"
            "        return {'spec': asdict(self)}\n"
        )
        (spec,) = summarize_module(source, "m", "m.py").spec_classes
        assert spec.complete

    def test_backend_run_annotation_recorded(self):
        source = (
            "class FooBackend:\n"
            "    def run(self, spec: JobSpec):\n"
            "        return spec\n"
        )
        (backend,) = summarize_module(source, "m", "m.py").backends
        assert backend.spec_annotation == "JobSpec"

    def test_multiple_doublestar_expansions_keep_distinct_atoms(self):
        source = (
            "import time\n"
            "def f(pool):\n"
            "    clean = {'x': 1}\n"
            "    dirty = {'t': time.time()}\n"
            "    pool.submit(task, **clean, **dirty)\n"
        )
        (fn,) = summarize_module(source, "m", "m.py").functions
        (submit,) = fn.submits
        assert submit.arg_names == ("**", "**")
        # Each ``**`` slot carries its own dict's atoms, not the last one's.
        assert "src:wallclock" not in submit.arg_atoms[0]
        assert "src:wallclock" in submit.arg_atoms[1]

    def test_conditional_toplevel_defs_enter_symbol_table(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            "import time\n"
            "try:\n"
            "    from fastlib import stamp\n"
            "except ImportError:\n"
            "    def stamp():\n"
            "        return time.perf_counter()\n"
            "if True:\n"
            "    class Late:\n"
            "        def tick(self):\n"
            "            return stamp()\n"
        )
        project = ProjectAnalysis.build(tmp_path)
        assert project.resolve_call("mod", "stamp") == "mod:stamp"
        assert (
            project.resolve_call("mod", "self.tick", class_name="Late")
            == "mod:Late.tick"
        )


class TestProjectResolution:
    def _tree(self, tmp_path: Path) -> Path:
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "__init__.py").write_text(
            "from pkg.impl import core_fn\n"
        )
        (tmp_path / "pkg" / "impl.py").write_text(
            "def core_fn():\n    return 1\n"
        )
        (tmp_path / "pkg" / "user.py").write_text(
            "import pkg\n"
            "from pkg import core_fn\n"
            "from pkg.impl import core_fn as aliased\n"
            "def a():\n    return core_fn()\n"
            "def b():\n    return aliased()\n"
            "def c():\n    return pkg.core_fn()\n"
        )
        return tmp_path / "pkg"

    def test_import_reexport_and_alias_resolution(self, tmp_path):
        project = ProjectAnalysis.build(self._tree(tmp_path))
        target = "pkg.impl:core_fn"
        assert project.resolve_call("pkg.user", "core_fn") == target
        assert project.resolve_call("pkg.user", "aliased") == target
        assert project.resolve_call("pkg.user", "pkg.core_fn") == target

    def test_self_method_resolution(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            "class A:\n"
            "    def helper(self):\n"
            "        return 1\n"
            "    def run(self):\n"
            "        return self.helper()\n"
        )
        project = ProjectAnalysis.build(tmp_path)
        assert (
            project.resolve_call("mod", "self.helper", class_name="A")
            == "mod:A.helper"
        )

    def test_unresolvable_third_party_is_none(self, tmp_path):
        (tmp_path / "mod.py").write_text("import numpy as np\n")
        project = ProjectAnalysis.build(tmp_path)
        assert project.resolve_call("mod", "np.zeros") is None

    def test_syntax_error_is_recorded_not_fatal(self, tmp_path):
        (tmp_path / "ok.py").write_text("def f():\n    return 1\n")
        (tmp_path / "broken.py").write_text("def broken(:\n")
        project = ProjectAnalysis.build(tmp_path)
        assert "ok" in project.modules
        assert "broken" in project.errors

    def test_summary_cache_round_trip(self, tmp_path):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "mod.py").write_text("def f():\n    return 1\n")
        cache = ArtifactCache(root=tmp_path / "cache")
        ProjectAnalysis.build(tmp_path / "src", cache=cache)
        assert cache.stats.misses >= 1
        before = cache.stats.misses
        warm = ProjectAnalysis.build(tmp_path / "src", cache=cache)
        assert cache.stats.misses == before  # warm build re-parses nothing
        assert "mod" in warm.modules

    def test_analysis_digest_is_stable(self):
        assert analysis_digest() == analysis_digest()
        assert len(analysis_digest()) == 64


class TestCallGraphAndTaint:
    def _project(self, tmp_path: Path) -> ProjectAnalysis:
        (tmp_path / "lo.py").write_text(
            "import time\n"
            "def leaf():\n    return time.perf_counter()\n"
        )
        (tmp_path / "hi.py").write_text(
            "from lo import leaf\n"
            "def mid():\n    return leaf()\n"
            "def top():\n    return mid()\n"
            "def clean():\n    return 42\n"
        )
        return ProjectAnalysis.build(tmp_path)

    def test_reachability_with_witness_chain(self, tmp_path):
        project = self._project(tmp_path)
        graph = CallGraph.build(project)
        reached = graph.reachable(["hi:top"])
        assert "lo:leaf" in reached
        assert graph.chain(reached, "lo:leaf") == ["hi:top", "hi:mid", "lo:leaf"]

    def test_taint_fixpoint_crosses_files(self, tmp_path):
        project = self._project(tmp_path)
        graph = CallGraph.build(project)
        tainted = tainted_returns(project, graph, "wallclock")
        assert tainted["hi:top"] == ("hi:top", "hi:mid", "lo:leaf")
        assert "hi:clean" not in tainted

    def test_sink_taint_ignores_unresolved_calls(self, tmp_path):
        project = self._project(tmp_path)
        graph = CallGraph.build(project)
        tainted = tainted_returns(project, graph, "wallclock")
        assert (
            sink_taint(graph, "hi:top", frozenset({"call:mystery"}), "wallclock", tainted)
            is None
        )


class TestDeterminismTaintRule:
    ROOT = FIXTURES / "proj_taint"

    def test_exact_findings(self):
        findings = project_findings(self.ROOT)
        grm1001 = [f for f in findings if f.rule_id == "GRM1001"]
        backend = self.ROOT / "backend.py"
        expected = {
            line_of(backend, "seconds=elapsed"),
            line_of(backend, "# bad: env key"),
            line_of(backend, "# bad: stats counter"),
        }
        assert {f.line for f in grm1001} == expected
        assert all(f.path == str(backend) for f in grm1001)

    def test_witness_chain_in_message(self):
        findings = project_findings(self.ROOT)
        seconds = next(
            f
            for f in findings
            if f.rule_id == "GRM1001" and "'seconds'" in f.message
        )
        assert "backend::measure -> helpers::relabel -> helpers::stamp" in (
            seconds.message
        )

    def test_sanctioned_flows_stay_silent(self):
        findings = project_findings(self.ROOT)
        backend = self.ROOT / "backend.py"
        allowed = {
            line_of(backend, "wall_seconds=wall"),
            line_of(backend, "spec.label"),
        }
        assert not {f.line for f in findings} & allowed


class TestCacheKeyCompletenessRule:
    ROOT = FIXTURES / "proj_cachekey"

    def test_exact_findings(self):
        findings = project_findings(self.ROOT)
        grm1002 = [f for f in findings if f.rule_id == "GRM1002"]
        expected = {
            (
                str(self.ROOT / "shaping.py"),
                line_of(self.ROOT / "shaping.py", "spec.tile_size * 2"),
            ),
            (
                str(self.ROOT / "backend.py"),
                line_of(self.ROOT / "backend.py", 'params.get("engine"'),
            ),
        }
        assert {(f.path, f.line) for f in grm1002} == expected

    def test_cross_file_read_names_route_and_field(self):
        findings = project_findings(self.ROOT)
        tile = next(f for f in findings if "tile_size" in f.message)
        assert "TileBackend.run" in tile.message
        assert "effective_tile" in tile.message
        assert "cache_key()" in tile.message

    def test_complete_digest_backend_is_silent(self):
        findings = project_findings(self.ROOT)
        assert not any("FullSpec" in f.message for f in findings)


class TestCrossprocReachabilityRule:
    ROOT = FIXTURES / "proj_crossproc"

    def test_exact_findings(self):
        findings = project_findings(self.ROOT)
        grm1003 = [f for f in findings if f.rule_id == "GRM1003"]
        driver = self.ROOT / "driver.py"
        expected = {
            line_of(driver, "# bad: graph arg"),
            line_of(driver, "# bad: nested function"),
            line_of(driver, "# bad: name bound to a lambda"),
        }
        assert {f.line for f in grm1003} == expected

    def test_graph_payload_names_loader_chain(self):
        findings = project_findings(self.ROOT)
        payload = next(
            f for f in findings if "whole-graph object" in f.message
        )
        assert "loader::load_graph" in payload.message

    def test_scalar_digest_submission_is_silent(self):
        findings = project_findings(self.ROOT)
        driver = self.ROOT / "driver.py"
        allowed = line_of(driver, "# allowed: scalar content address")
        assert allowed not in {f.line for f in findings}


class TestLiveTreeProjectPass:
    def test_src_tree_clean_under_project_rules(self):
        findings = check_paths(
            [REPO_ROOT / "src" / "repro"], select=["project"], use_cache=False
        )
        formatted = "\n".join(
            f"{f.path}:{f.line}: {f.rule_id} {f.message}" for f in findings
        )
        assert findings == [], f"project pass has findings:\n{formatted}"


class TestIncrementalCheck:
    def test_warm_check_reuses_every_record(self, tmp_path):
        cache = ArtifactCache(root=tmp_path / "cache")
        root = FIXTURES / "proj_taint"
        cold = check_paths([root], select=["project"], cache=cache)
        assert cold  # the corpus fires
        misses = cache.stats.misses
        warm = check_paths([root], select=["project"], cache=cache)
        assert warm == cold
        assert cache.stats.misses == misses  # zero re-parses on warm pass

    def test_edit_invalidates_only_that_file(self, tmp_path):
        src = tmp_path / "src"
        src.mkdir()
        (src / "a.py").write_text("import time\nx = time.time()\n")
        (src / "b.py").write_text("y = 1\n")
        cache = ArtifactCache(root=tmp_path / "cache")
        check_paths([src], cache=cache)
        (src / "b.py").write_text("y = 2\n")
        cache.stats.misses = 0
        check_paths([src], cache=cache)
        # one file record + one summary record recomputed, a.py untouched
        assert cache.stats.misses == 2

    def test_parallel_jobs_match_sequential(self, tmp_path):
        root = FIXTURES / "proj_taint"
        sequential = check_paths([root], select=["project"], use_cache=False)
        parallel = check_paths(
            [root], select=["project"], use_cache=False, jobs=2
        )
        assert parallel == sequential

    def test_relative_dir_argument_matches_suppressions(
        self, tmp_path, monkeypatch
    ):
        # The CLI default argument is the *relative* "src"; project
        # findings carry resolved absolute paths, and suppression
        # matching must bridge the two.
        proj = tmp_path / "proj"
        proj.mkdir()
        (proj / "helpers.py").write_text(
            "import time\n\ndef stamp():\n    return time.perf_counter()\n"
        )
        (proj / "backend.py").write_text(
            "from helpers import stamp\n"
            "def finish(spec):\n"
            "    return JobResult(spec=spec, seconds=stamp(), ok=True)"
            "  # gramer: ignore[GRM1001] -- exercised by the test\n"
        )
        monkeypatch.chdir(tmp_path)
        # The GRM1001 flow is suppressed AND the suppression counts as
        # used, so GRM002 stays silent too.
        findings = check_paths(
            ["proj"], select=["project", "GRM002"], use_cache=False
        )
        assert findings == []

    def test_relative_dir_argument_reports_unsuppressed_findings(
        self, tmp_path, monkeypatch
    ):
        proj = tmp_path / "proj"
        proj.mkdir()
        (proj / "helpers.py").write_text(
            "import time\n\ndef stamp():\n    return time.perf_counter()\n"
        )
        (proj / "backend.py").write_text(
            "from helpers import stamp\n"
            "def finish(spec):\n"
            "    return JobResult(spec=spec, seconds=stamp(), ok=True)\n"
        )
        monkeypatch.chdir(tmp_path)
        findings = check_paths(["proj"], select=["project"], use_cache=False)
        assert [f.rule_id for f in findings] == ["GRM1001"]

    def test_only_filter_scopes_reported_files(self):
        root = FIXTURES / "proj_cachekey"
        scoped = check_paths(
            [root],
            select=["project"],
            use_cache=False,
            only=[root / "shaping.py"],
        )
        assert scoped
        assert all(f.path == str(root / "shaping.py") for f in scoped)
