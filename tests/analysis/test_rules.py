"""Rule families against the known-bad fixture corpus and the live tree."""

from pathlib import Path

import pytest

from repro.analysis import check_paths, check_source

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]

# fixture file -> rule IDs that must all fire there.
CORPUS = {
    "bad_determinism.py": {"GRM101", "GRM102", "GRM103"},
    "bad_purity.py": {"GRM201", "GRM202", "GRM203"},
    "bad_immutability.py": {"GRM301", "GRM302"},
    "bad_units.py": {"GRM401", "GRM402"},
    "bad_crossproc.py": {"GRM501"},
    "bad_observability.py": {"GRM601", "GRM602"},
    "bad_engine_selection.py": {"GRM701"},
    "bad_turbo_timing.py": {"GRM702"},
    "bad_resilience.py": {"GRM801"},
    "runtime/bad_atomic_writes.py": {"GRM802"},
    "bad_graph_store.py": {"GRM901"},
}


class TestBadFixtureCorpus:
    @pytest.mark.parametrize("filename", sorted(CORPUS))
    def test_every_family_rule_fires(self, filename):
        fired = {f.rule_id for f in check_paths([FIXTURES / filename])}
        missing = CORPUS[filename] - fired
        assert not missing, f"{filename} should trip {missing}"

    def test_whole_corpus_is_nonzero(self):
        assert len(check_paths([FIXTURES])) >= 30


class TestAllowedIdioms:
    """The sanctioned patterns next to each bad one must NOT be flagged."""

    def _lines(self, filename, rule_id):
        findings = check_paths([FIXTURES / filename])
        return {f.line for f in findings if f.rule_id == rule_id}

    def test_seeded_rngs_allowed(self):
        source = (FIXTURES / "bad_determinism.py").read_text()
        for needle in ("random.Random(seed)", "default_rng(seed)"):
            lineno = next(
                i
                for i, line in enumerate(source.splitlines(), start=1)
                if needle in line
            )
            assert lineno not in self._lines("bad_determinism.py", "GRM102")
            assert lineno not in self._lines("bad_determinism.py", "GRM103")

    def test_upper_case_constant_allowed(self):
        findings = check_paths([FIXTURES / "bad_purity.py"])
        assert not any("KNOWN_APPS" in f.message for f in findings)

    def test_frozen_and_non_spec_dataclasses_allowed(self):
        findings = check_paths([FIXTURES / "bad_immutability.py"])
        messages = " ".join(f.message for f in findings)
        assert "FrozenJobSpec" not in messages
        assert "ScratchCounters" not in messages

    def test_unit_conversions_and_zero_sentinel_allowed(self):
        source = (FIXTURES / "bad_units.py").read_text()
        allowed = [
            i
            for i, line in enumerate(source.splitlines(), start=1)
            if "# allowed" in line
        ]
        flagged = {f.line for f in check_paths([FIXTURES / "bad_units.py"])}
        assert not flagged & set(allowed)

    def test_main_guard_print_allowed(self):
        source = (FIXTURES / "bad_observability.py").read_text()
        lineno = next(
            i
            for i, line in enumerate(source.splitlines(), start=1)
            if "print(main())" in line
        )
        assert lineno not in self._lines("bad_observability.py", "GRM601")

    def test_registry_counter_not_a_tracer_emit(self):
        source = (FIXTURES / "bad_observability.py").read_text()
        lineno = next(
            i
            for i, line in enumerate(source.splitlines(), start=1)
            if "registry.counter" in line
        )
        assert lineno not in self._lines("bad_observability.py", "GRM602")

    def test_factory_construction_allowed(self):
        flagged = check_paths([FIXTURES / "bad_engine_selection.py"])
        assert not any("make_simulator" in f.message.split()[0] for f in flagged)
        source = (FIXTURES / "bad_engine_selection.py").read_text()
        lineno = next(
            i
            for i, line in enumerate(source.splitlines(), start=1)
            if "make_simulator(graph" in line
        )
        assert lineno not in {f.line for f in flagged}

    def test_turbo_timing_sanctioned_assertions_allowed(self):
        """Mining-count ==, pytest.approx, and fast/reference byte
        equality must all pass GRM702."""
        source = (FIXTURES / "bad_turbo_timing.py").read_text()
        allowed = [
            i
            for i, line in enumerate(source.splitlines(), start=1)
            if "# allowed" in line
        ]
        assert allowed  # the fixture documents its sanctioned idioms
        flagged = self._lines("bad_turbo_timing.py", "GRM702")
        assert len(flagged) == 2  # exactly the two ad-hoc assertions
        # The sanctioned idioms sit in the statements right after their
        # "# allowed" comments; none of those statements may be flagged.
        for comment_line in allowed:
            assert not any(
                comment_line <= f <= comment_line + 4 for f in flagged
            )

    def test_atomic_write_sanctioned_shapes_allowed(self):
        """Append journals, reads, O_EXCL creates, and computed modes
        must all pass GRM802; exactly the five write-in-place shapes
        fire."""
        fixture = "runtime/bad_atomic_writes.py"
        source = (FIXTURES / fixture).read_text()
        allowed = [
            i
            for i, line in enumerate(source.splitlines(), start=1)
            if "# allowed" in line
        ]
        assert allowed  # the fixture documents its sanctioned idioms
        flagged = self._lines(fixture, "GRM802")
        assert len(flagged) == 5
        for comment_line in allowed:
            assert not any(
                comment_line <= f <= comment_line + 6 for f in flagged
            )

    def test_grm802_scoped_to_runtime_paths(self):
        """The same bad shapes outside a runtime/ path are not GRM802's
        business (other rules may still apply)."""
        from repro.analysis import check_source

        source = 'from pathlib import Path\nPath("x").write_text("y")\n'
        findings = check_source(
            source, path="src/repro/obs/report_writer.py"
        )
        assert not any(f.rule_id == "GRM802" for f in findings)

    def test_scalar_submission_allowed(self):
        source = (FIXTURES / "bad_crossproc.py").read_text()
        lineno = next(
            i
            for i, line in enumerate(source.splitlines(), start=1)
            if "cache_root" in line and "submit" in line
        )
        flagged = {f.line for f in check_paths([FIXTURES / "bad_crossproc.py"])}
        assert lineno not in flagged

    def test_store_routed_load_allowed(self):
        """import_edge_list / store.open are the sanctioned graph path."""
        source = (FIXTURES / "bad_graph_store.py").read_text()
        lineno = next(
            i
            for i, line in enumerate(source.splitlines(), start=1)
            if "store.import_edge_list" in line
        )
        assert lineno not in self._lines("bad_graph_store.py", "GRM901")

    def test_handled_broad_excepts_allowed(self):
        """Narrow-pass, logged, re-raised, and working handlers pass GRM801."""
        source = (FIXTURES / "bad_resilience.py").read_text()
        allowed = [
            i
            for i, line in enumerate(source.splitlines(), start=1)
            if "# allowed" in line
        ]
        assert allowed  # the fixture documents its sanctioned idioms
        flagged = self._lines("bad_resilience.py", "GRM801")
        assert not flagged & set(allowed)
        assert len(flagged) == 4  # exactly the four swallowing handlers


class TestLiveTree:
    def test_src_tree_is_clean(self):
        findings = check_paths([REPO_ROOT / "src" / "repro"])
        formatted = "\n".join(
            f"{f.path}:{f.line}: {f.rule_id} {f.message}" for f in findings
        )
        assert findings == [], f"live tree has findings:\n{formatted}"


class TestRuleEdgeCases:
    def test_perf_counter_is_allowed(self):
        source = "import time\nstart = time.perf_counter()\n"
        assert check_source(source, "s.py") == []

    def test_rate_suffix_is_unitless(self):
        source = "def f(x_s, bandwidth_bytes_per_s):\n    return x_s + bandwidth_bytes_per_s\n"
        findings = check_source(source, "s.py")
        assert [f.rule_id for f in findings] == []

    def test_unit_comparison_to_literal_threshold_allowed(self):
        source = "def f(seconds):\n    return seconds < 1e-3\n"
        assert check_source(source, "s.py") == []

    def test_self_attribute_assignment_allowed(self):
        source = (
            "class Sim:\n"
            "    def __init__(self, config):\n"
            "        self.config = config\n"
        )
        assert check_source(source, "s.py") == []

    def test_non_pool_submit_receiver_allowed(self):
        source = "def f(form, graph):\n    return form.submit(graph)\n"
        assert check_source(source, "s.py") == []

    def test_bare_print_flagged_in_library_module(self):
        findings = check_source(
            "print('x')\n",
            "src/repro/foo.py",
            relpath="src/repro/foo.py",
        )
        assert [f.rule_id for f in findings] == ["GRM601"]

    def test_direct_construction_flagged_outside_accel(self):
        source = "sim = GramerSimulator(graph, config)\n"
        findings = check_source(
            source, "src/repro/experiments/foo.py",
            relpath="src/repro/experiments/foo.py",
        )
        assert [f.rule_id for f in findings] == ["GRM701"]

    def test_direct_construction_allowed_inside_accel(self):
        source = "sim = GramerSimulator(graph, config)\n"
        relpath = "src/repro/accel/fastsim.py"
        assert check_source(source, relpath, relpath=relpath) == []

    def test_turbo_timing_equality_flagged_in_turbo_scope(self):
        source = (
            "def test_cell(graph, config, app, ref):\n"
            "    t = make_simulator(graph, config, engine='turbo').run(app)\n"
            "    assert t.stats.cycles == ref.stats.cycles\n"
        )
        findings = [
            f
            for f in check_source(source, "tests/foo/test_cell.py")
            if f.rule_id == "GRM702"
        ]
        assert len(findings) == 1
        assert "'cycles'" in findings[0].message

    def test_turbo_docstring_mention_is_not_evidence(self):
        source = (
            "def test_determinism(run_a, run_b):\n"
            '    """Same engine twice; see docs/turbo.md for the tiers."""\n'
            "    assert run_a.stats.cycles == run_b.stats.cycles\n"
        )
        findings = check_source(source, "tests/foo/test_det.py")
        # (GRM402 may still comment on the float equality; the point
        # here is that a docstring mention alone is not turbo evidence.)
        assert not any(f.rule_id == "GRM702" for f in findings)

    def test_turbo_mining_count_equality_not_flagged(self):
        source = (
            "def test_counts(turbo_result, ref):\n"
            "    assert (turbo_result.stats.candidates_checked\n"
            "            == ref.stats.candidates_checked)\n"
        )
        assert check_source(source, "tests/foo/test_counts.py") == []

    def test_print_allowed_on_sanctioned_output_surfaces(self):
        for relpath in (
            "src/repro/cli.py",
            "src/repro/experiments/report.py",
            "src/repro/obs/log.py",
        ):
            findings = check_source("print('x')\n", relpath, relpath=relpath)
            assert findings == [], relpath
