"""Project call graph: resolved edges plus reachability with witnesses.

Built once per project pass from the per-function
:class:`~repro.analysis.summary.CallSite` lists, with every callee run
through :meth:`ProjectAnalysis.resolve_call`.  Unresolvable calls simply
contribute no edge — the graph under-approximates, which is the right
direction for rules that must stay silent on the live tree unless they
can spell out a full chain.

:meth:`CallGraph.reachable` returns parent pointers, so a rule can
render the exact call path from a root (say ``GramerBackend.run``) to
the function where a field read or taint source lives.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from .project import ProjectAnalysis
from .summary import CallSite

__all__ = ["CallGraph", "Reached"]


@dataclass(frozen=True)
class Reached:
    """How a function was reached: its BFS parent and the call site used."""

    parent: str | None
    site: CallSite | None


@dataclass
class CallGraph:
    """Resolved call edges over a :class:`ProjectAnalysis`."""

    #: caller key -> callee key -> first call site that produced the edge.
    edges: dict[str, dict[str, CallSite]] = field(default_factory=dict)
    #: caller key -> callee *as written* -> resolved key (taint expansion
    #: needs the textual form because atoms carry ``call:<as written>``).
    resolved: dict[str, dict[str, str]] = field(default_factory=dict)

    @classmethod
    def build(cls, project: ProjectAnalysis) -> "CallGraph":
        graph = cls()
        for key, module, fn in project.functions():
            out_edges: dict[str, CallSite] = {}
            out_resolved: dict[str, str] = {}
            for site in fn.calls:
                target = project.resolve_call(
                    module, site.callee, class_name=fn.class_name
                )
                if target is None or target == key:
                    continue
                out_resolved[site.callee] = target
                if target not in out_edges:
                    out_edges[target] = site
            graph.edges[key] = out_edges
            graph.resolved[key] = out_resolved
        return graph

    def callees(self, key: str) -> dict[str, CallSite]:
        return self.edges.get(key, {})

    def resolve_atom(self, key: str, callee_text: str) -> str | None:
        """Resolved target of a ``call:<text>`` atom recorded in ``key``."""
        return self.resolved.get(key, {}).get(callee_text)

    def reachable(self, roots: list[str]) -> dict[str, Reached]:
        """BFS closure from ``roots`` with parent pointers for evidence."""
        out: dict[str, Reached] = {}
        queue: deque[str] = deque()
        for root in roots:
            if root not in out:
                out[root] = Reached(parent=None, site=None)
                queue.append(root)
        while queue:
            current = queue.popleft()
            for callee, site in self.edges.get(current, {}).items():
                if callee not in out:
                    out[callee] = Reached(parent=current, site=site)
                    queue.append(callee)
        return out

    def chain(self, reached: dict[str, Reached], key: str) -> list[str]:
        """The call path root -> ... -> ``key`` as a list of function keys."""
        path = [key]
        seen = {key}
        while True:
            parent = reached[path[-1]].parent
            if parent is None or parent in seen:
                break
            path.append(parent)
            seen.add(parent)
        path.reverse()
        return path
