"""SARIF 2.1.0 rendering for ``gramer check --format sarif``.

SARIF (Static Analysis Results Interchange Format) is the schema GitHub
code scanning ingests, so findings surface in the Security tab and as PR
review comments with full rule metadata.  One run object carries the
whole rule catalog (``tool.driver.rules``) — including rules with no
findings, so the dashboard can show what was checked — and one result
per finding, referencing its rule by index.

Only stdlib ``json`` is used; the document is deterministic (sorted
rules, findings already sorted by the engine) so repeated runs on an
unchanged tree are byte-identical and diff cleanly as artifacts.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from .core import Finding, Rule, all_rules

__all__ = ["render_sarif", "sarif_json"]

_SARIF_VERSION = "2.1.0"
_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _rule_descriptor(rule: Rule) -> dict[str, Any]:
    descriptor: dict[str, Any] = {
        "id": rule.rule_id,
        "name": rule.rule_id,
        "shortDescription": {"text": rule.summary},
        "properties": {"family": rule.family, "scope": rule.scope},
        "defaultConfiguration": {"level": "error"},
    }
    if rule.explain:
        descriptor["fullDescription"] = {"text": rule.explain}
    return descriptor


def render_sarif(
    findings: Iterable[Finding], rules: Iterable[Rule] | None = None
) -> dict[str, Any]:
    """Build the SARIF log object for ``findings``.

    ``rules`` defaults to the full registry so the catalog travels with
    every run; pass the selected subset to mirror ``--select``.
    """
    catalog = sorted(
        rules if rules is not None else all_rules(), key=lambda r: r.rule_id
    )
    index = {rule.rule_id: i for i, rule in enumerate(catalog)}
    results: list[dict[str, Any]] = []
    for finding in findings:
        result: dict[str, Any] = {
            "ruleId": finding.rule_id,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        if finding.rule_id in index:
            result["ruleIndex"] = index[finding.rule_id]
        results.append(result)
    return {
        "$schema": _SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "gramer-check",
                        "rules": [_rule_descriptor(r) for r in catalog],
                    }
                },
                "results": results,
            }
        ],
    }


def sarif_json(
    findings: Iterable[Finding], rules: Iterable[Rule] | None = None
) -> str:
    """The SARIF log as deterministic, indented JSON."""
    return json.dumps(render_sarif(findings, rules), indent=2, sort_keys=True)
