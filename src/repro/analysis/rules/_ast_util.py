"""Small AST helpers shared by the rule modules.

The implementations live in :mod:`repro.analysis._ast_util` so the
whole-program summarizer can use them without importing this package
(importing ``repro.analysis.rules`` registers every rule, and the
project rule modules depend on the summarizer — a cycle).  This module
re-exports them under the historical location the rule modules import.
"""

from repro.analysis._ast_util import (
    call_name,
    dotted_name,
    iter_calls,
    walk_functions,
)

__all__ = [
    "call_name",
    "dotted_name",
    "iter_calls",
    "walk_functions",
]
