"""Graph-store routing rules (GRM9xx).

Every graph in the repository is supposed to be addressed through the
content-addressed :class:`repro.graph.store.GraphStore`: materialized once
into a checksummed artifact, then opened everywhere as a read-only memory
map.  Calling the edge-list parser or a proxy generator directly at an
arbitrary call site silently opts out of all of that — the graph is
rebuilt per process, carries no digest, and its pages are private instead
of shared.

* ``GRM901`` — a ``load_edge_list``/``parse_edge_list`` or proxy-generator
  (``erdos_renyi``/``powerlaw_cluster``/``rmat``) call outside the graph
  layer itself (``repro/graph/``) or the dataset registry
  (``repro/experiments/datasets.py``).  Route the load through
  ``GraphStore.import_edge_list`` / ``experiments.datasets.load`` instead.
  (Unit tests and benchmarks may still build graphs inline — ``gramer
  check`` gates ``src``, not ``tests``.)
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleContext, rule

from ._ast_util import iter_calls

#: Call names that construct a graph outside the store's custody.
_FLAGGED_CALLS = frozenset(
    {
        "load_edge_list",
        "parse_edge_list",
        "erdos_renyi",
        "powerlaw_cluster",
        "rmat",
    }
)


def _is_exempt(relpath: str) -> bool:
    # The graph layer (parser, generators, and the store that wraps them)
    # and the dataset registry are the two sanctioned producers.
    return "repro/graph/" in relpath or relpath.endswith(
        "repro/experiments/datasets.py"
    )


@rule(
    "GRM901",
    "graph_store",
    "graph loaded or generated outside the GraphStore path",
)
def graph_outside_store(context: ModuleContext) -> Iterator[Finding]:
    if _is_exempt(context.relpath):
        return
    for call in iter_calls(context.tree):
        func = call.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name not in _FLAGGED_CALLS:
            continue
        yield context.finding(
            call,
            "GRM901",
            f"{name}() builds a graph outside the store — address graphs "
            "through repro.graph.store.GraphStore (import_edge_list / "
            "experiments.datasets.load) so they are materialized once and "
            "memory-mapped everywhere",
        )
