"""Project rules (GRM10xx): cross-file flows over the whole-program pass.

These rules receive a :class:`~repro.analysis.project.ProjectAnalysis`
(built once per checked directory) instead of a single module, and query
the call graph and taint fixpoint from :mod:`repro.analysis.callgraph` /
:mod:`repro.analysis.taint`.  Every finding they report names a fully
resolved chain of project functions — unresolvable calls contribute
nothing, so the family stays silent unless it can spell the flow out.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.callgraph import CallGraph
from repro.analysis.core import Finding, project_rule
from repro.analysis.project import ProjectAnalysis
from repro.analysis.summary import FunctionSummary, Sink
from repro.analysis.taint import TAINT_KINDS, describe_chain, sink_taint, tainted_returns

__all__ = ["cache_key_completeness", "crossproc_reachability", "determinism_taint"]

_DETERMINISM_KINDS = ("wallclock", "rng", "env")


def _finding(
    analysis: ProjectAnalysis, fn_key: str, line: int, col: int, rule_id: str, message: str
) -> Finding:
    return Finding(
        rule_id=rule_id,
        path=str(analysis.path_of(fn_key)),
        line=line,
        col=col,
        message=message,
    )


def _sink_label(sink: Sink) -> str:
    if sink.kind == "result_field":
        return f"the deterministic JobResult field {sink.detail!r}"
    if sink.kind == "stats_field":
        return f"the SimStats field {sink.detail!r}"
    return f"the cache key passed to {sink.detail}"


@project_rule(
    "GRM1001",
    "project",
    "wall-clock/RNG/env value flows into a deterministic sink",
    explain=(
        "A value that originates at a wall-clock read, an unseeded RNG, or\n"
        "an environment variable reaches a deterministic output — a\n"
        "fingerprinted JobResult field, a SimStats counter, or an\n"
        "ArtifactCache key — possibly laundered through helpers in other\n"
        "modules.  Such a value makes cached results irreproducible: the\n"
        "same JobSpec would hash or fingerprint differently across runs.\n"
        "Derive the value from the spec instead, or keep host-dependent\n"
        "quantities in the sanctioned provenance fields\n"
        "(JobResult.wall_seconds/cached/retries), which are excluded from\n"
        "fingerprints.  The finding message names the exact call chain."
    ),
)
def determinism_taint(analysis: ProjectAnalysis) -> Iterator[Finding]:
    """Interprocedural taint: nondeterministic sources into deterministic sinks."""
    graph = analysis.callgraph()
    tainted = {
        kind: tainted_returns(analysis, graph, kind) for kind in _DETERMINISM_KINDS
    }
    for fn_key, _module, fn in analysis.functions():
        for sink in fn.sinks:
            for kind in _DETERMINISM_KINDS:
                chain = sink_taint(graph, fn_key, sink.atoms, kind, tainted[kind])
                if chain is None:
                    continue
                source = TAINT_KINDS[kind]
                route = (
                    f" via {describe_chain(chain)}" if chain else " in this function"
                )
                yield _finding(
                    analysis,
                    fn_key,
                    sink.line,
                    sink.col,
                    "GRM1001",
                    f"{source} flows into {_sink_label(sink)}{route}; "
                    "deterministic outputs must be pure functions of the spec",
                )


def _param_is_spec(fn: FunctionSummary, param: str, spec_name: str) -> bool:
    for name, annotation in fn.param_annotations:
        if name == param:
            return annotation.rsplit(".", 1)[-1] == spec_name
    return param == "spec"


@project_rule(
    "GRM1002",
    "project",
    "spec field read under a backend's run but absent from its digest",
    explain=(
        "A backend's behavior depends on a JobSpec (or spec params) field\n"
        "that its cache-key digest does not cover: two specs differing\n"
        "only in that field collide on the same cache entry, so one\n"
        "result silently impersonates the other.  The read may sit\n"
        "anywhere along the call graph reachable from the backend's run\n"
        "method.  Fix the spec's cache_key()/fingerprint() to cover the\n"
        "field — serializing the whole object (dataclasses.asdict) makes\n"
        "the digest complete by construction."
    ),
)
def cache_key_completeness(analysis: ProjectAnalysis) -> Iterator[Finding]:
    """Every spec field a backend's call graph reads must be digested."""
    graph = analysis.callgraph()
    for module, backend in analysis.backends():
        run_key = f"{module}:{backend.name}.run"
        if analysis.function(run_key) is None:
            continue
        located = None
        if backend.spec_annotation is not None:
            located = analysis.spec_class(backend.spec_annotation)
        if located is None:
            all_specs = list(analysis.spec_classes())
            if len(all_specs) == 1:
                located = all_specs[0]
        if located is None:
            continue
        _spec_module, spec = located
        if spec.complete:
            continue
        covered = set(spec.covered)
        reached = graph.reachable([run_key])
        for fn_key in reached:
            fn = analysis.function(fn_key)
            if fn is None:
                continue
            route = " -> ".join(
                key.split(":", 1)[1] for key in graph.chain(reached, fn_key)
            )
            for param, attr, line in fn.attr_reads:
                if (
                    attr in spec.fields
                    and attr not in covered
                    and _param_is_spec(fn, param, spec.name)
                ):
                    yield _finding(
                        analysis,
                        fn_key,
                        line,
                        0,
                        "GRM1002",
                        f"{spec.name}.{attr} is read here (reached from "
                        f"{backend.name}.run via {route}) but "
                        f"{spec.name}.{spec.digest_method}() never covers it; "
                        "specs differing only in this field share a cache entry",
                    )
            if "params" in spec.fields and "params" not in covered:
                for key_name, line in fn.param_key_reads:
                    yield _finding(
                        analysis,
                        fn_key,
                        line,
                        0,
                        "GRM1002",
                        f"params key {key_name!r} is read here (reached from "
                        f"{backend.name}.run via {route}) but the params field "
                        f"is absent from {spec.name}.{spec.digest_method}()",
                    )


@project_rule(
    "GRM1003",
    "project",
    "graph-sized or unpicklable payload reaches a pool submission",
    explain=(
        "A process-pool submission ships either an unpicklable callable (a\n"
        "lambda or a function nested inside another function) or an\n"
        "argument holding a whole-graph object — including one produced\n"
        "by a loader in another module and passed along a call chain.\n"
        "Each worker would deserialize a private copy, multiplying memory\n"
        "by the pool width; lambdas/nested functions fail outright under\n"
        "the spawn start method.  Submit a top-level function and pass the\n"
        "graph's content digest, reloading via the shared GraphStore\n"
        "inside the worker (docs/graph-store.md).  Generalizes GRM501\n"
        "beyond literal call sites."
    ),
)
def crossproc_reachability(analysis: ProjectAnalysis) -> Iterator[Finding]:
    """Pool submissions must carry picklable callables and digest-sized args."""
    graph = analysis.callgraph()
    tainted = tainted_returns(analysis, graph, "graph")
    for fn_key, _module, fn in analysis.functions():
        for submit in fn.submits:
            if submit.callee_kind in ("lambda", "nested"):
                label = submit.callee or "a lambda"
                yield _finding(
                    analysis,
                    fn_key,
                    submit.line,
                    submit.col,
                    "GRM1003",
                    f"pool .{submit.method}() receives an unpicklable callable "
                    f"({label}); submit a module-level function instead",
                )
            for index, atoms in enumerate(submit.arg_atoms):
                chain = sink_taint(graph, fn_key, atoms, "graph", tainted)
                if chain is None:
                    continue
                name = (
                    submit.arg_names[index]
                    if index < len(submit.arg_names)
                    else f"argument {index}"
                )
                route = f" (loaded via {describe_chain(chain)})" if chain else ""
                yield _finding(
                    analysis,
                    fn_key,
                    submit.line,
                    submit.col,
                    "GRM1003",
                    f"pool .{submit.method}() argument {name!r} carries a "
                    f"whole-graph object{route}; pass the content digest and "
                    "reload through the GraphStore inside the worker",
                )
