"""Engine-selection rules (GRM7xx).

The simulator ships three engines — the event-by-event reference, the
bit-identical batched fast engine, and the tolerance-banded turbo tier —
behind one factory, :func:`repro.accel.sim.make_simulator`.  Constructing
``GramerSimulator`` directly pins the call site to the reference engine:
it silently opts out of engine selection (``--engine``, backend params)
and of the fast path every untraced run is supposed to use.

* ``GRM701`` — direct ``GramerSimulator(...)`` construction outside
  ``repro/accel/``.  Call ``make_simulator(...)`` instead; it routes to
  the reference engine automatically when an instrument is attached or
  ``engine="reference"`` is requested.  (Unit tests may still pin a
  specific engine — ``gramer check`` gates ``src``, not ``tests``.)
* ``GRM702`` — exact ``==``/``!=`` on a ``SimStats`` timing field in
  turbo context.  Turbo timing is statistical by contract
  (``docs/turbo.md``): the only sanctioned assertions are the tolerance
  framework (``tests/differential/tolerance.py``) and the golden
  envelopes (``tests/experiments/golden/turbo/``).  Mining-count fields
  stay exact in every engine and are not flagged, nor are
  ``pytest.approx`` comparisons.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleContext, rule


def _is_exempt(relpath: str) -> bool:
    return "repro/accel/" in relpath


@rule(
    "GRM701",
    "engine_selection",
    "direct GramerSimulator() construction bypassing make_simulator()",
)
def direct_simulator_construction(context: ModuleContext) -> Iterator[Finding]:
    if _is_exempt(context.relpath):
        return
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name != "GramerSimulator":
            continue
        yield context.finding(
            node,
            "GRM701",
            "direct GramerSimulator() construction — build simulators "
            "through repro.accel.sim.make_simulator() so the fast/"
            "reference engine choice stays a call-site parameter",
        )


#: SimStats fields whose turbo values are tolerance-banded, never exact.
#: The mining counts (candidates_checked, embeddings_accepted,
#: roots_dispatched) are deliberately absent: those are byte-exact in
#: every engine and may be compared with ``==`` freely.
_TIMING_FIELDS = frozenset(
    {
        "cycles",
        "compute_cycles",
        "vertex_high_hits",
        "vertex_low_hits",
        "vertex_misses",
        "edge_high_hits",
        "edge_low_hits",
        "edge_misses",
        "vertex_wait_cycles",
        "edge_wait_cycles",
        "pu_finish_cycles",
        "pu_busy_cycles",
        "vertex_accesses",
        "edge_accesses",
        "dram_accesses",
        "vertex_hit_ratio",
        "edge_hit_ratio",
        "load_imbalance",
        "steals",
        "steal_attempts",
    }
)


def _mentions_turbo(scope: ast.AST) -> bool:
    """True when ``scope`` shows evidence of the turbo engine.

    Evidence is an ``"turbo"`` string literal (``engine="turbo"``), any
    identifier containing ``turbo`` (``TurboGramerSimulator``, a
    ``turbo_result`` fixture parameter), matched on names, attributes and
    function parameters.  Docstrings that merely discuss turbo do not
    count — the literal must be exactly ``"turbo"``.
    """
    for sub in ast.walk(scope):
        if isinstance(sub, ast.Constant) and sub.value == "turbo":
            return True
        if isinstance(sub, ast.Name) and "turbo" in sub.id.lower():
            return True
        if isinstance(sub, ast.Attribute) and "turbo" in sub.attr.lower():
            return True
        if isinstance(sub, ast.arg) and "turbo" in sub.arg.lower():
            return True
    return False


def _is_approx_call(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = func.id if isinstance(func, ast.Name) else (
        func.attr if isinstance(func, ast.Attribute) else None
    )
    return name == "approx"


@rule(
    "GRM702",
    "engine_selection",
    "exact equality on tolerance-banded turbo timing fields",
)
def adhoc_turbo_timing_equality(context: ModuleContext) -> Iterator[Finding]:
    if _is_exempt(context.relpath):
        return
    seen: set[int] = set()
    for func in ast.walk(context.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not _mentions_turbo(func):
            continue
        for node in ast.walk(func):
            if id(node) in seen or not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            sides = [node.left, *node.comparators]
            field = next(
                (
                    s.attr
                    for s in sides
                    if isinstance(s, ast.Attribute) and s.attr in _TIMING_FIELDS
                ),
                None,
            )
            if field is None or any(_is_approx_call(s) for s in sides):
                continue
            seen.add(id(node))
            yield context.finding(
                node,
                "GRM702",
                f"exact comparison of SimStats timing field {field!r} in "
                "turbo context — turbo timing is tolerance-banded "
                "(docs/turbo.md); assert through the tolerance framework "
                "(tests/differential/tolerance.py) or the golden "
                "envelopes, never ad-hoc ==",
            )
