"""Engine-selection rules (GRM7xx).

The simulator ships two engines — the event-by-event reference and the
batched fast engine — behind one factory,
:func:`repro.accel.sim.make_simulator`.  Constructing ``GramerSimulator``
directly pins the call site to the reference engine: it silently opts out
of engine selection (``--engine``, backend params) and of the fast path
every untraced run is supposed to use.

* ``GRM701`` — direct ``GramerSimulator(...)`` construction outside
  ``repro/accel/``.  Call ``make_simulator(...)`` instead; it routes to
  the reference engine automatically when an instrument is attached or
  ``engine="reference"`` is requested.  (Unit tests may still pin a
  specific engine — ``gramer check`` gates ``src``, not ``tests``.)
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleContext, rule


def _is_exempt(relpath: str) -> bool:
    return "repro/accel/" in relpath


@rule(
    "GRM701",
    "engine_selection",
    "direct GramerSimulator() construction bypassing make_simulator()",
)
def direct_simulator_construction(context: ModuleContext) -> Iterator[Finding]:
    if _is_exempt(context.relpath):
        return
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name != "GramerSimulator":
            continue
        yield context.finding(
            node,
            "GRM701",
            "direct GramerSimulator() construction — build simulators "
            "through repro.accel.sim.make_simulator() so the fast/"
            "reference engine choice stays a call-site parameter",
        )
