"""Observability rules (GRM6xx).

Diagnostics that bypass the obs layer are invisible to every sink the
subsystem provides — they cannot be silenced, leveled, redirected, or
captured in CI logs, and they contaminate machine-readable stdout.

* ``GRM601`` — bare ``print()`` in library code.  Route diagnostics
  through :func:`repro.obs.log.get_logger` and deliberate user-facing
  output through :func:`repro.obs.log.console`.  Exempt surfaces whose
  *job* is stdout: the CLI (``repro/cli.py``), the report renderer
  (``repro/experiments/report.py``), the obs log module itself (it owns
  the one sanctioned ``print``), and ``if __name__ == "__main__":``
  blocks (script entry points printing their own output).

* ``GRM602`` — raw tracer-primitive calls (``.emit`` / ``.complete`` /
  ``.instant`` / ``.counter`` / ``.metadata`` on a tracer-named
  receiver) outside ``repro/obs/``.  Event *shapes* belong to the obs
  layer: callers go through the typed emit helpers in
  ``repro.obs.hooks`` (``emit_job_event``, ``emit_job_retry``, the
  observer factories) so names, categories, and pid/tid conventions
  stay consistent and greppable in one module.  Receivers are matched
  by name (``tracer``, ``self.tracer``, ``self._tracer`` …), so
  ``registry.counter(...)`` — a metrics accessor, not a trace emit —
  never fires.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleContext, rule

_EXEMPT_RELPATH_SUFFIXES = (
    "repro/cli.py",
    "repro/experiments/report.py",
    "repro/obs/log.py",
)


def _is_main_guard(stmt: ast.stmt) -> bool:
    """Whether ``stmt`` is an ``if __name__ == "__main__":`` block."""
    if not isinstance(stmt, ast.If):
        return False
    test = stmt.test
    if not (isinstance(test, ast.Compare) and len(test.ops) == 1):
        return False
    if not isinstance(test.ops[0], ast.Eq):
        return False
    operands = [test.left, *test.comparators]
    names = [
        o.id for o in operands if isinstance(o, ast.Name)
    ]
    constants = [
        o.value for o in operands if isinstance(o, ast.Constant)
    ]
    return names == ["__name__"] and constants == ["__main__"]


def _main_guard_ranges(tree: ast.Module) -> list[tuple[int, int]]:
    return [
        (stmt.lineno, stmt.end_lineno or stmt.lineno)
        for stmt in tree.body
        if _is_main_guard(stmt)
    ]


@rule(
    "GRM601",
    "observability",
    "bare print() in library code outside sanctioned output surfaces",
)
def bare_print(context: ModuleContext) -> Iterator[Finding]:
    if context.relpath.endswith(_EXEMPT_RELPATH_SUFFIXES):
        return
    guard_ranges = _main_guard_ranges(context.tree)
    for node in ast.walk(context.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            continue
        line = node.lineno
        if any(start <= line <= end for start, end in guard_ranges):
            continue
        yield context.finding(
            node,
            "GRM601",
            "bare print() — diagnostics go through "
            "repro.obs.log.get_logger() (leveled, stderr) and deliberate "
            "user-facing output through repro.obs.log.console()",
        )


_TRACER_PRIMITIVES = frozenset(
    {"emit", "complete", "instant", "counter", "metadata"}
)


def _receiver_name(node: ast.expr) -> str | None:
    """Innermost attribute/name of a call receiver (``a.b.tracer`` → ``tracer``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_tracer_receiver(name: str | None) -> bool:
    return name is not None and name.lstrip("_").lower().endswith("tracer")


@rule(
    "GRM602",
    "observability",
    "raw tracer-primitive call outside the obs layer's typed emit helpers",
)
def raw_tracer_emit(context: ModuleContext) -> Iterator[Finding]:
    if "repro/obs/" in context.relpath:
        return  # the obs layer owns the primitives (hooks.py wraps them)
    for node in ast.walk(context.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _TRACER_PRIMITIVES
        ):
            continue
        if not _is_tracer_receiver(_receiver_name(node.func.value)):
            continue
        yield context.finding(
            node,
            "GRM602",
            f"raw tracer .{node.func.attr}() — event shapes belong to the "
            "obs layer; emit through a typed helper in repro.obs.hooks "
            "(emit_job_event, emit_job_retry, or a new helper beside them)",
        )
