"""Units-hygiene rules (GRM4xx).

The models move quantities across four dimensions (time, energy, size,
frequency) and several scales (cycles vs. seconds vs. nanoseconds; joules
vs. nanojoules).  The repository's convention is to carry the unit in the
identifier suffix (``dram_latency`` is cycles, ``gramer_setup_s`` seconds,
``spm_access_nj`` nanojoules, ``entry_bytes`` bytes); these rules lint
against that convention:

* ``GRM401`` — addition, subtraction, or ordering comparison between
  identifiers carrying *different* unit suffixes (``x_cycles + y_s``,
  ``a_j < b_nj``).  Multiplication and division are conversions and stay
  legal; operands without a recognizable unit are ignored.
* ``GRM402`` — float ``==``/``!=`` on measured time/energy quantities.
  Modeled floats accumulate rounding; compare against zero (the exact
  N/A sentinel) or use a tolerance.

Rate-style names (anything containing ``_per_``) are treated as unitless:
their trailing token names the denominator, not the quantity.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleContext, rule

__all__ = ["unit_of"]

# identifier suffix -> (dimension, scale)
_UNITS = {
    "cycles": ("time", "cycles"),
    "ns": ("time", "ns"),
    "us": ("time", "us"),
    "ms": ("time", "ms"),
    "s": ("time", "s"),
    "seconds": ("time", "s"),
    "pj": ("energy", "pj"),
    "nj": ("energy", "nj"),
    "mj": ("energy", "mj"),
    "j": ("energy", "j"),
    "w": ("power", "w"),
    "bytes": ("size", "bytes"),
    "mhz": ("frequency", "mhz"),
    "hz": ("frequency", "hz"),
}
_MEASURED_DIMENSIONS = {"time", "energy"}


def unit_of(name: str | None) -> tuple[str, str] | None:
    """(dimension, scale) carried by an identifier's suffix, else ``None``."""
    if not name:
        return None
    lowered = name.lower()
    if "_per_" in lowered:
        return None  # a rate: the suffix names the denominator
    token = lowered.rsplit("_", 1)[-1]
    return _UNITS.get(token)


def _operand_unit(node: ast.expr) -> tuple[str, str] | None:
    """Unit of a direct Name/Attribute operand (anything else: unknown)."""
    if isinstance(node, ast.Name):
        return unit_of(node.id)
    if isinstance(node, ast.Attribute):
        return unit_of(node.attr)
    return None


def _operand_label(node: ast.expr) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return "<expr>"


def _is_zero_literal(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
        and node.value == 0
    )


@rule(
    "GRM401",
    "units",
    "additive arithmetic or ordering across mismatched unit suffixes",
)
def mixed_unit_arithmetic(context: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(context.tree):
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Add, ast.Sub)
        ):
            pairs = [(node.left, node.right)]
        elif isinstance(node, ast.Compare) and len(node.ops) == 1 and isinstance(
            node.ops[0], (ast.Lt, ast.LtE, ast.Gt, ast.GtE)
        ):
            pairs = [(node.left, node.comparators[0])]
        else:
            continue
        for left, right in pairs:
            left_unit = _operand_unit(left)
            right_unit = _operand_unit(right)
            if left_unit is None or right_unit is None:
                continue
            if left_unit != right_unit:
                yield context.finding(
                    node,
                    "GRM401",
                    f"`{_operand_label(left)}` is {left_unit[1]} "
                    f"({left_unit[0]}) but `{_operand_label(right)}` is "
                    f"{right_unit[1]} ({right_unit[0]}); convert explicitly "
                    "before combining",
                )


@rule(
    "GRM402",
    "units",
    "float equality on a measured time/energy quantity",
)
def float_equality_on_measured(context: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(context.tree):
        if not (
            isinstance(node, ast.Compare)
            and len(node.ops) == 1
            and isinstance(node.ops[0], (ast.Eq, ast.NotEq))
        ):
            continue
        left, right = node.left, node.comparators[0]
        left_unit = _operand_unit(left)
        right_unit = _operand_unit(right)
        if left_unit and left_unit[0] in _MEASURED_DIMENSIONS:
            measured_side, other = left, right
        elif right_unit and right_unit[0] in _MEASURED_DIMENSIONS:
            measured_side, other = right, left
        else:
            continue
        other_unit = _operand_unit(other)
        nonzero_float = (
            isinstance(other, ast.Constant)
            and isinstance(other.value, float)
            and other.value != 0.0
        )
        if other_unit is not None or nonzero_float:
            yield context.finding(
                node,
                "GRM402",
                f"exact equality on measured quantity "
                f"`{_operand_label(measured_side)}` — modeled floats carry "
                "rounding; compare with a tolerance (math.isclose) or "
                "against the exact-zero sentinel only",
            )
