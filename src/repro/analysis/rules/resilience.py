"""Resilience rules (GRM8xx).

The execution runtime's whole recovery model rests on failures being
*visible*: classified by the retry policy, recorded in the run ledger,
counted in cache stats.  A handler that swallows a broad exception class
with no re-raise and no logging deletes the failure from every one of
those channels — the sweep "succeeds" with silently missing or wrong
cells.

* ``GRM801`` — ``except:`` / ``except Exception:`` / ``except
  BaseException:`` whose body neither re-raises nor logs (a bare ``pass``
  / ``...`` body).  Either narrow the exception to the types the code can
  actually absorb (``except OSError:`` around best-effort disk writes is
  fine), log through :func:`repro.obs.log.get_logger`, or let it
  propagate into the runtime's failure isolation, which turns it into a
  classified, ledgered ``JobResult``.
* ``GRM802`` — non-atomic write in ``repro/runtime/``: a bare
  ``open(..., "w")`` (or ``"wb"``/``"w+"``...) or a
  ``.write_text()``/``.write_bytes()`` call outside the blessed
  :mod:`repro.runtime.atomicio` helpers.  Runtime files are *shared
  durable state* — cache envelopes, claim files, manifests — read by
  concurrent sweep workers; a write-in-place tears under crash or
  contention into exactly the corruption the quarantine machinery then
  has to mop up.  Route the write through ``atomic_write_bytes`` /
  ``atomic_write_text`` (tmp + fsync + rename) or
  ``exclusive_create_text`` (``O_CREAT|O_EXCL``); append-mode journal
  handles and reads are untouched.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleContext, rule

_BROAD_NAMES = {"Exception", "BaseException"}

# Call attribute/function names that count as surfacing the error.
_LOGGING_NAMES = {
    "debug",
    "info",
    "warning",
    "warn",
    "error",
    "exception",
    "critical",
    "log",
}


def _names_broad_type(node: ast.expr | None) -> bool:
    """Whether an ``except`` type expression catches (at least) Exception."""
    if node is None:
        return True  # bare except
    if isinstance(node, ast.Name):
        return node.id in _BROAD_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _BROAD_NAMES
    if isinstance(node, ast.Tuple):
        return any(_names_broad_type(element) for element in node.elts)
    return False


def _handles_the_error(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body re-raises or logs the failure."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            fn = node.func
            name = (
                fn.attr
                if isinstance(fn, ast.Attribute)
                else fn.id
                if isinstance(fn, ast.Name)
                else ""
            )
            if name in _LOGGING_NAMES:
                return True
    return False


def _body_is_trivial(handler: ast.ExceptHandler) -> bool:
    """Whether the body does nothing at all (``pass`` / ``...`` / docstring)."""
    for stmt in handler.body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue
        return False
    return True


@rule(
    "GRM801",
    "resilience",
    "broad except handler swallows the error without re-raise or logging",
)
def exception_swallowing(context: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if not _names_broad_type(node.type):
            continue
        if _handles_the_error(node):
            continue
        if not _body_is_trivial(node):
            # The body does *something* (sets a fallback, returns a failure
            # value); conservative scope keeps the rule signal-only.
            continue
        caught = (
            ast.unparse(node.type) if node.type is not None else "<bare>"
        )
        yield context.finding(
            node,
            "GRM801",
            f"except {caught} swallows the error with no re-raise or "
            "logging — narrow the exception type, log via "
            "repro.obs.log.get_logger(), or let the runtime's failure "
            "isolation classify and ledger it",
        )


#: GRM802 scopes itself to the runtime package — the one place where
#: written files are shared durable state (cache entries, claims,
#: manifests, journals) read by concurrent worker processes.
_GRM802_SCOPE = "runtime/"

#: The module that *implements* the blessed write shapes; its internals
#: are necessarily below the abstraction the rule enforces.
_GRM802_EXEMPT = "atomicio"


def _open_write_mode(call: ast.Call) -> str | None:
    """The literal write mode of a builtin ``open`` call, if any.

    Only constant-string modes are judged (a computed mode is out of
    conservative scope).  Append (``"a"``) is allowed: single-``write()``
    appends on a journal handle are the ledger's blessed shape.
    """
    fn = call.func
    if not (isinstance(fn, ast.Name) and fn.id == "open"):
        return None
    mode: ast.expr | None = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if not (isinstance(mode, ast.Constant) and isinstance(mode.value, str)):
        return None
    if "w" in mode.value or "x" in mode.value:
        return mode.value
    return None


@rule(
    "GRM802",
    "resilience",
    "non-atomic write to shared runtime state (use repro.runtime.atomicio)",
)
def non_atomic_write(context: ModuleContext) -> Iterator[Finding]:
    if _GRM802_SCOPE not in context.relpath:
        return
    if _GRM802_EXEMPT in context.relpath:
        return
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        mode = _open_write_mode(node)
        if mode is not None:
            yield context.finding(
                node,
                "GRM802",
                f"open(..., {mode!r}) writes shared runtime state in "
                "place — a crash or concurrent reader sees a torn file; "
                "publish via repro.runtime.atomicio.atomic_write_bytes/"
                "atomic_write_text (tmp+fsync+rename) or "
                "exclusive_create_text (O_EXCL) instead",
            )
            continue
        fn = node.func
        if isinstance(fn, ast.Attribute) and fn.attr in (
            "write_text",
            "write_bytes",
        ):
            yield context.finding(
                node,
                "GRM802",
                f".{fn.attr}() writes shared runtime state in place — a "
                "crash or concurrent reader sees a torn file; publish "
                "via repro.runtime.atomicio.atomic_write_bytes/"
                "atomic_write_text (tmp+fsync+rename) instead",
            )
