"""Resilience rules (GRM8xx).

The execution runtime's whole recovery model rests on failures being
*visible*: classified by the retry policy, recorded in the run ledger,
counted in cache stats.  A handler that swallows a broad exception class
with no re-raise and no logging deletes the failure from every one of
those channels — the sweep "succeeds" with silently missing or wrong
cells.

* ``GRM801`` — ``except:`` / ``except Exception:`` / ``except
  BaseException:`` whose body neither re-raises nor logs (a bare ``pass``
  / ``...`` body).  Either narrow the exception to the types the code can
  actually absorb (``except OSError:`` around best-effort disk writes is
  fine), log through :func:`repro.obs.log.get_logger`, or let it
  propagate into the runtime's failure isolation, which turns it into a
  classified, ledgered ``JobResult``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleContext, rule

_BROAD_NAMES = {"Exception", "BaseException"}

# Call attribute/function names that count as surfacing the error.
_LOGGING_NAMES = {
    "debug",
    "info",
    "warning",
    "warn",
    "error",
    "exception",
    "critical",
    "log",
}


def _names_broad_type(node: ast.expr | None) -> bool:
    """Whether an ``except`` type expression catches (at least) Exception."""
    if node is None:
        return True  # bare except
    if isinstance(node, ast.Name):
        return node.id in _BROAD_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _BROAD_NAMES
    if isinstance(node, ast.Tuple):
        return any(_names_broad_type(element) for element in node.elts)
    return False


def _handles_the_error(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body re-raises or logs the failure."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            fn = node.func
            name = (
                fn.attr
                if isinstance(fn, ast.Attribute)
                else fn.id
                if isinstance(fn, ast.Name)
                else ""
            )
            if name in _LOGGING_NAMES:
                return True
    return False


def _body_is_trivial(handler: ast.ExceptHandler) -> bool:
    """Whether the body does nothing at all (``pass`` / ``...`` / docstring)."""
    for stmt in handler.body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue
        return False
    return True


@rule(
    "GRM801",
    "resilience",
    "broad except handler swallows the error without re-raise or logging",
)
def exception_swallowing(context: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if not _names_broad_type(node.type):
            continue
        if _handles_the_error(node):
            continue
        if not _body_is_trivial(node):
            # The body does *something* (sets a fallback, returns a failure
            # value); conservative scope keeps the rule signal-only.
            continue
        caught = (
            ast.unparse(node.type) if node.type is not None else "<bare>"
        )
        yield context.finding(
            node,
            "GRM801",
            f"except {caught} swallows the error with no re-raise or "
            "logging — narrow the exception type, log via "
            "repro.obs.log.get_logger(), or let the runtime's failure "
            "isolation classify and ledger it",
        )
