"""Meta rules (GRM0xx): checks about the checker's own annotations."""

from __future__ import annotations

from typing import Iterator

from repro.analysis.core import Finding, ModuleContext, rule

__all__ = ["unused_suppression"]


@rule(
    "GRM002",
    "meta",
    "suppression comment that silences nothing",
    explain=(
        "A `# gramer: ignore[...]` comment whose covered lines produce no\n"
        "finding for the listed rules is dead weight: it documents a\n"
        "violation that no longer exists and will silently mask a future\n"
        "one.  Remove the comment.  If an entry must stay (say, the rule\n"
        "only fires under a different --select set), acknowledge it\n"
        "explicitly by adding GRM002 to the bracket:\n"
        "`# gramer: ignore[GRM201, GRM002] -- fires only under full check`.\n"
        "GRM002 findings are never themselves suppressible — a bare\n"
        "unused entry would otherwise silence its own report.  Fixture\n"
        "corpora under tests/analysis/fixtures are exempt."
    ),
)
def unused_suppression(context: ModuleContext) -> Iterator[Finding]:
    """Flag ``# gramer: ignore`` comments that no longer suppress anything.

    The findings are synthesized by the engine itself (it owns the
    record of which suppression silenced which finding, across both the
    module and project passes); this registration exists so the rule is
    selectable, listable, and explainable like any other.
    """
    return iter(())
