"""Determinism rules (GRM1xx).

Every simulation result and cached artifact must be a pure function of its
:class:`~repro.runtime.spec.JobSpec`: two runs of the same spec, in any
process, must be bit-identical.  One stray wall-clock read or unseeded RNG
anywhere in a modeled path silently breaks both the cycle model and the
content-addressed cache, so these rules ban the sources outright:

* ``GRM101`` — wall-clock reads (``time.time``, ``datetime.now``, ...).
  ``time.perf_counter`` is *allowed*: host wall time is an explicitly
  nondeterministic field (``JobResult.wall_seconds``) excluded from result
  fingerprints.
* ``GRM102`` — the stdlib global RNG (``random.random()`` and friends) and
  seedless ``random.Random()``.
* ``GRM103`` — NumPy's legacy global RNG (``np.random.rand`` etc.) and
  seedless ``np.random.default_rng()``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleContext, rule

from ._ast_util import call_name, dotted_name, iter_calls

_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "date.today",
    "datetime.date.today",
}

# numpy.random attributes that construct explicitly seedable generators (the
# sanctioned API); everything else on np.random is the hidden global RNG.
_NP_GENERATOR_FACTORIES = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
}


def _first_argument_is_seed(call: ast.Call) -> bool:
    """True when the call passes a non-``None`` seed (positionally or by name)."""
    for arg in call.args[:1]:
        if not (isinstance(arg, ast.Constant) and arg.value is None):
            return True
    for keyword in call.keywords:
        if keyword.arg == "seed" and not (
            isinstance(keyword.value, ast.Constant) and keyword.value.value is None
        ):
            return True
    return False


@rule(
    "GRM101",
    "determinism",
    "wall-clock read (time.time / datetime.now) in modeled code",
)
def wall_clock_reads(context: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(context.tree):
        if isinstance(node, ast.Attribute):
            name = dotted_name(node)
            if name in _WALL_CLOCK:
                yield context.finding(
                    node,
                    "GRM101",
                    f"wall-clock read `{name}` — results must be pure "
                    "functions of the JobSpec; use time.perf_counter for "
                    "host wall time (it stays out of fingerprints)",
                )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "time":
                for alias in node.names:
                    if alias.name in ("time", "time_ns"):
                        yield context.finding(
                            node,
                            "GRM101",
                            f"`from time import {alias.name}` imports a "
                            "wall-clock read; use time.perf_counter",
                        )


@rule(
    "GRM102",
    "determinism",
    "stdlib global RNG or seedless random.Random()",
)
def stdlib_global_rng(context: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(context.tree):
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name is None or not name.startswith("random."):
                continue
            attr = name.split(".", 1)[1]
            if attr == "Random":
                if not _first_argument_is_seed(node):
                    yield context.finding(
                        node,
                        "GRM102",
                        "`random.Random()` without a seed draws OS entropy; "
                        "pass an explicit seed (e.g. random.Random(spec.seed))",
                    )
            elif "." not in attr:
                yield context.finding(
                    node,
                    "GRM102",
                    f"`{name}` uses the process-global RNG; construct a "
                    "seeded random.Random(seed) instead",
                )
        elif isinstance(node, ast.ImportFrom) and node.module == "random":
            for alias in node.names:
                if alias.name != "Random":
                    yield context.finding(
                        node,
                        "GRM102",
                        f"`from random import {alias.name}` binds the "
                        "process-global RNG; import Random and seed it",
                    )


@rule(
    "GRM103",
    "determinism",
    "numpy legacy global RNG or seedless default_rng()",
)
def numpy_global_rng(context: ModuleContext) -> Iterator[Finding]:
    for call in iter_calls(context.tree):
        name = call_name(call)
        if name is None:
            continue
        for prefix in ("np.random.", "numpy.random."):
            if name.startswith(prefix):
                attr = name[len(prefix):]
                break
        else:
            continue
        if attr not in _NP_GENERATOR_FACTORIES:
            yield context.finding(
                call,
                "GRM103",
                f"`{name}` uses numpy's hidden global RNG; use "
                "np.random.default_rng(seed)",
            )
        elif attr == "default_rng" and not _first_argument_is_seed(call):
            yield context.finding(
                call,
                "GRM103",
                "`default_rng()` without a seed draws OS entropy; thread "
                "an explicit seed through",
            )
