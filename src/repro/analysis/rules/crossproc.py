"""Cross-process safety rules (GRM5xx).

Pool fan-out pickles every submitted argument into the worker.  Shipping a
whole graph or memory trace by value costs serialization time proportional
to the object, defeats the artifact cache (workers should *reload* shared
inputs from their content address), and — for closures — captures ambient
state the spec never declared.

* ``GRM501`` — a pool submission (``.submit``/``.map``/``.apply_async`` on
  a pool/executor receiver) passing a large-object identifier (``graph``,
  ``trace``, ``csr``, ...) or a lambda.  Pass the *name* of the input
  (dataset key, file path, cache key) and resolve it inside the worker.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleContext, rule

_SUBMIT_METHODS = {"submit", "map", "apply_async", "starmap", "imap"}
_POOL_HINTS = ("pool", "executor", "workers")
_LARGE_OBJECT_NAMES = {
    "graph",
    "graphs",
    "csr",
    "trace",
    "traces",
    "adjacency",
    "neighbors",
    "offsets",
    "labels",
    "embedding",
    "embeddings",
    "frontier",
    "matrix",
}


def _receiver_is_pool(func: ast.Attribute) -> bool:
    base = func.value
    while isinstance(base, ast.Attribute):
        if any(hint in base.attr.lower() for hint in _POOL_HINTS):
            return True
        base = base.value
    return isinstance(base, ast.Name) and any(
        hint in base.id.lower() for hint in _POOL_HINTS
    )


def _large_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name) and node.id.lower() in _LARGE_OBJECT_NAMES:
        return node.id
    if isinstance(node, ast.Attribute) and node.attr.lower() in _LARGE_OBJECT_NAMES:
        return node.attr
    return None


@rule(
    "GRM501",
    "crossproc",
    "large object or closure pickled into a pool submission",
)
def large_capture_in_submission(context: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in _SUBMIT_METHODS
            and _receiver_is_pool(func)
        ):
            continue
        arguments = list(node.args) + [kw.value for kw in node.keywords]
        for arg in arguments:
            if isinstance(arg, ast.Lambda):
                yield context.finding(
                    arg,
                    "GRM501",
                    f"lambda passed to `.{func.attr}` — closures capture "
                    "ambient objects by value into the worker pickle; "
                    "submit a top-level function taking explicit keys",
                )
                continue
            name = _large_name(arg)
            if name is not None:
                yield context.finding(
                    arg,
                    "GRM501",
                    f"`{name}` pickled by value into `.{func.attr}` — pass "
                    "its content address (dataset name, path, cache key) "
                    "and reload inside the worker instead",
                )
