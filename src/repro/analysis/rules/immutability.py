"""Spec-immutability rules (GRM3xx).

A :class:`~repro.runtime.spec.JobSpec` is a content-address: mutating one
after construction (or making spec-like dataclasses mutable at all) breaks
the cache's core assumption that equal specs mean equal results.

* ``GRM301`` — a dataclass whose name ends in ``Spec``/``Result``/
  ``Config``/``Params``/``Overheads`` must declare ``frozen=True``.
  Those suffixes are this repository's naming contract for declarative
  value objects (``JobSpec``, ``JobResult``, ``GramerConfig``,
  ``EnergyParams``, ``SystemOverheads``, ...).
* ``GRM302`` — attribute assignment on a variable conventionally bound to
  a spec/config object (``spec``, ``config``, ``cfg``, ``result``, ...).
  Use :func:`dataclasses.replace` to derive modified copies.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleContext, rule

from ._ast_util import dotted_name

_FROZEN_SUFFIXES = ("Spec", "Result", "Config", "Params", "Overheads")
_DATACLASS_NAMES = {"dataclass", "dataclasses.dataclass"}
_SPEC_LIKE_NAMES = {
    "spec",
    "jobspec",
    "job_spec",
    "result",
    "job_result",
    "config",
    "cfg",
    "energy_params",
    "overheads",
}


def _dataclass_decorator(node: ast.ClassDef) -> ast.expr | ast.Call | None:
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Call):
            if dotted_name(decorator.func) in _DATACLASS_NAMES:
                return decorator
        elif dotted_name(decorator) in _DATACLASS_NAMES:
            return decorator
    return None


def _is_frozen(decorator: ast.expr | ast.Call) -> bool:
    if not isinstance(decorator, ast.Call):
        return False
    for keyword in decorator.keywords:
        if keyword.arg == "frozen":
            return (
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            )
    return False


@rule(
    "GRM301",
    "immutability",
    "spec-like dataclass (Spec/Result/Config/Params suffix) not frozen",
)
def unfrozen_spec_dataclass(context: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if not node.name.endswith(_FROZEN_SUFFIXES):
            continue
        decorator = _dataclass_decorator(node)
        if decorator is None:
            continue
        if not _is_frozen(decorator):
            yield context.finding(
                node,
                "GRM301",
                f"dataclass `{node.name}` names a declarative value object "
                "but is not frozen=True; mutable specs corrupt "
                "content-addressed cache keys",
            )


@rule(
    "GRM302",
    "immutability",
    "attribute assignment on a spec/config object after construction",
)
def spec_attribute_assignment(context: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(context.tree):
        targets: list[ast.expr]
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        else:
            continue
        for target in targets:
            if not isinstance(target, ast.Attribute):
                continue
            base = target.value
            if (
                isinstance(base, ast.Name)
                and base.id.lower() in _SPEC_LIKE_NAMES
            ):
                yield context.finding(
                    node,
                    "GRM302",
                    f"assignment to `{base.id}.{target.attr}` mutates a "
                    "spec/config object after construction; build a copy "
                    "with dataclasses.replace(...) instead",
                )
