"""Built-in GRAMER rule families.

Importing this package registers every rule with the engine registry in
:mod:`repro.analysis.core`.  Families and their ID blocks:

* ``determinism`` (GRM1xx) — wall-clock reads and unseeded RNGs;
* ``purity`` (GRM2xx) — environment reads, mutable module globals, and
  filesystem access inside memoized code;
* ``immutability`` (GRM3xx) — non-frozen spec/config dataclasses and
  post-construction mutation of spec objects;
* ``units`` (GRM4xx) — arithmetic mixing unit-suffixed quantities and
  float equality on measured quantities;
* ``crossproc`` (GRM5xx) — large objects or closures shipped through
  process-pool submissions by value;
* ``observability`` (GRM6xx) — bare ``print()`` bypassing the obs layer;
* ``engine_selection`` (GRM7xx) — direct ``GramerSimulator`` construction
  bypassing :func:`repro.accel.sim.make_simulator`, and exact equality
  asserted on tolerance-banded turbo timing fields;
* ``resilience`` (GRM8xx) — broad exception handlers that swallow errors
  without re-raise or logging;
* ``graph_store`` (GRM9xx) — graphs loaded or generated outside the
  content-addressed :class:`repro.graph.store.GraphStore` path;
* ``meta`` (GRM0xx) — hygiene of the checker's own annotations (unused
  suppressions);
* ``project`` (GRM10xx) — cross-file flows over the whole-program pass:
  interprocedural determinism taint, cache-key completeness along backend
  call graphs, and pool-submission reachability.
"""

from . import (  # noqa: F401  (import-for-registration)
    crossproc,
    determinism,
    engine_selection,
    graph_store,
    immutability,
    meta,
    observability,
    project,
    purity,
    resilience,
    units,
)
