"""Cache-purity rules (GRM2xx).

The artifact cache assumes every memoized value is a pure function of its
content-address key.  Anything a backend or memoized producer reads
*besides* its spec — environment variables, mutable module globals, files
not named by the spec — silently poisons cached artifacts: the cache
returns results computed under state that no longer holds.

* ``GRM201`` — ``os.environ`` / ``os.getenv`` reads.  Configuration
  resolution at process startup (worker counts, cache roots) is the
  sanctioned exception and carries inline suppressions.
* ``GRM202`` — module-level mutable literals bound to lowercase names.
  A lowercase binding signals intent to mutate; shared mutable module
  state diverges between pool workers and the parent process.
  ``UPPER_CASE`` bindings are treated as declared constants.
* ``GRM203`` — filesystem or environment access inside memoized scopes:
  ``*Backend.run`` methods, producers handed to ``get_or_create``, and
  ``functools.lru_cache``/``cache``-decorated functions.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleContext, rule

from ._ast_util import call_name, dotted_name

_MUTABLE_LITERALS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)
_MUTABLE_FACTORIES = {
    "list",
    "dict",
    "set",
    "bytearray",
    "deque",
    "defaultdict",
    "OrderedDict",
    "Counter",
    "collections.deque",
    "collections.defaultdict",
    "collections.OrderedDict",
    "collections.Counter",
}
_MEMO_DECORATORS = {
    "cache",
    "lru_cache",
    "functools.cache",
    "functools.lru_cache",
}
_IMPURE_CALLS = {
    "open",
    "os.getenv",
    "os.remove",
    "os.unlink",
    "os.replace",
    "os.rename",
    "os.listdir",
    "os.getcwd",
}
_IMPURE_METHODS = {
    "read_text",
    "read_bytes",
    "write_text",
    "write_bytes",
    "unlink",
    "mkdir",
}


def _env_reads(tree: ast.AST) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute) and dotted_name(node) == "os.environ":
            yield node
        elif isinstance(node, ast.Call) and call_name(node) == "os.getenv":
            yield node
        elif isinstance(node, ast.ImportFrom) and node.module == "os":
            if any(alias.name in ("environ", "getenv") for alias in node.names):
                yield node


@rule(
    "GRM201",
    "purity",
    "os.environ read outside process-startup configuration",
)
def environ_reads(context: ModuleContext) -> Iterator[Finding]:
    for node in _env_reads(context.tree):
        yield context.finding(
            node,
            "GRM201",
            "environment read — cached results must be pure functions of "
            "their spec; resolve env config once at startup (suppress "
            "there with a reason) and pass values explicitly",
        )


@rule(
    "GRM202",
    "purity",
    "module-level mutable global bound to a lowercase name",
)
def mutable_module_globals(context: ModuleContext) -> Iterator[Finding]:
    for stmt in context.tree.body:
        targets: list[ast.expr]
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
            value = stmt.value
        else:
            continue
        mutable = isinstance(value, _MUTABLE_LITERALS) or (
            isinstance(value, ast.Call)
            and call_name(value) in _MUTABLE_FACTORIES
        )
        if not mutable:
            continue
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            name = target.id
            if name.startswith("__") and name.endswith("__"):
                continue  # dunders (__all__, ...) are module metadata
            if name != name.upper():  # UPPER_CASE reads as a constant
                yield context.finding(
                    stmt,
                    "GRM202",
                    f"module-level mutable global `{name}` — pool workers "
                    "each get their own copy, so mutations silently "
                    "diverge across processes; pass state explicitly or "
                    "rename to UPPER_CASE if it is a constant",
                )


def _memoized_scopes(
    tree: ast.Module,
) -> Iterator[tuple[str, ast.AST]]:
    """(description, scope body) pairs for every memoized code region."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name.endswith("Backend"):
            for item in node.body:
                if (
                    isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and item.name == "run"
                ):
                    yield f"{node.name}.run (cache-memoized backend)", item
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for decorator in node.decorator_list:
                target = (
                    decorator.func
                    if isinstance(decorator, ast.Call)
                    else decorator
                )
                if dotted_name(target) in _MEMO_DECORATORS:
                    yield f"memoized function {node.name}", node
        elif isinstance(node, ast.Call):
            callee = node.func
            if (
                isinstance(callee, ast.Attribute)
                and callee.attr == "get_or_create"
            ):
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    if isinstance(arg, ast.Lambda):
                        yield "get_or_create producer", arg


def _impure_nodes(scope: ast.AST) -> Iterator[tuple[ast.AST, str]]:
    for node in ast.walk(scope):
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name in _IMPURE_CALLS:
                yield node, f"`{name}(...)`"
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _IMPURE_METHODS
            ):
                yield node, f"`.{node.func.attr}(...)`"
        elif isinstance(node, ast.Attribute) and dotted_name(node) == "os.environ":
            yield node, "`os.environ`"


@rule(
    "GRM203",
    "purity",
    "filesystem/environment access inside a memoized scope",
)
def impure_memoized_scope(context: ModuleContext) -> Iterator[Finding]:
    for description, scope in _memoized_scopes(context.tree):
        for node, what in _impure_nodes(scope):
            yield context.finding(
                node,
                "GRM203",
                f"{what} inside {description} — the memoized result would "
                "depend on state outside its cache key; hoist the access "
                "out or fold its result into the key",
            )
