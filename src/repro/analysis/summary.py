"""Per-module analysis summaries for the whole-program pass.

:func:`summarize_module` reduces one parsed module to a frozen, picklable
:class:`ModuleSummary` — everything the project pass needs to build a
module graph, a call graph, and an interprocedural taint analysis without
ever re-reading the file:

* the module's **imports** (local alias → dotted target), including
  resolved relative imports;
* a :class:`FunctionSummary` per function and method, carrying the calls
  it makes, the **taint atoms** that flow to its return value, its sink
  and pool-submission sites, and the spec/params fields it reads;
* the module's classes (for ``self.``/ctor resolution), detected
  **backend** classes (``*Backend`` with a ``run`` method), and **spec**
  classes (anything defining ``cache_key``/``fingerprint``), including
  which dataclass fields the spec digest covers.

The dataflow here is deliberately *intra*-procedural and summary-shaped:
each expression is reduced to a set of atoms — ``src:<kind>`` for a taint
source, ``call:<dotted>`` for a call whose resolution happens later at
project scope, ``param:<name>`` for a parameter — propagated through
local assignments with branch merging.  The interprocedural fixpoint over
``call:`` atoms lives in :mod:`repro.analysis.taint`; summaries therefore
cache perfectly (content-addressed by source hash) and recombine cheaply.

Conservatism cuts the *miss* direction by design: a call that cannot be
resolved to a project symbol contributes no taint, so the project rules
only ever report flows they can spell out end-to-end.  Precision
limitations (closures, attribute calls on arbitrary objects, containers)
are documented in docs/static-analysis.md.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ._ast_util import call_name, dotted_name

__all__ = [
    "SUMMARY_VERSION",
    "DETERMINISTIC_RESULT_FIELDS",
    "CallSite",
    "Sink",
    "Submit",
    "FunctionSummary",
    "SpecClassInfo",
    "BackendInfo",
    "ModuleSummary",
    "summarize_module",
]

#: Bump when the summary shape or extraction logic changes: the project
#: pass salts its cache keys with this, so stale summaries never load.
SUMMARY_VERSION = 1

#: ``JobResult`` fields that must be deterministic functions of the spec.
#: ``wall_seconds``, ``retries``, ``cached`` and ``cache_key`` are host
#: provenance, explicitly excluded from result fingerprints.
DETERMINISTIC_RESULT_FIELDS = frozenset(
    {"seconds", "energy_j", "detail", "system", "ok", "error"}
)

# -- taint atoms ------------------------------------------------------------

SRC_WALLCLOCK = "src:wallclock"
SRC_RNG = "src:rng"
SRC_ENV = "src:env"
SRC_GRAPH = "src:graph"
ATOM_LAMBDA = "lambda"
ATOM_PARAMSDICT = "paramsdict"

_WALLCLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "date.today",
    "datetime.date.today",
}
_RNG_PREFIXES = ("random.", "np.random.", "numpy.random.")
_ENV_CALLS = {"os.getenv"}
# Graph-sized producers: the functions that materialize whole graphs.
# Matching is by full dotted name or by final component for the names
# unique enough to own (generator/parser entry points).
_GRAPH_PRODUCER_TAILS = {
    "load_edge_list",
    "parse_edge_list",
    "import_edge_list",
    "erdos_renyi",
    "powerlaw_cluster",
    "rmat",
    "load_labeled",
}
_GRAPH_PRODUCER_NAMES = {"CSRGraph", "resolve_graph", "datasets.load"}
# ``<store-ish>.open`` / ``<store-ish>.load``: receiver must look like a
# graph store, because bare ``.open``/``.load`` are far too generic.
_STORE_METHODS = {"open", "load"}

_CACHE_KEY_METHODS = {"get_or_create", "lookup", "store", "entry_path"}
_SUBMIT_METHODS = {"submit", "map", "apply_async", "starmap", "imap"}
_POOL_HINTS = ("pool", "executor", "workers")
_ASDICT_NAMES = {"asdict", "astuple", "dataclasses.asdict", "dataclasses.astuple"}

Atoms = frozenset[str]
_EMPTY: Atoms = frozenset()


def _source_atom(callee: str | None) -> str | None:
    """The ``src:<kind>`` atom a call introduces, if it is a taint source."""
    if callee is None:
        return None
    if callee in _WALLCLOCK_CALLS:
        return SRC_WALLCLOCK
    if any(callee.startswith(p) for p in _RNG_PREFIXES):
        return SRC_RNG
    if callee in _ENV_CALLS or callee.startswith("os.environ."):
        return SRC_ENV
    tail = callee.rsplit(".", 1)[-1]
    if tail in _GRAPH_PRODUCER_TAILS or callee in _GRAPH_PRODUCER_NAMES:
        return SRC_GRAPH
    if tail in _STORE_METHODS and "store" in callee.rsplit(".", 1)[0].lower():
        return SRC_GRAPH
    return None


# -- summary dataclasses ----------------------------------------------------


@dataclass(frozen=True)
class CallSite:
    """One call expression: the callee as written, and where."""

    callee: str
    line: int


@dataclass(frozen=True)
class Sink:
    """A deterministic-output site and the atoms flowing into it.

    ``kind`` is one of ``result_field`` (a deterministic ``JobResult``
    ctor keyword), ``cache_key`` (the key argument of an
    ``ArtifactCache`` method or ``stable_hash``), or ``stats_field``
    (a ``SimStats`` ctor keyword or ``<...stats...>.field`` assignment).
    """

    kind: str
    detail: str
    line: int
    col: int
    atoms: Atoms


@dataclass(frozen=True)
class Submit:
    """A pool submission site: the callable and per-argument atoms."""

    method: str
    line: int
    col: int
    callee: str | None
    callee_kind: str  # "name" | "lambda" | "nested" | "other"
    arg_atoms: tuple[Atoms, ...]
    arg_names: tuple[str, ...]


@dataclass(frozen=True)
class FunctionSummary:
    """Everything the project pass keeps about one function or method."""

    name: str
    class_name: str | None
    params: tuple[str, ...]
    param_annotations: tuple[tuple[str, str], ...]  # (param, annotation)
    line: int
    calls: tuple[CallSite, ...]
    return_atoms: Atoms
    sinks: tuple[Sink, ...]
    submits: tuple[Submit, ...]
    # (param name, attribute, line) for plain field reads off parameters.
    attr_reads: tuple[tuple[str, str, int], ...]
    # (key, line) for ``params["k"]`` / ``params.get("k")`` reads.
    param_key_reads: tuple[tuple[str, int], ...]
    # Names of functions nested inside this one (unpicklable if submitted).
    nested: tuple[str, ...] = ()

    @property
    def qualname(self) -> str:
        return f"{self.class_name}.{self.name}" if self.class_name else self.name

    @property
    def return_calls(self) -> tuple[str, ...]:
        return tuple(
            sorted(a[len("call:"):] for a in self.return_atoms if a.startswith("call:"))
        )


@dataclass(frozen=True)
class SpecClassInfo:
    """A spec-like class: its fields and what its digest covers."""

    name: str
    line: int
    digest_method: str  # "cache_key" or "fingerprint"
    fields: tuple[str, ...]
    covered: tuple[str, ...]
    complete: bool  # True when the digest serializes the whole object


@dataclass(frozen=True)
class BackendInfo:
    """A ``*Backend`` class with a ``run`` entry point."""

    name: str
    line: int
    spec_annotation: str | None


@dataclass(frozen=True)
class ModuleSummary:
    """One module, reduced to what whole-program analysis needs."""

    module: str
    relpath: str
    imports: tuple[tuple[str, str], ...]
    functions: tuple[FunctionSummary, ...]
    classes: tuple[tuple[str, tuple[str, ...]], ...]
    class_bases: tuple[tuple[str, tuple[str, ...]], ...]
    spec_classes: tuple[SpecClassInfo, ...]
    backends: tuple[BackendInfo, ...]

    def imports_dict(self) -> dict[str, str]:
        return dict(self.imports)

    def class_methods(self) -> dict[str, frozenset[str]]:
        return {name: frozenset(methods) for name, methods in self.classes}


# -- import resolution ------------------------------------------------------


def _resolve_relative(module: str, level: int, target: str | None) -> str:
    """Absolute dotted target of a ``from ...x import y`` statement."""
    # ``module`` is the *importing* module; its package is everything but
    # the last component.  level=1 means "this package".
    parts = module.split(".")
    base = parts[: len(parts) - level]
    if target:
        base = base + target.split(".")
    return ".".join(base)


def _collect_imports(tree: ast.Module, module: str) -> list[tuple[str, str]]:
    out: list[tuple[str, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    out.append((alias.asname, alias.name))
                else:
                    # ``import a.b.c`` binds ``a``; keep the full dotted
                    # path so ``a.b.c.f`` resolves by prefix.
                    out.append((alias.name.split(".")[0], alias.name.split(".")[0]))
                    out.append((alias.name, alias.name))
        elif isinstance(node, ast.ImportFrom):
            base = (
                _resolve_relative(module, node.level, node.module)
                if node.level
                else (node.module or "")
            )
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                out.append((local, f"{base}.{alias.name}" if base else alias.name))
    # Later bindings win, matching Python semantics closely enough.
    dedup: dict[str, str] = {}
    for local, target in out:
        dedup[local] = target
    return sorted(dedup.items())


# -- the intra-procedural walker -------------------------------------------


class _FunctionWalker:
    """Forward atom propagation through one function body.

    Tracks, per local name, the set of atoms its value may carry;
    branches merge by union, loops run their body twice so loop-carried
    atoms stabilize.  Sinks, calls, submissions, and field reads are
    recorded as side effects while expressions are reduced.
    """

    def __init__(
        self,
        params: Iterable[str],
        local_funcs: dict[str, "FunctionSummary"],
    ) -> None:
        self.params = tuple(params)
        self.local_funcs = local_funcs
        self.calls: dict[tuple[str, int], CallSite] = {}
        self.sinks: dict[tuple[str, str, int, int], set[str]] = {}
        self.submits: dict[tuple[int, int], Submit] = {}
        self.attr_reads: set[tuple[str, str, int]] = set()
        self.param_key_reads: set[tuple[str, int]] = set()
        self.return_atoms: set[str] = set()
        self.nested: list[str] = []

    # -- expression reduction ---------------------------------------------

    def atoms(self, node: ast.expr | None, env: dict[str, Atoms]) -> Atoms:
        if node is None:
            return _EMPTY
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            if node.id in self.params:
                return frozenset({f"param:{node.id}"})
            return _EMPTY
        if isinstance(node, ast.Call):
            return self._call_atoms(node, env)
        if isinstance(node, ast.Attribute):
            self._note_attr_read(node)
            return self.atoms(node.value, env)
        if isinstance(node, ast.Subscript):
            self._note_key_read(node, env)
            return self.atoms(node.value, env) | self.atoms(node.slice, env)
        if isinstance(node, ast.Lambda):
            # Reduce the body for call recording; the value itself is an
            # unpicklable closure.
            self.atoms(node.body, dict(env))
            return frozenset({ATOM_LAMBDA})
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            out: set[str] = set()
            for element in node.elts:
                out |= self.atoms(element, env)
            return frozenset(out)
        if isinstance(node, ast.Dict):
            out = set()
            for key in node.keys:
                out |= self.atoms(key, env)
            for value in node.values:
                out |= self.atoms(value, env)
            return frozenset(out)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            inner = dict(env)
            for generator in node.generators:
                gen_atoms = self.atoms(generator.iter, inner)
                for name in _target_names(generator.target):
                    inner[name] = gen_atoms
                for cond in generator.ifs:
                    self.atoms(cond, inner)
            if isinstance(node, ast.DictComp):
                return self.atoms(node.key, inner) | self.atoms(node.value, inner)
            return self.atoms(node.elt, inner)
        if isinstance(node, ast.BoolOp):
            out = set()
            for value in node.values:
                out |= self.atoms(value, env)
            return frozenset(out)
        if isinstance(node, ast.BinOp):
            return self.atoms(node.left, env) | self.atoms(node.right, env)
        if isinstance(node, ast.UnaryOp):
            return self.atoms(node.operand, env)
        if isinstance(node, ast.Compare):
            out = set(self.atoms(node.left, env))
            for comparator in node.comparators:
                out |= self.atoms(comparator, env)
            return frozenset(out)
        if isinstance(node, ast.IfExp):
            self.atoms(node.test, env)
            return self.atoms(node.body, env) | self.atoms(node.orelse, env)
        if isinstance(node, ast.JoinedStr):
            out = set()
            for value in node.values:
                out |= self.atoms(value, env)
            return frozenset(out)
        if isinstance(node, ast.FormattedValue):
            return self.atoms(node.value, env)
        if isinstance(node, (ast.Await, ast.Starred, ast.NamedExpr)):
            inner_atoms = self.atoms(node.value, env)
            if isinstance(node, ast.NamedExpr) and isinstance(node.target, ast.Name):
                env[node.target.id] = inner_atoms
            return inner_atoms
        if isinstance(node, ast.Slice):
            out = set()
            for part in (node.lower, node.upper, node.step):
                out |= self.atoms(part, env)
            return frozenset(out)
        return _EMPTY

    def _note_attr_read(self, node: ast.Attribute) -> None:
        if isinstance(node.value, ast.Name) and node.value.id in self.params:
            self.attr_reads.add((node.value.id, node.attr, node.lineno))

    def _note_key_read(self, node: ast.Subscript, env: dict[str, Atoms]) -> None:
        base = node.value
        key = node.slice
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            return
        if isinstance(base, ast.Name) and ATOM_PARAMSDICT in env.get(base.id, _EMPTY):
            self.param_key_reads.add((key.value, node.lineno))

    def _call_atoms(self, node: ast.Call, env: dict[str, Atoms]) -> Atoms:
        callee = call_name(node)
        # Reduce the receiver of attribute calls without treating the
        # method name as a field read (``spec.label()`` reads no field).
        if isinstance(node.func, ast.Attribute):
            self.atoms(node.func.value, env)
        arg_atoms = [self.atoms(arg, env) for arg in node.args]
        # Positional, parallel to ``node.keywords``: several ``**`` expansions
        # in one call all have ``kw.arg is None`` and must not collapse.
        kw_atoms = [self.atoms(kw.value, env) for kw in node.keywords]
        merged: set[str] = set()
        for atoms in arg_atoms:
            merged |= atoms
        for atoms in kw_atoms:
            merged |= atoms

        self._note_sinks(node, callee, arg_atoms, kw_atoms, env)
        self._note_submit(node, callee, arg_atoms, kw_atoms, env)
        self._note_params_get(node, callee, env)

        if callee is not None:
            self.calls[(callee, node.lineno)] = CallSite(callee, node.lineno)
            source = _source_atom(callee)
            if source is not None:
                return frozenset(merged | {source})
            local = self.local_funcs.get(callee)
            if local is not None:
                # Calls to nested functions expand inline: their return
                # atoms are already project-resolvable.
                return frozenset(merged | set(local.return_atoms))
            result: set[str] = merged | {f"call:{callee}"}
            if callee.endswith(".params_dict"):
                result.add(ATOM_PARAMSDICT)
            return frozenset(result)
        return frozenset(merged)

    def _note_params_get(
        self, node: ast.Call, callee: str | None, env: dict[str, Atoms]
    ) -> None:
        """Record ``params.get("k", ...)`` reads on params-dict values."""
        if not (
            isinstance(node.func, ast.Attribute) and node.func.attr == "get"
        ):
            return
        base = node.func.value
        if not (
            isinstance(base, ast.Name)
            and ATOM_PARAMSDICT in env.get(base.id, _EMPTY)
        ):
            return
        if node.args and isinstance(node.args[0], ast.Constant):
            key = node.args[0].value
            if isinstance(key, str):
                self.param_key_reads.add((key, node.lineno))

    def _note_sinks(
        self,
        node: ast.Call,
        callee: str | None,
        arg_atoms: list[Atoms],
        kw_atoms: list[Atoms],
        env: dict[str, Atoms],
    ) -> None:
        if callee is None:
            return
        tail = callee.rsplit(".", 1)[-1]
        if tail == "JobResult":
            for kw, atoms in zip(node.keywords, kw_atoms):
                if kw.arg in DETERMINISTIC_RESULT_FIELDS:
                    self._add_sink("result_field", kw.arg, kw.value, atoms)
        elif tail == "SimStats":
            for kw, atoms in zip(node.keywords, kw_atoms):
                if kw.arg is not None:
                    self._add_sink("stats_field", kw.arg, kw.value, atoms)
        elif tail == "stable_hash" and node.args:
            self._add_sink("cache_key", callee, node.args[0], arg_atoms[0])
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _CACHE_KEY_METHODS
            and len(node.args) >= 2
            and _receiver_is_cache(node.func)
        ):
            self._add_sink(
                "cache_key", f"{callee}[key]", node.args[1], arg_atoms[1]
            )

    def _add_sink(
        self, kind: str, detail: str, node: ast.expr, atoms: Atoms
    ) -> None:
        slot = (kind, detail, node.lineno, node.col_offset)
        self.sinks.setdefault(slot, set()).update(atoms)

    def _note_submit(
        self,
        node: ast.Call,
        callee: str | None,
        arg_atoms: list[Atoms],
        kw_atoms: list[Atoms],
        env: dict[str, Atoms],
    ) -> None:
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in _SUBMIT_METHODS
            and _receiver_is_pool(func)
        ):
            return
        submitted = node.args[0] if node.args else None
        submitted_name: str | None = None
        callee_kind = "other"
        if isinstance(submitted, ast.Lambda):
            callee_kind = "lambda"
        elif submitted is not None:
            submitted_name = dotted_name(submitted)
            if submitted_name is not None:
                if submitted_name in self.nested:
                    callee_kind = "nested"
                elif ATOM_LAMBDA in env.get(submitted_name, _EMPTY):
                    callee_kind = "lambda"
                else:
                    callee_kind = "name"
        names = []
        for arg in node.args[1:]:
            names.append(dotted_name(arg) or type(arg).__name__)
        for kw in node.keywords:
            names.append(kw.arg or "**")
        payload_atoms = tuple(arg_atoms[1:]) + tuple(kw_atoms)
        self.submits[(node.lineno, node.col_offset)] = Submit(
            method=func.attr,
            line=node.lineno,
            col=node.col_offset,
            callee=submitted_name,
            callee_kind=callee_kind,
            arg_atoms=payload_atoms,
            arg_names=tuple(names),
        )

    # -- statement execution -----------------------------------------------

    def exec_block(
        self, stmts: Iterable[ast.stmt], env: dict[str, Atoms]
    ) -> dict[str, Atoms]:
        for stmt in stmts:
            env = self.exec_stmt(stmt, env)
        return env

    def exec_stmt(self, stmt: ast.stmt, env: dict[str, Atoms]) -> dict[str, Atoms]:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
                value = stmt.value
            else:
                targets = [stmt.target]
                value = stmt.value
            atoms = self.atoms(value, env)
            for target in targets:
                for name in _target_names(target):
                    if isinstance(stmt, ast.AugAssign):
                        atoms = atoms | env.get(name, _EMPTY)
                    env[name] = atoms
                # ``<...stats...>.field = atoms`` is a stats sink.
                if isinstance(target, ast.Attribute):
                    base = dotted_name(target.value)
                    if base is not None and "stats" in base.lower():
                        self._add_sink("stats_field", target.attr, target, atoms)
            return env
        if isinstance(stmt, ast.Return):
            self.return_atoms |= self.atoms(stmt.value, env)
            return env
        if isinstance(stmt, ast.Expr):
            self.atoms(stmt.value, env)
            return env
        if isinstance(stmt, ast.If):
            self.atoms(stmt.test, env)
            left = self.exec_block(stmt.body, dict(env))
            right = self.exec_block(stmt.orelse, dict(env))
            return _merge_env(left, right)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_atoms = self.atoms(stmt.iter, env)
            for name in _target_names(stmt.target):
                env[name] = iter_atoms
            # Two passes so loop-carried atoms stabilize; sink/call sites
            # dedup by position, so re-walking only widens atom sets.
            body_env = self.exec_block(stmt.body, dict(env))
            env = _merge_env(env, body_env)
            body_env = self.exec_block(stmt.body, dict(env))
            env = _merge_env(env, body_env)
            return self.exec_block(stmt.orelse, env)
        if isinstance(stmt, ast.While):
            self.atoms(stmt.test, env)
            body_env = self.exec_block(stmt.body, dict(env))
            env = _merge_env(env, body_env)
            body_env = self.exec_block(stmt.body, dict(env))
            env = _merge_env(env, body_env)
            return self.exec_block(stmt.orelse, env)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                item_atoms = self.atoms(item.context_expr, env)
                if item.optional_vars is not None:
                    for name in _target_names(item.optional_vars):
                        env[name] = item_atoms
            return self.exec_block(stmt.body, env)
        if isinstance(stmt, ast.Try):
            env = self.exec_block(stmt.body, env)
            for handler in stmt.handlers:
                env = _merge_env(env, self.exec_block(handler.body, dict(env)))
            env = self.exec_block(stmt.orelse, env)
            return self.exec_block(stmt.finalbody, env)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.nested.append(stmt.name)
            return env  # summarized separately by the caller
        if isinstance(stmt, (ast.Raise, ast.Assert)):
            if isinstance(stmt, ast.Raise):
                self.atoms(stmt.exc, env)
            else:
                self.atoms(stmt.test, env)
            return env
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                for name in _target_names(target):
                    env.pop(name, None)
            return env
        # Fallback (match, global, class defs, ...): reduce any child
        # expressions so calls are still recorded, without env tracking.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self.atoms(child, env)
        return env


def _merge_env(a: dict[str, Atoms], b: dict[str, Atoms]) -> dict[str, Atoms]:
    out = dict(a)
    for name, atoms in b.items():
        out[name] = out.get(name, _EMPTY) | atoms
    return out


def _target_names(target: ast.expr) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)


def _receiver_is_pool(func: ast.Attribute) -> bool:
    base = func.value
    while isinstance(base, ast.Attribute):
        if any(hint in base.attr.lower() for hint in _POOL_HINTS):
            return True
        base = base.value
    return isinstance(base, ast.Name) and any(
        hint in base.id.lower() for hint in _POOL_HINTS
    )


def _receiver_is_cache(func: ast.Attribute) -> bool:
    base = func.value
    name = dotted_name(base)
    if name is not None:
        return "cache" in name.lower()
    if isinstance(base, ast.Call):
        inner = call_name(base)
        return inner is not None and "cache" in inner.lower()
    return False


# -- function/class/module summarization ------------------------------------


def _param_names(args: ast.arguments) -> list[str]:
    params = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        params.append(args.vararg.arg)
    if args.kwarg:
        params.append(args.kwarg.arg)
    return params


def _param_annotations(args: ast.arguments) -> list[tuple[str, str]]:
    out = []
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        if arg.annotation is not None:
            name = _annotation_name(arg.annotation)
            if name:
                out.append((arg.arg, name))
    return out


def _annotation_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # String annotation: take the first dotted identifier.
        return node.value.split("|")[0].strip().strip('"')
    name = dotted_name(node)
    if name is not None:
        return name
    if isinstance(node, ast.Subscript):
        return _annotation_name(node.value)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _annotation_name(node.left)
    return None


def _summarize_function(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    class_name: str | None,
) -> FunctionSummary:
    params = _param_names(node.args)

    # Summarize nested defs first so calls to them expand inline.
    local_funcs: dict[str, FunctionSummary] = {}
    for stmt in ast.walk(node):
        if stmt is node:
            continue
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            local_funcs[stmt.name] = _summarize_function(stmt, class_name=None)

    walker = _FunctionWalker(params, local_funcs)
    walker.nested.extend(local_funcs)
    env: dict[str, Atoms] = {}
    # ``self`` is never a taint carrier here.
    walker.exec_block(node.body, env)

    # Fold nested functions' sinks/submits/calls into the enclosing
    # summary: they execute in this function's file region and their
    # callees must reach the project call graph.
    sinks = {
        (s.kind, s.detail, s.line, s.col): set(s.atoms)
        for s in (
            Sink(kind, detail, line, col, frozenset(atoms))
            for (kind, detail, line, col), atoms in walker.sinks.items()
        )
    }
    submits = dict(walker.submits)
    calls = dict(walker.calls)
    attr_reads = set(walker.attr_reads)
    param_key_reads = set(walker.param_key_reads)
    for nested_summary in local_funcs.values():
        for sink in nested_summary.sinks:
            sinks.setdefault(
                (sink.kind, sink.detail, sink.line, sink.col), set()
            ).update(sink.atoms)
        for submit in nested_summary.submits:
            submits.setdefault((submit.line, submit.col), submit)
        for call in nested_summary.calls:
            calls.setdefault((call.callee, call.line), call)
        attr_reads.update(nested_summary.attr_reads)
        param_key_reads.update(nested_summary.param_key_reads)

    return FunctionSummary(
        name=node.name,
        class_name=class_name,
        params=tuple(params),
        param_annotations=tuple(_param_annotations(node.args)),
        line=node.lineno,
        calls=tuple(
            sorted(calls.values(), key=lambda c: (c.line, c.callee))
        ),
        return_atoms=frozenset(walker.return_atoms),
        sinks=tuple(
            Sink(kind, detail, line, col, frozenset(atoms))
            for (kind, detail, line, col), atoms in sorted(sinks.items())
        ),
        submits=tuple(
            submits[slot] for slot in sorted(submits)
        ),
        attr_reads=tuple(sorted(attr_reads)),
        param_key_reads=tuple(sorted(param_key_reads)),
        nested=tuple(sorted(local_funcs)),
    )


def _spec_digest_info(
    node: ast.ClassDef,
    method: ast.FunctionDef | ast.AsyncFunctionDef,
) -> SpecClassInfo:
    fields = tuple(
        stmt.target.id
        for stmt in node.body
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name)
    )
    covered: set[str] = set()
    complete = False
    for sub in ast.walk(method):
        if isinstance(sub, ast.Attribute) and isinstance(sub.value, ast.Name):
            if sub.value.id == "self":
                covered.add(sub.attr)
        elif isinstance(sub, ast.Call):
            callee = call_name(sub)
            if callee in _ASDICT_NAMES and any(
                isinstance(a, ast.Name) and a.id == "self" for a in sub.args
            ):
                complete = True
    return SpecClassInfo(
        name=node.name,
        line=node.lineno,
        digest_method=method.name,
        fields=fields,
        covered=tuple(sorted(covered & set(fields))) if fields else tuple(sorted(covered)),
        complete=complete,
    )


_TRY_TYPES: tuple[type, ...] = (
    (ast.Try, ast.TryStar) if hasattr(ast, "TryStar") else (ast.Try,)
)


def _top_level_statements(stmts: Iterable[ast.stmt]) -> Iterator[ast.stmt]:
    """Module-level statements, descending into ``if``/``try``/``with``.

    Functions and classes behind version gates or import fallbacks
    (``try: ... except ImportError: def f(): ...``) still bind module
    names at runtime, so they belong in the project symbol table; later
    definitions win downstream, matching Python's last-binding-wins.
    """
    for stmt in stmts:
        if isinstance(stmt, ast.If):
            yield from _top_level_statements(stmt.body)
            yield from _top_level_statements(stmt.orelse)
        elif isinstance(stmt, _TRY_TYPES):
            yield from _top_level_statements(stmt.body)
            for handler in stmt.handlers:
                yield from _top_level_statements(handler.body)
            yield from _top_level_statements(stmt.orelse)
            yield from _top_level_statements(stmt.finalbody)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            yield from _top_level_statements(stmt.body)
        else:
            yield stmt


def summarize_module(source: str, module: str, relpath: str) -> ModuleSummary:
    """Reduce one module's source to a :class:`ModuleSummary`.

    Raises :class:`SyntaxError` for unparsable source — callers decide
    whether that is a finding (the rule engine already emits GRM000).
    """
    tree = ast.parse(source, filename=relpath)
    functions: list[FunctionSummary] = []
    classes: list[tuple[str, tuple[str, ...]]] = []
    class_bases: list[tuple[str, tuple[str, ...]]] = []
    spec_classes: list[SpecClassInfo] = []
    backends: list[BackendInfo] = []

    for stmt in _top_level_statements(tree.body):
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions.append(_summarize_function(stmt, class_name=None))
        elif isinstance(stmt, ast.ClassDef):
            methods: list[str] = []
            digest_method: ast.FunctionDef | ast.AsyncFunctionDef | None = None
            run_method: ast.FunctionDef | ast.AsyncFunctionDef | None = None
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods.append(item.name)
                    functions.append(
                        _summarize_function(item, class_name=stmt.name)
                    )
                    if item.name in ("cache_key", "fingerprint"):
                        digest_method = digest_method or item
                    if item.name == "run":
                        run_method = item
            classes.append((stmt.name, tuple(methods)))
            bases = tuple(
                name
                for name in (dotted_name(base) for base in stmt.bases)
                if name is not None
            )
            class_bases.append((stmt.name, bases))
            if digest_method is not None:
                spec_classes.append(_spec_digest_info(stmt, digest_method))
            if stmt.name.endswith("Backend") and run_method is not None:
                annotation = None
                for param, ann in _param_annotations(run_method.args):
                    if param != "self":
                        annotation = ann
                        break
                backends.append(
                    BackendInfo(
                        name=stmt.name,
                        line=stmt.lineno,
                        spec_annotation=annotation,
                    )
                )

    return ModuleSummary(
        module=module,
        relpath=relpath,
        imports=tuple(_collect_imports(tree, module)),
        functions=tuple(functions),
        classes=tuple(classes),
        class_bases=tuple(class_bases),
        spec_classes=tuple(spec_classes),
        backends=tuple(backends),
    )
