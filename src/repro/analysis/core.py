"""The ``gramer check`` rule engine.

A *rule* is a callable that walks one parsed module and yields
:class:`Finding`\\ s; the engine parses each file once, hands the shared
:class:`ModuleContext` to every selected rule, and filters out findings
the source suppresses with an inline comment::

    value = time.time()  # gramer: ignore[GRM102] -- wall time only

Suppressions name the rule IDs they silence (``# gramer: ignore`` with no
bracket silences every rule on that line).  They apply to the *first line*
of the flagged statement, which is where the engine anchors every finding.

Rules are registered declaratively (:func:`rule`) into a process-wide
registry, keyed by a stable ID (``GRM<family><nn>``); families group IDs
by the invariant they protect (determinism, cache purity, spec
immutability, units hygiene, cross-process safety).  The engine itself is
repo-agnostic — everything GRAMER-specific lives in
:mod:`repro.analysis.rules`.
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator

__all__ = [
    "Finding",
    "ModuleContext",
    "Rule",
    "RuleError",
    "all_rules",
    "check_paths",
    "check_source",
    "format_finding",
    "get_rule",
    "iter_python_files",
    "rule",
    "select_rules",
]

_SUPPRESS_RE = re.compile(
    r"#\s*gramer:\s*ignore(?:\[(?P<ids>[A-Za-z0-9_,\s-]*)\])?"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a file position."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)


@dataclass(frozen=True)
class ModuleContext:
    """Everything a rule may inspect about one module: path, source, AST."""

    path: Path
    source: str
    tree: ast.Module
    # Path relative to the checked root, POSIX-style, for stable matching
    # (rules that scope themselves to sub-packages match against this).
    relpath: str

    def finding(self, node: ast.AST, rule_id: str, message: str) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(
            rule_id=rule_id,
            path=str(self.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


RuleFn = Callable[[ModuleContext], Iterable[Finding]]


@dataclass(frozen=True)
class Rule:
    """A registered check: stable ID, family, one-line doc, implementation."""

    rule_id: str
    family: str
    summary: str
    fn: RuleFn

    def run(self, context: ModuleContext) -> Iterator[Finding]:
        yield from self.fn(context)


class RuleError(ValueError):
    """Raised for unknown rule IDs or duplicate registrations."""


_REGISTRY: dict[str, Rule] = {}


def rule(rule_id: str, family: str, summary: str) -> Callable[[RuleFn], RuleFn]:
    """Decorator registering ``fn`` as rule ``rule_id``."""

    def decorate(fn: RuleFn) -> RuleFn:
        if rule_id in _REGISTRY:
            raise RuleError(f"rule {rule_id!r} registered twice")
        _REGISTRY[rule_id] = Rule(
            rule_id=rule_id, family=family, summary=summary, fn=fn
        )
        return fn

    return decorate


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by ID (imports the rule modules)."""
    _load_builtin_rules()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    """Resolve one rule by ID."""
    _load_builtin_rules()
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise RuleError(
            f"unknown rule {rule_id!r}; known: {sorted(_REGISTRY)}"
        ) from None


def _load_builtin_rules() -> None:
    # Importing the package registers every built-in rule via the decorator.
    from repro.analysis import rules  # noqa: F401


def select_rules(select: Iterable[str] | None = None) -> list[Rule]:
    """Rules matching ``select`` (IDs or family names); all when ``None``."""
    rules_ = all_rules()
    if not select:
        return rules_
    wanted = {token.strip() for token in select if token.strip()}
    known_ids = {r.rule_id for r in rules_}
    known_families = {r.family for r in rules_}
    unknown = wanted - known_ids - known_families
    if unknown:
        raise RuleError(
            f"unknown rule or family {sorted(unknown)}; "
            f"rules: {sorted(known_ids)}; families: {sorted(known_families)}"
        )
    return [
        r for r in rules_ if r.rule_id in wanted or r.family in wanted
    ]


def _merge(
    out: dict[int, frozenset[str] | None],
    line: int,
    ids: frozenset[str] | None,
) -> None:
    if line in out:
        existing = out[line]
        out[line] = (
            None if existing is None or ids is None else existing | ids
        )
    else:
        out[line] = ids


def _suppressions(source: str) -> dict[int, frozenset[str] | None]:
    """Map line number -> suppressed rule IDs (``None`` = every rule).

    Parsed from real comment tokens, so a ``# gramer: ignore`` inside a
    string literal does not silence anything.  A trailing comment covers
    its own line; a *standalone* comment covers the next code line (so a
    multi-line reason can sit above the statement it excuses).
    """
    source_lines = source.splitlines()

    def comment_only(lineno: int) -> bool:  # 1-based line number
        if lineno > len(source_lines):
            return False
        stripped = source_lines[lineno - 1].strip()
        return not stripped or stripped.startswith("#")

    out: dict[int, frozenset[str] | None] = {}
    lines = iter(source.splitlines(keepends=True))
    try:
        tokens = tokenize.generate_tokens(lambda: next(lines, ""))
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if not match:
                continue
            ids_text = match.group("ids")
            if ids_text is None or not ids_text.strip():
                ids: frozenset[str] | None = None
            else:
                ids = frozenset(
                    part.strip().upper()
                    for part in ids_text.split(",")
                    if part.strip()
                )
            line = token.start[0]
            prefix = source_lines[line - 1][: token.start[1]]
            if prefix.strip():
                _merge(out, line, ids)  # trailing comment: this line
            else:
                # Standalone comment: attach to the next code line.
                target = line + 1
                while comment_only(target):
                    target += 1
                _merge(out, target, ids)
    except tokenize.TokenError:
        pass
    return out


def _is_suppressed(
    finding: Finding, suppressions: dict[int, frozenset[str] | None]
) -> bool:
    if finding.line not in suppressions:
        return False
    ids = suppressions[finding.line]
    return ids is None or finding.rule_id.upper() in ids


def check_source(
    source: str,
    path: Path | str,
    rules: Iterable[Rule] | None = None,
    relpath: str | None = None,
) -> list[Finding]:
    """Run ``rules`` over one module's source; honors suppressions."""
    path = Path(path)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Finding(
                rule_id="GRM000",
                path=str(path),
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"syntax error: {exc.msg}",
            )
        ]
    context = ModuleContext(
        path=path,
        source=source,
        tree=tree,
        relpath=relpath if relpath is not None else path.as_posix(),
    )
    suppressions = _suppressions(source)
    findings = [
        finding
        for r in (rules if rules is not None else all_rules())
        for finding in r.run(context)
        if not _is_suppressed(finding, suppressions)
    ]
    return sorted(findings, key=Finding.sort_key)


def iter_python_files(paths: Iterable[Path | str]) -> Iterator[Path]:
    """Expand files/directories into sorted ``.py`` files."""
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            yield from sorted(
                p for p in entry.rglob("*.py") if p.is_file()
            )
        elif entry.suffix == ".py":
            yield entry
        else:
            raise FileNotFoundError(f"not a Python file or directory: {entry}")


def check_paths(
    paths: Iterable[Path | str],
    select: Iterable[str] | None = None,
) -> list[Finding]:
    """Run the engine over files/trees; returns all findings, sorted."""
    rules_ = select_rules(select)
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        source = path.read_text(encoding="utf-8")
        findings.extend(
            check_source(source, path, rules=rules_, relpath=path.as_posix())
        )
    return sorted(findings, key=Finding.sort_key)


def format_finding(finding: Finding, style: str = "text") -> str:
    """Render one finding (``text`` for humans, ``github`` for CI annotations)."""
    if style == "github":
        # https://docs.github.com/actions/reference/workflow-commands
        return (
            f"::error file={finding.path},line={finding.line},"
            f"col={finding.col + 1},title={finding.rule_id}::{finding.message}"
        )
    if style == "text":
        return (
            f"{finding.path}:{finding.line}:{finding.col + 1}: "
            f"{finding.rule_id} {finding.message}"
        )
    raise ValueError(f"unknown format {style!r} (use 'text' or 'github')")
