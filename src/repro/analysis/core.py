"""The ``gramer check`` rule engine.

A *rule* is a callable that inspects code and yields
:class:`Finding`\\ s.  Rules come in two scopes:

* **module** rules walk one parsed module at a time (the original
  engine): the engine parses each file once, hands the shared
  :class:`ModuleContext` to every selected rule, and filters findings
  through inline suppressions;
* **project** rules (:func:`project_rule`) receive a whole
  :class:`~repro.analysis.project.ProjectAnalysis` — module graph,
  resolved symbol table, call graph — and may report flows that cross
  file boundaries.  :func:`check_paths` runs them once per checked
  directory.

Suppressions name the rule IDs they silence::

    value = time.time()  # gramer: ignore[GRM102] -- wall time only

``# gramer: ignore`` with no bracket silences every rule on the line.
A trailing comment covers its own line; a *standalone* comment covers the
next code line.  Coverage extends across a statement's physical lines
(multi-line calls, decorated ``def``\\ s), so the comment and the finding
anchor do not have to share a line number.  Suppressions that silence
nothing are themselves findings (``GRM002``), except entries that name
``GRM002`` explicitly — the sanctioned way to keep a speculative entry.

Results are incremental: per-file analysis records are content-addressed
in the runtime's :class:`~repro.runtime.cache.ArtifactCache` (kind
``check/file``), keyed by source hash and by a digest of the analyzer's
own sources, so a warm re-check of an unchanged tree re-parses nothing.

Rules are registered declaratively (:func:`rule`) into a process-wide
registry, keyed by a stable ID (``GRM<family><nn>``); families group IDs
by the invariant they protect.  The engine itself is repo-agnostic —
everything GRAMER-specific lives in :mod:`repro.analysis.rules`.
"""

from __future__ import annotations

import ast
import hashlib
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator

if TYPE_CHECKING:
    from repro.runtime.cache import ArtifactCache

    from .project import ProjectAnalysis

__all__ = [
    "ANALYSIS_VERSION",
    "Finding",
    "ModuleContext",
    "Rule",
    "RuleError",
    "Suppression",
    "all_rules",
    "check_paths",
    "check_source",
    "format_finding",
    "get_rule",
    "iter_python_files",
    "project_rule",
    "rule",
    "select_rules",
]

#: Bump to invalidate every cached per-file record when the engine's
#: behavior changes in a way the source digest cannot see.
ANALYSIS_VERSION = 1

#: Relative-path fragments whose files never get GRM002 findings: fixture
#: corpora deliberately carry suppressions that tests point rules at.
_GRM002_EXEMPT_PARTS = ("tests/analysis/fixtures",)

_SUPPRESS_RE = re.compile(
    r"#\s*gramer:\s*ignore(?:\[(?P<ids>[A-Za-z0-9_,\s-]*)\])?"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a file position."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)


@dataclass(frozen=True)
class ModuleContext:
    """Everything a rule may inspect about one module: path, source, AST."""

    path: Path
    source: str
    tree: ast.Module
    # Path relative to the checked root, POSIX-style, for stable matching
    # (rules that scope themselves to sub-packages match against this).
    relpath: str

    def finding(self, node: ast.AST, rule_id: str, message: str) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(
            rule_id=rule_id,
            path=str(self.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


RuleFn = Callable[..., Iterable[Finding]]


@dataclass(frozen=True)
class Rule:
    """A registered check: stable ID, family, docs, scope, implementation.

    ``scope`` is ``"module"`` (fn takes a :class:`ModuleContext`) or
    ``"project"`` (fn takes a :class:`ProjectAnalysis`).  ``explain`` is
    the long-form rationale ``gramer check --explain`` prints; it
    defaults to the rule function's docstring.
    """

    rule_id: str
    family: str
    summary: str
    fn: RuleFn
    scope: str = "module"
    explain: str = ""

    def run(self, context: ModuleContext) -> Iterator[Finding]:
        yield from self.fn(context)

    def run_project(self, project: "ProjectAnalysis") -> Iterator[Finding]:
        yield from self.fn(project)


class RuleError(ValueError):
    """Raised for unknown rule IDs or duplicate registrations."""


_REGISTRY: dict[str, Rule] = {}


def _register(
    rule_id: str,
    family: str,
    summary: str,
    fn: RuleFn,
    scope: str,
    explain: str | None,
) -> None:
    if rule_id in _REGISTRY:
        raise RuleError(f"rule {rule_id!r} registered twice")
    text = explain if explain is not None else (fn.__doc__ or "")
    _REGISTRY[rule_id] = Rule(
        rule_id=rule_id,
        family=family,
        summary=summary,
        fn=fn,
        scope=scope,
        explain=_dedent_doc(text),
    )


def _dedent_doc(text: str) -> str:
    import textwrap

    lines = text.strip("\n").splitlines()
    if not lines:
        return ""
    head, *rest = lines
    return "\n".join([head.strip(), textwrap.dedent("\n".join(rest))]).strip()


def rule(
    rule_id: str, family: str, summary: str, *, explain: str | None = None
) -> Callable[[RuleFn], RuleFn]:
    """Decorator registering ``fn`` as a module-scope rule ``rule_id``."""

    def decorate(fn: RuleFn) -> RuleFn:
        _register(rule_id, family, summary, fn, "module", explain)
        return fn

    return decorate


def project_rule(
    rule_id: str, family: str, summary: str, *, explain: str | None = None
) -> Callable[[RuleFn], RuleFn]:
    """Decorator registering ``fn`` as a project-scope rule.

    The function receives a :class:`~repro.analysis.project.ProjectAnalysis`
    covering one checked directory and yields findings anchored to any
    file in it.
    """

    def decorate(fn: RuleFn) -> RuleFn:
        _register(rule_id, family, summary, fn, "project", explain)
        return fn

    return decorate


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by ID (imports the rule modules)."""
    _load_builtin_rules()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    """Resolve one rule by ID."""
    _load_builtin_rules()
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise RuleError(
            f"unknown rule {rule_id!r}; known: {sorted(_REGISTRY)}"
        ) from None


def _load_builtin_rules() -> None:
    # Importing the package registers every built-in rule via the decorator.
    from repro.analysis import rules  # noqa: F401


def select_rules(select: Iterable[str] | None = None) -> list[Rule]:
    """Rules matching ``select`` (IDs or family names); all when ``None``."""
    rules_ = all_rules()
    if not select:
        return rules_
    wanted = {token.strip() for token in select if token.strip()}
    known_ids = {r.rule_id for r in rules_}
    known_families = {r.family for r in rules_}
    unknown = wanted - known_ids - known_families
    if unknown:
        raise RuleError(
            f"unknown rule or family {sorted(unknown)}; "
            f"rules: {sorted(known_ids)}; families: {sorted(known_families)}"
        )
    return [
        r for r in rules_ if r.rule_id in wanted or r.family in wanted
    ]


# -- suppressions -----------------------------------------------------------


@dataclass(frozen=True)
class Suppression:
    """One ``# gramer: ignore`` comment and the code lines it silences.

    ``ids`` is ``None`` for a bare ``ignore`` (silences every rule).
    ``covered`` already includes statement-span and decorator aliasing,
    so membership is a plain lookup at filter time.
    """

    line: int
    col: int
    ids: tuple[str, ...] | None
    covered: tuple[int, ...]

    def silences(self, finding: Finding) -> bool:
        if finding.line not in self.covered:
            return False
        return self.ids is None or finding.rule_id.upper() in self.ids


def _statement_units(tree: ast.Module) -> dict[int, set[int]]:
    """Map each physical line to the full line-span of its statement unit.

    A *unit* is the set of lines a suppression anywhere inside it covers:
    a simple statement's whole span (multi-line calls, long literals), a
    compound statement's header (a ``def`` signature or ``if`` condition
    wrapped across lines), and a decorated definition's decorator lines
    plus the ``def``/``class`` line itself.
    """
    units: dict[int, set[int]] = {}

    def add(start: int, end: int) -> None:
        if end <= start:
            return
        span = set(range(start, end + 1))
        for line in span:
            units.setdefault(line, set()).update(span)

    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        decorators = getattr(node, "decorator_list", None)
        if decorators:
            add(decorators[0].lineno, node.lineno)
        body = getattr(node, "body", None)
        if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
            # Compound statement: the header may wrap across lines.
            add(node.lineno, body[0].lineno - 1)
        else:
            end = getattr(node, "end_lineno", None)
            if isinstance(end, int):
                add(node.lineno, end)
    return units


def _collect_suppressions(source: str, tree: ast.Module | None) -> list[Suppression]:
    """Parse every suppression comment, with aliased line coverage.

    Parsed from real comment tokens, so a ``# gramer: ignore`` inside a
    string literal does not silence anything.  A trailing comment covers
    its own line; a *standalone* comment covers the next code line (so a
    multi-line reason can sit above the statement it excuses).  Both are
    then widened to the statement unit the covered line belongs to.
    """
    source_lines = source.splitlines()
    units = _statement_units(tree) if tree is not None else {}

    def comment_only(lineno: int) -> bool:  # 1-based line number
        if lineno > len(source_lines):
            return False
        stripped = source_lines[lineno - 1].strip()
        return not stripped or stripped.startswith("#")

    out: list[Suppression] = []
    lines = iter(source.splitlines(keepends=True))
    try:
        tokens = tokenize.generate_tokens(lambda: next(lines, ""))
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if not match:
                continue
            ids_text = match.group("ids")
            if ids_text is None or not ids_text.strip():
                ids: tuple[str, ...] | None = None
            else:
                ids = tuple(
                    sorted(
                        part.strip().upper()
                        for part in ids_text.split(",")
                        if part.strip()
                    )
                )
            line = token.start[0]
            prefix = source_lines[line - 1][: token.start[1]]
            if prefix.strip():
                base = line  # trailing comment: this line
            else:
                # Standalone comment: attach to the next code line.
                base = line + 1
                while comment_only(base):
                    base += 1
            covered: set[int] = {base}
            covered |= units.get(base, set())
            out.append(
                Suppression(
                    line=line,
                    col=token.start[1],
                    ids=ids,
                    covered=tuple(sorted(covered)),
                )
            )
    except tokenize.TokenError:
        pass
    return out


def _filter_findings(
    findings: Iterable[Finding], suppressions: list[Suppression]
) -> tuple[list[Finding], set[int]]:
    """Drop suppressed findings; return survivors + used comment lines."""
    kept: list[Finding] = []
    used: set[int] = set()
    for finding in findings:
        matched = False
        for entry in suppressions:
            if entry.silences(finding):
                matched = True
                used.add(entry.line)
        if not matched:
            kept.append(finding)
    return kept, used


def _grm002_exempt(relpath: str) -> bool:
    return any(part in relpath for part in _GRM002_EXEMPT_PARTS)


def _unused_suppression_findings(
    path: str, suppressions: list[Suppression], used: set[int]
) -> list[Finding]:
    """Synthesize GRM002 findings for entries that silenced nothing.

    GRM002 findings are never themselves suppressible — a bare unused
    entry would otherwise silence its own report.  Listing ``GRM002``
    in the bracket is the explicit acknowledgment that keeps an entry.
    """
    out: list[Finding] = []
    for entry in suppressions:
        if entry.line in used:
            continue
        if entry.ids is not None and "GRM002" in entry.ids:
            continue
        label = f"ignore[{', '.join(entry.ids)}]" if entry.ids else "ignore"
        out.append(
            Finding(
                rule_id="GRM002",
                path=path,
                line=entry.line,
                col=entry.col,
                message=(
                    f"unused suppression: {label} silences nothing on the "
                    "lines it covers — remove it, or acknowledge it with "
                    "GRM002 in the bracket if it must stay"
                ),
            )
        )
    return out


# -- per-file analysis ------------------------------------------------------


@dataclass(frozen=True)
class FileRecord:
    """Cached module-scope result for one file.

    ``findings`` are already suppression-filtered; ``suppressions`` and
    ``used`` travel along so the project pass and GRM002 synthesis can
    finish the job without re-reading the file.
    """

    path: str
    relpath: str
    findings: tuple[Finding, ...]
    suppressions: tuple[Suppression, ...]
    used: tuple[int, ...]


def _analyze_source(
    source: str,
    path: Path | str,
    rules: Iterable[Rule],
    relpath: str | None = None,
) -> FileRecord:
    """Run module-scope rules over one source; no GRM002 synthesis yet."""
    path = Path(path)
    rel = relpath if relpath is not None else path.as_posix()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        finding = Finding(
            rule_id="GRM000",
            path=str(path),
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            message=f"syntax error: {exc.msg}",
        )
        return FileRecord(
            path=str(path),
            relpath=rel,
            findings=(finding,),
            suppressions=(),
            used=(),
        )
    context = ModuleContext(path=path, source=source, tree=tree, relpath=rel)
    suppressions = _collect_suppressions(source, tree)
    raw = [
        finding
        for r in rules
        if r.scope == "module"
        for finding in r.run(context)
    ]
    kept, used = _filter_findings(raw, suppressions)
    return FileRecord(
        path=str(path),
        relpath=rel,
        findings=tuple(sorted(kept, key=Finding.sort_key)),
        suppressions=tuple(suppressions),
        used=tuple(sorted(used)),
    )


def check_source(
    source: str,
    path: Path | str,
    rules: Iterable[Rule] | None = None,
    relpath: str | None = None,
) -> list[Finding]:
    """Run module-scope ``rules`` over one module's source.

    Honors suppressions and reports unused ones (GRM002) when that rule
    is among ``rules``.  Project-scope rules are skipped — they need a
    :class:`~repro.analysis.project.ProjectAnalysis`, built by
    :func:`check_paths` over directories.
    """
    rules_ = list(rules) if rules is not None else all_rules()
    record = _analyze_source(source, path, rules_, relpath)
    findings = list(record.findings)
    if any(r.rule_id == "GRM002" for r in rules_) and not _grm002_exempt(
        record.relpath
    ):
        findings.extend(
            _unused_suppression_findings(
                record.path, list(record.suppressions), set(record.used)
            )
        )
    return sorted(findings, key=Finding.sort_key)


def iter_python_files(paths: Iterable[Path | str]) -> Iterator[Path]:
    """Expand files/directories into sorted ``.py`` files."""
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            yield from sorted(
                p for p in entry.rglob("*.py") if p.is_file()
            )
        elif entry.suffix == ".py":
            yield entry
        else:
            raise FileNotFoundError(f"not a Python file or directory: {entry}")


def _file_record_key(
    relpath: str, path: str, source_bytes: bytes, rule_ids: list[str]
) -> dict[str, Any]:
    from .project import analysis_digest

    return {
        "relpath": relpath,
        "path": path,
        "sha256": hashlib.sha256(source_bytes).hexdigest(),
        "rules": rule_ids,
        "analysis_digest": analysis_digest(),
        "analysis_version": ANALYSIS_VERSION,
    }


def _analyze_file_worker(
    path_str: str, relpath: str, rule_ids: tuple[str, ...]
) -> FileRecord:
    """Pool worker: module-scope analysis of one file (top-level, picklable)."""
    rules_ = [get_rule(rule_id) for rule_id in rule_ids]
    source = Path(path_str).read_text(encoding="utf-8")
    return _analyze_source(source, Path(path_str), rules_, relpath)


def check_paths(
    paths: Iterable[Path | str],
    select: Iterable[str] | None = None,
    *,
    project: bool = True,
    use_cache: bool = True,
    cache: "ArtifactCache | None" = None,
    jobs: int = 1,
    only: Iterable[Path | str] | None = None,
) -> list[Finding]:
    """Run the engine over files/trees; returns all findings, sorted.

    Module-scope rules run per file, with each file's record cached
    content-addressed (``use_cache``/``cache``); project-scope rules run
    once per *directory* argument over a
    :class:`~repro.analysis.project.ProjectAnalysis` of that tree.
    ``jobs > 1`` fans cold per-file analysis out across a process pool.
    ``only`` restricts *reported* findings to the given files while the
    project pass still sees the whole tree (``gramer check --changed``).
    """
    rules_ = select_rules(select)
    module_rules = [r for r in rules_ if r.scope == "module"]
    project_rules = [r for r in rules_ if r.scope == "project"]
    grm002 = any(r.rule_id == "GRM002" for r in rules_)
    module_rule_ids = tuple(sorted(r.rule_id for r in module_rules))

    cache_obj: "ArtifactCache | None" = cache
    if cache_obj is None and use_cache:
        from repro.runtime.cache import default_cache

        cache_obj = default_cache()

    path_args = [Path(entry) for entry in paths]
    files = list(iter_python_files(path_args))

    # -- module pass (incremental, optionally parallel) ---------------------
    # Keyed by resolved absolute path so project findings (whose paths come
    # from a resolved ProjectAnalysis root) match records for as-given
    # relative arguments; records keep the as-given path for reporting.
    records: dict[str, FileRecord] = {}
    pending: list[tuple[Path, str, dict[str, Any]]] = []
    for path in files:
        relpath = path.as_posix()
        key: dict[str, Any] = {}
        if cache_obj is not None:
            key = _file_record_key(
                relpath, str(path), path.read_bytes(), list(module_rule_ids)
            )
            hit, value = cache_obj.lookup("check/file", key)
            if hit and isinstance(value, FileRecord):
                records[str(path.resolve())] = value
                continue
        pending.append((path, relpath, key))

    fresh: list[tuple[FileRecord, dict[str, Any]]]
    if jobs > 1 and len(pending) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [
                (
                    pool.submit(
                        _analyze_file_worker, str(path), relpath, module_rule_ids
                    ),
                    key,
                )
                for path, relpath, key in pending
            ]
            fresh = [(future.result(), key) for future, key in futures]
    else:
        fresh = [
            (_analyze_file_worker(str(path), relpath, module_rule_ids), key)
            for path, relpath, key in pending
        ]
    for record, key in fresh:
        if cache_obj is not None and key:
            cache_obj.store("check/file", key, record)
        records[str(Path(record.path).resolve())] = record

    findings: list[Finding] = []
    used: dict[str, set[int]] = {
        resolved: set(record.used) for resolved, record in records.items()
    }
    for record in records.values():
        findings.extend(record.findings)

    # -- project pass (once per directory argument) -------------------------
    if project and project_rules:
        from .project import ProjectAnalysis

        for entry in path_args:
            if not entry.is_dir():
                continue
            analysis = ProjectAnalysis.build(entry, cache=cache_obj, jobs=jobs)
            raw = [
                finding
                for r in project_rules
                for finding in r.run_project(analysis)
            ]
            for finding in raw:
                resolved = str(Path(finding.path).resolve())
                record = records.get(resolved)
                if record is None:
                    findings.append(finding)
                    continue
                matched = False
                for suppression in record.suppressions:
                    if suppression.silences(finding):
                        matched = True
                        used[resolved].add(suppression.line)
                if not matched:
                    findings.append(finding)

    # -- unused suppressions ------------------------------------------------
    if grm002:
        for resolved, record in records.items():
            if _grm002_exempt(record.relpath):
                continue
            findings.extend(
                _unused_suppression_findings(
                    record.path,
                    list(record.suppressions),
                    used[resolved],
                )
            )

    if only is not None:
        wanted = {str(Path(entry).resolve()) for entry in only}
        findings = [
            finding
            for finding in findings
            if str(Path(finding.path).resolve()) in wanted
        ]
    return sorted(findings, key=Finding.sort_key)


def format_finding(finding: Finding, style: str = "text") -> str:
    """Render one finding (``text`` for humans, ``github`` for CI annotations)."""
    if style == "github":
        # https://docs.github.com/actions/reference/workflow-commands
        return (
            f"::error file={finding.path},line={finding.line},"
            f"col={finding.col + 1},title={finding.rule_id}::{finding.message}"
        )
    if style == "text":
        return (
            f"{finding.path}:{finding.line}:{finding.col + 1}: "
            f"{finding.rule_id} {finding.message}"
        )
    raise ValueError(f"unknown format {style!r} (use 'text' or 'github')")
