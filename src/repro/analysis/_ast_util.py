"""Small AST helpers shared by the rule modules."""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = [
    "call_name",
    "dotted_name",
    "iter_calls",
    "walk_functions",
]


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``.

    This is purely syntactic — ``np.random`` and ``numpy.random`` are
    different strings; rules list the aliases they care about.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(call: ast.Call) -> str | None:
    """Dotted name of a call's callee, else ``None``."""
    return dotted_name(call.func)


def iter_calls(tree: ast.AST) -> Iterator[ast.Call]:
    """Every call expression under ``tree``."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


def walk_functions(
    tree: ast.AST,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda]:
    """Every function-like scope under ``tree``."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            yield node
