"""Whole-program analysis: the module graph and resolved symbol table.

:meth:`ProjectAnalysis.build` walks one root directory (typically
``src/repro``), summarizes every module (:mod:`repro.analysis.summary`),
and resolves names across file boundaries: import aliases, re-export
chains, ``self.`` method calls (including single-inheritance bases), and
dotted module attributes.  The result is the substrate the GRM10xx
project rules query — see :mod:`repro.analysis.callgraph` for edges and
reachability and :mod:`repro.analysis.taint` for the interprocedural
taint fixpoint.

Summaries are content-addressed in the :class:`ArtifactCache` (kind
``check/summary``), keyed by source hash plus the analyzer's own source
digest, so a warm project pass re-parses nothing.  Cold builds can fan
out across a process pool (``jobs``): :class:`ModuleSummary` is a frozen
picklable dataclass, so workers just return summaries to the parent,
which owns the cache.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.runtime.cache import ArtifactCache

from .summary import (
    SUMMARY_VERSION,
    BackendInfo,
    FunctionSummary,
    ModuleSummary,
    SpecClassInfo,
    summarize_module,
)

__all__ = ["ProjectAnalysis", "analysis_digest"]

_digest_cache: str | None = None


def analysis_digest() -> str:
    """SHA-256 over the analyzer's own source files.

    Salting cache keys with this makes every summary and finding record
    self-invalidating: editing any rule or the engine re-checks the world
    once, then re-caches.
    """
    global _digest_cache
    if _digest_cache is None:
        package_root = Path(__file__).resolve().parent
        hasher = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            hasher.update(path.relative_to(package_root).as_posix().encode())
            hasher.update(b"\0")
            hasher.update(path.read_bytes())
            hasher.update(b"\0")
        _digest_cache = hasher.hexdigest()
    return _digest_cache


def _module_name(root: Path, path: Path, prefix: str) -> str:
    parts = list(path.relative_to(root).parts)
    parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    if prefix:
        parts = [prefix, *parts]
    return ".".join(parts)


def _summarize_worker(
    path_str: str, module: str, relpath: str
) -> tuple[str, ModuleSummary | None, str | None]:
    """Pool worker: parse + summarize one file (top-level, picklable)."""
    source = Path(path_str).read_text(encoding="utf-8")
    try:
        return module, summarize_module(source, module, relpath), None
    except SyntaxError as exc:
        return module, None, f"{exc.msg} (line {exc.lineno})"


@dataclass
class ProjectAnalysis:
    """Summaries plus cross-module name resolution for one source root."""

    root: Path
    modules: dict[str, ModuleSummary] = field(default_factory=dict)
    paths: dict[str, Path] = field(default_factory=dict)
    #: module -> parse error message, for files the pass had to skip.
    errors: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._functions: dict[str, FunctionSummary] = {}
        self._top_level: dict[str, dict[str, str]] = {}
        self._classes: dict[str, dict[str, frozenset[str]]] = {}
        self._bases: dict[str, dict[str, tuple[str, ...]]] = {}
        self._imports: dict[str, dict[str, str]] = {}
        self._graph: Any = None

    def callgraph(self) -> Any:
        """The project :class:`~repro.analysis.callgraph.CallGraph` (lazy)."""
        if self._graph is None:
            from .callgraph import CallGraph

            self._graph = CallGraph.build(self)
        return self._graph

    # -- construction -------------------------------------------------------

    @classmethod
    def build(
        cls,
        root: Path | str,
        *,
        cache: ArtifactCache | None = None,
        jobs: int = 1,
    ) -> "ProjectAnalysis":
        """Summarize every ``.py`` file under ``root`` and index symbols."""
        root = Path(root).resolve()
        prefix = root.name if (root / "__init__.py").is_file() else ""
        project = cls(root=root)

        work: list[tuple[Path, str, str, dict[str, Any]]] = []
        for path in sorted(p for p in root.rglob("*.py") if p.is_file()):
            module = _module_name(root, path, prefix)
            relpath = path.relative_to(root).as_posix()
            source_bytes = path.read_bytes()
            key = {
                "relpath": relpath,
                "sha256": hashlib.sha256(source_bytes).hexdigest(),
                "summary_version": SUMMARY_VERSION,
                "analysis_digest": analysis_digest(),
            }
            if cache is not None:
                hit, value = cache.lookup("check/summary", key)
                if hit and isinstance(value, tuple) and len(value) == 2:
                    summary, error = value
                    project._admit(module, path, summary, error)
                    continue
            work.append((path, module, relpath, key))

        results: list[
            tuple[str, ModuleSummary | None, str | None, Path, dict[str, Any]]
        ]
        if jobs > 1 and len(work) > 1:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=jobs) as pool:
                futures = [
                    (
                        pool.submit(_summarize_worker, str(path), module, relpath),
                        path,
                        key,
                    )
                    for path, module, relpath, key in work
                ]
                results = [
                    (*future.result(), path, key) for future, path, key in futures
                ]
        else:
            results = [
                (*_summarize_worker(str(path), module, relpath), path, key)
                for path, module, relpath, key in work
            ]

        for module, summary, error, path, key in results:
            if cache is not None:
                cache.store("check/summary", key, (summary, error))
            project._admit(module, path, summary, error)
        return project

    def _admit(
        self,
        module: str,
        path: Path,
        summary: ModuleSummary | None,
        error: str | None,
    ) -> None:
        self.paths[module] = path
        if summary is None:
            self.errors[module] = error or "unparsable"
            return
        self.modules[module] = summary
        self._imports[module] = summary.imports_dict()
        self._classes[module] = summary.class_methods()
        self._bases[module] = dict(summary.class_bases)
        top: dict[str, str] = {}
        for fn in summary.functions:
            key = f"{module}:{fn.qualname}"
            self._functions[key] = fn
            if fn.class_name is None:
                top[fn.name] = key
        self._top_level[module] = top

    # -- lookups ------------------------------------------------------------

    def functions(self) -> Iterator[tuple[str, str, FunctionSummary]]:
        """Yield ``(fn_key, module, summary)`` for every known function."""
        for key, fn in self._functions.items():
            yield key, key.split(":", 1)[0], fn

    def function(self, key: str) -> FunctionSummary | None:
        return self._functions.get(key)

    def module_of(self, key: str) -> str:
        return key.split(":", 1)[0]

    def path_of(self, key_or_module: str) -> Path:
        return self.paths[key_or_module.split(":", 1)[0]]

    def backends(self) -> Iterator[tuple[str, BackendInfo]]:
        for module, summary in self.modules.items():
            for backend in summary.backends:
                yield module, backend

    def spec_classes(self) -> Iterator[tuple[str, SpecClassInfo]]:
        for module, summary in self.modules.items():
            for spec in summary.spec_classes:
                yield module, spec

    def spec_class(self, name: str) -> tuple[str, SpecClassInfo] | None:
        """Find a spec class by bare name anywhere in the project."""
        tail = name.rsplit(".", 1)[-1]
        for module, spec in self.spec_classes():
            if spec.name == tail:
                return module, spec
        return None

    # -- name resolution ----------------------------------------------------

    def resolve_call(
        self, module: str, callee: str, class_name: str | None = None
    ) -> str | None:
        """Resolve a callee *as written* in ``module`` to a function key.

        Returns ``None`` for anything that cannot be pinned to a project
        function — builtins, third-party calls, methods on arbitrary
        expressions.  Unresolved calls contribute **no** taint, so every
        finding downstream of this is spelled out end to end.
        """
        if module not in self.modules:
            return None
        if callee.startswith("self."):
            rest = callee[len("self."):]
            if "." in rest or class_name is None:
                return None
            return self._resolve_method(module, class_name, rest, depth=0)

        parts = callee.split(".")
        local = self._top_level.get(module, {})
        if len(parts) == 1:
            if callee in local:
                return local[callee]
            if callee in self._classes.get(module, {}):
                return self._resolve_method(module, callee, "__init__", depth=0)
            target = self._imports.get(module, {}).get(callee)
            if target is not None:
                return self._resolve_dotted(target, depth=0)
            return None

        head, rest = parts[0], parts[1:]
        target = self._imports.get(module, {}).get(head)
        if target is not None:
            return self._resolve_dotted(".".join([target, *rest]), depth=0)
        if head in self._classes.get(module, {}) and len(rest) == 1:
            # ``SomeClass.method`` referenced without an import.
            return self._resolve_method(module, head, rest[0], depth=0)
        return None

    _MAX_DEPTH = 6

    def _resolve_dotted(self, dotted: str, depth: int) -> str | None:
        if depth > self._MAX_DEPTH:
            return None
        parts = dotted.split(".")
        for split in range(len(parts), 0, -1):
            prefix = ".".join(parts[:split])
            if prefix not in self.modules:
                continue
            rest = parts[split:]
            if not rest:
                return None  # a module object, not a callable
            if len(rest) == 1:
                name = rest[0]
                if name in self._top_level[prefix]:
                    return self._top_level[prefix][name]
                if name in self._classes[prefix]:
                    return self._resolve_method(prefix, name, "__init__", depth + 1)
                reexport = self._imports[prefix].get(name)
                if reexport is not None:
                    return self._resolve_dotted(reexport, depth + 1)
                return None
            if len(rest) == 2 and rest[0] in self._classes[prefix]:
                return self._resolve_method(prefix, rest[0], rest[1], depth + 1)
            reexport = self._imports[prefix].get(rest[0])
            if reexport is not None:
                return self._resolve_dotted(
                    ".".join([reexport, *rest[1:]]), depth + 1
                )
            return None
        return None

    def _resolve_method(
        self, module: str, class_name: str, method: str, depth: int
    ) -> str | None:
        if depth > self._MAX_DEPTH:
            return None
        methods = self._classes.get(module, {}).get(class_name)
        if methods is None:
            return None
        if method in methods:
            return f"{module}:{class_name}.{method}"
        # Walk declared bases (single level of name resolution each).
        for base in self._bases.get(module, {}).get(class_name, ()):
            base_tail = base.rsplit(".", 1)[-1]
            if base_tail in self._classes.get(module, {}):
                found = self._resolve_method(module, base_tail, method, depth + 1)
                if found is not None:
                    return found
                continue
            target = self._imports.get(module, {}).get(base.split(".")[0])
            if target is None:
                continue
            dotted = (
                ".".join([target, *base.split(".")[1:], method])
                if "." in base
                else f"{target}.{method}"
            )
            found = self._resolve_dotted(dotted, depth + 1)
            if found is not None:
                return found
        return None
