"""Repo-specific static analysis (``gramer check``).

An AST-walking rule engine (:mod:`~repro.analysis.core`) plus the
GRAMER-specific rule families (:mod:`~repro.analysis.rules`) protecting
the invariants the execution runtime depends on: bit-deterministic
simulation, cache purity, spec immutability, units hygiene, and
cross-process safety.  On top of the per-module rules, a whole-program
pass (:mod:`~repro.analysis.project`, :mod:`~repro.analysis.callgraph`,
:mod:`~repro.analysis.taint`) powers the GRM10xx project rules, which
track flows across file boundaries.  See ``docs/static-analysis.md``.
"""

from .core import (
    Finding,
    ModuleContext,
    Rule,
    RuleError,
    all_rules,
    check_paths,
    check_source,
    format_finding,
    get_rule,
    iter_python_files,
    project_rule,
    rule,
    select_rules,
)
from .project import ProjectAnalysis

__all__ = [
    "Finding",
    "ModuleContext",
    "ProjectAnalysis",
    "Rule",
    "RuleError",
    "all_rules",
    "check_paths",
    "check_source",
    "format_finding",
    "get_rule",
    "iter_python_files",
    "project_rule",
    "rule",
    "select_rules",
]
