"""Repo-specific static analysis (``gramer check``).

An AST-walking rule engine (:mod:`~repro.analysis.core`) plus five
GRAMER-specific rule families (:mod:`~repro.analysis.rules`) protecting
the invariants the execution runtime depends on: bit-deterministic
simulation, cache purity, spec immutability, units hygiene, and
cross-process safety.  See ``docs/static-analysis.md``.
"""

from .core import (
    Finding,
    ModuleContext,
    Rule,
    RuleError,
    all_rules,
    check_paths,
    check_source,
    format_finding,
    get_rule,
    iter_python_files,
    rule,
    select_rules,
)

__all__ = [
    "Finding",
    "ModuleContext",
    "Rule",
    "RuleError",
    "all_rules",
    "check_paths",
    "check_source",
    "format_finding",
    "get_rule",
    "iter_python_files",
    "rule",
    "select_rules",
]
