"""Interprocedural forward taint over the project call graph.

The per-module summaries reduce every function's return value and every
sink argument to *atoms* — ``src:<kind>`` for a taint origin observed
locally, ``call:<callee>`` for a value produced by a call whose meaning
depends on who the callee is.  This module closes the loop: a fixpoint
computes the set of project functions whose **return value** carries a
given taint kind, and :func:`sink_taint` decides whether a particular
sink's atom set is tainted — either directly or through any chain of
resolved calls.

Everything here under-approximates on purpose.  A ``call:`` atom that
:class:`~repro.analysis.callgraph.CallGraph` cannot resolve to a project
function expands to *nothing*: the analysis only ever claims a flow it
can name function by function, which is what keeps the GRM10xx rules
silent on the live tree while still catching laundering through any
number of real, resolvable helpers.
"""

from __future__ import annotations

from .callgraph import CallGraph
from .project import ProjectAnalysis

__all__ = ["TAINT_KINDS", "sink_taint", "tainted_returns"]

#: The taint kinds the determinism rule tracks, with human labels used
#: in finding messages.
TAINT_KINDS = {
    "wallclock": "wall-clock time",
    "rng": "an unseeded RNG",
    "env": "the process environment",
    "graph": "a whole-graph object",
}


def tainted_returns(
    project: ProjectAnalysis, graph: CallGraph, kind: str
) -> dict[str, tuple[str, ...]]:
    """Functions whose return value carries ``src:<kind>`` taint.

    Returns ``fn_key -> witness chain``: the sequence of function keys
    from the queried function down to the one that touches the source
    directly (so ``("m:outer", "m:mid", "helpers:stamp")`` reads
    "outer returns mid() returns stamp() returns the source").
    """
    source_atom = f"src:{kind}"
    tainted: dict[str, tuple[str, ...]] = {}
    # Seed: functions returning the source directly.
    pending: list[tuple[str, object]] = []
    for key, _module, fn in project.functions():
        if source_atom in fn.return_atoms:
            tainted[key] = (key,)
    # Propagate through return-position calls until nothing changes.
    # The graph is small (one repo), so a simple fixpoint is plenty.
    del pending
    changed = True
    while changed:
        changed = False
        for key, _module, fn in project.functions():
            if key in tainted:
                continue
            for callee_text in fn.return_calls:
                target = graph.resolve_atom(key, callee_text)
                if target is not None and target in tainted:
                    tainted[key] = (key, *tainted[target])
                    changed = True
                    break
    return tainted


def sink_taint(
    graph: CallGraph,
    fn_key: str,
    atoms: frozenset[str],
    kind: str,
    tainted: dict[str, tuple[str, ...]],
) -> tuple[str, ...] | None:
    """Witness chain if ``atoms`` (observed inside ``fn_key``) carry ``kind``.

    ``()`` means the source is read in ``fn_key`` itself; a non-empty
    chain names the resolved functions the value flowed through.
    ``None`` means the atom set is clean for this kind.
    """
    if f"src:{kind}" in atoms:
        return ()
    best: tuple[str, ...] | None = None
    for atom in sorted(atoms):
        if not atom.startswith("call:"):
            continue
        target = graph.resolve_atom(fn_key, atom[len("call:"):])
        if target is None:
            continue
        chain = tainted.get(target)
        if chain is not None and (best is None or len(chain) < len(best)):
            best = chain
    return best


def describe_chain(chain: tuple[str, ...] | list[str]) -> str:
    """Render a witness chain for a finding message."""
    return " -> ".join(key.replace(":", "::", 1) for key in chain)
