"""Table IV — clock rate with and without ancestor buffers / compaction.

Produced by the calibrated critical-path model (see
``repro.accel.clockmodel``): the structural claim is that dedicated ancestor
buffers raise the clock (~+23%) and record compaction raises it much
further (~+116%).
"""

from __future__ import annotations

from repro.accel.clockmodel import table4_design_points

from .harness import format_table
from .paper_data import TABLE4_CLOCK_MHZ

__all__ = ["run", "main"]


def run() -> list[dict]:
    """One row per design point, model vs paper."""
    grid = table4_design_points()
    rows = []
    for design, model_row in grid.items():
        paper_row = TABLE4_CLOCK_MHZ[design]
        rows.append(
            {
                "design": design,
                "model": model_row,
                "paper": paper_row,
            }
        )
    return rows


def main() -> str:
    """Render Table IV (model | paper)."""
    rows = run()
    table = format_table(
        ["Design", "CF", "FSM", "MC"],
        [
            [
                r["design"],
                *(
                    f"{r['model'][app]:.0f}MHz ({r['paper'][app]:.0f}MHz)"
                    for app in ("CF", "FSM", "MC")
                ),
            ]
            for r in rows
        ],
    )
    return "Table IV — clock rate, model (paper)\n" + table


if __name__ == "__main__":
    print(main())
