"""Fig. 12 — effectiveness of the locality-aware memory hierarchy.

On P2P with only 10% of the graph data on chip, three designs are compared
across seven application variants:

* **Uniform LRU** — one undifferentiated 4-way LRU cache,
* **Static + LRU** — LAMH's high/low split, LRU in the low half,
* **LAMH** — the full design with the locality-preserved policy (Eq. 2).

Reported per variant: vertex/edge on-chip hit ratios (a) and performance
normalised to Uniform LRU (b).  The paper sees +13–37pp vertex hit ratio
for Static+LRU over Uniform (1.60–2.95× speedup) and a further +1–6pp /
1.06–1.39× for LAMH.
"""

from __future__ import annotations

from repro.accel.sim import make_simulator

from . import datasets
from .harness import build_app, experiment_config, format_table

__all__ = ["run", "main", "FIG12_APPS", "FIG12_VARIANTS"]

FIG12_APPS = ["3-CF", "4-CF", "5-CF", "3-MC", "4-MC", "FSM"]
FIG12_VARIANTS = [
    ("Uniform LRU", "uniform"),
    ("Static + LRU", "lru"),
    ("LAMH", "locality"),
]


def run(
    scale: str = "small",
    graph_name: str = "p2p",
    memory_fraction: float = 0.10,
    apps: list[str] | None = None,
) -> list[dict]:
    """One row per (app, variant) with hit ratios and cycles."""
    apps = apps if apps is not None else list(FIG12_APPS)
    rows = []
    for app_name in apps:
        probe_app = build_app(app_name, graph_name, scale)
        graph = (
            datasets.load_labeled(graph_name, scale)
            if probe_app.needs_labels
            else datasets.load(graph_name, scale)
        )
        total_entries = max(
            64, int(memory_fraction * (graph.num_vertices + len(graph.neighbors)))
        )
        for label, policy in FIG12_VARIANTS:
            app = build_app(app_name, graph_name, scale)
            config = experiment_config(
                onchip_entries=total_entries, low_policy=policy
            )
            result = make_simulator(graph, config).run(app)
            rows.append(
                {
                    "app": app_name,
                    "variant": label,
                    "vertex_hit": result.stats.vertex_hit_ratio,
                    "edge_hit": result.stats.edge_hit_ratio,
                    "cycles": result.cycles,
                }
            )
    # Normalise performance to Uniform LRU per app.
    baseline = {
        r["app"]: r["cycles"] for r in rows if r["variant"] == "Uniform LRU"
    }
    for r in rows:
        r["normalized_performance"] = baseline[r["app"]] / r["cycles"]
    return rows


def main(scale: str = "small") -> str:
    """Render both panels of Fig. 12."""
    rows = run(scale)
    hit_table = format_table(
        ["App", "Variant", "Vertex hit", "Edge hit", "Perf vs Uniform"],
        [
            [
                r["app"],
                r["variant"],
                f"{r['vertex_hit']:.3f}",
                f"{r['edge_hit']:.3f}",
                f"{r['normalized_performance']:.2f}x",
            ]
            for r in rows
        ],
    )
    return (
        "Fig. 12 — LAMH vs Static+LRU vs Uniform LRU "
        "(P2P proxy, 10% on-chip memory)\n" + hit_table
    )


if __name__ == "__main__":
    print(main())
