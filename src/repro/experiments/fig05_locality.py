"""Fig. 5 — extension locality of top-5% vertices and edges per iteration.

The paper traces all memory requests of MC per iteration and reports the
access share of the top-5% vertices (a) and edges (b) on Citeseer, P2P,
Astro, Mico: vertex share starts ≤ 30% and climbs toward 94%; edge share
starts at exactly 5% (every edge streamed once for 2-vertex embeddings) and
climbs toward 88%.
"""

from __future__ import annotations

from repro.locality.analysis import locality_curve
from repro.locality.trace import IterationTrace
from repro.mining.apps import MotifCounting
from repro.mining.engine import run_dfs

from . import datasets
from .harness import format_table

__all__ = ["run", "main", "FIG5_GRAPHS"]

FIG5_GRAPHS = ["citeseer", "p2p", "astro", "mico"]


def run(scale: str = "small", max_size: int = 4, fraction: float = 0.05) -> list[dict]:
    """One row per graph with per-iteration access shares."""
    rows = []
    for graph_name in FIG5_GRAPHS:
        graph = datasets.load(graph_name, scale)
        trace = IterationTrace()
        run_dfs(graph, MotifCounting(max_size), mem=trace)
        curve = locality_curve(graph, trace, fraction)
        rows.append(
            {
                "graph": graph_name,
                "fraction": fraction,
                "vertex_share": dict(curve.vertex_share_by_iteration),
                "edge_share": dict(curve.edge_share_by_iteration),
            }
        )
    return rows


def main(scale: str = "small") -> str:
    """Render both panels of Fig. 5 as text."""
    rows = run(scale)
    iterations = sorted(rows[0]["vertex_share"])
    lines = []
    for key, title in (
        ("vertex_share", "(a) vertex access share of top 5%"),
        ("edge_share", "(b) edge access share of top 5%"),
    ):
        table = format_table(
            ["Graph"] + [f"iter {i}" for i in iterations],
            [
                [r["graph"]]
                + [f"{r[key].get(i, 0.0):.1%}" for i in iterations]
                for r in rows
            ],
        )
        lines.append(f"Fig. 5 {title}\n{table}")
    return "\n\n".join(lines)


if __name__ == "__main__":
    print(main())
