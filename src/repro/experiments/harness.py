"""Shared experiment harness.

Every ``figNN_*``/``tableN_*`` module produces plain-dict rows through the
helpers here: one function runs a (system, app, graph) cell, one formats
aligned text tables, one serialises results to JSON for EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.accel.config import GramerConfig
from repro.accel.energy import EnergyParams, cpu_energy, gramer_energy
from repro.accel.sim import GramerSimulator, SimResult
from repro.baselines.cpu import CPUConfig
from repro.baselines.fractal import BaselineResult, FractalModel
from repro.baselines.rstream import RStreamModel
from repro.graph.csr import CSRGraph
from repro.mining.apps import make_app
from repro.mining.apps.base import Application

from . import datasets

__all__ = [
    "CellResult",
    "experiment_config",
    "build_app",
    "run_gramer_cell",
    "run_fractal_cell",
    "run_rstream_cell",
    "format_table",
    "format_seconds",
    "save_results",
]


@dataclass(frozen=True)
class CellResult:
    """One (system, app, graph) measurement."""

    system: str
    app: str
    graph: str
    seconds: float | None  # modeled runtime; None = failed (N/A)
    energy_j: float | None
    wall_seconds: float  # host time spent producing the cell
    detail: dict


@dataclass(frozen=True)
class SystemOverheads:
    """Fixed per-run costs, scaled with the proxy preset.

    The paper's Table III timing includes each system's fixed costs:
    GRAMER's "FPGA setup time and data transfer overheads between CPU and
    FPGA", Fractal's multi-thread task management (Spark setup excluded),
    and RStream's stream/table initialisation.  The absolute values below
    are scaled to the proxies so the *ratios* between fixed costs and
    mining work match the paper's regime (e.g. Citeseer: GRAMER 9.9 ms vs
    Fractal 150 ms vs RStream 11 ms — overhead-dominated on all three).
    """

    gramer_setup_s: float
    fractal_task_s: float
    rstream_startup_s: float
    pcie_bandwidth_bytes_per_s: float = 12e9  # PCIe gen3 x16 effective


SCALE_OVERHEADS: dict[str, SystemOverheads] = {
    "tiny": SystemOverheads(1.0e-4, 1.5e-3, 1.2e-4),
    "small": SystemOverheads(3.0e-4, 4.5e-3, 3.5e-4),
    "full": SystemOverheads(1.0e-3, 1.5e-2, 1.1e-3),
}


def experiment_config(**overrides) -> GramerConfig:
    """The default accelerator configuration for all experiments."""
    base = dict(onchip_entries=datasets.EXPERIMENT_ONCHIP_ENTRIES)
    base.update(overrides)
    return GramerConfig(**base)


def build_app(app_name: str, graph_name: str, scale: str) -> Application:
    """Instantiate a Table III application variant for one dataset."""
    if app_name.upper().startswith("FSM"):
        threshold = datasets.fsm_threshold(graph_name, scale)
        return make_app(f"FSM-{threshold}")
    return make_app(app_name)


def _graph_for(app: Application, graph_name: str, scale: str) -> CSRGraph:
    if app.needs_labels:
        return datasets.load_labeled(graph_name, scale)
    return datasets.load(graph_name, scale)


def run_gramer_cell(
    app_name: str,
    graph_name: str,
    scale: str = "small",
    config: GramerConfig | None = None,
    energy_params: EnergyParams | None = None,
) -> CellResult:
    """Simulate GRAMER for one Table III cell."""
    app = build_app(app_name, graph_name, scale)
    graph = _graph_for(app, graph_name, scale)
    cfg = config if config is not None else experiment_config()
    overheads = SCALE_OVERHEADS[scale]
    start = time.perf_counter()
    result: SimResult = GramerSimulator(graph, cfg).run(app)
    wall = time.perf_counter() - start
    energy = gramer_energy(result.stats, cfg, energy_params)
    # Table III's GRAMER time "includes the FPGA setup time and data
    # transfer overheads between CPU and FPGA" (§VI-B).
    graph_bytes = (graph.num_vertices + 1 + len(graph.neighbors)) * 8
    fixed = overheads.gramer_setup_s + (
        graph_bytes / overheads.pcie_bandwidth_bytes_per_s
    )
    # The FPGA burns its static power through the setup/transfer period
    # too, and the paper's energy comparison spans the same total runtime
    # its Table III reports — charge it on the same basis.
    static_w = (energy_params or EnergyParams()).static_w
    total_energy_j = energy.total_j + static_w * fixed
    return CellResult(
        system="GRAMER",
        app=app_name,
        graph=graph_name,
        seconds=result.seconds + fixed,
        energy_j=total_energy_j,
        wall_seconds=wall,
        detail={
            "cycles": result.cycles,
            "execution_seconds": result.seconds,
            "fixed_overhead_seconds": fixed,
            "vertex_hit_ratio": result.stats.vertex_hit_ratio,
            "edge_hit_ratio": result.stats.edge_hit_ratio,
            "steals": result.stats.steals,
            "embeddings": result.mining.embeddings_by_size,
            "summary": result.mining.summary,
        },
    )


def _run_baseline(model, app_name, graph_name, scale) -> CellResult:
    app = build_app(app_name, graph_name, scale)
    graph = _graph_for(app, graph_name, scale)
    start = time.perf_counter()
    result: BaselineResult = model.run(graph, app)
    wall = time.perf_counter() - start
    seconds = result.seconds if result.available else None
    return CellResult(
        system=model.name,
        app=app_name,
        graph=graph_name,
        seconds=seconds,
        energy_j=cpu_energy(seconds) if seconds is not None else None,
        wall_seconds=wall,
        detail={
            "failed": result.failed,
            "stalls": result.breakdown.stall_fractions(),
            "embeddings": result.mining.embeddings_by_size,
            "summary": result.mining.summary,
        },
    )


def run_fractal_cell(
    app_name: str,
    graph_name: str,
    scale: str = "small",
    cpu_config: CPUConfig | None = None,
) -> CellResult:
    """Run the Fractal-model baseline for one cell."""
    cfg = cpu_config if cpu_config is not None else datasets.scaled_cpu_config(scale)
    model = FractalModel(
        cfg, task_overhead_s=SCALE_OVERHEADS[scale].fractal_task_s
    )
    return _run_baseline(model, app_name, graph_name, scale)


def run_rstream_cell(
    app_name: str,
    graph_name: str,
    scale: str = "small",
    cpu_config: CPUConfig | None = None,
    max_frontier: int = 2_000_000,
) -> CellResult:
    """Run the RStream-model baseline for one cell."""
    cfg = cpu_config if cpu_config is not None else datasets.scaled_cpu_config(scale)
    model = RStreamModel(
        cfg,
        startup_overhead_s=SCALE_OVERHEADS[scale].rstream_startup_s,
        max_frontier=max_frontier,
    )
    return _run_baseline(model, app_name, graph_name, scale)


def format_seconds(seconds: float | None) -> str:
    """Table III style cell: seconds with sensible precision, or N/A."""
    if seconds is None:
        return "N/A"
    if seconds == 0:
        return "0"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.2f}s"


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Plain aligned text table."""
    cells = [[str(h) for h in headers]] + [
        [str(c) for c in row] for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for i, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def save_results(payload: dict, path: str | Path) -> None:
    """Serialise an experiment's structured results to JSON."""
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=str)
