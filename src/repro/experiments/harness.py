"""Shared experiment harness.

Every ``figNN_*``/``tableN_*`` module produces plain-dict rows through the
helpers here: one function runs a (system, app, graph) cell, one formats
aligned text tables, one serialises results to JSON for EXPERIMENTS.md.

Since the runtime refactor, cells execute through the backend registry of
:mod:`repro.runtime`: each ``run_*_cell`` helper is a thin builder that
assembles a :class:`~repro.runtime.spec.JobSpec`, routes it through
:func:`~repro.runtime.executor.run_spec` (artifact cache included), and
converts the :class:`~repro.runtime.spec.JobResult` back into the legacy
:class:`CellResult` shape the figure/table modules consume.  The cell
semantics (fixed overheads, energy accounting) live in
:mod:`repro.runtime.backends` and are re-exported here unchanged.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:
    from repro.obs.hooks import SimInstrument
    from repro.runtime.retry import RetryPolicy

from repro.accel.config import GramerConfig
from repro.accel.energy import EnergyParams
from repro.baselines.cpu import CPUConfig
from repro.runtime.backends import (  # noqa: F401  (re-exported legacy API)
    SCALE_OVERHEADS,
    SystemOverheads,
    build_app,
    experiment_config,
)
from repro.runtime.executor import run_spec
from repro.runtime.spec import JobResult, JobSpec, make_jobspec

from . import datasets

__all__ = [
    "CellResult",
    "experiment_config",
    "build_app",
    "cell_jobspec",
    "cell_from_result",
    "run_cell",
    "run_gramer_cell",
    "run_fractal_cell",
    "run_rstream_cell",
    "format_table",
    "format_seconds",
    "save_results",
]


@dataclass(frozen=True)
class CellResult:
    """One (system, app, graph) measurement."""

    system: str
    app: str
    graph: str
    seconds: float | None  # modeled runtime; None = failed (N/A)
    energy_j: float | None
    wall_seconds: float  # host time spent producing the cell
    detail: dict


def _config_overrides(config, defaults) -> dict:
    """Reduce a config dataclass to the fields that differ from defaults."""
    if config is None:
        return {}
    base = asdict(defaults)
    return {k: v for k, v in asdict(config).items() if base[k] != v}


def cell_jobspec(
    backend: str,
    app_name: str,
    graph_name: str,
    scale: str = "small",
    config: dict | None = None,
    params: dict | None = None,
) -> JobSpec:
    """Build the JobSpec for one Table III-style cell."""
    return make_jobspec(
        backend,
        app_name,
        dataset=graph_name,
        scale=scale,
        config=config,
        params=params,
    )


def cell_from_result(result: JobResult) -> CellResult:
    """Convert a runtime JobResult into the legacy CellResult shape."""
    return CellResult(
        system=result.system,
        app=result.spec.app,
        graph=result.spec.graph_name,
        seconds=result.seconds,
        energy_j=result.energy_j,
        wall_seconds=result.wall_seconds,
        detail=result.detail,
    )


def run_cell(
    spec: JobSpec,
    use_cache: bool = True,
    instrument: "SimInstrument | None" = None,
    retry: "RetryPolicy | None" = None,
) -> CellResult:
    """Execute one cell spec through the backend registry.

    ``instrument`` attaches observability hooks (and bypasses the cache
    so the simulator actually runs); see :mod:`repro.obs`.  ``retry``
    overrides the runtime's default transient-failure policy
    (:data:`repro.runtime.retry.DEFAULT_RETRY`); see docs/resilience.md.
    """
    result = run_spec(
        spec, use_cache=use_cache, instrument=instrument, retry=retry
    )
    if not result.ok:
        raise RuntimeError(f"cell {spec.label()} failed: {result.error}")
    return cell_from_result(result)


def run_gramer_cell(
    app_name: str,
    graph_name: str,
    scale: str = "small",
    config: GramerConfig | None = None,
    energy_params: EnergyParams | None = None,
    engine: str | None = None,
) -> CellResult:
    """Simulate GRAMER for one Table III cell.

    ``engine`` selects the simulation engine (``"fast"``/``"reference"``/
    ``"turbo"``); ``None`` keeps it out of the job spec so cache keys stay
    stable and the backend applies its default.  Fast and reference are
    byte-identical, so choosing between them never affects the cell's
    numbers; turbo keeps mining counts exact but its timing/energy fields
    are only tolerance-banded (tests/differential/tolerance.py) and the
    cell gets a distinct cache key.
    """
    params = {
        f"energy_{k}": v
        for k, v in _config_overrides(energy_params, EnergyParams()).items()
    }
    # energy_params with all-default fields must still reach the backend.
    if energy_params is not None and not params:
        params = {"energy_static_w": EnergyParams().static_w}
    if engine is not None:
        params["engine"] = engine
    spec = cell_jobspec(
        "gramer",
        app_name,
        graph_name,
        scale,
        config=_config_overrides(config, experiment_config()),
        params=params,
    )
    return run_cell(spec)


def run_fractal_cell(
    app_name: str,
    graph_name: str,
    scale: str = "small",
    cpu_config: CPUConfig | None = None,
) -> CellResult:
    """Run the Fractal-model baseline for one cell."""
    spec = cell_jobspec(
        "fractal",
        app_name,
        graph_name,
        scale,
        config=_config_overrides(cpu_config, datasets.scaled_cpu_config(scale)),
    )
    return run_cell(spec)


def run_rstream_cell(
    app_name: str,
    graph_name: str,
    scale: str = "small",
    cpu_config: CPUConfig | None = None,
    max_frontier: int = 2_000_000,
) -> CellResult:
    """Run the RStream-model baseline for one cell."""
    spec = cell_jobspec(
        "rstream",
        app_name,
        graph_name,
        scale,
        config=_config_overrides(cpu_config, datasets.scaled_cpu_config(scale)),
        params={"max_frontier": max_frontier} if max_frontier != 2_000_000 else None,
    )
    return run_cell(spec)


def format_seconds(seconds: float | None) -> str:
    """Table III style cell: seconds with sensible precision, or N/A."""
    if seconds is None:
        return "N/A"
    if seconds == 0:
        return "0"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1:
        return f"{seconds * 1e3:.2f}ms"
    if seconds < 60:
        return f"{seconds:.2f}s"
    # Full-scale baseline cells exceed a minute (e.g. LiveJournal ~433 s);
    # render them Table III style as whole minutes + seconds.
    minutes, rest = divmod(seconds, 60.0)
    return f"{int(minutes)}m {rest:.0f}s"


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Plain aligned text table."""
    cells = [[str(h) for h in headers]] + [
        [str(c) for c in row] for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for i, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def save_results(payload: dict, path: str | Path) -> None:
    """Serialise an experiment's structured results to JSON."""
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=str)
