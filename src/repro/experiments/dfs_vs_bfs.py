"""§V-A quantified — the DFS execution model vs the rejected BFS mode.

The paper argues BFS-style accelerators would "waste significant memory
bandwidth" on intermediate embeddings and need infeasible off-chip
capacity.  This experiment runs the DFS simulator and projects each run
onto the (bandwidth-optimistic) BFS-mode cost model, reporting the
projected slowdown and intermediate traffic per graph.
"""

from __future__ import annotations

from repro.accel.bfs_model import estimate_bfs_mode
from repro.accel.sim import make_simulator

from . import datasets
from .harness import build_app, experiment_config, format_table
from .datasets import DATASET_ORDER

__all__ = ["run", "main"]


def run(
    scale: str = "small",
    app_name: str = "4-MC",
    graphs: list[str] | None = None,
) -> list[dict]:
    """One row per graph: DFS cycles vs projected BFS-mode cycles."""
    graphs = graphs if graphs is not None else list(DATASET_ORDER)
    rows = []
    for graph_name in graphs:
        graph = datasets.load(graph_name, scale)
        app = build_app(app_name, graph_name, scale)
        result = make_simulator(graph, experiment_config()).run(app)
        estimate = estimate_bfs_mode(result)
        rows.append(
            {
                "graph": graph_name,
                "dfs_cycles": estimate.dfs_cycles,
                "bfs_cycles": estimate.bfs_cycles,
                "slowdown": estimate.slowdown,
                "intermediate_mb": estimate.intermediate_bytes / 2**20,
                "peak_level_mb": estimate.peak_level_bytes / 2**20,
            }
        )
    return rows


def main(scale: str = "small") -> str:
    """Render the comparison."""
    rows = run(scale)
    table = format_table(
        ["Graph", "DFS cycles", "BFS cycles", "BFS slowdown",
         "Intermediates", "Peak level"],
        [
            [
                r["graph"],
                str(r["dfs_cycles"]),
                str(r["bfs_cycles"]),
                f"{r['slowdown']:.2f}x",
                f"{r['intermediate_mb']:.1f}MB",
                f"{r['peak_level_mb']:.1f}MB",
            ]
            for r in rows
        ],
    )
    return (
        "§V-A quantified — DFS vs (optimistic) BFS execution mode "
        "(4-MC)\n" + table
    )


if __name__ == "__main__":
    print(main())
