"""Published numbers from the paper, used for paper-vs-measured reporting.

Transcribed from the MICRO 2020 text: Table III (running times, seconds),
Table IV (clock rates, MHz), Table II (resource utilization), and the
headline ranges.  ``None`` encodes the paper's 'N/A' (out of disk) and '-'
(not finished within 1 hour) cells, matching
:class:`repro.baselines.fractal.BaselineResult` failures.
"""

from __future__ import annotations

__all__ = [
    "TABLE3_SECONDS",
    "TABLE3_APPS",
    "TABLE4_CLOCK_MHZ",
    "TABLE2_UTILIZATION",
    "HEADLINE_SPEEDUP_RANGE",
    "HEADLINE_ENERGY_RANGE",
    "FIG12_RANGES",
    "FIG13_WORK_STEALING_RANGE",
    "paper_speedup",
]

TABLE3_APPS = ["3-CF", "4-CF", "5-CF", "3-MC", "4-MC", "FSM"]

# {app: {graph: (gramer_s, fractal_s, rstream_s)}}
TABLE3_SECONDS: dict[str, dict[str, tuple[float | None, float | None, float | None]]] = {
    "3-CF": {
        "citeseer": (0.0099, 0.15, 0.011),
        "p2p": (0.010, 0.19, 0.088),
        "astro": (0.028, 0.35, 1.56),
        "mico": (0.11, 1.24, 13.07),
        "patents": (3.09, 5.56, 62.34),
        "yt": (13.01, 34.71, 598.10),
        "lj": (17.81, 48.44, 1188.86),
    },
    "4-CF": {
        "citeseer": (0.010, 0.16, 0.020),
        "p2p": (0.011, 0.21, 0.10),
        "astro": (0.27, 1.55, 21.99),
        "mico": (6.86, 30.64, 891.44),
        "patents": (3.74, 7.81, 114.78),
        "yt": (17.30, 65.14, 1301.97),
        "lj": (30.89, 102.87, 2761.38),
    },
    "5-CF": {
        "citeseer": (0.011, 0.17, 0.023),
        "p2p": (0.012, 0.23, 0.129),
        "astro": (1.46, 7.37, 138.57),
        "mico": (270.41, 1171.47, None),
        "patents": (4.06, 9.63, 150.53),
        "yt": (24.27, 97.86, 1970.34),
        "lj": (52.89, 179.40, None),
    },
    "3-MC": {
        "citeseer": (0.031, 0.72, 0.094),
        "p2p": (0.033, 0.82, 1.90),
        "astro": (0.11, 1.48, 11.87),
        "mico": (0.36, 4.40, None),
        "patents": (4.17, 24.9, None),
        "yt": (16.25, 87.98, None),
        "lj": (29.68, 144.74, None),
    },
    "4-MC": {
        "citeseer": (0.039, 0.95, 0.17),
        "p2p": (0.093, 1.57, 5.83),
        "astro": (8.00, 47.28, None),
        "mico": (45.22, 641.89, None),
        "patents": (103.82, 778.02, None),
        "yt": (931.11, None, None),
        "lj": (1553.87, None, None),
    },
    # FSM thresholds: 2K (citeseer..mico), 20K (patents), 250K (yt, lj).
    "FSM": {
        "citeseer": (0.021, 0.27, 0.36),
        "p2p": (0.045, 0.74, 5.56),
        "astro": (2.27, 17.52, 260.13),
        "mico": (132.52, 1258.70, None),
        "patents": (1079.90, None, None),
        "yt": (297.64, 1617.56, None),
        "lj": (913.73, None, None),
    },
}

# Table IV: design point -> app -> MHz.
TABLE4_CLOCK_MHZ = {
    "w/o AB": {"CF": 80.0, "FSM": 78.0, "MC": 78.0},
    "w/ AB": {"CF": 97.0, "FSM": 96.0, "MC": 96.0},
    "w/ AB + Compaction": {"CF": 213.0, "FSM": 207.0, "MC": 207.0},
}

# Table II: app -> {resource: fraction}, plus clock (MHz).
TABLE2_UTILIZATION = {
    "CF": {"LUT": 0.2539, "Register": 0.1306, "BRAM": 0.6569, "Clock": 213.0},
    "FSM": {"LUT": 0.2553, "Register": 0.1313, "BRAM": 0.6570, "Clock": 207.0},
    "MC": {"LUT": 0.2543, "Register": 0.1310, "BRAM": 0.6570, "Clock": 207.0},
}

HEADLINE_SPEEDUP_RANGE = (1.11, 129.95)  # GRAMER vs both CPU systems
HEADLINE_ENERGY_RANGE = (5.79, 678.34)

# Fig. 12 improvement ranges reported in §VI-C (on P2P, 10% memory).
FIG12_RANGES = {
    "static_vs_uniform_vertex_hit_gain": (0.1296, 0.3744),
    "static_vs_uniform_edge_hit_gain": (0.0842, 0.2494),
    "static_vs_uniform_speedup": (1.60, 2.95),
    "lamh_vs_static_vertex_hit_gain": (0.0101, 0.0567),
    "lamh_vs_static_edge_hit_gain": (0.0111, 0.0610),
    "lamh_vs_static_speedup": (1.06, 1.39),
}

FIG13_WORK_STEALING_RANGE = (1.32, 1.90)


def paper_speedup(app: str, graph: str) -> tuple[float | None, float | None]:
    """Paper's (vs-Fractal, vs-RStream) speedups for one Table III cell."""
    gramer, fractal, rstream = TABLE3_SECONDS[app][graph]
    vs_fractal = fractal / gramer if (gramer and fractal) else None
    vs_rstream = rstream / gramer if (gramer and rstream) else None
    return vs_fractal, vs_rstream
