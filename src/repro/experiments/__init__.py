"""Experiment harness: dataset registry plus one module per table/figure."""

from . import datasets, harness, paper_data

__all__ = ["datasets", "harness", "paper_data"]
