"""Fig. 3 — CPU pipeline stalls from random vertex/edge accesses.

The paper counts (with VTune) the share of pipeline stalls attributable to
random vertex and edge accesses for CF, FSM, MC on five graphs, showing the
share rising from ~30% (cache-resident Citeseer) to ~68% (Patents).  We
reproduce the breakdown with the trace-driven CPU model: stall cycles beyond
the L1 are attributed to the access's dimension; 'others' is everything
else.
"""

from __future__ import annotations

from dataclasses import replace

from repro.baselines.cpu import CPUMemory
from repro.mining.engine import run_dfs

from . import datasets
from .harness import build_app, format_table

__all__ = ["run", "main", "FIG3_GRAPHS", "FIG3_APPS"]

FIG3_GRAPHS = ["citeseer", "p2p", "astro", "mico", "patents"]
FIG3_APPS = ["3-CF", "FSM", "3-MC"]


def run(scale: str = "small") -> list[dict]:
    """One row per (graph, app): stall shares."""
    rows = []
    # The paper's Fig. 3 trials instrument a lean native mining run, not the
    # JVM framework the Table III baseline models — so the per-candidate
    # software overhead here is the instruction cost of the mining kernel
    # itself, an order of magnitude below Fractal's framework constant.
    cpu_config = replace(
        datasets.scaled_cpu_config(scale),
        cycles_per_candidate=15,
        cycles_per_access=1,
    )
    for graph_name in FIG3_GRAPHS:
        for app_name in FIG3_APPS:
            app = build_app(app_name, graph_name, scale)
            graph = (
                datasets.load_labeled(graph_name, scale)
                if app.needs_labels
                else datasets.load(graph_name, scale)
            )
            memory = CPUMemory(graph, cpu_config)
            memory.warm()
            run_dfs(graph, app, mem=memory)
            fractions = memory.breakdown.stall_fractions()
            rows.append(
                {
                    "graph": graph_name,
                    "app": app_name,
                    "vertex_stall": fractions["vertex"],
                    "edge_stall": fractions["edge"],
                    "others": fractions["others"],
                }
            )
    return rows


def main(scale: str = "small") -> str:
    """Render the Fig. 3 breakdown as text."""
    rows = run(scale)
    table = format_table(
        ["Graph", "App", "Vertex Access", "Edge Access", "Others"],
        [
            [
                r["graph"],
                r["app"],
                f"{r['vertex_stall']:.1%}",
                f"{r['edge_stall']:.1%}",
                f"{r['others']:.1%}",
            ]
            for r in rows
        ],
    )
    return "Fig. 3 — pipeline stall breakdown (CPU model)\n" + table


if __name__ == "__main__":
    print(main())
