"""Run every paper experiment and dump text + JSON results.

Usage::

    python -m repro.experiments.run_all --scale small --out results/

Produces one text report per table/figure plus a combined ``results.json``
used to fill EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from . import (
    ablations,
    dfs_vs_bfs,
    fig02_patterns,
    fig03_stalls,
    fig05_locality,
    fig08_heuristic,
    fig11_energy,
    fig12_lamh,
    fig13_pipeline,
    fig14_sensitivity,
    table2_resources,
    table3_runtime,
    table4_clock,
)

__all__ = ["main", "EXPERIMENTS"]

EXPERIMENTS = [
    "fig02", "fig03", "fig05", "fig08", "table2", "table3",
    "fig11", "fig12", "table4", "fig13", "fig14",
    "dfs_vs_bfs", "ablations",
]


def main(argv: list[str] | None = None) -> None:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small",
                        choices=["tiny", "small", "full"])
    parser.add_argument("--out", default="results")
    parser.add_argument(
        "--only", nargs="*", default=None,
        help=f"subset of experiments to run (choices: {EXPERIMENTS})",
    )
    args = parser.parse_args(argv)
    selected = args.only if args.only else EXPERIMENTS
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)

    # Merge into prior results so partial re-runs keep the other entries.
    payload: dict[str, object] = {}
    existing = out_dir / "results.json"
    if existing.exists():
        try:
            payload = json.loads(existing.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            payload = {}
    payload["scale"] = args.scale
    reports: list[str] = []

    def record(name: str, text: str, data: object) -> None:
        print(f"\n{'=' * 72}\n{text}", flush=True)
        reports.append(text)
        payload[name] = data
        (out_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    start = time.perf_counter()
    if "fig02" in selected:
        record("fig02", fig02_patterns.main(args.scale), fig02_patterns.run(args.scale))
    if "fig03" in selected:
        record("fig03", fig03_stalls.main(args.scale), fig03_stalls.run(args.scale))
    if "fig05" in selected:
        record("fig05", fig05_locality.main(args.scale), fig05_locality.run(args.scale))
    if "fig08" in selected:
        record("fig08", fig08_heuristic.main(args.scale), fig08_heuristic.run(scale=args.scale))
    if "table2" in selected:
        record("table2", table2_resources.main(), table2_resources.run())
    table3_cells = None
    if "table3" in selected:
        table3_cells = table3_runtime.run(args.scale, verbose=True)
        rows = table3_runtime.speedup_rows(table3_cells)
        text = table3_runtime.main.__doc__  # placeholder, rebuilt below
        # Rebuild the report from the cells we already have.
        from .harness import format_seconds, format_table

        text = "Table III — running time, GRAMER vs Fractal vs RStream\n"
        text += format_table(
            ["App", "Graph", "GRAMER", "Fractal", "RStream",
             "vs Fractal (paper)", "vs RStream (paper)"],
            [
                [
                    r["app"], r["graph"],
                    format_seconds(r["gramer_s"]),
                    format_seconds(r["fractal_s"]),
                    format_seconds(r["rstream_s"]),
                    (f"{r['speedup_vs_fractal']:.2f}x" if r["speedup_vs_fractal"] else "N/A")
                    + (f" ({r['paper_speedup_vs_fractal']:.2f}x)" if r["paper_speedup_vs_fractal"] else " (N/A)"),
                    (f"{r['speedup_vs_rstream']:.2f}x" if r["speedup_vs_rstream"] else "N/A")
                    + (f" ({r['paper_speedup_vs_rstream']:.2f}x)" if r["paper_speedup_vs_rstream"] else " (N/A)"),
                ]
                for r in rows
            ],
        )
        record("table3", text, rows)
    if "fig11" in selected:
        energy = fig11_energy.run_energy(args.scale, cells=table3_cells)
        total = fig11_energy.run_total_time(args.scale)
        record(
            "fig11",
            fig11_energy.main(args.scale)
            if table3_cells is None
            else _fig11_text(energy, total),
            {"energy": energy, "total_time": total},
        )
    if "fig12" in selected:
        record("fig12", fig12_lamh.main(args.scale), fig12_lamh.run(args.scale))
    if "table4" in selected:
        record("table4", table4_clock.main(), table4_clock.run())
    if "fig13" in selected:
        record(
            "fig13",
            fig13_pipeline.main(args.scale),
            {
                "slot_sweep": fig13_pipeline.run_slot_sweep(args.scale),
                "work_stealing": fig13_pipeline.run_work_stealing(args.scale),
            },
        )
    if "fig14" in selected:
        record(
            "fig14",
            fig14_sensitivity.main(args.scale),
            {
                "tau": fig14_sensitivity.run_tau_sweep(args.scale),
                "lambda": fig14_sensitivity.run_lambda_sweep(args.scale),
            },
        )

    if "dfs_vs_bfs" in selected:
        record("dfs_vs_bfs", dfs_vs_bfs.main(args.scale), dfs_vs_bfs.run(args.scale))
    if "ablations" in selected:
        record(
            "ablations",
            ablations.main(args.scale),
            {
                "steal_selector": ablations.run_steal_selector(args.scale),
                "rank_source": ablations.run_rank_source(args.scale),
                "arbitrator": ablations.run_arbitrator_policy(args.scale),
                "partitions": ablations.run_partition_sweep(args.scale),
            },
        )

    payload["wall_seconds"] = time.perf_counter() - start
    with open(out_dir / "results.json", "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, default=str)
    print(
        f"\nCompleted {len(selected)} experiments in "
        f"{payload['wall_seconds']:.0f}s; results under {out_dir}/"
    )


def _fig11_text(energy: list[dict], total: list[dict]) -> str:
    from .harness import format_table

    energy_table = format_table(
        ["Graph", "Fractal (min/mean/max)", "RStream (min/mean/max)"],
        [
            [
                r["graph"],
                f"{r.get('fractal_min', 0):.1f}/{r.get('fractal_mean', 0):.1f}/{r.get('fractal_max', 0):.1f}x",
                (
                    f"{r['rstream_min']:.1f}/{r['rstream_mean']:.1f}/{r['rstream_max']:.1f}x"
                    if "rstream_min" in r
                    else "N/A"
                ),
            ]
            for r in energy
        ],
    )
    time_table = format_table(
        ["Graph", "Exec", "Preproc", "Preproc share", "Fractal", "RStream"],
        [
            [
                r["graph"],
                f"{r['gramer_exec_s']*1e3:.1f}ms",
                f"{r['gramer_preproc_s']*1e3:.2f}ms",
                f"{r['preproc_fraction']:.1%}",
                f"{(r['fractal_s'] or 0)*1e3:.1f}ms",
                f"{(r['rstream_s'] or 0)*1e3:.1f}ms" if r["rstream_s"] else "N/A",
            ]
            for r in total
        ],
    )
    return (
        "Fig. 11 (a) baseline energy normalised to GRAMER\n" + energy_table
        + "\n\nFig. 11 (b) total time including preprocessing (4-MC)\n"
        + time_table
    )


if __name__ == "__main__":
    main()
