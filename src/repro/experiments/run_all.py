"""Run every paper experiment and dump text + JSON results.

Usage::

    python -m repro.experiments.run_all --scale small --out results/ --jobs 4

Produces one text report per table/figure plus a combined ``results.json``
used to fill EXPERIMENTS.md.

Execution goes through :mod:`repro.runtime`: the Table III cell grid is
submitted as job specs to one :class:`~repro.runtime.Executor` (fanned out
over a process pool with ``--jobs N`` / ``GRAMER_JOBS``), the remaining
independent figure/table modules fan out over the same worker budget, and
every completed cell is memoized in the content-addressed artifact cache —
re-running only recomputes changed cells (``--no-cache`` forces fresh
results).  Output order and report contents are deterministic regardless
of worker count.
"""

from __future__ import annotations

import argparse
import json
import time
from concurrent import futures as _futures
from pathlib import Path

from repro.obs.log import console
from repro.runtime.executor import Executor, resolve_jobs

from . import (
    ablations,
    dfs_vs_bfs,
    fig02_patterns,
    fig03_stalls,
    fig05_locality,
    fig08_heuristic,
    fig11_energy,
    fig12_lamh,
    fig13_pipeline,
    fig14_sensitivity,
    table2_resources,
    table3_runtime,
    table4_clock,
)

__all__ = ["main", "EXPERIMENTS"]

EXPERIMENTS = [
    "fig02", "fig03", "fig05", "fig08", "table2", "table3",
    "fig11", "fig12", "table4", "fig13", "fig14",
    "dfs_vs_bfs", "ablations",
]


def _compute_experiment(name: str, scale: str) -> tuple[str, object]:
    """One self-contained figure/table module -> (report text, data).

    Top-level so it can cross a process-pool boundary; ``table3`` and
    ``fig11`` are orchestrated by :func:`main` instead (they share cells).
    """
    if name == "fig02":
        return fig02_patterns.main(scale), fig02_patterns.run(scale)
    if name == "fig03":
        return fig03_stalls.main(scale), fig03_stalls.run(scale)
    if name == "fig05":
        return fig05_locality.main(scale), fig05_locality.run(scale)
    if name == "fig08":
        return fig08_heuristic.main(scale), fig08_heuristic.run(scale=scale)
    if name == "table2":
        return table2_resources.main(), table2_resources.run()
    if name == "fig12":
        return fig12_lamh.main(scale), fig12_lamh.run(scale)
    if name == "table4":
        return table4_clock.main(), table4_clock.run()
    if name == "fig13":
        return fig13_pipeline.main(scale), {
            "slot_sweep": fig13_pipeline.run_slot_sweep(scale),
            "work_stealing": fig13_pipeline.run_work_stealing(scale),
        }
    if name == "fig14":
        return fig14_sensitivity.main(scale), {
            "tau": fig14_sensitivity.run_tau_sweep(scale),
            "lambda": fig14_sensitivity.run_lambda_sweep(scale),
        }
    if name == "dfs_vs_bfs":
        return dfs_vs_bfs.main(scale), dfs_vs_bfs.run(scale)
    if name == "ablations":
        return ablations.main(scale), {
            "steal_selector": ablations.run_steal_selector(scale),
            "rank_source": ablations.run_rank_source(scale),
            "arbitrator": ablations.run_arbitrator_policy(scale),
            "partitions": ablations.run_partition_sweep(scale),
        }
    raise ValueError(f"unknown experiment {name!r}")


def _compute_modules(
    names: list[str], scale: str, jobs: int
) -> dict[str, tuple[str, object]]:
    """Run independent experiment modules, optionally across a pool.

    A module that raises is captured as a failure report instead of
    aborting the run — the same isolation contract as cell jobs.
    """
    outputs: dict[str, tuple[str, object]] = {}
    if jobs <= 1 or len(names) <= 1:
        for name in names:
            try:
                outputs[name] = _compute_experiment(name, scale)
            except Exception as exc:  # noqa: BLE001 - isolate failures
                outputs[name] = (
                    f"{name} FAILED: {type(exc).__name__}: {exc}",
                    {"error": f"{type(exc).__name__}: {exc}"},
                )
        return outputs
    with _futures.ProcessPoolExecutor(max_workers=min(jobs, len(names))) as pool:
        submitted = [
            (name, pool.submit(_compute_experiment, name, scale))
            for name in names
        ]
        for name, future in submitted:
            try:
                outputs[name] = future.result()
            except Exception as exc:  # noqa: BLE001
                outputs[name] = (
                    f"{name} FAILED: {type(exc).__name__}: {exc}",
                    {"error": f"{type(exc).__name__}: {exc}"},
                )
    return outputs


def main(argv: list[str] | None = None) -> None:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small",
                        choices=["tiny", "small", "full"])
    parser.add_argument("--out", default="results")
    parser.add_argument(
        "--only", nargs="*", default=None,
        help=f"subset of experiments to run (choices: {EXPERIMENTS})",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="process-pool width for cell/module fan-out "
             "(default: $GRAMER_JOBS or 1)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="recompute every cell instead of reusing cached job results",
    )
    args = parser.parse_args(argv)
    selected = args.only if args.only else EXPERIMENTS
    jobs = resolve_jobs(args.jobs)
    executor = Executor(jobs=jobs, use_cache=not args.no_cache)
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)

    # Merge into prior results so partial re-runs keep the other entries.
    payload: dict[str, object] = {}
    existing = out_dir / "results.json"
    if existing.exists():
        try:
            payload = json.loads(existing.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            payload = {}
    payload["scale"] = args.scale
    reports: dict[str, tuple[str, object]] = {}

    start = time.perf_counter()

    # Phase 1 — the shared-cell experiments: the Table III grid goes through
    # the job executor once; fig11 reuses those cells.
    table3_cells = None
    if "table3" in selected:
        table3_cells = table3_runtime.run(
            args.scale, verbose=True, executor=executor
        )
        rows = table3_runtime.speedup_rows(table3_cells)
        from .harness import format_seconds, format_table

        text = "Table III — running time, GRAMER vs Fractal vs RStream\n"
        text += format_table(
            ["App", "Graph", "GRAMER", "Fractal", "RStream",
             "vs Fractal (paper)", "vs RStream (paper)"],
            [
                [
                    r["app"], r["graph"],
                    format_seconds(r["gramer_s"]),
                    format_seconds(r["fractal_s"]),
                    format_seconds(r["rstream_s"]),
                    (f"{r['speedup_vs_fractal']:.2f}x" if r["speedup_vs_fractal"] else "N/A")
                    + (f" ({r['paper_speedup_vs_fractal']:.2f}x)" if r["paper_speedup_vs_fractal"] else " (N/A)"),
                    (f"{r['speedup_vs_rstream']:.2f}x" if r["speedup_vs_rstream"] else "N/A")
                    + (f" ({r['paper_speedup_vs_rstream']:.2f}x)" if r["paper_speedup_vs_rstream"] else " (N/A)"),
                ]
                for r in rows
            ],
        )
        reports["table3"] = (text, rows)

    # Phase 2 — independent figure/table modules fan out over the same
    # worker budget; each repeated cell inside them hits the artifact cache.
    independent = [
        name for name in selected if name not in ("table3", "fig11")
    ]
    reports.update(_compute_modules(independent, args.scale, jobs))

    # Phase 3 — fig11 (energy + total time), reusing table3's cells when
    # available, the artifact cache otherwise.
    if "fig11" in selected:
        energy = fig11_energy.run_energy(args.scale, cells=table3_cells)
        total = fig11_energy.run_total_time(args.scale)
        reports["fig11"] = (
            fig11_energy.main(args.scale)
            if table3_cells is None
            else _fig11_text(energy, total),
            {"energy": energy, "total_time": total},
        )

    # Emit in canonical order so reports read identically at any --jobs.
    for name in EXPERIMENTS:
        if name not in reports:
            continue
        text, data = reports[name]
        console(f"\n{'=' * 72}\n{text}")
        payload[name] = data
        (out_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    payload["wall_seconds"] = time.perf_counter() - start
    with open(out_dir / "results.json", "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, default=str)
    console(
        f"\nCompleted {len(selected)} experiments in "
        f"{payload['wall_seconds']:.0f}s; results under {out_dir}/"
    )


def _fig11_text(energy: list[dict], total: list[dict]) -> str:
    from .harness import format_table

    energy_table = format_table(
        ["Graph", "Fractal (min/mean/max)", "RStream (min/mean/max)"],
        [
            [
                r["graph"],
                f"{r.get('fractal_min', 0):.1f}/{r.get('fractal_mean', 0):.1f}/{r.get('fractal_max', 0):.1f}x",
                (
                    f"{r['rstream_min']:.1f}/{r['rstream_mean']:.1f}/{r['rstream_max']:.1f}x"
                    if "rstream_min" in r
                    else "N/A"
                ),
            ]
            for r in energy
        ],
    )
    time_table = format_table(
        ["Graph", "Exec", "Preproc", "Preproc share", "Fractal", "RStream"],
        [
            [
                r["graph"],
                f"{r['gramer_exec_s']*1e3:.1f}ms",
                f"{r['gramer_preproc_s']*1e3:.2f}ms",
                f"{r['preproc_fraction']:.1%}",
                f"{(r['fractal_s'] or 0)*1e3:.1f}ms",
                f"{(r['rstream_s'] or 0)*1e3:.1f}ms" if r["rstream_s"] else "N/A",
            ]
            for r in total
        ],
    )
    return (
        "Fig. 11 (a) baseline energy normalised to GRAMER\n" + energy_table
        + "\n\nFig. 11 (b) total time including preprocessing (4-MC)\n"
        + time_table
    )


if __name__ == "__main__":
    main()
