"""Fig. 2 (quantified) — access patterns: graph processing vs graph mining.

Fig. 2 is an illustrative diagram; this experiment measures its claim on
real traces: vertex-centric processing (BFS / CC / PageRank) randomises the
vertex dimension while streaming edges, whereas mining's extend-check model
randomises *both* dimensions — "graph mining performs a significant number
of random memory accesses on both vertex and edge data".
"""

from __future__ import annotations

from repro.locality.stride import StrideClassifier
from repro.mining.engine import run_dfs
from repro.processing import (
    BreadthFirstSearch,
    ConnectedComponents,
    PageRank,
    run_vertex_program,
)

from . import datasets
from .harness import build_app, format_table

__all__ = ["run", "main"]


def run(scale: str = "small", graph_name: str = "p2p") -> list[dict]:
    """One row per workload: the random/sequential × vertex/edge mix."""
    graph = datasets.load(graph_name, scale)
    rows = []

    processing = [
        BreadthFirstSearch(source=0),
        ConnectedComponents(),
        PageRank(tolerance=1e-3),
    ]
    for program in processing:
        classifier = StrideClassifier()
        run_vertex_program(graph, program, mem=classifier)
        rows.append(
            {
                "workload": program.name,
                "class": "processing",
                **classifier.mix.fractions(),
                "random_vertex_share": classifier.mix.random_vertex_share,
                "random_edge_share": classifier.mix.random_edge_share,
            }
        )

    for app_name in ("3-CF", "3-MC", "4-MC"):
        app = build_app(app_name, graph_name, scale)
        classifier = StrideClassifier()
        run_dfs(graph, app, mem=classifier)
        rows.append(
            {
                "workload": app_name,
                "class": "mining",
                **classifier.mix.fractions(),
                "random_vertex_share": classifier.mix.random_vertex_share,
                "random_edge_share": classifier.mix.random_edge_share,
            }
        )
    return rows


def main(scale: str = "small") -> str:
    """Render the access-mix comparison."""
    rows = run(scale)
    table = format_table(
        ["Workload", "Class", "Rand vertex", "Rand edge",
         "Rand-vertex share", "Rand-edge share"],
        [
            [
                r["workload"],
                r["class"],
                f"{r['random_vertex']:.1%}",
                f"{r['random_edge']:.1%}",
                f"{r['random_vertex_share']:.1%}",
                f"{r['random_edge_share']:.1%}",
            ]
            for r in rows
        ],
    )
    return (
        "Fig. 2 (quantified) — random-access composition, "
        "processing vs mining\n" + table
    )


if __name__ == "__main__":
    print(main())
