"""Fig. 13 — PU pipelining and work stealing (5-CF).

(a) Performance vs the number of pipeline slot IDs (1..16), normalised to
one slot: near-linear to 8 slots, diminishing beyond (memory-partition
pressure).
(b) Performance with vs without work stealing: the paper reports
1.32×–1.90×, with the most skewed graph (Mico) benefiting most.
"""

from __future__ import annotations

from repro.accel.sim import make_simulator

from . import datasets
from .harness import build_app, experiment_config, format_table
from .datasets import DATASET_ORDER

__all__ = ["run_slot_sweep", "run_work_stealing", "main", "SLOT_COUNTS"]

SLOT_COUNTS = (1, 2, 4, 8, 16)


def run_slot_sweep(
    scale: str = "small",
    app_name: str = "5-CF",
    graphs: list[str] | None = None,
) -> list[dict]:
    """Per graph: cycles at each slot count, normalised to 1 slot."""
    graphs = graphs if graphs is not None else list(DATASET_ORDER)
    rows = []
    for graph_name in graphs:
        graph = datasets.load(graph_name, scale)
        cycles = {}
        for slots in SLOT_COUNTS:
            app = build_app(app_name, graph_name, scale)
            config = experiment_config(slots_per_pu=slots)
            cycles[slots] = make_simulator(graph, config).run(app).cycles
        rows.append(
            {
                "graph": graph_name,
                "cycles": cycles,
                "speedup": {
                    s: cycles[SLOT_COUNTS[0]] / c for s, c in cycles.items()
                },
            }
        )
    return rows


def run_work_stealing(
    scale: str = "small",
    app_name: str = "5-CF",
    graphs: list[str] | None = None,
) -> list[dict]:
    """Per graph: cycles with/without stealing and the resulting speedup."""
    graphs = graphs if graphs is not None else list(DATASET_ORDER)
    rows = []
    for graph_name in graphs:
        graph = datasets.load(graph_name, scale)
        cycles = {}
        steals = 0
        for stealing in (False, True):
            app = build_app(app_name, graph_name, scale)
            config = experiment_config(work_stealing=stealing)
            result = make_simulator(graph, config).run(app)
            cycles[stealing] = result.cycles
            if stealing:
                steals = result.stats.steals
        rows.append(
            {
                "graph": graph_name,
                "cycles_without": cycles[False],
                "cycles_with": cycles[True],
                "speedup": cycles[False] / cycles[True],
                "steals": steals,
            }
        )
    return rows


def main(scale: str = "small") -> str:
    """Render both panels of Fig. 13."""
    sweep = run_slot_sweep(scale)
    sweep_table = format_table(
        ["Graph"] + [f"{s} slots" for s in SLOT_COUNTS],
        [
            [r["graph"]]
            + [f"{r['speedup'][s]:.2f}x" for s in SLOT_COUNTS]
            for r in sweep
        ],
    )
    stealing = run_work_stealing(scale)
    steal_table = format_table(
        ["Graph", "w/o stealing", "w/ stealing", "Speedup", "Steals"],
        [
            [
                r["graph"],
                str(r["cycles_without"]),
                str(r["cycles_with"]),
                f"{r['speedup']:.2f}x",
                str(r["steals"]),
            ]
            for r in stealing
        ],
    )
    return (
        "Fig. 13 (a) speedup vs pipeline slots (5-CF)\n" + sweep_table
        + "\n\nFig. 13 (b) work stealing (5-CF)\n" + steal_table
    )


if __name__ == "__main__":
    print(main())
