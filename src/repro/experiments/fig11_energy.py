"""Fig. 11 — (a) energy consumption and (b) total time with preprocessing.

(a) For each graph: the min / mean / max (over applications) of the
baselines' energy normalised to GRAMER's (the paper reports
9.40×–129.72× vs Fractal and 5.79×–678.34× vs RStream).  Energies follow
the paper's method — Vivado-style per-event on-chip energy for GRAMER,
TDP × runtime for the CPUs, DRAM excluded on both sides.

(b) GRAMER's execution time plus the ON1 reordering preprocessing,
alongside the baselines (paper: preprocessing ≈ 55% of execution on tiny
graphs, < 3% on Mico).  Preprocessing time is *modeled* — the scan + sort
cost at the paper's measured rate (1.73 ms for Citeseer's 3.3k/4.7k graph
→ ≈ 30 ns per ``V·log V + 2E`` operation on the Xeon host) — because the
host-Python wall clock of this reproduction carries interpreter overhead
the paper's native preprocessing does not.  The paper used 5-CF; the proxy
5-CF workloads are too light to amortise anything, so the heavier 4-MC
carries the comparison (noted in EXPERIMENTS.md).
"""

from __future__ import annotations

import math

from . import datasets
from .harness import (
    CellResult,
    format_table,
    run_fractal_cell,
    run_gramer_cell,
    run_rstream_cell,
)
from .datasets import DATASET_ORDER
from .table3_runtime import run as run_table3

__all__ = ["run_energy", "run_total_time", "main", "FIG11_APPS"]

# A representative application subset (full Table III reuse is supported by
# passing its cells in).
FIG11_APPS = ["3-CF", "4-CF", "3-MC", "FSM"]


def run_energy(
    scale: str = "small",
    cells: list[CellResult] | None = None,
) -> list[dict]:
    """Per graph: normalised baseline energy (min/mean/max over apps)."""
    if cells is None:
        cells = run_table3(scale, apps=FIG11_APPS)
    by_graph: dict[str, dict[str, list[float]]] = {}
    grouped: dict[tuple[str, str], dict[str, CellResult]] = {}
    for cell in cells:
        grouped.setdefault((cell.app, cell.graph), {})[cell.system] = cell
    for (app, graph), systems in grouped.items():
        gramer = systems.get("GRAMER")
        if gramer is None or not gramer.energy_j:
            continue
        for system in ("Fractal", "RStream"):
            cell = systems.get(system)
            if cell is None or cell.energy_j is None:
                continue
            by_graph.setdefault(graph, {}).setdefault(system, []).append(
                cell.energy_j / gramer.energy_j
            )
    rows = []
    for graph in DATASET_ORDER:
        ratios = by_graph.get(graph)
        if not ratios:
            continue
        row = {"graph": graph}
        for system, values in ratios.items():
            row[f"{system.lower()}_min"] = min(values)
            row[f"{system.lower()}_mean"] = sum(values) / len(values)
            row[f"{system.lower()}_max"] = max(values)
        rows.append(row)
    return rows


# Host-CPU preprocessing rate, calibrated on the paper's 1.73 ms for
# Citeseer (§VI-B): operations = V·log2(V) sort work + 2E scan work.
_PREPROC_SECONDS_PER_OP = 30e-9


def modeled_preprocessing_seconds(graph) -> float:
    """Modeled ON1-scoring + reordering time on the Xeon host."""
    v = graph.num_vertices
    ops = v * math.log2(max(2, v)) + 2 * len(graph.neighbors)
    return ops * _PREPROC_SECONDS_PER_OP


def run_total_time(scale: str = "small", app: str = "4-MC") -> list[dict]:
    """Fig. 11b: preprocessing + execution vs baselines, per graph."""
    rows = []
    for graph_name in DATASET_ORDER:
        graph = datasets.load(graph_name, scale)
        preproc_s = modeled_preprocessing_seconds(graph)
        gramer = run_gramer_cell(app, graph_name, scale)
        fractal = run_fractal_cell(app, graph_name, scale)
        rstream = run_rstream_cell(app, graph_name, scale)
        rows.append(
            {
                "graph": graph_name,
                "gramer_exec_s": gramer.seconds,
                "gramer_preproc_s": preproc_s,
                "preproc_fraction": preproc_s / (preproc_s + gramer.seconds),
                "fractal_s": fractal.seconds,
                "rstream_s": rstream.seconds,
            }
        )
    return rows


def main(scale: str = "small") -> str:
    """Render both panels of Fig. 11."""
    energy = run_energy(scale)
    energy_table = format_table(
        ["Graph", "Fractal (min/mean/max)", "RStream (min/mean/max)"],
        [
            [
                r["graph"],
                (
                    f"{r.get('fractal_min', 0):.1f}/"
                    f"{r.get('fractal_mean', 0):.1f}/"
                    f"{r.get('fractal_max', 0):.1f}x"
                ),
                (
                    f"{r.get('rstream_min', 0):.1f}/"
                    f"{r.get('rstream_mean', 0):.1f}/"
                    f"{r.get('rstream_max', 0):.1f}x"
                    if "rstream_min" in r
                    else "N/A"
                ),
            ]
            for r in energy
        ],
    )
    total = run_total_time(scale)
    time_table = format_table(
        ["Graph", "Exec", "Preproc", "Preproc share", "Fractal", "RStream"],
        [
            [
                r["graph"],
                f"{r['gramer_exec_s']*1e3:.1f}ms",
                f"{r['gramer_preproc_s']*1e3:.2f}ms",
                f"{r['preproc_fraction']:.1%}",
                f"{(r['fractal_s'] or 0)*1e3:.1f}ms",
                f"{(r['rstream_s'] or 0)*1e3:.1f}ms" if r["rstream_s"] else "N/A",
            ]
            for r in total
        ],
    )
    return (
        "Fig. 11 (a) baseline energy normalised to GRAMER\n"
        + energy_table
        + "\n\nFig. 11 (b) total time including preprocessing (4-MC)\n"
        + time_table
    )


if __name__ == "__main__":
    print(main())
