"""Fig. 8 — ON_k heuristic: accuracy vs hop count, and computation cost.

(a) Accuracy: how much of the observed top-5% vertex set of each MC
iteration the ON_k prediction covers, for k = 0..3 (paper: 1-hop stays
above ~80% from iteration 2 on; 0-hop is noticeably worse).
(b) Overheads: wall-clock of the ON_k computation normalised to the mining
run (paper: up to 8500× at k = 3 — deep hops blow up).
"""

from __future__ import annotations

import time

from repro.locality.analysis import heuristic_accuracy
from repro.locality.trace import IterationTrace
from repro.locality.occurrence import timed_occurrence_numbers
from repro.mining.apps import MotifCounting
from repro.mining.engine import run_dfs

from . import datasets
from .harness import format_table

__all__ = ["run", "main"]


def run(
    graph_name: str = "p2p",
    scale: str = "small",
    max_size: int = 4,
    hops: tuple[int, ...] = (0, 1, 2, 3),
) -> dict:
    """Accuracy per (hops, iteration) and normalised ON-computation cost."""
    graph = datasets.load(graph_name, scale)
    trace = IterationTrace()
    start = time.perf_counter()
    run_dfs(graph, MotifCounting(max_size), mem=trace)
    mining_seconds = time.perf_counter() - start

    accuracy: dict[int, dict[int, float]] = {}
    overheads: dict[int, float] = {}
    for k in hops:
        timing = timed_occurrence_numbers(graph, k)
        overheads[k] = timing.seconds / mining_seconds
        accuracy[k] = heuristic_accuracy(graph, trace, hops=k)
    return {
        "graph": graph_name,
        "mining_seconds": mining_seconds,
        "accuracy": accuracy,
        "overheads": overheads,
    }


def main(scale: str = "small") -> str:
    """Render both panels of Fig. 8 as text."""
    data = run(scale=scale)
    iterations = sorted(next(iter(data["accuracy"].values())))
    acc_table = format_table(
        ["ON hops"] + [f"iter {i}" for i in iterations],
        [
            [f"{k}-hop"]
            + [f"{data['accuracy'][k].get(i, 0.0):.2f}" for i in iterations]
            for k in sorted(data["accuracy"])
        ],
    )
    cost_table = format_table(
        ["ON hops", "normalised overhead"],
        [
            [f"{k}-hop", f"{v:.2e}"]
            for k, v in sorted(data["overheads"].items())
        ],
    )
    return (
        "Fig. 8 (a) ON_k accuracy vs observed top-5% "
        f"(MC on {data['graph']})\n{acc_table}\n\n"
        f"Fig. 8 (b) ON-computation overhead / mining time\n{cost_table}"
    )


if __name__ == "__main__":
    print(main())
