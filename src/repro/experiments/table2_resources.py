"""Table II — FPGA resource utilization and clock rate.

Produced by the calibrated resource/clock models (no synthesis toolchain —
see DESIGN.md): per application, LUT / register / BRAM utilization on the
XCU250 and the achievable clock.
"""

from __future__ import annotations

from repro.accel.config import GramerConfig
from repro.accel.resources import PAPER_ONCHIP_ENTRIES, estimate_resources

from .harness import format_table
from .paper_data import TABLE2_UTILIZATION

__all__ = ["run", "main"]


def run() -> list[dict]:
    """One row per application, model vs paper."""
    config = GramerConfig(onchip_entries=PAPER_ONCHIP_ENTRIES)
    rows = []
    for app in ("CF", "FSM", "MC"):
        report = estimate_resources(config, app)
        paper = TABLE2_UTILIZATION[app]
        rows.append(
            {
                "app": app,
                "lut": report.lut_utilization,
                "register": report.register_utilization,
                "bram": report.bram_utilization,
                "clock_mhz": report.clock_mhz,
                "paper_lut": paper["LUT"],
                "paper_register": paper["Register"],
                "paper_bram": paper["BRAM"],
                "paper_clock_mhz": paper["Clock"],
            }
        )
    return rows


def main() -> str:
    """Render Table II (model | paper)."""
    rows = run()
    table = format_table(
        ["", "CF", "FSM", "MC"],
        [
            ["LUT"] + [f"{r['lut']:.2%} ({r['paper_lut']:.2%})" for r in rows],
            ["Register"]
            + [
                f"{r['register']:.2%} ({r['paper_register']:.2%})"
                for r in rows
            ],
            ["BRAM"]
            + [f"{r['bram']:.2%} ({r['paper_bram']:.2%})" for r in rows],
            ["Clock Rate"]
            + [
                f"{r['clock_mhz']:.0f}MHz ({r['paper_clock_mhz']:.0f}MHz)"
                for r in rows
            ],
        ],
    )
    return "Table II — resource utilization, model (paper)\n" + table


if __name__ == "__main__":
    print(main())
