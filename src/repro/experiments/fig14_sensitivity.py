"""Fig. 14 — sensitivity to τ (high-priority share) and λ (Eq. 2 balance).

(a) τ from 1% to 50% on the four graphs that fit on-chip at τ = 50%
(Patents/YT/LJ are excluded for BRAM capacity, as in the paper);
performance normalised to τ = 50%.  The paper finds τ = 5% already reaches
72–92% of the ideal.
(b) λ from 0.5 to 8 on all graphs, normalised to λ = 1; the paper sees
only 0.91×–1.07× variation.
"""

from __future__ import annotations

from repro.accel.sim import make_simulator

from . import datasets
from .harness import build_app, experiment_config, format_table
from .datasets import DATASET_ORDER

__all__ = ["run_tau_sweep", "run_lambda_sweep", "main", "TAUS", "LAMBDAS"]

TAUS = (0.01, 0.02, 0.05, 0.10, 0.20, 0.50)
LAMBDAS = (0.5, 1.0, 2.0, 4.0, 8.0)
TAU_GRAPHS = ["citeseer", "p2p", "astro", "mico"]


def run_tau_sweep(
    scale: str = "small",
    app_name: str = "5-CF",
    graphs: list[str] | None = None,
) -> list[dict]:
    """Per graph: cycles per τ, normalised to τ = 50%.

    Following §VI-D, the memory is sized so the τ = 50% point holds the
    whole graph (high = low = 50% of the data): ``total = 2 × τ × data``.
    """
    graphs = graphs if graphs is not None else list(TAU_GRAPHS)
    rows = []
    for graph_name in graphs:
        graph = datasets.load(graph_name, scale)
        data_entries = graph.num_vertices + len(graph.neighbors)
        cycles = {}
        for tau in TAUS:
            app = build_app(app_name, graph_name, scale)
            config = experiment_config(
                onchip_entries=2 * data_entries, tau=tau
            )
            cycles[tau] = make_simulator(graph, config).run(app).cycles
        rows.append(
            {
                "graph": graph_name,
                "cycles": cycles,
                "normalized": {
                    tau: cycles[0.50] / c for tau, c in cycles.items()
                },
            }
        )
    return rows


def run_lambda_sweep(
    scale: str = "small",
    app_name: str = "5-CF",
    graphs: list[str] | None = None,
) -> list[dict]:
    """Per graph: cycles per λ, normalised to λ = 1."""
    graphs = graphs if graphs is not None else list(DATASET_ORDER)
    rows = []
    for graph_name in graphs:
        graph = datasets.load(graph_name, scale)
        cycles = {}
        for lam in LAMBDAS:
            app = build_app(app_name, graph_name, scale)
            config = experiment_config(lam=lam)
            cycles[lam] = make_simulator(graph, config).run(app).cycles
        rows.append(
            {
                "graph": graph_name,
                "cycles": cycles,
                "normalized": {
                    lam: cycles[1.0] / c for lam, c in cycles.items()
                },
            }
        )
    return rows


def main(scale: str = "small") -> str:
    """Render both panels of Fig. 14."""
    tau_rows = run_tau_sweep(scale)
    tau_table = format_table(
        ["Graph"] + [f"tau={t:.0%}" for t in TAUS],
        [
            [r["graph"]]
            + [f"{r['normalized'][t]:.2f}" for t in TAUS]
            for r in tau_rows
        ],
    )
    lam_rows = run_lambda_sweep(scale)
    lam_table = format_table(
        ["Graph"] + [f"lambda={lam}" for lam in LAMBDAS],
        [
            [r["graph"]]
            + [f"{r['normalized'][lam]:.2f}" for lam in LAMBDAS]
            for r in lam_rows
        ],
    )
    return (
        "Fig. 14 (a) performance vs tau, normalised to tau=50% (5-CF)\n"
        + tau_table
        + "\n\nFig. 14 (b) performance vs lambda, normalised to lambda=1\n"
        + lam_table
    )


if __name__ == "__main__":
    print(main())
