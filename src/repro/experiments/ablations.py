"""Ablations beyond the paper's figures.

The paper motivates several design choices without sweeping them; DESIGN.md
calls them out and this module quantifies each:

* **Steal-victim selection** (§V-C): the stealing buffer vs the
  linear-feedback-shift-register random selector of [8] that the paper
  argues against ("stealing buffer can always ensure accurate stealing to a
  busy slot").
* **ON1 ranks vs no reordering** (§IV-B/C): what the priority machinery is
  worth when the rank map is replaced by the identity (pinning arbitrary
  low-ID data).
* **Vertex/edge isolation** (§IV-A): LAMH with both streams sharing one
  cache (thrashing) vs the isolated design — singled out as the reason the
  hierarchy splits the two.
* **Partition count** (§IV-A): the 8-partition choice vs narrower/wider
  memory systems.
"""

from __future__ import annotations

from repro.accel.sim import make_simulator

from . import datasets
from .harness import build_app, experiment_config, format_table

__all__ = [
    "run_steal_selector",
    "run_rank_source",
    "run_arbitrator_policy",
    "run_partition_sweep",
    "main",
]


def run_steal_selector(
    scale: str = "small",
    app_name: str = "5-CF",
    graphs: list[str] | None = None,
) -> list[dict]:
    """Stealing-buffer victim selection vs the LFSR of [8]."""
    graphs = graphs if graphs is not None else ["p2p", "mico", "lj"]
    rows = []
    for graph_name in graphs:
        graph = datasets.load(graph_name, scale)
        cycles = {}
        steals = {}
        for selector in ("stealing_buffer", "random"):
            app = build_app(app_name, graph_name, scale)
            config = experiment_config(steal_victim_select=selector)
            result = make_simulator(graph, config).run(app)
            cycles[selector] = result.cycles
            steals[selector] = result.stats.steals
        rows.append(
            {
                "graph": graph_name,
                "cycles_buffer": cycles["stealing_buffer"],
                "cycles_random": cycles["random"],
                "buffer_speedup": cycles["random"] / cycles["stealing_buffer"],
                "steals_buffer": steals["stealing_buffer"],
                "steals_random": steals["random"],
            }
        )
    return rows


def run_rank_source(
    scale: str = "small",
    app_name: str = "5-CF",
    graphs: list[str] | None = None,
    memory_fraction: float = 0.10,
) -> list[dict]:
    """ON1 ranks vs identity ranks (no reordering).

    Run under memory pressure (10% of the data on chip, as in Fig. 12) —
    with the whole graph resident the rank source cannot matter.
    """
    graphs = graphs if graphs is not None else ["p2p", "mico", "lj"]
    rows = []
    for graph_name in graphs:
        graph = datasets.load(graph_name, scale)
        budget = max(
            64,
            int(memory_fraction * (graph.num_vertices + len(graph.neighbors))),
        )
        results = {}
        for label, use_on1 in (("on1", True), ("identity", False)):
            app = build_app(app_name, graph_name, scale)
            sim = make_simulator(
                graph,
                experiment_config(onchip_entries=budget),
                use_on1_ranks=use_on1,
            )
            results[label] = sim.run(app)
        rows.append(
            {
                "graph": graph_name,
                "on1_cycles": results["on1"].cycles,
                "identity_cycles": results["identity"].cycles,
                "on1_speedup": (
                    results["identity"].cycles / results["on1"].cycles
                ),
                "on1_vertex_hit": results["on1"].stats.vertex_hit_ratio,
                "identity_vertex_hit": (
                    results["identity"].stats.vertex_hit_ratio
                ),
            }
        )
    return rows


def run_arbitrator_policy(
    scale: str = "small",
    app_name: str = "5-CF",
    graphs: list[str] | None = None,
) -> list[dict]:
    """Round-robin vs degree-balanced initial-embedding dispatch (§V-C)."""
    graphs = graphs if graphs is not None else ["p2p", "mico", "lj"]
    rows = []
    for graph_name in graphs:
        graph = datasets.load(graph_name, scale)
        results = {}
        for policy in ("round_robin", "degree_balanced"):
            app = build_app(app_name, graph_name, scale)
            config = experiment_config(arbitrator=policy)
            results[policy] = make_simulator(graph, config).run(app)
        rows.append(
            {
                "graph": graph_name,
                "round_robin_cycles": results["round_robin"].cycles,
                "degree_balanced_cycles": results["degree_balanced"].cycles,
                "balanced_speedup": (
                    results["round_robin"].cycles
                    / results["degree_balanced"].cycles
                ),
                "imbalance_rr": results["round_robin"].stats.load_imbalance,
                "imbalance_db": (
                    results["degree_balanced"].stats.load_imbalance
                ),
            }
        )
    return rows


def run_partition_sweep(
    scale: str = "small",
    app_name: str = "5-CF",
    graph_name: str = "mico",
    partitions: tuple[int, ...] = (1, 2, 4, 8, 16),
) -> list[dict]:
    """Memory partition count vs performance."""
    graph = datasets.load(graph_name, scale)
    rows = []
    base_cycles = None
    for count in partitions:
        app = build_app(app_name, graph_name, scale)
        config = experiment_config(num_partitions=count)
        cycles = make_simulator(graph, config).run(app).cycles
        if base_cycles is None:
            base_cycles = cycles
        rows.append(
            {
                "graph": graph_name,
                "partitions": count,
                "cycles": cycles,
                "speedup_vs_1": base_cycles / cycles,
            }
        )
    return rows


def main(scale: str = "small") -> str:
    """Render all ablations as text."""
    steal = run_steal_selector(scale)
    steal_table = format_table(
        ["Graph", "Buffer cycles", "LFSR cycles", "Buffer speedup",
         "Steals (buf/rand)"],
        [
            [
                r["graph"], str(r["cycles_buffer"]), str(r["cycles_random"]),
                f"{r['buffer_speedup']:.2f}x",
                f"{r['steals_buffer']}/{r['steals_random']}",
            ]
            for r in steal
        ],
    )
    ranks = run_rank_source(scale)
    rank_table = format_table(
        ["Graph", "ON1 cycles", "Identity cycles", "ON1 speedup",
         "Vertex hit (ON1/identity)"],
        [
            [
                r["graph"], str(r["on1_cycles"]), str(r["identity_cycles"]),
                f"{r['on1_speedup']:.2f}x",
                f"{r['on1_vertex_hit']:.3f}/{r['identity_vertex_hit']:.3f}",
            ]
            for r in ranks
        ],
    )
    arb = run_arbitrator_policy(scale)
    arb_table = format_table(
        ["Graph", "Round-robin", "Degree-balanced", "Balanced speedup",
         "Imbalance (rr/db)"],
        [
            [
                r["graph"],
                str(r["round_robin_cycles"]),
                str(r["degree_balanced_cycles"]),
                f"{r['balanced_speedup']:.2f}x",
                f"{r['imbalance_rr']:.2f}/{r['imbalance_db']:.2f}",
            ]
            for r in arb
        ],
    )
    parts = run_partition_sweep(scale)
    part_table = format_table(
        ["Partitions", "Cycles", "Speedup vs 1"],
        [
            [str(r["partitions"]), str(r["cycles"]), f"{r['speedup_vs_1']:.2f}x"]
            for r in parts
        ],
    )
    return (
        "Ablation — steal-victim selection (stealing buffer vs LFSR [8])\n"
        + steal_table
        + "\n\nAblation — ON1 ranks vs identity (no reordering)\n"
        + rank_table
        + "\n\nAblation — arbitrator dispatch policy\n"
        + arb_table
        + "\n\nAblation — memory partition count (mico, 5-CF)\n"
        + part_table
    )


if __name__ == "__main__":
    print(main())
