"""Table III — running time of GRAMER vs Fractal vs RStream.

Eight application variants × seven graphs × three systems.  GRAMER runs in
the cycle simulator; the baselines run through their CPU/disk models.  The
proxies are orders of magnitude smaller than the paper's datasets, so the
comparison metric is the *speedup* (who wins, by what factor), reported
next to the paper's speedup for the same cell.
"""

from __future__ import annotations

from .harness import (
    CellResult,
    format_seconds,
    format_table,
    run_fractal_cell,
    run_gramer_cell,
    run_rstream_cell,
)
from .datasets import DATASET_ORDER
from .paper_data import TABLE3_APPS, paper_speedup

__all__ = ["run", "main", "speedup_rows"]


def run(
    scale: str = "small",
    apps: list[str] | None = None,
    graphs: list[str] | None = None,
    verbose: bool = False,
) -> list[CellResult]:
    """Run every requested cell for all three systems."""
    apps = apps if apps is not None else list(TABLE3_APPS)
    graphs = graphs if graphs is not None else list(DATASET_ORDER)
    cells: list[CellResult] = []
    for app in apps:
        for graph in graphs:
            for runner in (run_gramer_cell, run_fractal_cell, run_rstream_cell):
                cell = runner(app, graph, scale)
                cells.append(cell)
                if verbose:
                    print(
                        f"  {cell.system:8s} {app:5s} {graph:9s} "
                        f"{format_seconds(cell.seconds):>10s} "
                        f"(host {cell.wall_seconds:.1f}s)",
                        flush=True,
                    )
    return cells


def _by_cell(cells: list[CellResult]) -> dict[tuple[str, str], dict[str, CellResult]]:
    table: dict[tuple[str, str], dict[str, CellResult]] = {}
    for cell in cells:
        table.setdefault((cell.app, cell.graph), {})[cell.system] = cell
    return table


def speedup_rows(cells: list[CellResult]) -> list[dict]:
    """Per (app, graph): modeled seconds, speedups, and paper speedups."""
    rows = []
    for (app, graph), systems in sorted(_by_cell(cells).items()):
        gramer = systems.get("GRAMER")
        fractal = systems.get("Fractal")
        rstream = systems.get("RStream")
        if gramer is None or gramer.seconds is None:
            continue

        def ratio(base: CellResult | None) -> float | None:
            if base is None or base.seconds is None:
                return None
            return base.seconds / gramer.seconds

        paper_f, paper_r = paper_speedup(app if app in TABLE3_APPS else "FSM", graph)
        rows.append(
            {
                "app": app,
                "graph": graph,
                "gramer_s": gramer.seconds,
                "fractal_s": fractal.seconds if fractal else None,
                "rstream_s": rstream.seconds if rstream else None,
                "speedup_vs_fractal": ratio(fractal),
                "speedup_vs_rstream": ratio(rstream),
                "paper_speedup_vs_fractal": paper_f,
                "paper_speedup_vs_rstream": paper_r,
            }
        )
    return rows


def _fmt_ratio(value: float | None) -> str:
    return f"{value:.2f}x" if value is not None else "N/A"


def main(
    scale: str = "small",
    apps: list[str] | None = None,
    graphs: list[str] | None = None,
    verbose: bool = True,
) -> str:
    """Render Table III with paper-speedup columns."""
    cells = run(scale, apps, graphs, verbose=verbose)
    rows = speedup_rows(cells)
    table = format_table(
        [
            "App", "Graph", "GRAMER", "Fractal", "RStream",
            "vs Fractal (paper)", "vs RStream (paper)",
        ],
        [
            [
                r["app"],
                r["graph"],
                format_seconds(r["gramer_s"]),
                format_seconds(r["fractal_s"]),
                format_seconds(r["rstream_s"]),
                f"{_fmt_ratio(r['speedup_vs_fractal'])} "
                f"({_fmt_ratio(r['paper_speedup_vs_fractal'])})",
                f"{_fmt_ratio(r['speedup_vs_rstream'])} "
                f"({_fmt_ratio(r['paper_speedup_vs_rstream'])})",
            ]
            for r in rows
        ],
    )
    return "Table III — running time, GRAMER vs Fractal vs RStream\n" + table


if __name__ == "__main__":
    print(main())
