"""Table III — running time of GRAMER vs Fractal vs RStream.

Eight application variants × seven graphs × three systems.  GRAMER runs in
the cycle simulator; the baselines run through their CPU/disk models.  The
proxies are orders of magnitude smaller than the paper's datasets, so the
comparison metric is the *speedup* (who wins, by what factor), reported
next to the paper's speedup for the same cell.
"""

from __future__ import annotations

from repro.obs.log import console, get_logger
from repro.runtime.executor import Executor
from repro.runtime.spec import JobResult, JobSpec

from .harness import CellResult, cell_from_result, cell_jobspec, format_seconds, format_table
from .datasets import DATASET_ORDER
from .paper_data import TABLE3_APPS, paper_speedup

__all__ = ["run", "main", "speedup_rows", "cell_specs"]

_log = get_logger("experiments.table3")

_SYSTEMS = ("gramer", "fractal", "rstream")


def cell_specs(
    scale: str = "small",
    apps: list[str] | None = None,
    graphs: list[str] | None = None,
) -> list[JobSpec]:
    """The Table III grid as job specs (app-major, then graph, then system)."""
    apps = apps if apps is not None else list(TABLE3_APPS)
    graphs = graphs if graphs is not None else list(DATASET_ORDER)
    return [
        cell_jobspec(backend, app, graph, scale)
        for app in apps
        for graph in graphs
        for backend in _SYSTEMS
    ]


def run(
    scale: str = "small",
    apps: list[str] | None = None,
    graphs: list[str] | None = None,
    verbose: bool = False,
    executor: Executor | None = None,
) -> list[CellResult]:
    """Run every requested cell for all three systems.

    All cells are submitted through one :class:`~repro.runtime.Executor`
    (serial inline by default; pass ``executor=Executor(jobs=N)`` or set
    ``GRAMER_JOBS`` to fan out over a process pool).  Results come back in
    grid order regardless of worker count.
    """
    executor = executor if executor is not None else Executor()
    specs = cell_specs(scale, apps, graphs)

    def progress(result: JobResult, index: int, total: int) -> None:
        if not verbose:
            return
        spec = result.spec
        shown = format_seconds(result.seconds) if result.ok else "FAILED"
        suffix = " [cached]" if result.cached else ""
        console(
            f"  {result.system:8s} {spec.app:5s} {spec.graph_name:9s} "
            f"{shown:>10s} (host {result.wall_seconds:.1f}s)"
            f"{suffix}"
        )

    results = executor.run(specs, progress=progress)
    failures = [r for r in results if not r.ok]
    for failure in failures:
        _log.warning("FAILED %s: %s", failure.spec.label(), failure.error)
    return [cell_from_result(r) for r in results if r.ok]


def _by_cell(cells: list[CellResult]) -> dict[tuple[str, str], dict[str, CellResult]]:
    table: dict[tuple[str, str], dict[str, CellResult]] = {}
    for cell in cells:
        table.setdefault((cell.app, cell.graph), {})[cell.system] = cell
    return table


def speedup_rows(cells: list[CellResult]) -> list[dict]:
    """Per (app, graph): modeled seconds, speedups, and paper speedups."""
    rows = []
    for (app, graph), systems in sorted(_by_cell(cells).items()):
        gramer = systems.get("GRAMER")
        fractal = systems.get("Fractal")
        rstream = systems.get("RStream")
        if gramer is None or gramer.seconds is None:
            continue

        def ratio(base: CellResult | None) -> float | None:
            if base is None or base.seconds is None:
                return None
            return base.seconds / gramer.seconds

        paper_f, paper_r = paper_speedup(app if app in TABLE3_APPS else "FSM", graph)
        rows.append(
            {
                "app": app,
                "graph": graph,
                "gramer_s": gramer.seconds,
                "fractal_s": fractal.seconds if fractal else None,
                "rstream_s": rstream.seconds if rstream else None,
                "speedup_vs_fractal": ratio(fractal),
                "speedup_vs_rstream": ratio(rstream),
                "paper_speedup_vs_fractal": paper_f,
                "paper_speedup_vs_rstream": paper_r,
            }
        )
    return rows


def _fmt_ratio(value: float | None) -> str:
    return f"{value:.2f}x" if value is not None else "N/A"


def main(
    scale: str = "small",
    apps: list[str] | None = None,
    graphs: list[str] | None = None,
    verbose: bool = True,
    executor: Executor | None = None,
) -> str:
    """Render Table III with paper-speedup columns."""
    cells = run(scale, apps, graphs, verbose=verbose, executor=executor)
    rows = speedup_rows(cells)
    table = format_table(
        [
            "App", "Graph", "GRAMER", "Fractal", "RStream",
            "vs Fractal (paper)", "vs RStream (paper)",
        ],
        [
            [
                r["app"],
                r["graph"],
                format_seconds(r["gramer_s"]),
                format_seconds(r["fractal_s"]),
                format_seconds(r["rstream_s"]),
                f"{_fmt_ratio(r['speedup_vs_fractal'])} "
                f"({_fmt_ratio(r['paper_speedup_vs_fractal'])})",
                f"{_fmt_ratio(r['speedup_vs_rstream'])} "
                f"({_fmt_ratio(r['paper_speedup_vs_rstream'])})",
            ]
            for r in rows
        ],
    )
    return "Table III — running time, GRAMER vs Fractal vs RStream\n" + table


if __name__ == "__main__":
    print(main())
