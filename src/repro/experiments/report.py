"""Render a summary report from a ``results.json`` produced by run_all.

``python -m repro.experiments.report results/results.json`` rebuilds a
compact paper-vs-measured digest (the data behind EXPERIMENTS.md) from the
structured results, so re-runs regenerate the summary mechanically.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from .paper_data import (
    FIG13_WORK_STEALING_RANGE,
    HEADLINE_ENERGY_RANGE,
    HEADLINE_SPEEDUP_RANGE,
)

__all__ = ["render_report", "main"]


def _section(title: str) -> list[str]:
    return ["", f"## {title}", ""]


def _speedup_summary(table3_rows: list[dict]) -> list[str]:
    lines = _section("Table III — speedups")
    ratios_f = [
        r["speedup_vs_fractal"]
        for r in table3_rows
        if r.get("speedup_vs_fractal")
    ]
    ratios_r = [
        r["speedup_vs_rstream"]
        for r in table3_rows
        if r.get("speedup_vs_rstream")
    ]
    lo, hi = HEADLINE_SPEEDUP_RANGE
    if ratios_f:
        lines.append(
            f"- vs Fractal: {min(ratios_f):.1f}x – {max(ratios_f):.1f}x "
            f"over {len(ratios_f)} cells (paper envelope {lo}x – {hi}x)"
        )
    if ratios_r:
        lines.append(
            f"- vs RStream: {min(ratios_r):.1f}x – {max(ratios_r):.1f}x "
            f"over {len(ratios_r)} cells"
        )
    wins = sum(
        1
        for r in table3_rows
        if (r.get("speedup_vs_fractal") or 0) > 1
        and (r.get("speedup_vs_rstream") or 1.01) > 1
    )
    lines.append(f"- GRAMER wins {wins}/{len(table3_rows)} cells outright")
    return lines


def _energy_summary(energy_rows: list[dict]) -> list[str]:
    lines = _section("Fig. 11a — energy savings")
    lo, hi = HEADLINE_ENERGY_RANGE
    for system in ("fractal", "rstream"):
        mins = [r[f"{system}_min"] for r in energy_rows if f"{system}_min" in r]
        maxs = [r[f"{system}_max"] for r in energy_rows if f"{system}_max" in r]
        if mins:
            lines.append(
                f"- vs {system.capitalize()}: {min(mins):.1f}x – "
                f"{max(maxs):.1f}x (paper envelope {lo}x – {hi}x)"
            )
    return lines


def _stealing_summary(fig13: dict) -> list[str]:
    lines = _section("Fig. 13b — work stealing")
    rows = fig13.get("work_stealing", [])
    if rows:
        speedups = {r["graph"]: r["speedup"] for r in rows}
        best = max(speedups, key=speedups.get)
        lo, hi = FIG13_WORK_STEALING_RANGE
        lines.append(
            f"- speedups {min(speedups.values()):.2f}x – "
            f"{max(speedups.values()):.2f}x (paper {lo}x – {hi}x); "
            f"best on {best}"
        )
    return lines


def _locality_summary(fig05_rows: list[dict]) -> list[str]:
    lines = _section("Fig. 5 — extension locality")
    for row in fig05_rows:
        shares = row["vertex_share"]
        iterations = sorted(int(k) for k in shares)
        first, last = iterations[0], iterations[-1]
        lines.append(
            f"- {row['graph']}: top-5% vertex share "
            f"{shares[first] if first in shares else shares[str(first)]:.1%}"
            " → "
            f"{shares[last] if last in shares else shares[str(last)]:.1%}"
            f" across iterations {first}–{last}"
        )
    return lines


def render_report(payload: dict) -> str:
    """Markdown digest of one run_all results payload."""
    lines = [
        "# GRAMER reproduction — results digest",
        "",
        f"scale preset: `{payload.get('scale', '?')}`; "
        f"wall time {float(payload.get('wall_seconds', 0)):.0f}s",
    ]
    if "fig05" in payload:
        # JSON round-trips dict keys to strings; normalise.
        rows = [
            {
                "graph": r["graph"],
                "vertex_share": {
                    int(k): v for k, v in r["vertex_share"].items()
                },
            }
            for r in payload["fig05"]
        ]
        lines += _locality_summary(rows)
    if "table3" in payload:
        lines += _speedup_summary(payload["table3"])
    if "fig11" in payload and "energy" in payload["fig11"]:
        lines += _energy_summary(payload["fig11"]["energy"])
    if "fig13" in payload:
        lines += _stealing_summary(payload["fig13"])
    lines.append("")
    lines.append(
        "Full per-experiment tables live next to results.json; "
        "interpretation and caveats in EXPERIMENTS.md."
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> None:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("results", nargs="?", default="results/results.json")
    parser.add_argument("--out", default=None,
                        help="write the digest here instead of stdout")
    args = parser.parse_args(argv)
    payload = json.loads(Path(args.results).read_text(encoding="utf-8"))
    text = render_report(payload)
    if args.out:
        Path(args.out).write_text(text + "\n", encoding="utf-8")
    else:
        print(text)


if __name__ == "__main__":
    main()
