"""Dataset registry: synthetic proxies for the paper's seven graphs.

The paper evaluates on SNAP/NBER datasets that are unavailable offline and —
at up to 69M edges — far beyond what a pure-Python cycle simulator can
enumerate.  Each dataset therefore gets a *proxy* with the same qualitative
shape (degree-distribution family and relative density) at a tractable
scale, in three presets:

* ``tiny``   — unit tests and pytest benchmarks (sub-second cells),
* ``small``  — the default experiment scale (the numbers in EXPERIMENTS.md),
* ``full``   — a larger validation scale for spot checks.

Citeseer is near-uniform (a thin citation graph) and maps to Erdős–Rényi;
everything else is heavy-tailed and maps to preferential attachment with
dataset-specific density/clustering.  The proxy hierarchy preserves the
paper's *memory regimes*: with the fixed on-chip budget
(:data:`EXPERIMENT_ONCHIP_ENTRIES`, the stand-in for the U250's 11.8 MB
BRAM), Citeseer/P2P reach the paper's τ = 50% all-on-chip regime, Astro and
Mico land in the partially-resident middle, and Patents/YT/LJ fall to small
τ just as the real graphs exceed BRAM.  Likewise the scaled CPU cache
hierarchy (:func:`scaled_cpu_config`) keeps each proxy's footprint in the
same cache regime as its real counterpart (Citeseer in private caches,
Patents beyond the LLC), which is what Fig. 3's stall trend depends on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.baselines.cpu import CPUConfig
from repro.graph.csr import CSRGraph
from repro.graph.generators import erdos_renyi, powerlaw_cluster, random_labels

__all__ = [
    "DatasetSpec",
    "DATASETS",
    "DATASET_ORDER",
    "SMALL_GRAPHS",
    "MEDIUM_GRAPHS",
    "LARGE_GRAPHS",
    "load",
    "load_labeled",
    "scaled_cpu_config",
    "EXPERIMENT_ONCHIP_ENTRIES",
    "fsm_threshold",
]

# Stand-in for the U250's BRAM budget, in graph-data entries.  Chosen so the
# proxies reproduce the paper's τ regimes (see module docstring).
EXPERIMENT_ONCHIP_ENTRIES = 6_000

# Number of distinct vertex labels used for FSM proxies (Mico-style).
FSM_NUM_LABELS = 4


@dataclass(frozen=True)
class DatasetSpec:
    """One evaluation graph: paper identity plus proxy builders."""

    name: str
    paper_vertices: int
    paper_edges: int
    category: str  # 'small' | 'medium' | 'large' (§VI-A grouping)
    builders: dict[str, Callable[[], CSRGraph]]
    paper_fsm_threshold: int

    def build(self, scale: str = "small") -> CSRGraph:
        """Construct the proxy graph at ``scale``."""
        try:
            builder = self.builders[scale]
        except KeyError:
            raise ValueError(
                f"unknown scale {scale!r} for {self.name}; "
                f"choose from {sorted(self.builders)}"
            ) from None
        return builder()


def _spec(
    name: str,
    paper_v: int,
    paper_e: int,
    category: str,
    fsm_threshold: int,
    tiny: Callable[[], CSRGraph],
    small: Callable[[], CSRGraph],
    full: Callable[[], CSRGraph],
) -> DatasetSpec:
    return DatasetSpec(
        name=name,
        paper_vertices=paper_v,
        paper_edges=paper_e,
        category=category,
        builders={"tiny": tiny, "small": small, "full": full},
        paper_fsm_threshold=fsm_threshold,
    )


DATASETS: dict[str, DatasetSpec] = {
    "citeseer": _spec(
        "citeseer", 3_312, 4_732, "small", 2_000,
        tiny=lambda: erdos_renyi(300, 450, seed=111),
        small=lambda: erdos_renyi(800, 1_200, seed=11),
        full=lambda: erdos_renyi(3_312, 4_732, seed=11),
    ),
    "p2p": _spec(
        "p2p", 8_114, 26_013, "small", 2_000,
        tiny=lambda: powerlaw_cluster(400, 2, 0.05, seed=112, max_degree=18),
        small=lambda: powerlaw_cluster(1_200, 2, 0.05, seed=12, max_degree=25),
        full=lambda: powerlaw_cluster(4_000, 3, 0.05, seed=12, max_degree=40),
    ),
    "astro": _spec(
        "astro", 18_772, 200_000, "medium", 2_000,
        tiny=lambda: powerlaw_cluster(300, 3, 0.5, seed=113, max_degree=25),
        small=lambda: powerlaw_cluster(1_100, 3, 0.5, seed=13, max_degree=35),
        full=lambda: powerlaw_cluster(3_000, 5, 0.5, seed=13, max_degree=60),
    ),
    "mico": _spec(
        "mico", 100_000, 1_100_000, "medium", 2_000,
        tiny=lambda: powerlaw_cluster(350, 4, 0.6, seed=114, max_degree=30),
        small=lambda: powerlaw_cluster(1_200, 4, 0.6, seed=14, max_degree=40),
        full=lambda: powerlaw_cluster(3_500, 6, 0.6, seed=14, max_degree=70),
    ),
    "patents": _spec(
        "patents", 2_700_000, 14_000_000, "large", 20_000,
        tiny=lambda: powerlaw_cluster(500, 3, 0.2, seed=115, max_degree=20),
        small=lambda: powerlaw_cluster(2_500, 3, 0.2, seed=15, max_degree=26),
        full=lambda: powerlaw_cluster(8_000, 3, 0.2, seed=15, max_degree=40),
    ),
    "yt": _spec(
        "yt", 4_580_000, 43_960_000, "large", 250_000,
        tiny=lambda: powerlaw_cluster(600, 3, 0.1, seed=116, max_degree=20),
        small=lambda: powerlaw_cluster(3_000, 3, 0.1, seed=16, max_degree=28),
        full=lambda: powerlaw_cluster(10_000, 3, 0.1, seed=16, max_degree=45),
    ),
    "lj": _spec(
        "lj", 4_850_000, 69_000_000, "large", 250_000,
        tiny=lambda: powerlaw_cluster(700, 3, 0.3, seed=117, max_degree=22),
        small=lambda: powerlaw_cluster(3_500, 3, 0.3, seed=17, max_degree=28),
        full=lambda: powerlaw_cluster(12_000, 4, 0.3, seed=17, max_degree=50),
    ),
}

DATASET_ORDER = ["citeseer", "p2p", "astro", "mico", "patents", "yt", "lj"]
SMALL_GRAPHS = ["citeseer", "p2p"]
MEDIUM_GRAPHS = ["astro", "mico"]
LARGE_GRAPHS = ["patents", "yt", "lj"]

# Bump when the generator recipes above change: the graph store addresses
# proxies by (name, scale, salt), not by the builder closures themselves.
_GENERATOR_SALT = 1


def _graph_key(name: str, scale: str, labeled: bool) -> dict:
    return {
        "dataset": name,
        "scale": scale,
        "labeled": labeled,
        "num_labels": FSM_NUM_LABELS if labeled else 0,
        "salt": _GENERATOR_SALT,
    }


def load(name: str, scale: str = "small") -> CSRGraph:
    """Load one proxy graph, materialized through the graph store.

    The generator runs at most once per (name, scale, salt): its CSR
    arrays are written to a content-addressed store artifact, and every
    load — in this process, in executor pool workers, in later runs —
    opens that artifact as a read-only memory map sharing OS pages.
    Repeated calls in one process return the same object.
    """
    from repro.graph.store import default_graph_store

    spec = DATASETS[name]
    return default_graph_store().load(
        _graph_key(name, scale, False), lambda: spec.build(scale)
    )


def load_labeled(name: str, scale: str = "small") -> CSRGraph:
    """Labeled variant (FSM), with :data:`FSM_NUM_LABELS` uniform labels."""
    from repro.graph.store import default_graph_store

    return default_graph_store().load(
        _graph_key(name, scale, True),
        lambda: random_labels(load(name, scale), FSM_NUM_LABELS, seed=7),
    )


def fsm_threshold(name: str, scale: str = "small") -> int:
    """FSM support threshold with paper-like selectivity.

    Scaling the paper's absolute thresholds (2K / 20K / 250K) by the edge
    ratio lands below every proxy pattern's support (the proxies have far
    fewer label-pair types than edges), which would make the aggregate
    filter a no-op.  What matters behaviourally is *selectivity* — the
    paper picks thresholds that prune a meaningful share of patterns — so
    the proxy threshold is set at the 60th percentile of the labeled
    proxy's size-2 pattern supports: roughly half the edge patterns are
    pruned before extension, as a mid-selectivity FSM run does.
    """
    from repro.runtime.cache import default_cache

    def probe_threshold() -> int:
        import numpy as np

        from repro.mining.apps.fsm import FrequentSubgraphMining

        graph = load_labeled(name, scale)
        probe = FrequentSubgraphMining(threshold=1, max_vertices=3)
        probe.prepare(graph)
        supports = sorted(probe._edge_pattern_support.values())
        if not supports:
            return 2
        return max(2, int(np.percentile(supports, 60)))

    key = dict(_graph_key(name, scale, True), artifact="fsm_threshold")
    return default_cache().get_or_create("fsm_threshold", key, probe_threshold)


def scaled_cpu_config(scale: str = "small") -> CPUConfig:
    """CPU model with caches sized to preserve the proxies' cache regimes.

    The proxies are not uniformly scaled (Citeseer shrinks ~2×, LiveJournal
    ~3000×), so no single divisor of the real 32 KB / 256 KB / 35 MB
    hierarchy keeps every proxy in its real counterpart's regime.  The
    capacities below are chosen so the *regime boundaries* land where the
    paper's do: the Citeseer proxy fits within the private caches, the
    P2P / Astro / Mico proxies fit the LLC but not L2, and the
    Patents / YT / LJ proxies exceed the LLC — which is what drives the
    stall trend of Fig. 3 and the baseline slowdowns of Table III.
    """
    presets = {
        # (l1, l2, l3) bytes per scale preset.
        "tiny": (512, 10 * 1024, 28 * 1024),
        "small": (2 * 1024, 40 * 1024, 110 * 1024),
        "full": (8 * 1024, 128 * 1024, 384 * 1024),
    }
    try:
        l1, l2, l3 = presets[scale]
    except KeyError:
        raise ValueError(f"unknown scale {scale!r}") from None
    return CPUConfig(l1_bytes=l1, l2_bytes=l2, l3_bytes=l3)
