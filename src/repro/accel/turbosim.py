"""Turbo GRAMER engine: exact mining, decoupled statistical timing model.

The fast engine (:mod:`repro.accel.fastsim`) is capped near 2x because
bit-identity chains the functional mining pass and the timing model to one
sequential event order (docs/fastsim.md).  :class:`TurboGramerSimulator`
breaks that chain:

* **Functional pass — exact.**  The mining computation runs in *virtual
  step order*: a round-robin sweep over all slots where every busy slot
  executes one extension step per round, using the same root-dispatch
  queues, the same stealing-buffer / LFSR steal discipline, and the same
  ancestor-buffer depth check as the reference.  Mining state transitions
  are the reference's own (the fused step is the fast engine's transcription
  of ``advance_frame`` + ``check_candidate``), and every counted quantity
  that is schedule-invariant — embedding counts, pattern sets,
  ``candidates_checked``, ``roots_dispatched`` — is therefore byte-identical
  to the reference engine.  ``AncestorBufferOverflowError`` is likewise
  exact whenever overflow is schedule-independent (always when work
  stealing is off; see docs/turbo.md for the stealing caveat).
* **Timing pass — decoupled and batched.**  Each access is classified
  against the LAMH rank cutoffs as it is recorded; high-priority
  (scratchpad) traffic is accounted in bulk — fixed latency, closed-form
  waits — and never materialised.  Only the low-priority stream is kept:
  the recorded (kind, address, rank, issue-time, slot) tuples are sorted
  once with ``numpy.argsort`` into a canonical global interleave and
  replayed through the flat set-associative cache + DRAM-channel model,
  with a per-slot time correction folding miss penalties back into slot
  clocks.  Busy cycles are gap-based exactly as in the fast engine
  (``busy = final - gap``), and per-PU finish/busy roll-ups are numpy
  reductions over the per-slot arrays.

Because slot clocks advance without global arbitration, issue-port and
partition queueing are *not* resolved event-exactly, the cache sees an
approximate (not the reference's) service order, and steal/retry timing is
virtual.  Timing-facing ``SimStats`` fields — ``cycles``, hit/miss splits,
waits, ``steals``/``steal_attempts``, per-PU arrays — are therefore close
but not byte-equal to the reference.

Tolerance contract
------------------
``tests/differential/tolerance.py`` declares the contract: mining counts
and exception types must match the reference exactly; every timing and
energy field must fall within a per-field relative/absolute band.  The
hypothesis corpus and the Table III tiny grid (plus the golden envelope
fixtures under ``tests/experiments/golden/turbo/``) enforce it.

Observability hooks are not supported (there is no per-event state to
observe); :func:`~repro.accel.sim.make_simulator` forces the reference
engine whenever an instrument or access trace is attached.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.graph.csr import CSRGraph
from repro.memory.dram import DRAMModel
from repro.memory.hierarchy import build_hierarchy
from repro.memory.policies import LocalityPreservedPolicy, LRUPolicy
from repro.mining.apps.base import Application
from repro.mining.engine import Frame

from .config import GramerConfig
from .frontend import dispatch_roots
from .scheduler import StealingBuffer, steal_from_stack
from .sim import (
    AncestorBufferOverflowError,
    SimResult,
    resolve_vertex_rank,
)
from .stats import SimStats

__all__ = ["TurboGramerSimulator"]


class TurboGramerSimulator:
    """Decoupled-timing engine; same constructor contract as the others.

    ``instrument`` must be ``None`` (use the factory, which routes
    instrumented runs to the reference engine).
    """

    def __init__(
        self,
        graph: CSRGraph,
        config: GramerConfig | None = None,
        vertex_rank: np.ndarray | None = None,
        use_on1_ranks: bool = True,
        instrument: object | None = None,
    ) -> None:
        if instrument is not None:
            raise ValueError(
                "the turbo engine does not support observability hooks; "
                "use make_simulator(), which forces engine='reference' "
                "for instrumented runs"
            )
        self.graph = graph
        self.config = config if config is not None else GramerConfig()
        self.vertex_rank = resolve_vertex_rank(graph, vertex_rank, use_on1_ranks)
        self.stats = SimStats()
        #: Timing-model internals of the last run (span/demand/stretch,
        #: replay correction totals) — diagnostics for the tolerance suite.
        self.timing_debug: dict[str, float] = {}

    # Like the fast engine's loop, the functional sweep is deliberately
    # monolithic: the per-access work below is the entire sequential cost
    # of a turbo run, so every avoided call is throughput.
    def run(self, app: Application) -> SimResult:  # noqa: C901
        """Execute ``app`` to completion; returns stats + mining results."""
        graph, cfg = self.graph, self.config

        # -- sizing: run the reference builders once, extract a flat model --
        # (identical extraction to the fast engine, so cutoff/num_sets/tau
        # validation rules stay shared by construction).
        hierarchy = build_hierarchy(
            graph,
            total_entries=cfg.onchip_entries,
            vertex_rank=self.vertex_rank,
            tau=cfg.tau,
            low_policy=cfg.low_policy,
            lam=cfg.lam,
            ways=cfg.cache_ways,
            vertex_line=cfg.vertex_line_entries,
            edge_line=cfg.edge_line_entries,
        )
        # Instantiated purely so DRAM parameter validation stays shared.
        DRAMModel(
            latency_cycles=cfg.dram_latency,
            channels=cfg.dram_channels,
            cycles_per_transfer=cfg.dram_cycles_per_transfer,
        )
        v_side = hierarchy.vertex_side
        e_side = hierarchy.edge_side
        v_cut = v_side.scratchpad.cutoff
        e_cut = e_side.scratchpad.cutoff
        vcache = v_side.low_cache
        ecache = e_side.low_cache
        shared = vcache is ecache  # uniform-LRU baseline: one cache, offset edges

        policy = vcache.policy
        if isinstance(policy, LocalityPreservedPolicy):
            locality = True
            lam = policy.lam
            rank_scale = policy.rank_scale
        elif isinstance(policy, LRUPolicy):
            locality = False
            lam = rank_scale = 0.0
        else:  # pragma: no cover - build_hierarchy only emits the two above
            raise TypeError(
                f"turbo engine cannot replicate policy {policy.name!r}"
            )

        ways = vcache.ways
        v_sets = vcache.num_sets
        v_line = vcache.line_size
        if shared:
            e_sets, e_line = v_sets, v_line
        else:
            e_sets = ecache.num_sets
            e_line = ecache.line_size
        e_addr_off = e_side.address_offset

        vrank = self.vertex_rank.tolist()
        erank = (
            hierarchy.edge_rank.tolist()
            if hierarchy.edge_rank is not None
            else None
        )
        offsets = graph.offsets.tolist()
        neighbors = graph.neighbors.tolist()

        # -- config scalars ------------------------------------------------
        issue_cycles = cfg.issue_cycles
        check_cycles = cfg.check_cycles
        process_cycles = cfg.process_cycles
        spm_lat = cfg.spm_latency
        hit_lat = cfg.cache_hit_latency
        nparts = cfg.num_partitions
        part_line = cfg.edge_line_entries
        nch = cfg.dram_channels
        d_lat = cfg.dram_latency
        d_cpt = cfg.dram_cycles_per_transfer
        ancestor_depth = cfg.ancestor_depth
        stealing = cfg.work_stealing
        random_steal = cfg.steal_victim_select == "random"
        scan_probe = cfg.probe_mode == "scan"
        P = cfg.num_pus
        S = cfg.slots_per_pu
        G = P * S

        # -- application + root dispatch (shared with the reference) -------
        app.prepare(graph)
        clique_only = app.clique_only
        max_vertices = app.max_vertices
        app_filter = app.filter
        app_process = app.process
        app_aggregate = app.aggregate_filter
        dispatch = dispatch_roots(
            (v for v in range(graph.num_vertices) if app.root_filter(graph, v)),
            P,
            cfg.prefetch_interval,
            policy=cfg.arbitrator,
            degrees=graph.degrees(),
        )
        dqueues = dispatch.queues

        # -- slot state (global slot id g = p * S + s) ---------------------
        # vt[g] is the slot's *virtual clock*: compute + nominal access
        # latencies (scratchpad for high, cache-hit for low).  The replay
        # pass later folds per-slot miss penalties back in; busy cycles are
        # gap-based like the fast engine's (busy = final - gap).
        vt = [0] * G
        gap = [0] * G
        stacks: list[list[Frame]] = [[] for _ in range(G)]
        pu_busy = [0] * P
        sbufs = [StealingBuffer(S) for _ in range(P)]
        lfsr = [((p * 0x9E3779B9 + 0x1234567) & 0xFFFFFFFF) or 1 for p in range(P)]
        pu_of = [g // S for g in range(G)]
        sid_of = [g % S for g in range(G)]
        # Partition demand (1 request/cycle each) is counted, not queued:
        # virtual clocks advance out of order across slots, so running the
        # reference's max(time, free)+1 arbitration against them over-
        # serialises laggard slots.  Instead the busiest partition's count
        # is a lower bound on the real makespan, and the virtual timeline
        # is uniformly stretched to it before the replay pass — which also
        # keeps DRAM misses from piling into unrealistically deep channel
        # queues at compressed virtual times.
        part_count = [0] * nparts

        # -- stats accumulators --------------------------------------------
        candidates_checked = 0
        embeddings_accepted = 0
        roots_dispatched = 0
        steals = 0
        steal_attempts = 0
        v_hi = e_hi = 0
        compute_cycles = 0

        # The low-priority stream: everything the batched timing pass needs
        # about an access that may touch the cache/DRAM.  High accesses are
        # accounted in bulk and never stored.
        lo_kind: list[int] = []
        lo_addr: list[int] = []
        lo_rank: list[int] = []
        lo_time: list[int] = []
        lo_slot: list[int] = []
        k_append = lo_kind.append
        a_append = lo_addr.append
        r_append = lo_rank.append
        t_append = lo_time.append
        g_append = lo_slot.append

        # -- functional pass: virtual step order ---------------------------
        # Round-robin over runnable slots; each busy slot runs exactly one
        # extension step per round.  Ascending-g sweep order makes the
        # first round's root assignment identical to the reference's
        # seeded heap order; afterwards only the schedule (not the mined
        # set) diverges.  A slot leaves the runnable list only when it can
        # never acquire work again (queue drained and stealing impossible).
        runnable = list(range(G))
        try:
            while runnable:
                still = []
                keep = still.append
                for g in runnable:
                    p = pu_of[g]
                    stack = stacks[g]
                    tg = vt[g]
                    if not stack:
                        q = dqueues[p]
                        if q:
                            root, arrival = q.popleft()
                            if arrival > tg:
                                gap[g] += arrival - tg
                                tg = arrival
                            stack.append(Frame((root,), (0,)))
                            roots_dispatched += 1
                            pu_busy[p] += 1
                            sbufs[p].push(sid_of[g])
                        elif stealing and pu_busy[p] > 0:
                            steal_attempts += 1
                            # Inline ProcessingUnit.try_steal (same
                            # discipline and LFSR stream as the fast
                            # engine, driven by rounds instead of the
                            # 32-cycle retry clock).
                            stolen = None
                            vic_g = -1
                            base_g = p * S
                            sid = sid_of[g]
                            if random_steal:
                                x = lfsr[p]
                                x ^= (x << 13) & 0xFFFFFFFF
                                x ^= x >> 17
                                x ^= (x << 5) & 0xFFFFFFFF
                                lfsr[p] = x
                                vic = x % S
                                if vic != sid and stacks[base_g + vic]:
                                    stolen = steal_from_stack(
                                        stacks[base_g + vic]
                                    )
                                    vic_g = base_g + vic
                            else:
                                buf = sbufs[p]
                                for _ in range(len(buf)):
                                    vic = buf.pop()
                                    if vic is None:
                                        break
                                    if vic == sid or not stacks[base_g + vic]:
                                        continue
                                    frame = steal_from_stack(
                                        stacks[base_g + vic]
                                    )
                                    if frame is not None:
                                        buf.push(vic)
                                        stolen = frame
                                        vic_g = base_g + vic
                                        break
                            if stolen is not None:
                                stack.append(stolen)
                                steals += 1
                                pu_busy[p] += 1
                                sbufs[p].push(sid)
                                # The thief idled while parked: jump its
                                # clock to the victim's (the reference
                                # thief resumes at current global time)
                                # and book the jump as an idle gap.
                                tv = vt[vic_g]
                                if tv > tg:
                                    gap[g] += tv - tg
                                    tg = tv
                            else:
                                keep(g)
                                continue
                        else:
                            # Queue drained; stealing can never hand this
                            # slot work (off, or the whole PU is idle and
                            # steals are intra-PU) — retire it.
                            continue

                    # -- one fused functional step (the fast engine's
                    # transcription of _record_step) ----------------------
                    frame = stack[-1]
                    pre = issue_cycles
                    vertices = frame.vertices
                    m_idx = frame.member_idx
                    m_lim = frame.member_limit
                    candidate = None
                    while m_idx < m_lim:
                        mb = frame.member_base
                        if mb < 0:
                            member = vertices[m_idx]
                            rank = vrank[member]
                            part_count[member % nparts] += 1
                            if rank < v_cut:
                                v_hi += 1
                                tg += pre + spm_lat
                            else:
                                tg += pre
                                k_append(0)
                                a_append(member)
                                r_append(rank)
                                t_append(tg)
                                g_append(g)
                                tg += hit_lat
                            pre = 0
                            mb = offsets[member]
                            frame.member_base = mb
                            frame.member_degree = offsets[member + 1] - mb
                        bound = frame.member_degree
                        cl = frame.cursor_limit
                        if cl is not None and cl < bound:
                            bound = cl
                        ec = frame.edge_cursor
                        if ec < bound:
                            index = mb + ec
                            frame.edge_cursor = ec + 1
                            rank = (
                                erank[index]
                                if erank is not None
                                else vrank[vertices[m_idx]]
                            )
                            part_count[(index // part_line) % nparts] += 1
                            if rank < e_cut:
                                e_hi += 1
                                tg += pre + spm_lat
                            else:
                                tg += pre
                                k_append(1)
                                a_append(index)
                                r_append(rank)
                                t_append(tg)
                                g_append(g)
                                tg += hit_lat
                            pre = 0
                            candidate = neighbors[index]
                            break
                        m_idx += 1
                        frame.member_idx = m_idx
                        frame.edge_cursor = 0
                        frame.member_base = -1
                        frame.cursor_limit = None

                    if candidate is None:
                        stack.pop()
                        tg += pre + 1  # traceback: dequeue the ancestor record
                        compute_cycles += issue_cycles + 1
                        if not stack:
                            pu_busy[p] -= 1
                    else:
                        candidates_checked += 1
                        midx = frame.member_idx
                        # id_checks_pass (pure ID comparisons)
                        if candidate in vertices or candidate < vertices[0]:
                            accepted = False
                        else:
                            accepted = True
                            nverts = len(vertices)
                            i = midx + 1
                            while i < nverts:
                                if candidate < vertices[i]:
                                    accepted = False
                                    break
                                i += 1
                        column = 0
                        if accepted:
                            # check_candidate connectivity loop
                            column = 1 << midx
                            for i, member in enumerate(vertices):
                                if i == midx:
                                    continue
                                rank = vrank[member]
                                part_count[member % nparts] += 1
                                if rank < v_cut:
                                    v_hi += 1
                                    tg += pre + spm_lat
                                else:
                                    tg += pre
                                    k_append(0)
                                    a_append(member)
                                    r_append(rank)
                                    t_append(tg)
                                    g_append(g)
                                    tg += hit_lat
                                pre = 0
                                lo = offsets[member]
                                hi = offsets[member + 1]
                                adjacent = False
                                if scan_probe:
                                    for index in range(lo, hi):
                                        rank = (
                                            erank[index]
                                            if erank is not None
                                            else vrank[member]
                                        )
                                        part_count[
                                            (index // part_line) % nparts
                                        ] += 1
                                        if rank < e_cut:
                                            e_hi += 1
                                            tg += spm_lat
                                        else:
                                            k_append(1)
                                            a_append(index)
                                            r_append(rank)
                                            t_append(tg)
                                            g_append(g)
                                            tg += hit_lat
                                        value = neighbors[index]
                                        if value == candidate:
                                            adjacent = True
                                            break
                                        if value > candidate:
                                            break
                                else:
                                    while lo < hi:
                                        mid = (lo + hi) // 2
                                        rank = (
                                            erank[mid]
                                            if erank is not None
                                            else vrank[member]
                                        )
                                        part_count[
                                            (mid // part_line) % nparts
                                        ] += 1
                                        if rank < e_cut:
                                            e_hi += 1
                                            tg += spm_lat
                                        else:
                                            k_append(1)
                                            a_append(mid)
                                            r_append(rank)
                                            t_append(tg)
                                            g_append(g)
                                            tg += hit_lat
                                        value = neighbors[mid]
                                        if value == candidate:
                                            adjacent = True
                                            break
                                        if value < candidate:
                                            lo = mid + 1
                                        else:
                                            hi = mid
                                if adjacent:
                                    if i < midx:
                                        accepted = False
                                        break
                                    column |= 1 << i
                                elif clique_only:
                                    accepted = False
                                    break
                        pre += check_cycles
                        compute_cycles += issue_cycles + check_cycles
                        if accepted:
                            new_vertices = vertices + (candidate,)
                            new_columns = frame.columns + (column,)
                            if app_filter(graph, new_vertices, new_columns):
                                app_process(graph, new_vertices, new_columns)
                                pre += process_cycles
                                compute_cycles += process_cycles
                                embeddings_accepted += 1
                                if len(new_vertices) < max_vertices and (
                                    app_aggregate(
                                        graph, new_vertices, new_columns
                                    )
                                ):
                                    if len(stack) >= ancestor_depth:
                                        raise AncestorBufferOverflowError(
                                            "extension depth exceeds "
                                            "ancestor buffer capacity "
                                            f"{ancestor_depth}"
                                        )
                                    stack.append(
                                        Frame(new_vertices, new_columns)
                                    )
                                    sbufs[p].push(sid_of[g])
                        tg += pre  # trailing compute (_OP_END)
                    vt[g] = tg
                    keep(g)
                runnable = still
        finally:
            # The reference engine bumps this per candidate; fold the batch
            # in on every exit path so app state matches even on raise.
            app.candidates_checked += candidates_checked

        app.finalize(graph)

        # -- timing pass: batched replay of the low-priority stream --------
        # Cache behaviour depends only on the canonical access ORDER (the
        # policies score by access counter, not wall time), so the replay
        # splits in two: first a cache pass over the sorted low-priority
        # stream classifies every op hit/miss, then the makespan stretch
        # is computed from BOTH saturation sources — the busiest partition
        # serves one request per cycle and the busiest DRAM channel is
        # occupied dram_cycles_per_transfer per miss, so each count
        # lower-bounds the makespan — and a miss-only queue pass runs the
        # channel model in the stretched time domain (where occupancy now
        # fits, keeping queues bounded).  delta[g] accumulates each slot's
        # miss penalties beyond the nominal hit latency in vt[g].
        vt_arr = np.asarray(vt, dtype=np.float64)
        span = float(vt_arr.max(initial=0.0))
        part_demand = float(max(part_count, default=0))
        v_lo = v_miss = 0
        e_lo = e_miss = 0
        v_wait_low = e_wait_low = 0
        delta = [0] * G
        miss_g: list[int] = []
        miss_ch: list[int] = []
        miss_t: list[int] = []
        miss_side: list[int] = []  # 0 = vertex, 1 = edge
        ch_count = [0] * nch
        n_low = len(lo_kind)
        if n_low:
            times = np.asarray(lo_time, dtype=np.int64)
            order = np.argsort(times, kind="stable")
            rk = np.asarray(lo_kind, dtype=np.int64)[order].tolist()
            ra = np.asarray(lo_addr, dtype=np.int64)[order].tolist()
            rr = np.asarray(lo_rank, dtype=np.int64)[order].tolist()
            rt = times[order].tolist()
            rg = np.asarray(lo_slot, dtype=np.int64)[order].tolist()

            v_tags = [-1] * (v_sets * ways)
            v_ranks = [0] * (v_sets * ways)
            v_last = [0] * (v_sets * ways)
            if shared:
                e_tags, e_ranks, e_last = v_tags, v_ranks, v_last
            else:
                e_tags = [-1] * (e_sets * ways)
                e_ranks = [0] * (e_sets * ways)
                e_last = [0] * (e_sets * ways)
            v_clock = e_clock = 0

            # Cache pass: order-only hit/miss classification; misses are
            # recorded (slot, channel, canonical time, side) for the
            # queue pass once the final stretch is known.
            for i in range(n_low):
                address = ra[i]
                g = rg[i]
                if rk[i] == 0:
                    v_clock += 1
                    tag = address // v_line
                    base = (tag % v_sets) * ways
                    end = base + ways
                    w = base
                    hit = False
                    while w < end:
                        if v_tags[w] == tag:
                            v_last[w] = v_clock
                            hit = True
                            break
                        w += 1
                    if hit:
                        v_lo += 1
                        v_wait_low += hit_lat
                    else:
                        victim = -1
                        w = base
                        while w < end:
                            if v_tags[w] == -1:
                                victim = w
                                break
                            w += 1
                        if victim < 0:
                            if locality:
                                victim = base
                                best = (
                                    v_ranks[base] * rank_scale
                                    + lam * (v_clock - v_last[base])
                                )
                                w = base + 1
                                while w < end:
                                    score = (
                                        v_ranks[w] * rank_scale
                                        + lam * (v_clock - v_last[w])
                                    )
                                    if score > best:
                                        best = score
                                        victim = w
                                    w += 1
                            else:
                                victim = base
                                stale = v_last[base]
                                w = base + 1
                                while w < end:
                                    lw = v_last[w]
                                    if lw < stale:
                                        stale = lw
                                        victim = w
                                    w += 1
                        v_tags[victim] = tag
                        v_ranks[victim] = rr[i]
                        v_last[victim] = v_clock
                        ch = address % nch
                        ch_count[ch] += 1
                        v_miss += 1
                        miss_g.append(g)
                        miss_ch.append(ch)
                        miss_t.append(rt[i])
                        miss_side.append(0)
                else:
                    if shared:
                        v_clock += 1
                        clk = v_clock
                    else:
                        e_clock += 1
                        clk = e_clock
                    tag = (address + e_addr_off) // e_line
                    base = (tag % e_sets) * ways
                    end = base + ways
                    w = base
                    hit = False
                    while w < end:
                        if e_tags[w] == tag:
                            e_last[w] = clk
                            hit = True
                            break
                        w += 1
                    if hit:
                        e_lo += 1
                        e_wait_low += hit_lat
                    else:
                        victim = -1
                        w = base
                        while w < end:
                            if e_tags[w] == -1:
                                victim = w
                                break
                            w += 1
                        if victim < 0:
                            if locality:
                                victim = base
                                best = (
                                    e_ranks[base] * rank_scale
                                    + lam * (clk - e_last[base])
                                )
                                w = base + 1
                                while w < end:
                                    score = (
                                        e_ranks[w] * rank_scale
                                        + lam * (clk - e_last[w])
                                    )
                                    if score > best:
                                        best = score
                                        victim = w
                                    w += 1
                            else:
                                victim = base
                                stale = e_last[base]
                                w = base + 1
                                while w < end:
                                    lw = e_last[w]
                                    if lw < stale:
                                        stale = lw
                                        victim = w
                                    w += 1
                        e_tags[victim] = tag
                        e_ranks[victim] = rr[i]
                        e_last[victim] = clk
                        # DRAM channels key on the raw edge index.
                        ch = address % nch
                        ch_count[ch] += 1
                        e_miss += 1
                        miss_g.append(g)
                        miss_ch.append(ch)
                        miss_t.append(rt[i])
                        miss_side.append(1)

        # Makespan floors: one partition request per cycle, one channel
        # transfer per dram_cycles_per_transfer.  Stretch the virtual
        # timeline to the larger floor so neither resource is asked to
        # serve above capacity.
        ch_demand = float(max(ch_count, default=0) * d_cpt)
        demand = part_demand if part_demand > ch_demand else ch_demand
        stretch = demand / span if span > 0 and demand > span else 1.0
        if stretch != 1.0:
            vt_arr = vt_arr * stretch

        # Queue pass: a closed-loop event simulation over misses only.
        # Each slot has at most one outstanding miss (the reference
        # stalls the slot until the line returns), so a slot's later
        # misses shift by its accumulated stall and channel queue depth
        # stays bounded by the live slot count — processing in true
        # arrival order is what keeps a saturated channel from growing
        # an unbounded queue, which an open-loop replay does.
        if miss_g:
            per_slot: dict[int, list[int]] = {}
            for j in range(len(miss_g)):
                per_slot.setdefault(miss_g[j], []).append(j)
            ch_free = [0] * nch
            heap: list[tuple[int, int, int]] = []
            for g, idxs in per_slot.items():
                heapq.heappush(heap, (int(miss_t[idxs[0]] * stretch), g, 0))
            while heap:
                arr, g, pos = heapq.heappop(heap)
                idxs = per_slot[g]
                j = idxs[pos]
                ch = miss_ch[j]
                cf = ch_free[ch]
                ds = arr if arr > cf else cf
                ch_free[ch] = ds + d_cpt
                lat = ds - arr + d_lat  # channel queue + DRAM latency
                if miss_side[j] == 0:
                    v_wait_low += lat
                else:
                    e_wait_low += lat
                delta[g] += lat - hit_lat
                pos += 1
                if pos < len(idxs):
                    arrival = int(miss_t[idxs[pos]] * stretch) + delta[g]
                    heapq.heappush(heap, (arrival, g, pos))

        # -- vectorised roll-up --------------------------------------------
        # Slot finish times, gap-based busy cycles and the per-PU arrays
        # are numpy reductions over the per-slot state; the energy model
        # (repro.accel.energy.gramer_energy) consumes these aggregates.
        # The stretch's extra time is partition-queue waiting; the
        # reference books queue waits into the per-side wait fields, so
        # distribute it across vertex/edge accesses by request share.
        #
        # Per-slot finish is a roofline: either the slot is bandwidth
        # bound (partition saturation — stretched virtual time; its miss
        # latencies hide under the queueing) or latency bound (serial
        # miss penalties on the nominal timeline), whichever is later.
        # Summing both would double-charge overlapped stall time.
        vt_nom = np.asarray(vt, dtype=np.int64)
        final = np.maximum(
            vt_arr.astype(np.int64),
            vt_nom + np.asarray(delta, dtype=np.int64),
        )
        gaps = np.asarray(gap, dtype=np.int64)
        queue_wait = (stretch - 1.0) * float(np.asarray(vt, np.float64).sum())
        v_n = v_hi + v_lo + v_miss
        e_n = e_hi + e_lo + e_miss
        n_req = v_n + e_n
        v_pw = int(queue_wait * v_n / n_req) if n_req else 0
        e_pw = int(queue_wait * e_n / n_req) if n_req else 0
        self.timing_debug = {
            "span": span,
            "demand": demand,
            "part_demand": part_demand,
            "ch_demand": ch_demand,
            "stretch": stretch,
            "queue_wait": queue_wait,
            "delta_sum": float(sum(delta)),
            "delta_max": float(max(delta, default=0)),
            "low_ops": float(n_low),
        }
        stats = SimStats()
        stats.cycles = int(final.max(initial=0))
        stats.candidates_checked = candidates_checked
        stats.embeddings_accepted = embeddings_accepted
        stats.roots_dispatched = roots_dispatched
        stats.steals = steals
        stats.steal_attempts = steal_attempts
        stats.vertex_high_hits = v_hi
        stats.vertex_low_hits = v_lo
        stats.vertex_misses = v_miss
        stats.edge_high_hits = e_hi
        stats.edge_low_hits = e_lo
        stats.edge_misses = e_miss
        stats.compute_cycles = compute_cycles
        stats.vertex_wait_cycles = v_hi * spm_lat + v_pw + v_wait_low
        stats.edge_wait_cycles = e_hi * spm_lat + e_pw + e_wait_low
        if G:
            per_pu = final.reshape(P, S)
            stats.pu_finish_cycles = [int(x) for x in per_pu.max(axis=1)]
            stats.pu_busy_cycles = [
                int(x)
                for x in per_pu.sum(axis=1) - gaps.reshape(P, S).sum(axis=1)
            ]
        else:  # pragma: no cover - GramerConfig forbids zero PUs/slots
            stats.pu_finish_cycles = []
            stats.pu_busy_cycles = []
        self.stats = stats
        return SimResult(stats=stats, mining=app.result(), config=cfg)
