"""PU-internal scheduling structures (paper §V-B, §V-C, Figs. 9-10).

Each PU pipelines up to ``slots_per_pu`` embeddings, one extension path per
slot ID.  A slot's extension path lives in its *ancestor buffer* — here the
stack of compacted :class:`~repro.mining.engine.Frame` records (extending
vertex + offset, Fig. 10).  The *stealing buffer* tracks recently busy slot
IDs so an idle slot can steal work from a demonstrably busy one instead of
probing randomly (§V-C's comparison against the LFSR selector of [8]).
"""

from __future__ import annotations

from collections import deque

from repro.mining.engine import Frame

__all__ = ["SlotContext", "StealingBuffer", "split_frame", "steal_from_stack"]


class SlotContext:
    """One pipeline slot: an ancestor-buffer stack plus its local clock.

    ``pending`` holds the recorded-but-not-yet-timed operations of the
    step in flight (see ``repro.accel.sim``).
    """

    __slots__ = (
        "slot_id",
        "stack",
        "time",
        "busy_cycles",
        "roots_started",
        "pending",
    )

    def __init__(self, slot_id: int) -> None:
        self.slot_id = slot_id
        self.stack: list[Frame] = []
        self.time = 0
        self.busy_cycles = 0
        self.roots_started = 0
        self.pending: deque = deque()

    @property
    def idle(self) -> bool:
        """Whether the slot has no extension path."""
        return not self.stack

    @property
    def depth(self) -> int:
        """Current ancestor-buffer occupancy."""
        return len(self.stack)


class StealingBuffer:
    """Bounded FIFO of busy slot IDs (§V-C).

    ``push`` records a slot that just received an embedding; ``pop`` yields
    the least-recently recorded busy slot.  Capacity matches the slot buffer
    (16 in the paper); stale IDs (slots that finished meanwhile) are simply
    skipped by the caller.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._queue: deque[int] = deque()

    def push(self, slot_id: int) -> None:
        """Record ``slot_id`` as busy (dropping the oldest when full)."""
        if len(self._queue) == self.capacity:
            self._queue.popleft()
        self._queue.append(slot_id)

    def pop(self) -> int | None:
        """Oldest recorded busy slot, or ``None`` when empty."""
        return self._queue.popleft() if self._queue else None

    def __len__(self) -> int:
        return len(self._queue)


def split_frame(frame: Frame) -> Frame | None:
    """Split ``frame``'s remaining candidate range; returns the thief's half.

    Preference order:

    1. Unstarted members: the thief takes members ``[m+1, limit)``, the
       victim keeps only the member it is currently scanning.
    2. Otherwise the remaining cursor range of the current member is halved.

    Returns ``None`` when the remainder is too small to split (≤ 1 pending
    candidate).  The two halves partition the original range exactly, so
    enumeration stays exactly-once — property-tested in
    ``tests/accel/test_scheduler.py``.
    """
    if frame.exhausted():
        return None
    if frame.member_idx + 1 < frame.member_limit:
        thief = Frame(frame.vertices, frame.columns)
        thief.member_idx = frame.member_idx + 1
        thief.member_limit = frame.member_limit
        frame.member_limit = frame.member_idx + 1
        return thief
    # Single member left; halve its remaining cursor range if it is loaded.
    if frame.member_base < 0:
        return None
    bound = frame.member_degree
    if frame.cursor_limit is not None and frame.cursor_limit < bound:
        bound = frame.cursor_limit
    remaining = bound - frame.edge_cursor
    if remaining <= 1:
        return None
    mid = frame.edge_cursor + (remaining + 1) // 2
    thief = Frame(frame.vertices, frame.columns)
    thief.member_idx = frame.member_idx
    thief.member_limit = frame.member_idx + 1
    thief.edge_cursor = mid
    thief.cursor_limit = bound
    # The thief re-reads the member's offsets on activation (member_base=-1),
    # matching the hardware re-fetch of the stolen embedding's metadata.
    frame.cursor_limit = mid
    return thief


def steal_from_stack(stack: list[Frame]) -> Frame | None:
    """Steal the largest available subtree from an ancestor-buffer stack.

    Scans bottom-up (shallowest ancestors own the largest unexplored
    subtrees) and splits the first frame with divisible remaining work.
    """
    for frame in stack:
        thief = split_frame(frame)
        if thief is not None:
            return thief
    return None
