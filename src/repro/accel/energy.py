"""Energy model (paper §VI-B, Fig. 11a).

The paper compares *on-chip* energy only: the FPGA is measured with Vivado
at a 100% toggle rate, the CPU baselines are charged their thermal design
power (TDP) for the full runtime, and DRAM energy is excluded on both sides
("we mainly consider the on-chip energy results of the FPGA and the CPU,
exclusive of the energy consumption from DRAM accesses").

We reproduce that accounting: GRAMER energy is per-event on-chip energies
(scratchpad / cache accesses, pipeline operations) plus static power over
the runtime; CPU energy is ``TDP × seconds``.  The per-event constants are
representative of 16-nm FPGA BRAM/logic figures; since both sides scale
linearly with their runtimes, the *ratios* the paper reports are governed by
performance and the ~order-of-magnitude power gap, which is what the model
preserves.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import GramerConfig
from .stats import SimStats

__all__ = ["EnergyParams", "EnergyBreakdown", "gramer_energy", "cpu_energy"]

# Intel E5-2680 v4 (the paper's baseline host) thermal design power.
XEON_E5_2680V4_TDP_W = 120.0


@dataclass(frozen=True)
class EnergyParams:
    """Per-event on-chip energies (nJ) and static power (W)."""

    spm_access_nj: float = 0.05  # BRAM read, high-priority scratchpad
    cache_hit_nj: float = 0.10  # tag compare + BRAM read
    miss_onchip_nj: float = 0.20  # tag compare + line fill write
    op_nj: float = 0.10  # one pipeline operation (issue/check/process)
    # Clocking + leakage of the full design at a 100% toggle rate.  25 W is
    # consistent with the paper's own ratios: its energy savings are ~5×
    # its speedups, implying an effective CPU-to-FPGA power ratio of
    # 120 W / ~25 W.
    static_w: float = 25.0


@dataclass(frozen=True)
class EnergyBreakdown:
    """GRAMER on-chip energy, itemized (joules)."""

    memory_j: float
    compute_j: float
    static_j: float

    @property
    def total_j(self) -> float:
        """Total on-chip energy."""
        return self.memory_j + self.compute_j + self.static_j


def gramer_energy(
    stats: SimStats,
    config: GramerConfig,
    params: EnergyParams | None = None,
) -> EnergyBreakdown:
    """On-chip energy of one accelerator run."""
    p = params if params is not None else EnergyParams()
    spm = stats.vertex_high_hits + stats.edge_high_hits
    hits = stats.vertex_low_hits + stats.edge_low_hits
    misses = stats.vertex_misses + stats.edge_misses
    memory_j = (
        spm * p.spm_access_nj
        + hits * p.cache_hit_nj
        + misses * p.miss_onchip_nj
    ) * 1e-9
    compute_j = stats.compute_cycles * p.op_nj * 1e-9
    static_j = p.static_w * stats.seconds(config.clock_mhz)
    return EnergyBreakdown(
        memory_j=memory_j, compute_j=compute_j, static_j=static_j
    )


def cpu_energy(seconds: float, tdp_w: float = XEON_E5_2680V4_TDP_W) -> float:
    """CPU baseline energy: TDP at full capacity over the runtime (joules)."""
    if seconds < 0:
        raise ValueError("seconds must be >= 0")
    return seconds * tdp_w
