"""GRAMER accelerator configuration (paper §VI-A defaults).

The paper's build: a Xilinx Alveo U250 (11.8 MB BRAM, four 16 GB DDR4
channels) hosting 8 PUs, each with a 16-entry slot buffer, a 16-entry
stealing buffer, and 16 ancestor buffers of depth 16 — so up to
8 × 16 = 128 embeddings in flight.  On-chip memory is organized as 8
partitions, each split into vertex and edge memory, each of those split into
a high-priority scratchpad and a 4-way set-associative low-priority cache.
The card is clocked conservatively at 200 MHz.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

__all__ = ["GramerConfig", "ALVEO_U250_BRAM_BYTES"]

# XCU250 BRAM capacity the paper quotes (11.8 MB).
ALVEO_U250_BRAM_BYTES = int(11.8 * 2**20)


@dataclass(frozen=True)
class GramerConfig:
    """All tunables of the simulated accelerator.

    Capacities are in *entries* (one CSR vertex offset record or one edge
    slot), ``entry_bytes`` wide each.  The default on-chip budget models the
    fraction of U250 BRAM the paper dedicates to graph data (~66% BRAM
    utilization in Table II, most of it the vertex/edge memories).
    """

    # -- processing units -------------------------------------------------
    num_pus: int = 8
    slots_per_pu: int = 16
    ancestor_depth: int = 16
    work_stealing: bool = True
    steal_victim_select: str = "stealing_buffer"  # or "random" (LFSR [8])
    arbitrator: str = "round_robin"  # or "degree_balanced" (ablation)

    # -- on-chip memory ----------------------------------------------------
    onchip_entries: int = 1 << 20  # total vertex+edge entries on chip
    entry_bytes: int = 8
    num_partitions: int = 8
    cache_ways: int = 4
    # Four 8-byte entries per line = a 32-byte BRAM word, for both sides;
    # keeping the vertex side at the same line width as the edge side (and
    # as the uniform baseline's shared cache) makes Fig. 12 apples-to-apples.
    vertex_line_entries: int = 4
    edge_line_entries: int = 4
    tau: float | None = None  # None -> paper rule MIN(50%, |Mem|/2(|V|+|E|))
    lam: float = 1.0  # Equation 2 balance factor
    low_policy: str = "locality"  # 'locality' | 'lru' | 'uniform' (Fig. 12)
    probe_mode: str = "binary"  # 'binary' | 'scan' connectivity checks

    # -- timing ------------------------------------------------------------
    clock_mhz: float = 200.0
    spm_latency: int = 1
    cache_hit_latency: int = 2
    dram_latency: int = 100
    dram_channels: int = 4
    dram_cycles_per_transfer: int = 2
    issue_cycles: int = 1  # scheduler issues one embedding step per cycle
    check_cycles: int = 1  # Filter-stage work per candidate
    process_cycles: int = 2  # Process-stage work per accepted embedding
    prefetch_interval: int = 1  # initial-embedding streaming rate (cycles)

    def __post_init__(self) -> None:
        if self.num_pus < 1 or self.slots_per_pu < 1:
            raise ValueError("num_pus and slots_per_pu must be >= 1")
        if self.ancestor_depth < 2:
            raise ValueError("ancestor_depth must be >= 2")
        if self.onchip_entries < 16:
            raise ValueError("onchip_entries must be >= 16")
        if self.num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        if self.steal_victim_select not in ("stealing_buffer", "random"):
            raise ValueError(
                "steal_victim_select must be 'stealing_buffer' or 'random'"
            )
        if self.arbitrator not in ("round_robin", "degree_balanced"):
            raise ValueError(
                "arbitrator must be 'round_robin' or 'degree_balanced'"
            )
        if self.low_policy not in ("locality", "lru", "uniform"):
            raise ValueError("low_policy must be locality, lru, or uniform")
        if self.probe_mode not in ("binary", "scan"):
            raise ValueError("probe_mode must be 'binary' or 'scan'")
        if self.clock_mhz <= 0:
            raise ValueError("clock_mhz must be positive")

    @property
    def max_inflight_embeddings(self) -> int:
        """Simultaneously processed embeddings (8 × 16 = 128 in the paper)."""
        return self.num_pus * self.slots_per_pu

    @property
    def onchip_bytes(self) -> int:
        """On-chip graph-data footprint in bytes."""
        return self.onchip_entries * self.entry_bytes

    def with_overrides(self, **kwargs: Any) -> "GramerConfig":
        """Copy with fields replaced (sweep helper)."""
        return replace(self, **kwargs)
