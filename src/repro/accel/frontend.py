"""Accelerator frontend: Prefetcher and Arbitrator (paper §III).

The Prefetcher next-line-prefetches the initial embeddings (the vertex
stream) from off-chip memory; since the stream is sequential it sustains one
initial embedding per ``prefetch_interval`` cycles.  The Arbitrator
dispatches them to PUs — round-robin in the paper ("we have simply
implemented the Arbitrator by dispatching in a round-robin manner"); a
degree-balanced alternative (least accumulated root degree first) is
provided as an ablation of that simplicity claim.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence

__all__ = ["RootDispatch", "dispatch_roots"]


class RootDispatch:
    """Per-PU queue of (root vertex, arrival cycle) pairs."""

    def __init__(self, num_pus: int) -> None:
        self.queues: list[deque[tuple[int, int]]] = [
            deque() for _ in range(num_pus)
        ]
        self.total = 0

    def pop(self, pu: int) -> tuple[int, int] | None:
        """Next root for PU ``pu`` or ``None`` when its stream is drained."""
        queue = self.queues[pu]
        return queue.popleft() if queue else None

    def pending(self, pu: int) -> int:
        """Roots still queued for PU ``pu``."""
        return len(self.queues[pu])


def dispatch_roots(
    roots: Iterable[int],
    num_pus: int,
    prefetch_interval: int,
    policy: str = "round_robin",
    degrees: Sequence[int] | None = None,
) -> RootDispatch:
    """Dispatch initial embeddings to PUs with arrival pacing.

    Root ``i`` of the stream becomes available at cycle
    ``i * prefetch_interval`` (the prefetcher keeps ahead of the PUs for any
    realistic interval, so this mainly bounds the ramp-up).

    ``policy='degree_balanced'`` assigns each root to the PU with the least
    accumulated root degree (a static workload proxy); requires ``degrees``.
    """
    dispatch = RootDispatch(num_pus)
    if policy == "round_robin":
        for i, root in enumerate(roots):
            dispatch.queues[i % num_pus].append((root, i * prefetch_interval))
            dispatch.total += 1
        return dispatch
    if policy != "degree_balanced":
        raise ValueError(
            f"unknown arbitrator policy {policy!r}; "
            "expected 'round_robin' or 'degree_balanced'"
        )
    if degrees is None:
        raise ValueError("degree_balanced dispatch requires degrees")
    load = [0] * num_pus
    for i, root in enumerate(roots):
        target = min(range(num_pus), key=lambda p: (load[p], p))
        load[target] += int(degrees[root]) + 1
        dispatch.queues[target].append((root, i * prefetch_interval))
        dispatch.total += 1
    return dispatch
