"""BFS-execution-mode cost model (paper §V-A's rejected design).

GRAMER adopts DFS because the BFS/level-synchronous alternative "will waste
significant memory bandwidth" writing intermediate embeddings off-chip and
"requires an off-chip memory capacity far beyond what an accelerator can
afford".  This model quantifies that argument for a finished DFS simulation:
it charges, on top of the run's compute/memory cycles, the off-chip traffic
a BFS-mode accelerator would add — every intermediate embedding written
once and read back once through the DRAM channels — and checks the peak
level against the off-chip capacity.

The estimate is deliberately *favourable* to BFS mode (perfect bandwidth
utilisation, zero scheduling overhead), so the DFS advantage it reports is
a lower bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import GramerConfig
from .sim import SimResult

__all__ = ["BFSModeEstimate", "estimate_bfs_mode"]

_BYTES_PER_EMBEDDING_VERTEX = 8  # vertex ID + compacted bookkeeping

# Four 16 GB DDR4 channels on the U250 (§VI-A).
_DEFAULT_OFFCHIP_CAPACITY_BYTES = 4 * 16 * 2**30


@dataclass(frozen=True)
class BFSModeEstimate:
    """BFS-mode projection of a DFS simulation."""

    dfs_cycles: int
    intermediate_bytes: int
    transfer_cycles: int
    peak_level_bytes: int
    offchip_capacity_bytes: int

    @property
    def bfs_cycles(self) -> int:
        """Projected BFS-mode cycles (DFS work + intermediate traffic)."""
        return self.dfs_cycles + self.transfer_cycles

    @property
    def slowdown(self) -> float:
        """BFS-mode cycles over DFS cycles (≥ 1)."""
        return self.bfs_cycles / self.dfs_cycles if self.dfs_cycles else 1.0

    @property
    def fits_offchip(self) -> bool:
        """Whether the largest materialised level fits off-chip at all."""
        return self.peak_level_bytes <= self.offchip_capacity_bytes


def estimate_bfs_mode(
    result: SimResult,
    config: GramerConfig | None = None,
    offchip_capacity_bytes: int = _DEFAULT_OFFCHIP_CAPACITY_BYTES,
) -> BFSModeEstimate:
    """Project a DFS :class:`SimResult` onto the BFS execution model.

    Intermediate embeddings are every accepted embedding below the maximum
    size (those are exactly what BFS mode materialises between levels); each
    is ``size × 8`` bytes, written once and read once.  The DRAM channels
    move one 8-byte beat per ``dram_cycles_per_transfer`` cycles each.
    """
    cfg = config if config is not None else result.config
    by_size = result.mining.embeddings_by_size
    max_size = result.mining.max_vertices

    intermediate_bytes = 0
    peak_level_bytes = 0
    for size, count in by_size.items():
        if size >= max_size:
            continue
        level_bytes = count * size * _BYTES_PER_EMBEDDING_VERTEX
        intermediate_bytes += 2 * level_bytes  # write + read back
        peak_level_bytes = max(peak_level_bytes, level_bytes)

    beats = intermediate_bytes // _BYTES_PER_EMBEDDING_VERTEX
    channel_beats_per_cycle = cfg.dram_channels / cfg.dram_cycles_per_transfer
    transfer_cycles = int(beats / channel_beats_per_cycle)

    return BFSModeEstimate(
        dfs_cycles=result.cycles,
        intermediate_bytes=intermediate_bytes,
        transfer_cycles=transfer_cycles,
        peak_level_bytes=peak_level_bytes,
        offchip_capacity_bytes=offchip_capacity_bytes,
    )
