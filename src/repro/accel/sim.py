"""The GRAMER cycle-level simulator.

Event-driven simulation of the architecture in Fig. 6: an Arbitrator
round-robins initial embeddings over ``num_pus`` PUs; each PU interleaves up
to ``slots_per_pu`` DFS extension paths (slot IDs) through its pipeline;
every memory request flows through an 8-partition locality-aware memory
hierarchy and, on miss, a channelized DRAM model.

Model structure
---------------
* **Functional phase.**  When a slot needs work, one extension step (one
  candidate proposal + extend-check, or one traceback) runs *functionally*
  through the shared engine (:func:`~repro.mining.engine.advance_frame` /
  :func:`~repro.mining.engine.check_candidate`) with a recording memory,
  producing the step's exact operation list (memory requests, each carrying
  the pipeline compute cycles preceding it).  Functional results are
  byte-identical to the software engine — the invariant "sim counts ==
  software counts" is enforced by tests.
* **Timing phase.**  The recorded operations replay one event at a time
  through a global time-ordered event loop.  Because events are processed
  in nondecreasing timestamp order, contention on the PU issue port
  (1 embedding step/cycle), the memory partitions (1 request/cycle each)
  and the DRAM channels resolves exactly; dependent accesses within a
  candidate check serialize on the slot's clock, while the PU's other
  slots proceed — slot-level pipelining hides memory latency exactly as
  §V-B intends.

Cache state mutates at request *service* time (global time order), so
hit/miss outcomes see the true interleaving.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.reorder import rank_permutation
from repro.locality.occurrence import occurrence_numbers
from repro.memory.dram import DRAMModel
from repro.memory.hierarchy import AccessLevel, build_hierarchy
from repro.mining.apps.base import Application, MiningResult
from repro.mining.engine import Frame, advance_frame, check_candidate

from .config import GramerConfig
from .frontend import dispatch_roots
from .pu import ProcessingUnit
from .stats import SimStats

if TYPE_CHECKING:
    from repro.obs.access import AccessTrace
    from repro.obs.hooks import SimInstrument

__all__ = [
    "GramerSimulator",
    "SimResult",
    "AncestorBufferOverflowError",
    "ENGINES",
    "BIT_IDENTICAL_ENGINES",
    "DEFAULT_ENGINE",
    "make_simulator",
    "resolve_vertex_rank",
]

_STEAL_RETRY_CYCLES = 32

#: Engine choices accepted everywhere an ``engine=`` knob exists.
#: ``"fast"`` is the batched engine of :mod:`repro.accel.fastsim`,
#: bit-identical to ``"reference"`` (the event-by-event model below) and
#: the default for every untraced run.  ``"turbo"``
#: (:mod:`repro.accel.turbosim`) keeps the mining pass exact but replays
#: timing through a decoupled batched model — timing fields are within
#: declared tolerance bands of the reference, not byte-equal
#: (docs/turbo.md).
ENGINES = ("fast", "reference", "turbo")
DEFAULT_ENGINE = "fast"

#: The engines whose ``SimStats`` are byte-identical to each other; the
#: bit-identity differential suite and benchmarks iterate these, never
#: ``ENGINES`` (turbo is validated by the tolerance suite instead).
BIT_IDENTICAL_ENGINES = ("fast", "reference")


def resolve_vertex_rank(
    graph: CSRGraph,
    vertex_rank: np.ndarray | None,
    use_on1_ranks: bool,
) -> np.ndarray:
    """Resolve the ON1 rank map exactly as the simulators expect it.

    Shared by both engines so rank validation/derivation cannot drift.
    """
    if vertex_rank is not None:
        resolved = np.asarray(vertex_rank, dtype=np.int64)
        if len(resolved) != graph.num_vertices:
            raise ValueError("vertex_rank must have one entry per vertex")
        return resolved
    if use_on1_ranks:
        return rank_permutation(occurrence_numbers(graph, hops=1))
    return np.arange(graph.num_vertices, dtype=np.int64)


def make_simulator(
    graph: CSRGraph,
    config: GramerConfig | None = None,
    *,
    engine: str = DEFAULT_ENGINE,
    vertex_rank: np.ndarray | None = None,
    use_on1_ranks: bool = True,
    instrument: "SimInstrument | None" = None,
    access_trace: "AccessTrace | None" = None,
):
    """Construct a GRAMER simulator with engine selection.

    This is the one supported way to build a simulator outside
    ``repro.accel`` (enforced by ``gramer check`` rule GRM701), so the
    fast and reference engines stay swappable at every call site.

    ``engine="fast"`` (the default) returns the batched engine, which is
    bit-identical to the reference on every ``SimStats`` field (proven by
    ``tests/differential/``).  ``engine="reference"`` forces the
    event-by-event model.  ``engine="turbo"`` returns the decoupled-timing
    engine: mining counts and exception behaviour stay exact while timing
    fields are only tolerance-banded against the reference
    (``tests/differential/tolerance.py``).  Passing an ``instrument`` or
    an ``access_trace`` always selects the reference engine: observability
    hooks fire on per-event state the batched engines do not materialise.
    """
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {ENGINES}"
        )
    if instrument is not None or access_trace is not None or engine == "reference":
        return GramerSimulator(
            graph,
            config,
            vertex_rank=vertex_rank,
            use_on1_ranks=use_on1_ranks,
            instrument=instrument,
            access_trace=access_trace,
        )
    if engine == "turbo":
        from .turbosim import TurboGramerSimulator

        return TurboGramerSimulator(
            graph,
            config,
            vertex_rank=vertex_rank,
            use_on1_ranks=use_on1_ranks,
        )
    from .fastsim import FastGramerSimulator

    return FastGramerSimulator(
        graph,
        config,
        vertex_rank=vertex_rank,
        use_on1_ranks=use_on1_ranks,
    )

# Operation kinds.  Each recorded op is (kind, address, src, pre_cycles):
# pre_cycles of pipeline compute precede the request; _OP_END carries only
# the step's trailing compute.
_OP_VERTEX = 0
_OP_EDGE = 1
_OP_END = 2


class AncestorBufferOverflowError(RuntimeError):
    """DFS depth exceeded the PU's ancestor-buffer capacity (16 entries)."""


@dataclass(frozen=True)
class SimResult:
    """Output of one accelerator run."""

    stats: SimStats
    mining: MiningResult
    config: GramerConfig

    @property
    def cycles(self) -> int:
        """Total execution cycles."""
        return self.stats.cycles

    @property
    def seconds(self) -> float:
        """Wall-clock time at the configured clock."""
        return self.stats.seconds(self.config.clock_mhz)


class _RecordingMemory:
    """MemoryModel that records requests with their preceding compute."""

    __slots__ = ("ops", "depth", "pre_cycles")

    def __init__(self) -> None:
        self.ops: list[tuple[int, int, int, int]] = []
        self.depth = 0
        self.pre_cycles = 0

    def vertex(self, vid: int) -> None:
        self.ops.append((_OP_VERTEX, vid, 0, self.pre_cycles))
        self.pre_cycles = 0

    def edge(self, index: int, src: int) -> None:
        self.ops.append((_OP_EDGE, index, src, self.pre_cycles))
        self.pre_cycles = 0

    def compute(self, cycles: int) -> None:
        """Accumulate pipeline work to attach to the next request."""
        self.pre_cycles += cycles

    def finish(self) -> list[tuple[int, int, int, int]]:
        """Close the step, flushing trailing compute as an END op."""
        if self.pre_cycles or not self.ops:
            self.ops.append((_OP_END, 0, 0, self.pre_cycles))
            self.pre_cycles = 0
        return self.ops


class GramerSimulator:
    """Simulate GRAMER running one mining application on one graph.

    ``vertex_rank`` maps vertex ID to its ON1 rank.  By default ranks are
    computed from the 1-hop occurrence numbers (§IV-B); the paper physically
    reorders the graph so ID == rank, which is behaviourally identical to
    carrying the rank map, so the simulator keeps original IDs plus the map.
    Pass ``use_on1_ranks=False`` for the rank-oblivious ablation.
    """

    def __init__(
        self,
        graph: CSRGraph,
        config: GramerConfig | None = None,
        vertex_rank: np.ndarray | None = None,
        use_on1_ranks: bool = True,
        instrument: "SimInstrument | None" = None,
        access_trace: "AccessTrace | None" = None,
    ) -> None:
        self.graph = graph
        self.config = config if config is not None else GramerConfig()
        # Purely observational (repro.obs.hooks.SimInstrument); every hook
        # reads simulator state and never writes it, so a traced run is
        # bit-identical to an untraced one.  The same contract covers the
        # access trace: the hierarchy/cache observers and the ancestor
        # emitter only append events.
        self.instrument = instrument
        self.access_trace = access_trace
        self._emit_ancestor = None
        if access_trace is not None:
            from repro.obs.hooks import ancestor_push_emitter

            self._emit_ancestor = ancestor_push_emitter(
                access_trace, depth_capacity=self.config.ancestor_depth
            )
        self.vertex_rank = resolve_vertex_rank(graph, vertex_rank, use_on1_ranks)
        self._reset()

    def _reset(self) -> None:
        cfg = self.config
        self.hierarchy = build_hierarchy(
            self.graph,
            total_entries=cfg.onchip_entries,
            vertex_rank=self.vertex_rank,
            tau=cfg.tau,
            low_policy=cfg.low_policy,
            lam=cfg.lam,
            ways=cfg.cache_ways,
            vertex_line=cfg.vertex_line_entries,
            edge_line=cfg.edge_line_entries,
        )
        self.dram = DRAMModel(
            latency_cycles=cfg.dram_latency,
            channels=cfg.dram_channels,
            cycles_per_transfer=cfg.dram_cycles_per_transfer,
        )
        self.partition_free = [0] * cfg.num_partitions
        self.stats = SimStats()
        self._recorder = _RecordingMemory()
        if self.access_trace is not None:
            from repro.obs.hooks import attach_access_observers

            attach_access_observers(self.hierarchy, self.access_trace)

    # -- functional phase ---------------------------------------------------

    def _record_step(self, pu: ProcessingUnit, slot, app: Application) -> None:
        """Run one extension step functionally; queue its timed operations."""
        graph, cfg, stats = self.graph, self.config, self.stats
        recorder = self._recorder
        recorder.ops = []
        recorder.pre_cycles = 0
        recorder.compute(cfg.issue_cycles)
        frame = slot.stack[-1]
        recorder.depth = frame.size

        candidate = advance_frame(graph, frame, recorder)
        if candidate is None:
            slot.stack.pop()
            recorder.compute(1)  # traceback: dequeue the ancestor record
        else:
            stats.candidates_checked += 1
            app.candidates_checked += 1
            accepted, column = check_candidate(
                graph, frame.vertices, frame.member_idx, candidate,
                app.clique_only, recorder, probe=cfg.probe_mode,
            )
            recorder.compute(cfg.check_cycles)
            if accepted:
                vertices = frame.vertices + (candidate,)
                columns = frame.columns + (column,)
                if app.filter(graph, vertices, columns):
                    app.process(graph, vertices, columns)
                    recorder.compute(cfg.process_cycles)
                    stats.embeddings_accepted += 1
                    if len(vertices) < app.max_vertices and app.aggregate_filter(
                        graph, vertices, columns
                    ):
                        if len(slot.stack) >= cfg.ancestor_depth:
                            raise AncestorBufferOverflowError(
                                "extension depth exceeds ancestor buffer "
                                f"capacity {cfg.ancestor_depth}"
                            )
                        slot.stack.append(Frame(vertices, columns))
                        if self._emit_ancestor is not None:
                            self._emit_ancestor(
                                slot.slot_id, len(slot.stack), slot.time
                            )
                        # §V-C: every embedding the Scheduler receives
                        # re-records its slot, keeping busy slots visible
                        # to idle thieves.
                        pu.stealing_buffer.push(slot.slot_id)

        slot.pending.extend(recorder.finish())

    # -- timing phase ---------------------------------------------------------

    def _service_op(
        self, pu: ProcessingUnit, slot, first: bool
    ) -> None:
        """Apply the slot's next recorded operation to its clock."""
        cfg, stats = self.config, self.stats
        kind, address, src, pre = slot.pending.popleft()
        if first:
            # The step's first operation claims the PU's single-issue port.
            start = max(slot.time, pu.next_free)
            pu.next_free = start + cfg.issue_cycles
            slot.time = start + pre
        else:
            slot.time += pre
        stats.compute_cycles += pre
        if kind == _OP_END:
            return
        if kind == _OP_VERTEX:
            partition_index = address % cfg.num_partitions
        else:
            partition_index = (
                address // cfg.edge_line_entries
            ) % cfg.num_partitions
        start = max(slot.time, self.partition_free[partition_index])
        self.partition_free[partition_index] = start + 1
        trace = self.access_trace
        if trace is not None:
            # Stamp the trace clock with the request's service time; the
            # hierarchy observers emit at this timestamp.
            trace.cycle = start
        if kind == _OP_VERTEX:
            level = self.hierarchy.access_vertex(address)
        else:
            level = self.hierarchy.access_edge(address, src)
        if level is AccessLevel.HIGH:
            done = start + cfg.spm_latency
        elif level is AccessLevel.LOW_HIT:
            done = start + cfg.cache_hit_latency
        else:
            done = self.dram.service(start, address)
            ins = self.instrument
            if ins is not None:
                ins.dram_fetch(
                    pu.index,
                    slot.slot_id,
                    kind,
                    address,
                    ts=start,
                    dur=done - start,
                    channel=address % cfg.dram_channels,
                )
        if kind == _OP_VERTEX:
            if level is AccessLevel.HIGH:
                stats.vertex_high_hits += 1
            elif level is AccessLevel.LOW_HIT:
                stats.vertex_low_hits += 1
            else:
                stats.vertex_misses += 1
            stats.vertex_wait_cycles += done - slot.time
        else:
            if level is AccessLevel.HIGH:
                stats.edge_high_hits += 1
            elif level is AccessLevel.LOW_HIT:
                stats.edge_low_hits += 1
            else:
                stats.edge_misses += 1
            stats.edge_wait_cycles += done - slot.time
        slot.time = done

    # -- main loop ----------------------------------------------------------

    def run(self, app: Application) -> SimResult:
        """Execute ``app`` to completion; returns stats + mining results."""
        self._reset()
        graph, cfg, stats = self.graph, self.config, self.stats
        app.prepare(graph)
        dispatch = dispatch_roots(
            (v for v in range(graph.num_vertices) if app.root_filter(graph, v)),
            cfg.num_pus,
            cfg.prefetch_interval,
            policy=cfg.arbitrator,
            degrees=graph.degrees(),
        )
        pus = [ProcessingUnit(p, cfg) for p in range(cfg.num_pus)]
        ins = self.instrument
        if ins is not None:
            ins.begin_run(cfg.num_pus, stats)

        heap: list[tuple[int, int, int, int]] = []
        seq = 0
        for p in range(cfg.num_pus):
            for s in range(cfg.slots_per_pu):
                heapq.heappush(heap, (0, seq, p, s))
                seq += 1

        while heap:
            t, _, p, s = heapq.heappop(heap)
            pu = pus[p]
            slot = pu.slots[s]
            if t > slot.time:
                slot.time = t
            if ins is not None:
                ins.advance(t, stats, pus)

            if slot.pending:
                before = slot.time
                self._service_op(pu, slot, first=False)
                slot.busy_cycles += slot.time - before
                if not slot.pending:
                    if slot.idle:
                        pu.busy_slots -= 1
                    if ins is not None:
                        ins.step_finished(p, s, slot.time)
                heapq.heappush(heap, (slot.time, seq, p, s))
                seq += 1
                continue

            if slot.idle:
                item = dispatch.pop(p)
                if item is not None:
                    root, arrival = item
                    slot.time = max(slot.time, arrival)
                    slot.stack.append(Frame((root,), (0,)))
                    slot.roots_started += 1
                    stats.roots_dispatched += 1
                    pu.busy_slots += 1
                    pu.stealing_buffer.push(s)
                    if ins is not None:
                        ins.root_dispatched(p, s, root, slot.time)
                elif cfg.work_stealing and pu.busy_slots > 0:
                    stats.steal_attempts += 1
                    if ins is not None:
                        ins.steal_attempted(p, s, slot.time)
                    stolen = pu.try_steal(slot)
                    if stolen is not None:
                        slot.stack.append(stolen)
                        stats.steals += 1
                        pu.busy_slots += 1
                        pu.stealing_buffer.push(s)
                        if ins is not None:
                            ins.steal_succeeded(p, s, slot.time)
                    else:
                        heapq.heappush(
                            heap, (slot.time + _STEAL_RETRY_CYCLES, seq, p, s)
                        )
                        seq += 1
                        continue
                else:
                    continue  # slot parks: no roots, nothing to steal

            # Record the next step; its first operation claims the issue
            # port now, the rest replay as later events.
            if ins is not None:
                ins.step_started(p, s, slot.time, len(slot.stack))
            self._record_step(pu, slot, app)
            before = slot.time
            self._service_op(pu, slot, first=True)
            slot.busy_cycles += slot.time - before
            if not slot.pending:
                if slot.idle:
                    pu.busy_slots -= 1
                if ins is not None:
                    ins.step_finished(p, s, slot.time)
            heapq.heappush(heap, (slot.time, seq, p, s))
            seq += 1

        app.finalize(graph)
        stats.cycles = max(
            (slot.time for pu in pus for slot in pu.slots), default=0
        )
        stats.pu_finish_cycles = [
            max((slot.time for slot in pu.slots), default=0) for pu in pus
        ]
        stats.pu_busy_cycles = [
            sum(slot.busy_cycles for slot in pu.slots) for pu in pus
        ]
        if ins is not None:
            ins.finish_run(stats, pus)
        return SimResult(stats=stats, mining=app.result(), config=cfg)
