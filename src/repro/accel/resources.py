"""FPGA resource-utilization model (paper Table II).

Estimates LUT / register / BRAM utilization of a GRAMER configuration on
the paper's part (XCU250: 1.68M LUTs, 3.37M registers, 11.8MB BRAM).  BRAM
follows directly from the configured on-chip memory plus the per-PU buffers;
logic is a per-module cost model calibrated so the default configuration
lands at the paper's ~25% LUT / ~13% register / ~66% BRAM, with FSM/MC
slightly above CF (their pattern-enumeration datapath).  A modeled
substitute for synthesis — see DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import GramerConfig

__all__ = ["FPGA_XCU250", "FPGAPart", "ResourceReport", "estimate_resources"]


@dataclass(frozen=True)
class FPGAPart:
    """Available resources of the target FPGA."""

    name: str
    luts: int
    registers: int
    bram_bytes: int


FPGA_XCU250 = FPGAPart(
    name="XCU250-2LFIGD2104E",
    luts=1_680_000,
    registers=3_370_000,
    bram_bytes=int(11.8 * 2**20),
)

# Per-module logic costs (calibrated against Table II's CF column at the
# paper configuration; the FSM/MC deltas come from their pattern datapaths).
_LUTS_PER_PU = 42_489
_REGS_PER_PU = 43_045
_LUTS_PER_SLOT = 380
_REGS_PER_SLOT = 420
_LUTS_FRONTEND = 38_000  # prefetcher + arbitrator + crossbar + controllers
_REGS_FRONTEND = 42_000
_PATTERN_DATAPATH_LUTS = {"CF": 0, "FSM": 294, "MC": 84}
_PATTERN_DATAPATH_REGS = {"CF": 0, "FSM": 295, "MC": 169}
_ANCESTOR_RECORD_BYTES = 8  # compacted (VID, offset)

# On-chip graph-memory entries implied by Table II's 65.7% BRAM figure
# (back-computed: 0.657 × 11.8 MB minus the ancestor buffers, at 8 B/entry).
PAPER_ONCHIP_ENTRIES = 1_014_000


@dataclass(frozen=True)
class ResourceReport:
    """Utilization of one configuration on one part."""

    part: FPGAPart
    luts_used: int
    registers_used: int
    bram_bytes_used: int
    clock_mhz: float

    @property
    def lut_utilization(self) -> float:
        """LUTs used / available."""
        return self.luts_used / self.part.luts

    @property
    def register_utilization(self) -> float:
        """Registers used / available."""
        return self.registers_used / self.part.registers

    @property
    def bram_utilization(self) -> float:
        """BRAM bytes used / available."""
        return self.bram_bytes_used / self.part.bram_bytes

    def as_row(self) -> dict[str, str]:
        """Table II style row."""
        return {
            "LUT": f"{self.lut_utilization:.2%}",
            "Register": f"{self.register_utilization:.2%}",
            "BRAM": f"{self.bram_utilization:.2%}",
            "Clock Rate": f"{self.clock_mhz:.0f}MHz",
        }


def estimate_resources(
    config: GramerConfig,
    app_name: str = "CF",
    part: FPGAPart = FPGA_XCU250,
) -> ResourceReport:
    """Estimate Table II's row for ``app_name`` under ``config``."""
    from .clockmodel import clock_rate_mhz

    pu_luts = config.num_pus * (
        _LUTS_PER_PU
        + config.slots_per_pu * _LUTS_PER_SLOT
        + _PATTERN_DATAPATH_LUTS.get(app_name, 0)
    )
    pu_regs = config.num_pus * (
        _REGS_PER_PU
        + config.slots_per_pu * _REGS_PER_SLOT
        + _PATTERN_DATAPATH_REGS.get(app_name, 0)
    )
    buffer_bytes = (
        config.num_pus
        * config.slots_per_pu
        * config.ancestor_depth
        * _ANCESTOR_RECORD_BYTES
    )
    bram = config.onchip_bytes + buffer_bytes
    return ResourceReport(
        part=part,
        luts_used=pu_luts + _LUTS_FRONTEND,
        registers_used=pu_regs + _REGS_FRONTEND,
        bram_bytes_used=bram,
        clock_mhz=clock_rate_mhz(config, app_name),
    )
