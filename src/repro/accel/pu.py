"""Processing-unit state (paper §III, §V).

A PU owns a slot buffer (16 slot IDs), one ancestor buffer per slot, a
stealing buffer, and a single-issue scheduler port ("the Scheduler ...
schedules one valid embedding per cycle").  The simulator models the issue
port as a ``next_free`` resource timestamp and each slot as a
:class:`~repro.accel.scheduler.SlotContext`.
"""

from __future__ import annotations

from repro.mining.engine import Frame

from .config import GramerConfig
from .scheduler import SlotContext, StealingBuffer, steal_from_stack

__all__ = ["ProcessingUnit"]


class ProcessingUnit:
    """One GRAMER PU: slots, stealing buffer, issue port."""

    def __init__(self, index: int, config: GramerConfig) -> None:
        self.index = index
        self.config = config
        self.slots = [SlotContext(i) for i in range(config.slots_per_pu)]
        self.stealing_buffer = StealingBuffer(config.slots_per_pu)
        self.next_free = 0  # scheduler issue port availability (cycles)
        self.busy_slots = 0
        # Per-PU LFSR seed for the random victim selector of [8].
        self._lfsr = (index * 0x9E3779B9 + 0x1234567) & 0xFFFFFFFF or 1

    def _lfsr_next(self) -> int:
        x = self._lfsr
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        self._lfsr = x
        return x

    def try_steal(self, thief_slot: SlotContext) -> Frame | None:
        """Attempt to steal work for ``thief_slot`` from a busy sibling.

        With ``steal_victim_select='stealing_buffer'`` the PU pops recorded
        busy slot IDs (skipping stale ones) until a splittable stack is
        found; with ``'random'`` a single LFSR-chosen slot is probed, which
        frequently lands on an idle slot — exactly the weakness §V-C cites.
        """
        if self.config.steal_victim_select == "random":
            victim = self.slots[self._lfsr_next() % len(self.slots)]
            if victim is thief_slot or victim.idle:
                return None
            return steal_from_stack(victim.stack)

        for _ in range(len(self.stealing_buffer) or 0):
            slot_id = self.stealing_buffer.pop()
            if slot_id is None:
                return None
            victim = self.slots[slot_id]
            if victim is thief_slot or victim.idle:
                continue
            stolen = steal_from_stack(victim.stack)
            if stolen is not None:
                # The victim is still busy with its remaining half.
                self.stealing_buffer.push(slot_id)
                return stolen
        return None
