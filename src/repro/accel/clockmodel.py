"""Analytic clock-rate model (paper Table IV).

The paper synthesizes three pipeline design points:

========================  ====== ====== ======
Design                      CF    FSM    MC
========================  ====== ====== ======
w/o ancestor buffers       80MHz  78MHz  78MHz
w/ ancestor buffers        97MHz  96MHz  96MHz
w/ AB + compaction        213MHz 207MHz 207MHz
========================  ====== ====== ======

There is no synthesis toolchain here, so we model the dominant critical-path
effect the table demonstrates:

* **w/o ancestor buffers** — the entire ancestor state of every slot
  (each ancestor's full vertex list, ``depth × (VID + offset)`` bits per
  record) is forwarded through the pipeline registers; the critical path
  grows linearly with the forwarded width (wiring/mux fan-in).
* **w/ ancestor buffers** — the state moves into per-slot buffers; the path
  becomes a buffer row read whose delay grows with the *row width*, still
  a whole uncompacted embedding record (``depth × 64`` bits).
* **w/ compaction** — each record shrinks to one (VID, offset) pair
  (Fig. 10), so the row is 64 bits wide.

Delay model: ``base + wire_per_bit × forwarded_bits`` for forwarding,
``base + row_per_bit × row_bits`` for buffer rows.  The three constants are
calibrated against the CF column of Table IV at the paper's configuration
(16 slots, depth-16 ancestor buffers); the FSM/MC columns then follow from
their extra pattern-accumulator state (§VI-A notes MC/FSM "consume slightly
more resources because they need to enumerate both patterns and
embeddings").  This is a modeled substitute for synthesis — see DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .config import GramerConfig

__all__ = ["ClockModelParams", "clock_rate_mhz", "table4_design_points"]

_RECORD_BITS = 64  # one (VID, offset) pair: 32 + 32 bits


@dataclass(frozen=True)
class ClockModelParams:
    """Delay constants (ns), calibrated on Table IV's CF column."""

    base_ns: float = 4.316  # extend/check datapath logic depth
    wire_per_bit_ns: float = 3.122e-5  # forwarding network, per state bit
    row_per_bit_ns: float = 5.844e-3  # buffer row read, per row bit
    app_extra_state_bits: dict[str, int] = field(
        default_factory=lambda: {"CF": 0, "FSM": 32, "MC": 32}
    )

    def extra_bits(self, app_name: str) -> int:
        """Pattern-enumeration state carried for an application."""
        return self.app_extra_state_bits.get(app_name, 0)


def clock_rate_mhz(
    config: GramerConfig,
    app_name: str = "CF",
    ancestor_buffers: bool = True,
    compaction: bool = True,
    params: ClockModelParams | None = None,
) -> float:
    """Predicted clock (MHz) for one design point of Table IV."""
    if compaction and not ancestor_buffers:
        raise ValueError("compaction requires ancestor buffers")
    p = params if params is not None else ClockModelParams()
    extra = p.extra_bits(app_name)
    depth = config.ancestor_depth
    full_record_bits = depth * _RECORD_BITS  # uncompacted: all vertices
    if not ancestor_buffers:
        forwarded = (
            config.slots_per_pu * depth * full_record_bits
            + config.slots_per_pu * extra
        )
        delay = p.base_ns + p.wire_per_bit_ns * forwarded
    elif not compaction:
        delay = p.base_ns + p.row_per_bit_ns * (full_record_bits + extra)
    else:
        delay = p.base_ns + p.row_per_bit_ns * (_RECORD_BITS + extra)
    return 1000.0 / delay


def table4_design_points(
    config: GramerConfig | None = None,
    params: ClockModelParams | None = None,
) -> dict[str, dict[str, float]]:
    """The full Table IV grid: design point -> application -> MHz."""
    cfg = config if config is not None else GramerConfig()
    grid: dict[str, dict[str, float]] = {}
    for label, ab, compact in (
        ("w/o AB", False, False),
        ("w/ AB", True, False),
        ("w/ AB + Compaction", True, True),
    ):
        grid[label] = {
            app: clock_rate_mhz(cfg, app, ab, compact, params)
            for app in ("CF", "FSM", "MC")
        }
    return grid
