"""Fast-path GRAMER engine: the reference model with the interpreter cost cut.

:class:`FastGramerSimulator` executes the *same* discrete-event model as
:class:`~repro.accel.sim.GramerSimulator` — same functional/timing phase
split, same global time-ordered event loop, same LAMH/DRAM state machines —
but restructured for throughput:

* **Flattened memory state.**  Cache sets live in flat tag/rank/last-access
  arrays indexed by ``set * ways + way`` (tag ``-1`` = invalid) instead of
  per-line objects; hit scans, fills and the Equation-2 victim search are
  inlined over those arrays.  Sizing is not re-derived: the reference
  :func:`~repro.memory.hierarchy.build_hierarchy` runs once and the flat
  model is extracted from the objects it built, so cutoff/num_sets/τ
  validation rules are shared by construction.
* **Batched slot state.**  Per-slot clocks, busy counters and recorded-op
  queues are parallel arrays indexed by global slot id; partition and DRAM
  channel queues are plain integer arrays updated with branchless max
  arithmetic.
* **Fused functional step.**  ``advance_frame`` + ``check_candidate`` +
  the adjacency search are inlined with direct appends to the op list,
  eliminating the per-access recorder calls, and the CSR arrays are
  accessed as Python lists (numpy scalar indexing dominates the reference
  profile).
* **Event-loop short-circuit.**  The model maintains at most one heap entry
  per slot, and a freshly pushed entry carries the largest sequence number
  (ties lose).  So when a slot's next event time is strictly earlier than
  the current heap head, the push/pop pair is skipped and the slot
  continues inline — the pop order is provably unchanged.

Equivalence contract
--------------------
For every graph/config/application, ``FastGramerSimulator(...).run(app)``
must produce byte-identical ``SimStats.as_dict()`` and mining results to
the reference engine.  This is enforced by the differential harness
(``tests/differential/``), the golden fixtures
(``tests/experiments/golden/``) and the Table III determinism test.  Any
behavioural change to the reference model must be mirrored here (and will
be caught by those suites if it is not).

Observability hooks are *not* supported: instrumented runs observe
per-event state that this engine deliberately does not materialise, so
:func:`~repro.accel.sim.make_simulator` forces the reference engine
whenever an instrument is attached.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.graph.csr import CSRGraph
from repro.memory.dram import DRAMModel
from repro.memory.hierarchy import build_hierarchy
from repro.memory.policies import LocalityPreservedPolicy, LRUPolicy
from repro.mining.apps.base import Application
from repro.mining.engine import Frame

from .config import GramerConfig
from .frontend import dispatch_roots
from .scheduler import StealingBuffer, steal_from_stack
from .sim import (
    _STEAL_RETRY_CYCLES,
    AncestorBufferOverflowError,
    SimResult,
    resolve_vertex_rank,
)
from .stats import SimStats

__all__ = ["FastGramerSimulator"]


class FastGramerSimulator:
    """Drop-in fast engine for :class:`~repro.accel.sim.GramerSimulator`.

    Same constructor contract as the reference engine except that
    ``instrument`` must be ``None`` (use the factory, which routes
    instrumented runs to the reference engine).
    """

    def __init__(
        self,
        graph: CSRGraph,
        config: GramerConfig | None = None,
        vertex_rank: np.ndarray | None = None,
        use_on1_ranks: bool = True,
        instrument: object | None = None,
    ) -> None:
        if instrument is not None:
            raise ValueError(
                "the fast engine does not support observability hooks; "
                "use make_simulator(), which forces engine='reference' "
                "for instrumented runs"
            )
        self.graph = graph
        self.config = config if config is not None else GramerConfig()
        self.vertex_rank = resolve_vertex_rank(graph, vertex_rank, use_on1_ranks)
        self.stats = SimStats()

    # The run loop is one deliberately monolithic function: every helper
    # call it avoids is ~100ns × tens of millions of events.  Each block is
    # annotated with the reference-model code it transcribes.
    def run(self, app: Application) -> SimResult:  # noqa: C901
        """Execute ``app`` to completion; returns stats + mining results."""
        graph, cfg = self.graph, self.config

        # -- sizing: run the reference builders once, extract a flat model --
        hierarchy = build_hierarchy(
            graph,
            total_entries=cfg.onchip_entries,
            vertex_rank=self.vertex_rank,
            tau=cfg.tau,
            low_policy=cfg.low_policy,
            lam=cfg.lam,
            ways=cfg.cache_ways,
            vertex_line=cfg.vertex_line_entries,
            edge_line=cfg.edge_line_entries,
        )
        # Instantiated purely so DRAM parameter validation stays shared.
        DRAMModel(
            latency_cycles=cfg.dram_latency,
            channels=cfg.dram_channels,
            cycles_per_transfer=cfg.dram_cycles_per_transfer,
        )
        v_side = hierarchy.vertex_side
        e_side = hierarchy.edge_side
        v_cut = v_side.scratchpad.cutoff
        e_cut = e_side.scratchpad.cutoff
        vcache = v_side.low_cache
        ecache = e_side.low_cache
        shared = vcache is ecache  # uniform-LRU baseline: one cache, offset edges

        policy = vcache.policy
        if isinstance(policy, LocalityPreservedPolicy):
            locality = True
            lam = policy.lam
            rank_scale = policy.rank_scale
        elif isinstance(policy, LRUPolicy):
            locality = False
            lam = rank_scale = 0.0
        else:  # pragma: no cover - build_hierarchy only emits the two above
            raise TypeError(
                f"fast engine cannot replicate policy {policy.name!r}"
            )

        ways = vcache.ways
        v_sets = vcache.num_sets
        v_line = vcache.line_size
        v_tags = [-1] * (v_sets * ways)
        v_ranks = [0] * (v_sets * ways)
        v_last = [0] * (v_sets * ways)
        v_clock = 0  # the shared cache's clock in the uniform baseline
        if shared:
            e_tags, e_ranks, e_last = v_tags, v_ranks, v_last
            e_sets, e_line = v_sets, v_line
        else:
            e_sets = ecache.num_sets
            e_line = ecache.line_size
            e_tags = [-1] * (e_sets * ways)
            e_ranks = [0] * (e_sets * ways)
            e_last = [0] * (e_sets * ways)
        e_clock = 0
        e_addr_off = e_side.address_offset

        # Python lists: numpy scalar indexing is the reference profile's
        # single largest line item, and values are identical post-tolist().
        vrank = self.vertex_rank.tolist()
        erank = (
            hierarchy.edge_rank.tolist()
            if hierarchy.edge_rank is not None
            else None
        )
        offsets = graph.offsets.tolist()
        neighbors = graph.neighbors.tolist()

        # -- config scalars ------------------------------------------------
        issue_cycles = cfg.issue_cycles
        check_cycles = cfg.check_cycles
        process_cycles = cfg.process_cycles
        spm_lat = cfg.spm_latency
        hit_lat = cfg.cache_hit_latency
        nparts = cfg.num_partitions
        part_line = cfg.edge_line_entries
        nch = cfg.dram_channels
        d_lat = cfg.dram_latency
        d_cpt = cfg.dram_cycles_per_transfer
        ancestor_depth = cfg.ancestor_depth
        stealing = cfg.work_stealing
        random_steal = cfg.steal_victim_select == "random"
        scan_probe = cfg.probe_mode == "scan"
        P = cfg.num_pus
        S = cfg.slots_per_pu
        G = P * S

        # -- application + root dispatch (shared with the reference) -------
        app.prepare(graph)
        clique_only = app.clique_only
        max_vertices = app.max_vertices
        app_filter = app.filter
        app_process = app.process
        app_aggregate = app.aggregate_filter
        dispatch = dispatch_roots(
            (v for v in range(graph.num_vertices) if app.root_filter(graph, v)),
            P,
            cfg.prefetch_interval,
            policy=cfg.arbitrator,
            degrees=graph.degrees(),
        )
        dqueues = dispatch.queues

        # -- batched slot / PU state (global slot id g = p * S + s) --------
        # Busy cycles are derived, not accumulated: a slot is busy from t=0
        # to its final time except for idle gaps (dispatch arrival waits,
        # steal-retry backoffs), which are rare and recorded where they
        # occur.  busy[g] == final_time[g] - gap[g] exactly matches the
        # reference's per-event (after - before) sums.
        slot_time = [0] * G
        slot_gap = [0] * G
        stacks: list[list[Frame]] = [[] for _ in range(G)]
        slot_ops: list[list[tuple[int, int, int, int]]] = [[] for _ in range(G)]
        pu_free = [0] * P
        pu_busy = [0] * P
        sbufs = [StealingBuffer(S) for _ in range(P)]
        lfsr = [((p * 0x9E3779B9 + 0x1234567) & 0xFFFFFFFF) or 1 for p in range(P)]
        pu_of = [g // S for g in range(G)]
        sid_of = [g % S for g in range(G)]
        part_free = [0] * nparts
        ch_free = [0] * nch

        # -- stats accumulators (folded into SimStats at the end) ----------
        candidates_checked = 0
        embeddings_accepted = 0
        roots_dispatched = 0
        steals = 0
        steal_attempts = 0
        v_hi = v_lo = v_miss = 0
        e_hi = e_lo = e_miss = 0
        compute_cycles = 0
        v_wait = e_wait = 0

        # Heap entries are single ints: (time << 64) | (seq << 16) | g.
        # Integer comparison is substantially cheaper than tuple comparison
        # in the pop/push sift loops, and ordering is identical to the
        # reference's (t, seq, p, s) tuples: seq strictly increases per
        # push, so same-time entries pop in push order.  Seeds match the
        # reference: every slot at t=0 in row-major (p, s) order.
        if G > 0xFFFF:
            raise ValueError(
                "fast engine supports at most 65535 slots; "
                "use engine='reference' for larger machines"
            )
        heap: list[int] = [(g << 16) | g for g in range(G)]
        seq = G
        heappush = heapq.heappush

        try:
            while heap:
                ev = heapq.heappop(heap)
                g = ev & 0xFFFF
                t = ev >> 64
                # Inner loop: keep driving slot g while its next event is
                # provably the next pop (strictly earlier than the heap
                # head; a pushed entry would lose every tie on seq).
                while True:
                    tg = slot_time[g]
                    if t > tg:
                        slot_gap[g] += t - tg
                        tg = t
                    ops = slot_ops[g]
                    if ops:
                        kind, address, src, pre = ops.pop()
                        tg += pre
                    else:
                        # -- slot needs a new step (reference: idle branch +
                        # _record_step) --------------------------------------
                        p = pu_of[g]
                        stack = stacks[g]
                        if not stack:
                            q = dqueues[p]
                            if q:
                                root, arrival = q.popleft()
                                if arrival > tg:
                                    slot_gap[g] += arrival - tg
                                    tg = arrival
                                stack.append(Frame((root,), (0,)))
                                roots_dispatched += 1
                                pu_busy[p] += 1
                                sbufs[p].push(sid_of[g])
                            elif stealing and pu_busy[p] > 0:
                                steal_attempts += 1
                                # Inline ProcessingUnit.try_steal.
                                stolen = None
                                base_g = p * S
                                sid = sid_of[g]
                                if random_steal:
                                    x = lfsr[p]
                                    x ^= (x << 13) & 0xFFFFFFFF
                                    x ^= x >> 17
                                    x ^= (x << 5) & 0xFFFFFFFF
                                    lfsr[p] = x
                                    vic = x % S
                                    if vic != sid and stacks[base_g + vic]:
                                        stolen = steal_from_stack(
                                            stacks[base_g + vic]
                                        )
                                else:
                                    buf = sbufs[p]
                                    for _ in range(len(buf)):
                                        vic = buf.pop()
                                        if vic is None:
                                            break
                                        if vic == sid or not stacks[base_g + vic]:
                                            continue
                                        frame = steal_from_stack(
                                            stacks[base_g + vic]
                                        )
                                        if frame is not None:
                                            buf.push(vic)
                                            stolen = frame
                                            break
                                if stolen is not None:
                                    stack.append(stolen)
                                    steals += 1
                                    pu_busy[p] += 1
                                    sbufs[p].push(sid)
                                else:
                                    slot_time[g] = tg
                                    nt = tg + _STEAL_RETRY_CYCLES
                                    pk = (nt << 64) | (seq << 16) | g
                                    if heap and pk >= heap[0]:
                                        heappush(heap, pk)
                                        seq += 1
                                        break
                                    t = nt
                                    continue
                            else:
                                # Slot parks: no roots, nothing to steal.
                                slot_time[g] = tg
                                break

                        # -- functional phase: fused _record_step ------------
                        frame = stack[-1]
                        ops = []
                        append = ops.append
                        pre = issue_cycles
                        vertices = frame.vertices
                        m_idx = frame.member_idx
                        m_lim = frame.member_limit
                        candidate = None
                        # advance_frame, with offsets/neighbors as lists
                        while m_idx < m_lim:
                            mb = frame.member_base
                            if mb < 0:
                                member = vertices[m_idx]
                                append((0, member, 0, pre))
                                pre = 0
                                mb = offsets[member]
                                frame.member_base = mb
                                frame.member_degree = offsets[member + 1] - mb
                            bound = frame.member_degree
                            cl = frame.cursor_limit
                            if cl is not None and cl < bound:
                                bound = cl
                            ec = frame.edge_cursor
                            if ec < bound:
                                index = mb + ec
                                frame.edge_cursor = ec + 1
                                append((1, index, vertices[m_idx], pre))
                                pre = 0
                                candidate = neighbors[index]
                                break
                            m_idx += 1
                            frame.member_idx = m_idx
                            frame.edge_cursor = 0
                            frame.member_base = -1
                            frame.cursor_limit = None

                        # compute_cycles is the order-independent sum of all
                        # `pre` values ever serviced, so it is accumulated
                        # here (once per step) rather than per event.
                        if candidate is None:
                            stack.pop()
                            pre += 1  # traceback: dequeue the ancestor record
                            compute_cycles += issue_cycles + 1
                        else:
                            candidates_checked += 1
                            midx = frame.member_idx
                            # id_checks_pass (pure ID comparisons)
                            if candidate in vertices or candidate < vertices[0]:
                                accepted = False
                            else:
                                accepted = True
                                nverts = len(vertices)
                                i = midx + 1
                                while i < nverts:
                                    if candidate < vertices[i]:
                                        accepted = False
                                        break
                                    i += 1
                            column = 0
                            if accepted:
                                # check_candidate connectivity loop
                                column = 1 << midx
                                for i, member in enumerate(vertices):
                                    if i == midx:
                                        continue
                                    append((0, member, 0, 0))
                                    lo = offsets[member]
                                    hi = offsets[member + 1]
                                    adjacent = False
                                    if scan_probe:
                                        for index in range(lo, hi):
                                            append((1, index, member, 0))
                                            value = neighbors[index]
                                            if value == candidate:
                                                adjacent = True
                                                break
                                            if value > candidate:
                                                break
                                    else:
                                        while lo < hi:
                                            mid = (lo + hi) // 2
                                            append((1, mid, member, 0))
                                            value = neighbors[mid]
                                            if value == candidate:
                                                adjacent = True
                                                break
                                            if value < candidate:
                                                lo = mid + 1
                                            else:
                                                hi = mid
                                    if adjacent:
                                        if i < midx:
                                            accepted = False
                                            break
                                        column |= 1 << i
                                    elif clique_only:
                                        accepted = False
                                        break
                            pre += check_cycles
                            compute_cycles += issue_cycles + check_cycles
                            if accepted:
                                new_vertices = vertices + (candidate,)
                                new_columns = frame.columns + (column,)
                                if app_filter(graph, new_vertices, new_columns):
                                    app_process(graph, new_vertices, new_columns)
                                    pre += process_cycles
                                    compute_cycles += process_cycles
                                    embeddings_accepted += 1
                                    if len(new_vertices) < max_vertices and (
                                        app_aggregate(
                                            graph, new_vertices, new_columns
                                        )
                                    ):
                                        if len(stack) >= ancestor_depth:
                                            raise AncestorBufferOverflowError(
                                                "extension depth exceeds "
                                                "ancestor buffer capacity "
                                                f"{ancestor_depth}"
                                            )
                                        stack.append(
                                            Frame(new_vertices, new_columns)
                                        )
                                        sbufs[p].push(sid_of[g])
                        if pre or not ops:
                            append((2, 0, 0, pre))  # _RecordingMemory.finish
                        # Consumed back-to-front with list.pop(): cheaper
                        # than cursor bookkeeping, and `ops` doubles as the
                        # "step in flight" flag once reversed.
                        ops.reverse()
                        slot_ops[g] = ops
                        kind, address, src, pre = ops.pop()
                        # The step's first op claims the PU issue port (the
                        # continuation ops above just did `tg += pre`).
                        nf = pu_free[p]
                        start = tg if tg > nf else nf
                        pu_free[p] = start + issue_cycles
                        tg = start + pre

                    # -- timing phase: inlined _service_op -------------------
                    if kind == 0:
                        pi = address % nparts
                        pf = part_free[pi]
                        start = tg if tg > pf else pf
                        part_free[pi] = start + 1
                        rank = vrank[address]
                        if rank < v_cut:
                            done = start + spm_lat
                            v_hi += 1
                        else:
                            v_clock += 1
                            tag = address // v_line
                            base = (tag % v_sets) * ways
                            end = base + ways
                            w = base
                            hit = False
                            while w < end:
                                if v_tags[w] == tag:
                                    v_last[w] = v_clock
                                    hit = True
                                    break
                                w += 1
                            if hit:
                                done = start + hit_lat
                                v_lo += 1
                            else:
                                victim = -1
                                w = base
                                while w < end:
                                    if v_tags[w] == -1:
                                        victim = w
                                        break
                                    w += 1
                                if victim < 0:
                                    if locality:
                                        victim = base
                                        best = (
                                            v_ranks[base] * rank_scale
                                            + lam * (v_clock - v_last[base])
                                        )
                                        w = base + 1
                                        while w < end:
                                            score = (
                                                v_ranks[w] * rank_scale
                                                + lam * (v_clock - v_last[w])
                                            )
                                            if score > best:
                                                best = score
                                                victim = w
                                            w += 1
                                    else:
                                        victim = base
                                        stale = v_last[base]
                                        w = base + 1
                                        while w < end:
                                            lw = v_last[w]
                                            if lw < stale:
                                                stale = lw
                                                victim = w
                                            w += 1
                                v_tags[victim] = tag
                                v_ranks[victim] = rank
                                v_last[victim] = v_clock
                                ch = address % nch
                                cf = ch_free[ch]
                                ds = start if start > cf else cf
                                ch_free[ch] = ds + d_cpt
                                done = ds + d_lat
                                v_miss += 1
                        v_wait += done - tg
                        tg = done
                    elif kind == 1:
                        pi = (address // part_line) % nparts
                        pf = part_free[pi]
                        start = tg if tg > pf else pf
                        part_free[pi] = start + 1
                        rank = erank[address] if erank is not None else vrank[src]
                        if rank < e_cut:
                            done = start + spm_lat
                            e_hi += 1
                        else:
                            if shared:
                                v_clock += 1
                                clk = v_clock
                            else:
                                e_clock += 1
                                clk = e_clock
                            tag = (address + e_addr_off) // e_line
                            base = (tag % e_sets) * ways
                            end = base + ways
                            w = base
                            hit = False
                            while w < end:
                                if e_tags[w] == tag:
                                    e_last[w] = clk
                                    hit = True
                                    break
                                w += 1
                            if hit:
                                done = start + hit_lat
                                e_lo += 1
                            else:
                                victim = -1
                                w = base
                                while w < end:
                                    if e_tags[w] == -1:
                                        victim = w
                                        break
                                    w += 1
                                if victim < 0:
                                    if locality:
                                        victim = base
                                        best = (
                                            e_ranks[base] * rank_scale
                                            + lam * (clk - e_last[base])
                                        )
                                        w = base + 1
                                        while w < end:
                                            score = (
                                                e_ranks[w] * rank_scale
                                                + lam * (clk - e_last[w])
                                            )
                                            if score > best:
                                                best = score
                                                victim = w
                                            w += 1
                                    else:
                                        victim = base
                                        stale = e_last[base]
                                        w = base + 1
                                        while w < end:
                                            lw = e_last[w]
                                            if lw < stale:
                                                stale = lw
                                                victim = w
                                            w += 1
                                e_tags[victim] = tag
                                e_ranks[victim] = rank
                                e_last[victim] = clk
                                # DRAM channels key on the raw edge index.
                                ch = address % nch
                                cf = ch_free[ch]
                                ds = start if start > cf else cf
                                ch_free[ch] = ds + d_cpt
                                done = ds + d_lat
                                e_miss += 1
                        e_wait += done - tg
                        tg = done
                    # kind == 2 (_OP_END): trailing compute only.

                    if not ops and not stacks[g]:
                        pu_busy[pu_of[g]] -= 1
                    slot_time[g] = tg
                    pk = (tg << 64) | (seq << 16) | g
                    if heap and pk >= heap[0]:
                        heappush(heap, pk)
                        seq += 1
                        break
                    t = tg
        finally:
            # The reference engine bumps this per candidate; fold the batch
            # in on every exit path so app state matches even on raise.
            app.candidates_checked += candidates_checked

        app.finalize(graph)
        stats = SimStats()
        stats.cycles = max(slot_time, default=0)
        stats.candidates_checked = candidates_checked
        stats.embeddings_accepted = embeddings_accepted
        stats.roots_dispatched = roots_dispatched
        stats.steals = steals
        stats.steal_attempts = steal_attempts
        stats.vertex_high_hits = v_hi
        stats.vertex_low_hits = v_lo
        stats.vertex_misses = v_miss
        stats.edge_high_hits = e_hi
        stats.edge_low_hits = e_lo
        stats.edge_misses = e_miss
        stats.compute_cycles = compute_cycles
        stats.vertex_wait_cycles = v_wait
        stats.edge_wait_cycles = e_wait
        stats.pu_finish_cycles = [
            max(slot_time[p * S:(p + 1) * S], default=0) for p in range(P)
        ]
        stats.pu_busy_cycles = [
            sum(slot_time[p * S:(p + 1) * S])
            - sum(slot_gap[p * S:(p + 1) * S])
            for p in range(P)
        ]
        self.stats = stats
        return SimResult(stats=stats, mining=app.result(), config=cfg)
