"""The GRAMER accelerator: configuration, simulator, and side models."""

from .bfs_model import BFSModeEstimate, estimate_bfs_mode
from .clockmodel import ClockModelParams, clock_rate_mhz, table4_design_points
from .config import ALVEO_U250_BRAM_BYTES, GramerConfig
from .energy import (
    EnergyBreakdown,
    EnergyParams,
    cpu_energy,
    gramer_energy,
)
from .resources import (
    FPGA_XCU250,
    FPGAPart,
    ResourceReport,
    estimate_resources,
)
from .fastsim import FastGramerSimulator
from .sim import (
    BIT_IDENTICAL_ENGINES,
    DEFAULT_ENGINE,
    ENGINES,
    AncestorBufferOverflowError,
    GramerSimulator,
    SimResult,
    make_simulator,
)
from .turbosim import TurboGramerSimulator
from .stats import SimStats

__all__ = [
    "BFSModeEstimate",
    "estimate_bfs_mode",
    "ClockModelParams",
    "clock_rate_mhz",
    "table4_design_points",
    "ALVEO_U250_BRAM_BYTES",
    "GramerConfig",
    "EnergyBreakdown",
    "EnergyParams",
    "cpu_energy",
    "gramer_energy",
    "FPGA_XCU250",
    "FPGAPart",
    "ResourceReport",
    "estimate_resources",
    "AncestorBufferOverflowError",
    "GramerSimulator",
    "FastGramerSimulator",
    "TurboGramerSimulator",
    "make_simulator",
    "ENGINES",
    "BIT_IDENTICAL_ENGINES",
    "DEFAULT_ENGINE",
    "SimResult",
    "SimStats",
]
