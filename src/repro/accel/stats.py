"""Simulation statistics.

Everything the evaluation section reads comes out of :class:`SimStats`:
cycle counts (Table III / Figs. 13-14), per-level memory hit ratios
(Fig. 12), access/energy counts (Fig. 11), stall attribution (the GRAMER
side of Fig. 3's methodology), and load-balance/steal counters (Fig. 13b).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SimStats"]


@dataclass
class SimStats:
    """Mutable counters accumulated by one simulation run."""

    cycles: int = 0
    candidates_checked: int = 0
    embeddings_accepted: int = 0
    roots_dispatched: int = 0
    steals: int = 0
    steal_attempts: int = 0

    # Memory access counts by (side, level).
    vertex_high_hits: int = 0
    vertex_low_hits: int = 0
    vertex_misses: int = 0
    edge_high_hits: int = 0
    edge_low_hits: int = 0
    edge_misses: int = 0

    # Cycle attribution (summed over slots; overlaps across slots allowed).
    compute_cycles: int = 0
    vertex_wait_cycles: int = 0
    edge_wait_cycles: int = 0

    # Per-PU busy time for load-balance analysis.
    pu_finish_cycles: list[int] = field(default_factory=list)
    pu_busy_cycles: list[int] = field(default_factory=list)

    @property
    def vertex_accesses(self) -> int:
        """Total vertex-memory requests."""
        return self.vertex_high_hits + self.vertex_low_hits + self.vertex_misses

    @property
    def edge_accesses(self) -> int:
        """Total edge-memory requests."""
        return self.edge_high_hits + self.edge_low_hits + self.edge_misses

    @property
    def vertex_hit_ratio(self) -> float:
        """On-chip hit ratio of the vertex memory (Fig. 12a metric)."""
        total = self.vertex_accesses
        return (
            (self.vertex_high_hits + self.vertex_low_hits) / total
            if total
            else 0.0
        )

    @property
    def edge_hit_ratio(self) -> float:
        """On-chip hit ratio of the edge memory (Fig. 12a metric)."""
        total = self.edge_accesses
        return (
            (self.edge_high_hits + self.edge_low_hits) / total if total else 0.0
        )

    @property
    def dram_accesses(self) -> int:
        """Requests that went off-chip."""
        return self.vertex_misses + self.edge_misses

    @property
    def load_imbalance(self) -> float:
        """Max-over-mean PU busy time (1.0 = perfectly balanced)."""
        if not self.pu_busy_cycles or sum(self.pu_busy_cycles) == 0:
            return 1.0
        mean = sum(self.pu_busy_cycles) / len(self.pu_busy_cycles)
        return max(self.pu_busy_cycles) / mean

    def seconds(self, clock_mhz: float) -> float:
        """Wall-clock time at the given clock."""
        return self.cycles / (clock_mhz * 1e6)
