"""Simulation statistics.

Everything the evaluation section reads comes out of :class:`SimStats`:
cycle counts (Table III / Figs. 13-14), per-level memory hit ratios
(Fig. 12), access/energy counts (Fig. 11), stall attribution (the GRAMER
side of Fig. 3's methodology), and load-balance/steal counters (Fig. 13b).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from itertools import zip_longest
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry

__all__ = ["SimStats"]


@dataclass
class SimStats:
    """Mutable counters accumulated by one simulation run."""

    cycles: int = 0
    candidates_checked: int = 0
    embeddings_accepted: int = 0
    roots_dispatched: int = 0
    steals: int = 0
    steal_attempts: int = 0

    # Memory access counts by (side, level).
    vertex_high_hits: int = 0
    vertex_low_hits: int = 0
    vertex_misses: int = 0
    edge_high_hits: int = 0
    edge_low_hits: int = 0
    edge_misses: int = 0

    # Cycle attribution (summed over slots; overlaps across slots allowed).
    compute_cycles: int = 0
    vertex_wait_cycles: int = 0
    edge_wait_cycles: int = 0

    # Per-PU busy time for load-balance analysis.
    pu_finish_cycles: list[int] = field(default_factory=list)
    pu_busy_cycles: list[int] = field(default_factory=list)

    @property
    def vertex_accesses(self) -> int:
        """Total vertex-memory requests."""
        return self.vertex_high_hits + self.vertex_low_hits + self.vertex_misses

    @property
    def edge_accesses(self) -> int:
        """Total edge-memory requests."""
        return self.edge_high_hits + self.edge_low_hits + self.edge_misses

    @property
    def vertex_hit_ratio(self) -> float:
        """On-chip hit ratio of the vertex memory (Fig. 12a metric)."""
        total = self.vertex_accesses
        return (
            (self.vertex_high_hits + self.vertex_low_hits) / total
            if total
            else 0.0
        )

    @property
    def edge_hit_ratio(self) -> float:
        """On-chip hit ratio of the edge memory (Fig. 12a metric)."""
        total = self.edge_accesses
        return (
            (self.edge_high_hits + self.edge_low_hits) / total if total else 0.0
        )

    @property
    def dram_accesses(self) -> int:
        """Requests that went off-chip."""
        return self.vertex_misses + self.edge_misses

    @property
    def load_imbalance(self) -> float:
        """Max-over-mean PU busy time (1.0 = perfectly balanced)."""
        if not self.pu_busy_cycles or sum(self.pu_busy_cycles) == 0:
            return 1.0
        mean = sum(self.pu_busy_cycles) / len(self.pu_busy_cycles)
        return max(self.pu_busy_cycles) / mean

    def seconds(self, clock_mhz: float) -> float:
        """Wall-clock time at the given clock."""
        return self.cycles / (clock_mhz * 1e6)

    def as_dict(self) -> dict[str, object]:
        """All counters as a plain dict (lists copied, JSON-friendly).

        The windowed timeline sampler differences consecutive ``as_dict``
        snapshots; the scalar fields are exactly the counters a window can
        attribute, so new fields become windowable automatically.
        """
        out: dict[str, object] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            out[spec.name] = list(value) if isinstance(value, list) else value
        return out

    @classmethod
    def merge(cls, runs: Iterable["SimStats"]) -> "SimStats":
        """Aggregate several runs into one summary ``SimStats``.

        Scalar counters sum.  Per-PU lists add element-wise, padding the
        shorter list with zeros so runs with different PU counts still
        merge (``cycles`` then reads as total simulated cycles across
        runs, not a concurrent makespan — callers wanting a makespan
        should track it separately).
        """
        merged = cls()
        for run in runs:
            for spec in fields(cls):
                ours = getattr(merged, spec.name)
                theirs = getattr(run, spec.name)
                if isinstance(ours, list):
                    setattr(
                        merged,
                        spec.name,
                        [
                            a + b
                            for a, b in zip_longest(ours, theirs, fillvalue=0)
                        ],
                    )
                else:
                    setattr(merged, spec.name, ours + theirs)
        return merged

    def publish(self, registry: "MetricsRegistry") -> None:
        """Publish counters into a metrics registry (labels, not suffixes)."""
        accesses = registry.counter(
            "sim_accesses_total", "memory requests by side and service level"
        )
        accesses.inc(self.vertex_high_hits, side="vertex", level="high")
        accesses.inc(self.vertex_low_hits, side="vertex", level="low")
        accesses.inc(self.vertex_misses, side="vertex", level="miss")
        accesses.inc(self.edge_high_hits, side="edge", level="high")
        accesses.inc(self.edge_low_hits, side="edge", level="low")
        accesses.inc(self.edge_misses, side="edge", level="miss")
        waits = registry.counter(
            "sim_wait_cycles_total", "slot-cycles stalled on memory by side"
        )
        waits.inc(self.vertex_wait_cycles, side="vertex")
        waits.inc(self.edge_wait_cycles, side="edge")
        registry.counter(
            "sim_compute_cycles_total", "slot-cycles of pipeline compute"
        ).inc(self.compute_cycles)
        registry.counter(
            "sim_cycles_total", "end-to-end simulated cycles"
        ).inc(self.cycles)
        steals = registry.counter(
            "sim_steal_events_total", "steal probes by outcome"
        )
        steals.inc(self.steals, outcome="hit")
        steals.inc(
            max(0, self.steal_attempts - self.steals), outcome="miss"
        )
        hit_ratio = registry.gauge(
            "sim_hit_ratio", "on-chip hit ratio by side (Fig. 12a metric)"
        )
        hit_ratio.set(self.vertex_hit_ratio, side="vertex")
        hit_ratio.set(self.edge_hit_ratio, side="edge")
        registry.gauge(
            "sim_load_imbalance", "max-over-mean PU busy cycles"
        ).set(self.load_imbalance)
