"""Command-line interface.

::

    gramer mine --graph edges.txt --app 3-CF
    gramer mine --dataset mico --app 4-MC --scale small
    gramer simulate --dataset p2p --app 5-CF --slots 16
    gramer experiment --only table3 fig12 --scale small --jobs 4
    gramer sweep --apps 3-CF 4-MC --datasets citeseer p2p --jobs 4
    gramer sweep --apps 3-CF --datasets citeseer --ledger run.jsonl
    gramer sweep --apps 3-CF --datasets citeseer --resume run.jsonl
    gramer sweep --apps 3-CF --datasets citeseer --ledger run.jsonl \\
                 --workers 3 --seal run.manifest.json
    gramer worker --apps 3-CF --datasets citeseer \\
                  --ledger run.jsonl --claims run.jsonl.claims
    gramer manifest seal run.manifest.json --apps 3-CF --datasets citeseer
    gramer manifest verify run.manifest.json
    gramer trace 3-CF citeseer --out trace.json
    gramer profile --dataset citeseer --app 3-CF --scale tiny
    gramer datasets
    gramer graph build --graph edges.txt
    gramer graph ls
    gramer graph verify

(``gramer`` is the console script; ``python -m repro.cli`` works too.)
"""

from __future__ import annotations

import argparse
import time

from repro.accel.energy import gramer_energy
from repro.accel.sim import (
    DEFAULT_ENGINE,
    ENGINES,
    AncestorBufferOverflowError,
    make_simulator,
)
from repro.graph.stats import degree_stats
from repro.mining.apps import make_app
from repro.mining.engine import run_dfs
from repro.mining.patterns import pattern_name

__all__ = ["main"]


def _resolve_graph(args, needs_labels: bool):
    from repro.experiments import datasets

    if args.graph:
        # Through the store: the file is parsed at most once per content,
        # then every later run memory-maps the materialized artifact.
        from repro.graph.store import default_graph_store

        store = default_graph_store()
        return store.open(store.import_edge_list(args.graph))
    if args.dataset:
        if needs_labels:
            return datasets.load_labeled(args.dataset, args.scale)
        return datasets.load(args.dataset, args.scale)
    raise SystemExit("specify --graph FILE or --dataset NAME")


def _print_result(result) -> None:
    print("embeddings by size:")
    for size, count in sorted(result.embeddings_by_size.items()):
        print(f"  {size}: {count:,}")
    for size, patterns in sorted(result.patterns_by_size.items()):
        print(f"patterns at size {size}:")
        for code, count in sorted(
            patterns.items(), key=lambda kv: -kv[1]
        )[:12]:
            print(f"  {pattern_name(code):30s} {count:>12,}")
    if result.summary:
        print("summary:", result.summary)


def _cmd_mine(args) -> None:
    app = make_app(args.app)
    graph = _resolve_graph(args, app.needs_labels)
    print(degree_stats(graph).describe())
    start = time.perf_counter()
    run_dfs(graph, app)
    print(f"mined in {time.perf_counter() - start:.2f}s "
          f"({app.candidates_checked:,} candidates checked)")
    _print_result(app.result())


def _cmd_simulate(args) -> None:
    from repro.accel.config import GramerConfig

    app = make_app(args.app)
    graph = _resolve_graph(args, app.needs_labels)
    data_entries = graph.num_vertices + len(graph.neighbors)
    config = GramerConfig(
        num_pus=args.pus,
        slots_per_pu=args.slots,
        onchip_entries=args.onchip_entries or max(64, data_entries // 4),
        work_stealing=not args.no_stealing,
    )
    instrument = None
    if args.trace:
        from repro.obs import SimInstrument

        instrument = SimInstrument(window_cycles=args.trace_window)
        if args.engine != "reference":
            print("note: traced runs use the reference engine "
                  "(obs hooks observe per-event state)")
    print(degree_stats(graph).describe())
    start = time.perf_counter()
    try:
        result = make_simulator(
            graph, config, engine=args.engine, instrument=instrument
        ).run(app)
    except AncestorBufferOverflowError:
        raise  # model-level outcome: identical in every engine
    except Exception as exc:
        if args.engine != "fast" or instrument is not None:
            # Only the fast engine degrades to the reference (they are
            # byte-identical); turbo results are tolerance-banded, so a
            # turbo failure must surface, not be silently substituted.
            raise
        # Graceful degradation (docs/resilience.md): one logged shot on
        # the reference engine before giving up on the run.
        print(f"fast engine failed ({type(exc).__name__}: {exc}); "
              f"falling back to the reference engine")
        result = make_simulator(
            graph, config, engine="reference", instrument=instrument
        ).run(app)
    stats = result.stats
    print(
        f"simulated in {time.perf_counter() - start:.2f}s host time\n"
        f"cycles {result.cycles:,} -> {result.seconds * 1e3:.3f} ms "
        f"@ {config.clock_mhz:.0f} MHz\n"
        f"hit ratios: vertex {stats.vertex_hit_ratio:.3f}, "
        f"edge {stats.edge_hit_ratio:.3f}; "
        f"DRAM {stats.dram_accesses:,}; steals {stats.steals:,}\n"
        f"on-chip energy {gramer_energy(stats, config).total_j * 1e3:.3f} mJ"
    )
    if instrument is not None:
        tracer = instrument.tracer
        path = tracer.write_chrome(args.trace)
        print(
            f"wrote {path} ({len(tracer)} events, "
            f"categories: {', '.join(sorted(tracer.categories()))})"
        )
    _print_result(result.mining)


def _cmd_experiment(args) -> None:
    from repro.experiments.run_all import main as run_all_main

    forwarded = ["--scale", args.scale, "--out", args.out]
    if args.only:
        forwarded += ["--only", *args.only]
    if args.jobs is not None:
        forwarded += ["--jobs", str(args.jobs)]
    if args.no_cache:
        forwarded += ["--no-cache"]
    run_all_main(forwarded)


#: ``gramer sweep`` exit codes (docs/resilience.md): 0 = every cell ok,
#: 3 = partial (some cells failed, some succeeded), 1 = total failure.
EXIT_OK = 0
EXIT_TOTAL_FAILURE = 1
EXIT_PARTIAL = 3
EXIT_INTERRUPTED = 130


def _sweep_specs(args) -> list:
    """Build the apps × datasets × backends grid shared by ``sweep``,
    ``worker``, and ``manifest`` — all three must derive the *same*
    spec list (and therefore the same spec digests) from the same flags.
    """
    from repro.experiments import datasets
    from repro.experiments.harness import cell_jobspec
    from repro.runtime import backend_names

    backends = args.backends or ["gramer", "fractal", "rstream"]
    known = backend_names()
    for backend in backends:
        if backend not in known:
            raise SystemExit(
                f"unknown backend {backend!r}; registered: {known}"
            )
    graphs = args.datasets or list(datasets.DATASET_ORDER)
    for name in graphs:
        if name not in datasets.DATASETS:
            raise SystemExit(
                f"unknown dataset {name!r}; see `gramer datasets`"
            )
    # Engine selection only applies to the simulator backend.  The default
    # engine stays out of the spec so artifact-cache keys are unchanged;
    # a non-default engine (reference, or the tolerance-banded turbo)
    # rides in params and therefore gets its own cache key.
    gramer_params = (
        {"engine": args.engine} if args.engine != DEFAULT_ENGINE else None
    )
    return [
        cell_jobspec(
            backend,
            app,
            graph,
            args.scale,
            params=gramer_params if backend == "gramer" else None,
        )
        for app in args.apps
        for graph in graphs
        for backend in backends
    ]


def _seal_after_sweep(args, specs) -> None:
    """Handle ``sweep --seal PATH``: manifest the completed grid."""
    from repro.runtime import ManifestError, default_cache, seal_manifest

    try:
        manifest = seal_manifest(args.seal, specs, default_cache())
    except ManifestError as exc:
        raise SystemExit(f"seal failed: {exc}") from None
    print(
        f"sealed {args.seal}: {len(manifest.leaves)} leaves, "
        f"root {manifest.root}"
    )


def _cmd_sweep(args) -> None:
    """Cross-product sweep of apps × datasets × backends via the runtime."""
    from repro.experiments.harness import (
        format_seconds,
        format_table,
        save_results,
    )
    from repro.runtime import (
        Executor,
        JobResult,
        RetryPolicy,
        RunLedger,
        load_ledger,
    )

    specs = _sweep_specs(args)
    if args.workers:
        _run_distributed_sweep(args, specs)
        return
    tracer = None
    if args.trace:
        from repro.obs import Tracer

        tracer = Tracer()

    access_traces = None
    if args.access_report:
        if args.resume:
            raise SystemExit(
                "--access-report re-runs every cell traced (inline, cache "
                "bypassed) and cannot be combined with --resume"
            )
        from repro.obs import AccessTraceSet

        access_traces = AccessTraceSet()

    # Resume: replay the ledger and lift completed cells out of the grid
    # before the executor ever sees them (docs/resilience.md).
    resume_state = load_ledger(args.resume) if args.resume else None
    ledger_path = args.ledger or args.resume
    ledger = RunLedger(ledger_path) if ledger_path else None
    resumed: dict[int, JobResult] = {}
    pending: list = []
    if resume_state is not None:
        # A ledger `ok` line is a *claim*, not proof: the artifact behind
        # it may have been deleted, evicted, or corrupted since.  When the
        # cache is in play, trust-but-verify every resumed cell against
        # its disk envelope (corrupt entries are quarantined by the check
        # itself) and re-run the ones that no longer validate.  Under
        # --no-cache the ledger record is the whole result and stands
        # alone, so there is nothing to cross-check.
        verify_cache = None
        if not args.no_cache:
            from repro.runtime import JOB_KIND, default_cache

            verify_cache = default_cache()
        for index, spec in enumerate(specs):
            entry = resume_state.entry_for(spec)
            if entry is not None and entry.completed:
                if (
                    verify_cache is not None
                    and verify_cache.entry_checksum(
                        JOB_KIND, spec.cache_key()
                    )
                    is None
                ):
                    # Drop any in-process memory copy too: a memory hit
                    # would satisfy the re-run without restoring the disk
                    # artifact the verification just found missing.
                    verify_cache.evict_memory(JOB_KIND, spec.cache_key())
                    print(
                        f"resume: ledger marks {spec.label()} ok but its "
                        "cached artifact is missing or failed "
                        "verification; re-running"
                    )
                    pending.append(spec)
                    continue
                resumed[index] = JobResult(
                    spec=spec,
                    system=entry.system or spec.backend,
                    ok=True,
                    seconds=entry.seconds,
                    energy_j=entry.energy_j,
                    detail={"resumed": True},
                    cached=True,
                    retries=entry.retries,
                )
            else:
                pending.append(spec)
    else:
        pending = list(specs)

    retry = RetryPolicy(max_attempts=max(1, args.retries))
    executor = Executor(
        jobs=args.jobs,
        timeout_s=args.timeout,
        use_cache=not args.no_cache,
        tracer=tracer,
        retry=retry,
        ledger=ledger,
    )
    start = time.perf_counter()
    try:
        fresh = (
            executor.run(pending, access_traces=access_traces)
            if pending
            else []
        )
    except KeyboardInterrupt:
        wall = time.perf_counter() - start
        print(f"\ninterrupted after {wall:.2f}s; "
              f"completed cells are durable in the artifact cache"
              + (f" and {ledger_path}" if ledger_path else ""))
        if ledger_path:
            print(f"resume with: gramer sweep ... --resume {ledger_path}")
        raise SystemExit(EXIT_INTERRUPTED) from None
    finally:
        if ledger is not None:
            ledger.close()
    wall = time.perf_counter() - start

    fresh_iter = iter(fresh)
    results = [
        resumed[i] if i in resumed else next(fresh_iter)
        for i in range(len(specs))
    ]

    rows = []
    for result in results:
        spec = result.spec
        if result.ok:
            if result.detail.get("resumed"):
                status = "resumed"
            else:
                status = "cached" if result.cached else "ok"
            if result.retries:
                status += f" ({result.retries} retries)"
        else:
            status = f"failed: {result.error}"
        rows.append([
            spec.app,
            spec.graph_name,
            result.system,
            format_seconds(result.seconds),
            f"{result.energy_j * 1e3:.3f}mJ" if result.energy_j else "-",
            status,
        ])
    print(format_table(
        ["App", "Graph", "System", "Modeled", "Energy", "Status"], rows
    ))
    cached = sum(1 for r in results if r.cached)
    failed = sum(1 for r in results if not r.ok)
    retried = sum(r.retries for r in results)
    print(
        f"{len(results)} jobs ({cached} cached/resumed, {failed} failed, "
        f"{retried} retries) in {wall:.2f}s with {executor.jobs} worker(s)"
    )
    slowest = sorted(results, key=lambda r: -r.wall_seconds)[:3]
    if slowest and slowest[0].wall_seconds > 0:
        print("slowest jobs:")
        for r in slowest:
            status = "cached" if r.cached else ("ok" if r.ok else "failed")
            print(
                f"  {r.wall_seconds:8.3f}s  {r.spec.label():40s} [{status}]"
            )
    if tracer is not None:
        path = tracer.write_chrome(args.trace)
        print(f"wrote {path} ({len(tracer)} executor events)")
    if access_traces is not None:
        from pathlib import Path

        from repro.obs import (
            aggregate_reports,
            analyze_trace,
            render_access_table_markdown,
        )

        items = [
            (label, analyze_trace(trace))
            for label, trace in access_traces
            if len(trace)  # backends without a traced path stay empty
        ]
        Path(args.access_report).write_text(
            render_access_table_markdown(aggregate_reports(items)),
            encoding="utf-8",
        )
        print(f"wrote {args.access_report} ({len(items)} traced cell(s))")
    if args.out:
        save_results(
            {
                "scale": args.scale,
                "jobs": executor.jobs,
                "results": [
                    {
                        "backend": r.spec.backend,
                        "app": r.spec.app,
                        "graph": r.spec.graph_name,
                        "scale": r.spec.scale,
                        "ok": r.ok,
                        "seconds": r.seconds,
                        "energy_j": r.energy_j,
                        "wall_seconds": r.wall_seconds,
                        "cached": r.cached,
                        "retries": r.retries,
                        "error": r.error,
                        "detail": r.detail,
                    }
                    for r in results
                ],
            },
            args.out,
        )
        print(f"wrote {args.out}")
    if failed:
        if args.seal:
            print("seal skipped: a manifest only attests to a fully-ok grid")
        raise SystemExit(
            EXIT_TOTAL_FAILURE if failed == len(results) else EXIT_PARTIAL
        )
    if args.seal:
        if args.no_cache:
            raise SystemExit(
                "--seal needs the artifact cache (manifests bind cached "
                "artifact checksums); drop --no-cache"
            )
        _seal_after_sweep(args, specs)


def _run_distributed_sweep(args, specs) -> None:
    """``sweep --workers N``: N coordinating ``gramer worker`` processes.

    The parent only orchestrates — it spawns the workers (each a full
    ``gramer worker`` invocation sharing the ledger, claim directory, and
    artifact cache), waits, then renders the converged grid from the
    ledger.  Workers coordinate purely through shared durable state, so
    killing the parent never corrupts the sweep: relaunching resumes from
    wherever the claims and journal stand.
    """
    import subprocess
    import sys
    from pathlib import Path

    from repro.experiments.harness import format_seconds, format_table
    from repro.runtime import load_ledger

    if not args.ledger:
        raise SystemExit(
            "--workers needs --ledger PATH: the shared journal is how "
            "workers (and the final report) coordinate"
        )
    if args.resume or args.access_report or args.trace:
        raise SystemExit(
            "--workers cannot be combined with --resume, --access-report, "
            "or --trace (workers resume implicitly from the shared ledger)"
        )
    if args.no_cache:
        raise SystemExit(
            "--workers needs the artifact cache: results transport "
            "between workers as cached artifacts"
        )
    claims = args.claims or f"{args.ledger}.claims"
    Path(claims).mkdir(parents=True, exist_ok=True)
    command = [sys.executable, "-m", "repro.cli", "worker",
               "--apps", *args.apps]
    if args.datasets:
        command += ["--datasets", *args.datasets]
    if args.backends:
        command += ["--backends", *args.backends]
    command += [
        "--scale", args.scale,
        "--engine", args.engine,
        "--ledger", str(args.ledger),
        "--claims", str(claims),
        "--lease", str(args.lease),
        "--retries", str(args.retries),
    ]
    start = time.perf_counter()
    procs = [
        subprocess.Popen(command + ["--worker-id", f"w{i + 1}"])
        for i in range(max(1, args.workers))
    ]
    try:
        codes = [proc.wait() for proc in procs]
    except KeyboardInterrupt:
        for proc in procs:
            proc.terminate()
        print(
            f"\ninterrupted; claims in {claims} expire after "
            f"{args.lease:.0f}s and the sweep resumes from {args.ledger}"
        )
        raise SystemExit(EXIT_INTERRUPTED) from None
    wall = time.perf_counter() - start

    state = load_ledger(args.ledger)
    rows = []
    failed = 0
    for spec in specs:
        entry = state.entry_for(spec)
        if entry is None:
            status = "missing"
            failed += 1
        elif entry.completed:
            status = "ok"
        else:
            status = f"failed: {entry.error}" if entry.error else entry.status
            failed += 1
        rows.append([
            spec.app,
            spec.graph_name,
            (entry.system if entry else "") or spec.backend,
            format_seconds(entry.seconds if entry else None),
            (
                f"{entry.energy_j * 1e3:.3f}mJ"
                if entry and entry.energy_j
                else "-"
            ),
            status,
        ])
    print(format_table(
        ["App", "Graph", "System", "Modeled", "Energy", "Status"], rows
    ))
    takeovers = len(state.takeover_digests())
    print(
        f"{len(specs)} cells across {len(procs)} worker(s) in {wall:.2f}s "
        f"({failed} failed, {takeovers} lease takeover(s)); "
        f"worker exits: {codes}"
    )
    if failed:
        if args.seal:
            print("seal skipped: a manifest only attests to a fully-ok grid")
        raise SystemExit(
            EXIT_TOTAL_FAILURE if failed == len(specs) else EXIT_PARTIAL
        )
    if args.seal:
        _seal_after_sweep(args, specs)


def _cmd_worker(args) -> None:
    """Join a distributed sweep as one claim-coordinated worker."""
    import os
    import socket

    from repro.runtime import RetryPolicy, SweepWorker

    specs = _sweep_specs(args)
    worker_id = args.worker_id or f"{socket.gethostname()}-{os.getpid()}"
    worker = SweepWorker(
        specs,
        ledger_path=args.ledger,
        claims_root=args.claims,
        worker_id=worker_id,
        lease_s=args.lease,
        retry=RetryPolicy(max_attempts=max(1, args.retries)),
    )
    try:
        summary = worker.run()
    except KeyboardInterrupt:
        print(
            f"\nworker {worker_id} interrupted; its claims expire after "
            f"{args.lease:.0f}s and siblings take the cells over"
        )
        raise SystemExit(EXIT_INTERRUPTED) from None
    print(
        f"worker {worker_id}: computed {len(summary.computed)}, "
        f"failed {len(summary.failed)}, takeovers {summary.takeovers}, "
        f"lost leases {summary.lost_leases} in {summary.wall_seconds:.2f}s"
    )
    if summary.failed:
        raise SystemExit(EXIT_PARTIAL)


def _cmd_manifest_seal(args) -> None:
    """Seal a Merkle manifest over a completed grid's artifacts."""
    from repro.runtime import ManifestError, default_cache, seal_manifest

    specs = _sweep_specs(args)
    try:
        manifest = seal_manifest(args.path, specs, default_cache())
    except ManifestError as exc:
        raise SystemExit(str(exc)) from None
    print(
        f"sealed {args.path}: {len(manifest.leaves)} leaves, "
        f"root {manifest.root}"
    )


def _cmd_manifest_verify(args) -> None:
    """Verify a sealed manifest: Merkle root + per-artifact integrity."""
    from repro.runtime import (
        ManifestError,
        default_cache,
        load_manifest,
        verify_manifest,
    )

    try:
        manifest = load_manifest(args.path)
    except ManifestError as exc:
        raise SystemExit(str(exc)) from None
    specs = _sweep_specs(args) if args.apps else None
    report = verify_manifest(manifest, default_cache(), specs)
    print(report.summary())
    if not report.ok:
        if report.corrupt:
            print(
                "corrupt artifacts were quarantined; re-run the sweep to "
                "recompute them, then verify again"
            )
        raise SystemExit(EXIT_TOTAL_FAILURE)


def _memprofile_payload(
    backend: str, args, cache, channel: dict[str, int]
) -> dict:
    """One backend's locality report, content-addressed in the cache.

    The report is keyed by the spec's cache key plus the channel
    parameters, so re-profiling an unchanged cell is a cache hit; the
    traced run itself always bypasses the job cache (a trace only exists
    if the run actually executes).
    """
    from repro.experiments.harness import cell_jobspec
    from repro.obs import AccessTrace, analyze_trace
    from repro.runtime import run_spec

    spec = cell_jobspec(backend, args.app, args.dataset, args.scale)
    key = {"spec": spec.cache_key(), "channel": channel}

    def produce() -> dict:
        trace = AccessTrace(
            meta={
                "backend": backend,
                "app": args.app,
                "graph": args.dataset,
                "scale": args.scale,
            }
        )
        result = run_spec(
            spec, use_cache=False, cache=cache, access_trace=trace
        )
        if not result.ok:
            raise SystemExit(f"{spec.label()} failed: {result.error}")
        return analyze_trace(trace, **channel)

    if args.no_cache:
        return produce()
    return cache.get_or_create("obs/access", key, produce)


def _cmd_memprofile(args) -> None:
    """Access-traced runs + locality report (docs/access-patterns.md)."""
    import json

    from repro.experiments import datasets
    from repro.obs import (
        compare_reports,
        render_memprofile,
        render_memprofile_compare,
        render_memprofile_markdown,
    )
    from repro.runtime import backend_names, default_cache

    if args.graph:
        raise SystemExit(
            "memprofile needs a registered dataset (--dataset NAME); "
            "ad-hoc --graph files have no stable cache identity"
        )
    if not args.dataset:
        raise SystemExit("specify --dataset NAME (see `gramer datasets`)")
    if args.dataset not in datasets.DATASETS:
        raise SystemExit(
            f"unknown dataset {args.dataset!r}; see `gramer datasets`"
        )
    backends = list(args.compare) if args.compare else args.backends
    known = backend_names()
    for backend in backends:
        if backend not in known:
            raise SystemExit(
                f"unknown backend {backend!r}; registered: {known}"
            )
    channel = {
        "row_bytes": args.row_bytes,
        "streams": args.streams,
        "line_bytes": args.line_bytes,
    }
    cache = default_cache()
    reports = {
        backend: _memprofile_payload(backend, args, cache, channel)
        for backend in backends
    }
    if args.compare:
        a, b = args.compare
        text = render_memprofile_compare(
            compare_reports(a, reports[a], b, reports[b])
        )
    elif args.format == "json":
        text = json.dumps(reports, indent=2, sort_keys=True)
    elif args.format == "markdown":
        text = render_memprofile_markdown(reports)
    else:
        text = render_memprofile(reports)
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(text + "\n", encoding="utf-8")
        print(f"wrote {args.out}")
    else:
        print(text)


def _cmd_trace(args) -> None:
    """Traced run of one (app, dataset) cell; writes Chrome-trace JSON."""
    from repro.experiments import datasets
    from repro.experiments.harness import cell_jobspec
    from repro.obs import SimInstrument, Tracer
    from repro.runtime import Executor

    if args.dataset not in datasets.DATASETS:
        raise SystemExit(
            f"unknown dataset {args.dataset!r}; see `gramer datasets`"
        )
    if args.engine != "reference":
        print("note: traced runs use the reference engine "
              "(obs hooks observe per-event state)")
    tracer = Tracer()
    instrument = SimInstrument(tracer=tracer, window_cycles=args.window)
    spec = cell_jobspec("gramer", args.app, args.dataset, args.scale)
    executor = Executor(jobs=1, use_cache=False, tracer=tracer)
    result = executor.run([spec], instrument=instrument)[0]
    if not result.ok:
        raise SystemExit(f"trace run failed: {result.error}")
    path = tracer.write_chrome(args.out)
    print(
        f"{spec.label()}: {result.detail.get('cycles', 0):,} cycles, "
        f"{len(instrument.sampler.windows)} timeline window(s), "
        f"{len(instrument.steal_latencies)} steal wait(s)"
    )
    print(
        f"wrote {path} ({len(tracer)} events, "
        f"categories: {', '.join(sorted(tracer.categories()))})"
    )
    if args.jsonl:
        print(f"wrote {tracer.write_jsonl(args.jsonl)}")
    print("open in https://ui.perfetto.dev or chrome://tracing")


def _cmd_profile(args) -> None:
    """Instrumented run + text profile report (docs/observability.md)."""
    from repro.accel.config import GramerConfig
    from repro.obs import MetricsRegistry, SimInstrument, render_profile

    app = make_app(args.app)
    graph = _resolve_graph(args, app.needs_labels)
    data_entries = graph.num_vertices + len(graph.neighbors)
    config = GramerConfig(
        onchip_entries=args.onchip_entries or max(64, data_entries // 4),
    )
    registry = MetricsRegistry()
    instrument = SimInstrument(
        window_cycles=args.window, registry=registry
    )
    # Instrumented: the factory routes this to the reference engine, whose
    # hierarchy/pressure introspection the report below relies on.
    sim = make_simulator(graph, config, instrument=instrument)
    result = sim.run(app)
    sim.hierarchy.publish(registry)
    print(
        render_profile(
            result.stats,
            instrument=instrument,
            pressure=sim.hierarchy.low_cache_pressure(),
        )
    )
    if args.metrics:
        print()
        print(registry.render_text())


def _changed_python_files(ref: str) -> "list[Path]":
    """Python files modified vs ``ref`` plus untracked ones (for --changed)."""
    import subprocess
    from pathlib import Path

    def lines(*cmd: str) -> list[str]:
        proc = subprocess.run(
            cmd, capture_output=True, text=True, check=False
        )
        if proc.returncode != 0:
            message = proc.stderr.strip() or f"{' '.join(cmd)} failed"
            raise SystemExit(f"gramer check --changed: {message}")
        return proc.stdout.splitlines()

    # Git emits repo-root-relative names; anchor everything there so the
    # command works (and matches check_paths findings) from any CWD.
    toplevel = lines("git", "rev-parse", "--show-toplevel")
    if not toplevel or not toplevel[0].strip():
        raise SystemExit("gramer check --changed: not inside a git repository")
    root = Path(toplevel[0].strip())
    names = lines(
        "git", "-C", str(root), "diff", "--name-only", "--diff-filter=d",
        ref, "--", "*.py",
    )
    names += lines(
        "git", "-C", str(root), "ls-files", "--others", "--exclude-standard",
        "--", "*.py",
    )
    return sorted(
        {
            root / name
            for name in (n.strip() for n in names)
            if name and (root / name).is_file()
        }
    )


def _cmd_check(args) -> None:
    """Run the repo's static-analysis rules (see docs/static-analysis.md)."""
    import sys

    from repro.analysis import (
        RuleError,
        check_paths,
        format_finding,
        get_rule,
        select_rules,
    )

    if args.list_rules:
        for rule_ in select_rules(args.select):
            print(f"{rule_.rule_id}  [{rule_.family:13s}] {rule_.summary}")
        return
    if args.explain:
        try:
            rule_ = get_rule(args.explain.upper())
        except RuleError as exc:
            raise SystemExit(f"gramer check: {exc}") from None
        print(f"{rule_.rule_id}  [{rule_.family}]  {rule_.summary}")
        if rule_.explain:
            print()
            print(rule_.explain)
        return
    paths = args.paths or ["src"]
    only = None
    if args.changed is not None:
        only = _changed_python_files(args.changed)
        if not only:
            print(
                f"gramer check: clean (no Python files changed vs {args.changed})"
            )
            return
    try:
        findings = check_paths(
            paths,
            select=args.select,
            project=not args.no_project,
            use_cache=not args.no_cache,
            jobs=args.jobs,
            only=only,
        )
    except (RuleError, FileNotFoundError) as exc:
        raise SystemExit(f"gramer check: {exc}") from None
    if args.format == "sarif":
        from repro.analysis.sarif import sarif_json

        print(sarif_json(findings, select_rules(args.select)))
        summary_out = sys.stderr
    else:
        for finding in findings:
            print(format_finding(finding, style=args.format))
        summary_out = sys.stdout
    if findings:
        families = sorted({f.rule_id for f in findings})
        print(
            f"gramer check: {len(findings)} finding(s) "
            f"[{', '.join(families)}]",
            file=summary_out,
        )
        raise SystemExit(1)
    print("gramer check: clean", file=summary_out)


def _match_digest(store, token: str) -> str:
    """Resolve a full digest or unique prefix against the store."""
    digests = store.digests()
    if token in digests:
        return token
    matches = [d for d in digests if d.startswith(token)]
    if len(matches) == 1:
        return matches[0]
    if not matches:
        raise SystemExit(f"no graph artifact matches {token!r}")
    raise SystemExit(
        f"ambiguous digest prefix {token!r} "
        f"({len(matches)} matches; use more characters)"
    )


def _cmd_graph_build(args) -> None:
    """Materialize an edge list or dataset proxy into the graph store."""
    from repro.experiments import datasets
    from repro.graph.store import default_graph_store

    store = default_graph_store()
    start = time.perf_counter()
    if args.graph:
        digest = store.import_edge_list(args.graph)
    elif args.dataset:
        loader = datasets.load_labeled if args.labeled else datasets.load
        digest = loader(args.dataset, args.scale).content_digest()
    else:
        raise SystemExit("specify --graph FILE or --dataset NAME")
    info = store.info(digest)
    print(digest)
    print(
        f"  |V|={info['num_vertices']:,} |E|={info['num_edges']:,} "
        f"({info['bytes']:,} bytes) in {time.perf_counter() - start:.2f}s"
    )
    print(f"  {info['path']}")


def _cmd_graph_info(args) -> None:
    from repro.graph.store import GraphArtifactError, default_graph_store

    store = default_graph_store()
    digest = _match_digest(store, args.digest)
    try:
        info = store.info(digest)
    except GraphArtifactError as exc:
        raise SystemExit(f"gramer graph info: {exc}") from None
    for key in ("digest", "num_vertices", "num_edges", "bytes",
                "format_version", "path"):
        print(f"{key:15s} {info[key]}")


def _cmd_graph_verify(args) -> None:
    """Re-checksum artifacts from disk; quarantine and report failures."""
    from repro.graph.store import GraphArtifactError, default_graph_store

    store = default_graph_store()
    targets = args.digests or store.digests()
    bad = 0
    for token in targets:
        digest = _match_digest(store, token)
        try:
            info = store.verify(digest)
        except GraphArtifactError as exc:
            bad += 1
            print(f"CORRUPT  {digest[:16]}...  {exc}")
        else:
            print(
                f"ok       {digest[:16]}...  "
                f"|V|={info['num_vertices']:,} |E|={info['num_edges']:,}"
            )
    print(f"{len(targets)} artifact(s) checked, {bad} quarantined")
    if bad:
        raise SystemExit(1)


def _cmd_graph_ls(args) -> None:
    from repro.graph.store import GraphArtifactError, default_graph_store

    store = default_graph_store()
    digests = store.digests()
    for digest in digests:
        try:
            info = store.info(digest)
        except GraphArtifactError as exc:
            print(f"{digest[:16]}...  unreadable: {exc}")
            continue
        print(
            f"{digest[:16]}...  |V|={info['num_vertices']:>9,} "
            f"|E|={info['num_edges']:>11,}  {info['bytes']:>12,} bytes"
        )
    print(f"{len(digests)} artifact(s) under {store.root}")


def _cmd_datasets(args) -> None:
    from repro.experiments import datasets

    for name in datasets.DATASET_ORDER:
        spec = datasets.DATASETS[name]
        graph = datasets.load(name, args.scale)
        print(
            f"{name:9s} ({spec.category:6s}) proxy: "
            f"{degree_stats(graph).describe()}  "
            f"[paper: |V|={spec.paper_vertices:,} |E|={spec.paper_edges:,}]"
        )


def main(argv: list[str] | None = None) -> None:
    """Entry point for the ``gramer`` console script."""
    parser = argparse.ArgumentParser(
        prog="gramer", description="GRAMER graph-mining accelerator reproduction"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--graph", help="edge-list file to mine")
    common.add_argument("--dataset", help="proxy dataset name (see `datasets`)")
    common.add_argument("--scale", default="small",
                        choices=["tiny", "small", "full"])
    common.add_argument("--app", default="3-CF",
                        help="k-CF, k-MC, or FSM-<threshold>")

    mine = sub.add_parser("mine", parents=[common],
                          help="software mining (exact results)")
    mine.set_defaults(func=_cmd_mine)

    simulate = sub.add_parser("simulate", parents=[common],
                              help="cycle-level GRAMER simulation")
    simulate.add_argument("--pus", type=int, default=8)
    simulate.add_argument("--slots", type=int, default=16)
    simulate.add_argument("--onchip-entries", type=int, default=None)
    simulate.add_argument("--no-stealing", action="store_true")
    simulate.add_argument("--trace", default=None, metavar="PATH",
                          help="write a Chrome-trace of the run to PATH")
    simulate.add_argument("--trace-window", type=int, default=1024,
                          help="timeline window width in cycles")
    simulate.add_argument("--engine", default=DEFAULT_ENGINE,
                          choices=list(ENGINES),
                          help="simulation engine (fast is byte-identical "
                               "to reference, turbo is tolerance-banded "
                               "timing with exact mining; traced runs "
                               "force reference)")
    simulate.set_defaults(func=_cmd_simulate)

    experiment = sub.add_parser("experiment",
                                help="reproduce paper tables/figures")
    experiment.add_argument("--scale", default="small",
                            choices=["tiny", "small", "full"])
    experiment.add_argument("--out", default="results")
    experiment.add_argument("--only", nargs="*", default=None)
    experiment.add_argument("--jobs", type=int, default=None,
                            help="process-pool width (default: $GRAMER_JOBS or 1)")
    experiment.add_argument("--no-cache", action="store_true",
                            help="recompute cells instead of reusing cached results")
    experiment.set_defaults(func=_cmd_experiment)

    sweep = sub.add_parser(
        "sweep",
        help="run a cross-product of apps × datasets × backends",
    )
    sweep.add_argument("--apps", nargs="+", required=True,
                       help="applications, e.g. 3-CF 4-MC FSM-100")
    sweep.add_argument("--datasets", nargs="*", default=None,
                       help="proxy datasets (default: all seven)")
    sweep.add_argument("--backends", nargs="*", default=None,
                       help="backends (default: gramer fractal rstream)")
    sweep.add_argument("--scale", default="small",
                       choices=["tiny", "small", "full"])
    sweep.add_argument("--jobs", type=int, default=None,
                       help="process-pool width (default: $GRAMER_JOBS or 1)")
    sweep.add_argument("--timeout", type=float, default=None,
                       help="per-job timeout in seconds (pool mode)")
    sweep.add_argument("--retries", type=int, default=3,
                       help="max attempts per job for transient failures "
                            "(1 disables retries; default 3)")
    sweep.add_argument("--ledger", default=None, metavar="PATH",
                       help="append a crash-safe JSONL run ledger to PATH "
                            "(docs/resilience.md)")
    sweep.add_argument("--resume", default=None, metavar="LEDGER",
                       help="skip cells the ledger records as ok, re-run "
                            "failed/interrupted ones, append to the same "
                            "ledger")
    sweep.add_argument("--no-cache", action="store_true",
                       help="recompute cells instead of reusing cached results")
    sweep.add_argument("--out", default=None,
                       help="write structured sweep results to this JSON file")
    sweep.add_argument("--access-report", default=None, metavar="PATH",
                       help="re-run every cell with the memory-access "
                            "observatory attached and write a markdown "
                            "locality table (docs/access-patterns.md)")
    sweep.add_argument("--trace", default=None, metavar="PATH",
                       help="write a Chrome-trace of job lifecycle to PATH")
    sweep.add_argument("--engine", default=DEFAULT_ENGINE,
                       choices=list(ENGINES),
                       help="simulation engine for gramer cells (fast is "
                            "byte-identical to reference; turbo keeps "
                            "mining exact, timing tolerance-banded)")
    sweep.add_argument("--workers", type=int, default=None, metavar="N",
                       help="distributed mode: spawn N `gramer worker` "
                            "processes sharding this grid via lease-based "
                            "claims on --ledger (docs/resilience.md)")
    sweep.add_argument("--claims", default=None, metavar="DIR",
                       help="claim directory for --workers "
                            "(default: <ledger>.claims)")
    sweep.add_argument("--lease", type=float, default=30.0, metavar="S",
                       help="claim lease TTL in seconds for --workers; an "
                            "unrefreshed claim is taken over after this "
                            "long (default: 30)")
    sweep.add_argument("--seal", default=None, metavar="PATH",
                       help="after a fully-ok sweep, seal a verifiable "
                            "Merkle manifest of the grid's artifacts "
                            "to PATH")
    sweep.set_defaults(func=_cmd_sweep)

    workerp = sub.add_parser(
        "worker",
        help="join a distributed sweep: claim grid cells from a shared "
             "ledger, with straggler takeover (docs/resilience.md)",
    )
    workerp.add_argument("--apps", nargs="+", required=True,
                         help="applications, e.g. 3-CF 4-MC FSM-100")
    workerp.add_argument("--datasets", nargs="*", default=None,
                         help="proxy datasets (default: all seven)")
    workerp.add_argument("--backends", nargs="*", default=None,
                         help="backends (default: gramer fractal rstream)")
    workerp.add_argument("--scale", default="small",
                         choices=["tiny", "small", "full"])
    workerp.add_argument("--engine", default=DEFAULT_ENGINE,
                         choices=list(ENGINES),
                         help="simulation engine for gramer cells")
    workerp.add_argument("--ledger", required=True, metavar="PATH",
                         help="the sweep's shared JSONL journal")
    workerp.add_argument("--claims", required=True, metavar="DIR",
                         help="the sweep's shared claim directory")
    workerp.add_argument("--lease", type=float, default=30.0, metavar="S",
                         help="claim lease TTL in seconds (default: 30); "
                              "must match the other workers'")
    workerp.add_argument("--retries", type=int, default=3,
                         help="max attempts per job for transient failures")
    workerp.add_argument("--worker-id", default=None,
                         help="stable identity in claim/ledger records "
                              "(default: <hostname>-<pid>)")
    workerp.set_defaults(func=_cmd_worker)

    manifest_p = sub.add_parser(
        "manifest",
        help="Merkle-manifested sweep artifacts: seal a completed grid, "
             "verify completeness+integrity later (docs/resilience.md)",
    )
    manifest_sub = manifest_p.add_subparsers(
        dest="manifest_command", required=True
    )

    m_common = argparse.ArgumentParser(add_help=False)
    m_common.add_argument("--datasets", nargs="*", default=None,
                          help="proxy datasets (default: all seven)")
    m_common.add_argument("--backends", nargs="*", default=None,
                          help="backends (default: gramer fractal rstream)")
    m_common.add_argument("--scale", default="small",
                          choices=["tiny", "small", "full"])
    m_common.add_argument("--engine", default=DEFAULT_ENGINE,
                          choices=list(ENGINES))

    m_seal = manifest_sub.add_parser(
        "seal", parents=[m_common],
        help="bind every grid cell's cached artifact checksum into one "
             "root-hashed manifest file",
    )
    m_seal.add_argument("path", help="manifest JSON output path")
    m_seal.add_argument("--apps", nargs="+", required=True,
                        help="applications, e.g. 3-CF 4-MC FSM-100")
    m_seal.set_defaults(func=_cmd_manifest_seal)

    m_verify = manifest_sub.add_parser(
        "verify", parents=[m_common],
        help="recompute the Merkle root and re-checksum every manifested "
             "artifact (corrupt ones are quarantined and named)",
    )
    m_verify.add_argument("path", help="manifest JSON file to verify")
    m_verify.add_argument("--apps", nargs="*", default=None,
                          help="also cross-check completeness against "
                               "this independently rebuilt grid")
    m_verify.set_defaults(func=_cmd_manifest_verify)

    memprofile = sub.add_parser(
        "memprofile", parents=[common],
        help="memory-access observatory: per-backend traffic taxonomy, "
             "reuse distances, and locality comparison",
    )
    memprofile.add_argument("--backends", nargs="+",
                            default=["gramer", "fractal", "rstream"],
                            help="backends to profile (default: all three)")
    memprofile.add_argument("--compare", nargs=2, default=None,
                            metavar=("A", "B"),
                            help="render a two-backend locality diff "
                                 "instead of per-backend tables")
    memprofile.add_argument("--format", default="text",
                            choices=["text", "json", "markdown"],
                            help="report renderer (default: text)")
    memprofile.add_argument("--out", default=None, metavar="PATH",
                            help="write the report to a file instead of "
                                 "stdout")
    memprofile.add_argument("--row-bytes", type=int, default=1024,
                            help="DRAM row size for the open-row "
                                 "sequential classifier (default: 1024)")
    memprofile.add_argument("--streams", type=int, default=8,
                            help="tracked open-row streams (default: 8)")
    memprofile.add_argument("--line-bytes", type=int, default=64,
                            help="cache-line size for reuse distance and "
                                 "spatial utilization (default: 64)")
    memprofile.add_argument("--no-cache", action="store_true",
                            help="recompute the report even if an "
                                 "identical one is cached")
    memprofile.set_defaults(func=_cmd_memprofile)

    trace = sub.add_parser(
        "trace",
        help="traced simulator run -> Chrome-trace/Perfetto file "
             "(docs/observability.md)",
    )
    trace.add_argument("app", help="application, e.g. 3-CF")
    trace.add_argument("dataset", help="proxy dataset name")
    trace.add_argument("--scale", default="tiny",
                       choices=["tiny", "small", "full"])
    trace.add_argument("--out", default="trace.json",
                       help="Chrome-trace output path (default: trace.json)")
    trace.add_argument("--jsonl", default=None, metavar="PATH",
                       help="also write one event per line to PATH")
    trace.add_argument("--window", type=int, default=1024,
                       help="timeline window width in cycles")
    trace.add_argument("--engine", default=DEFAULT_ENGINE,
                       choices=list(ENGINES),
                       help="accepted for symmetry; traced runs always use "
                            "the reference engine")
    trace.set_defaults(func=_cmd_trace)

    profile = sub.add_parser(
        "profile",
        parents=[common],
        help="instrumented run + text profile report "
             "(stalls, cache pressure, steal latency)",
    )
    profile.add_argument("--onchip-entries", type=int, default=None)
    profile.add_argument("--window", type=int, default=1024,
                         help="timeline window width in cycles")
    profile.add_argument("--metrics", action="store_true",
                         help="also dump the metrics registry")
    profile.set_defaults(func=_cmd_profile)

    check = sub.add_parser(
        "check",
        help="static analysis: determinism/purity/units rules "
             "(docs/static-analysis.md)",
    )
    check.add_argument("paths", nargs="*", default=None,
                       help="files or directories to check (default: src)")
    check.add_argument("--select", nargs="*", default=None,
                       help="rule IDs or families to run (default: all)")
    check.add_argument("--format", default="text",
                       choices=["text", "github", "sarif"],
                       help="finding output style (github = CI annotations, "
                            "sarif = code-scanning JSON on stdout)")
    check.add_argument("--list-rules", action="store_true",
                       help="list registered rules and exit")
    check.add_argument("--explain", metavar="GRMxxx", default=None,
                       help="print one rule's rationale and fix guidance")
    check.add_argument("--changed", metavar="REF", nargs="?", const="HEAD",
                       default=None,
                       help="only report findings in files changed vs REF "
                            "(default HEAD); the project pass still sees "
                            "the whole tree")
    check.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="process-pool width for cold per-file analysis")
    check.add_argument("--no-project", action="store_true",
                       help="skip the whole-program pass (GRM10xx rules)")
    check.add_argument("--no-cache", action="store_true",
                       help="bypass the incremental analysis-record cache")
    check.set_defaults(func=_cmd_check)

    ds = sub.add_parser("datasets", help="list the dataset proxies")
    ds.add_argument("--scale", default="small",
                    choices=["tiny", "small", "full"])
    ds.set_defaults(func=_cmd_datasets)

    graph_p = sub.add_parser(
        "graph",
        help="content-addressed mmap graph store (docs/graph-store.md)",
    )
    graph_sub = graph_p.add_subparsers(dest="graph_command", required=True)

    g_build = graph_sub.add_parser(
        "build", help="materialize an edge list or dataset proxy"
    )
    g_build.add_argument("--graph", help="edge-list file to import")
    g_build.add_argument("--dataset", help="proxy dataset name")
    g_build.add_argument("--scale", default="small",
                         choices=["tiny", "small", "full"])
    g_build.add_argument("--labeled", action="store_true",
                         help="materialize the FSM-labeled variant")
    g_build.set_defaults(func=_cmd_graph_build)

    g_info = graph_sub.add_parser("info", help="show one artifact's header")
    g_info.add_argument("digest", help="content digest (or unique prefix)")
    g_info.set_defaults(func=_cmd_graph_info)

    g_verify = graph_sub.add_parser(
        "verify",
        help="re-checksum artifacts from disk (corrupt ones are quarantined)",
    )
    g_verify.add_argument("digests", nargs="*",
                          help="digests to check (default: all)")
    g_verify.set_defaults(func=_cmd_graph_verify)

    g_ls = graph_sub.add_parser("ls", help="list materialized artifacts")
    g_ls.set_defaults(func=_cmd_graph_ls)

    args = parser.parse_args(argv)
    args.func(args)


if __name__ == "__main__":
    main()
