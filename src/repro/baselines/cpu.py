"""CPU cache-hierarchy timing model.

Both software baselines (Fractal, RStream) ran on a 14-core Intel E5-2680 v4
(32 KB L1 + 256 KB L2 per core, 35 MB shared L3, 4-channel DDR4 — §II-B).
This module models that memory system as three levels of set-associative
caches over the engine's access stream and produces the cycle/stall
accounting behind Fig. 3 and the baseline runtimes of Table III.

The model is trace-driven and single-stream: the engine's access sequence
flows through one L1/L2/L3 stack, and multicore throughput is applied as a
parallel-efficiency divisor on the final runtime (mining parallelises over
initial embeddings nearly perfectly, the paper's frameworks use all 14
cores).  Per-operation instruction costs model the software framework
overhead (object churn, canonicality hashing, task management) that §VI-B
credits for GRAMER's large wins on small graphs; they are calibration
constants, documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.csr import CSRGraph
from repro.memory.cache import SetAssociativeCache
from repro.memory.policies import LRUPolicy

__all__ = ["CPUConfig", "CPUMemory", "CPUTimeBreakdown"]


@dataclass(frozen=True)
class CPUConfig:
    """Xeon E5-2680 v4 model parameters."""

    l1_bytes: int = 32 * 1024
    l2_bytes: int = 256 * 1024
    l3_bytes: int = 35 * 1024 * 1024
    line_bytes: int = 64
    ways: int = 8
    entry_bytes: int = 8  # one vertex offset record / one edge slot

    l1_latency: int = 4  # cycles, incremental per level
    l2_latency: int = 12
    l3_latency: int = 42
    dram_latency: int = 180
    # Fraction of an L2 hit's latency attributed to stall; the rest is
    # hidden by the out-of-order window.  VTune's memory-bound stalls (the
    # Fig. 3 methodology) are dominated by LLC/DRAM time but L2-bound time
    # is not fully overlapped either, so half counts by default.
    l2_stall_fraction: float = 0.5

    freq_ghz: float = 2.4
    cores: int = 14
    parallel_efficiency: float = 0.85

    # Software framework overhead (instructions retired per engine event).
    cycles_per_access: int = 3  # address arithmetic, bounds, loads
    cycles_per_candidate: int = 60  # candidate object + canonicality bookkeeping

    @property
    def effective_parallelism(self) -> float:
        """Throughput multiplier from multicore execution."""
        return self.cores * self.parallel_efficiency


@dataclass
class CPUTimeBreakdown:
    """Cycle accounting of one trace replay (single-stream cycles)."""

    compute_cycles: int = 0
    vertex_stall_cycles: int = 0
    edge_stall_cycles: int = 0
    accesses: int = 0

    @property
    def total_cycles(self) -> int:
        """All cycles of the single-stream replay."""
        return (
            self.compute_cycles
            + self.vertex_stall_cycles
            + self.edge_stall_cycles
        )

    def stall_fractions(self) -> dict[str, float]:
        """Fig. 3's breakdown: vertex / edge stall and 'others' shares."""
        total = self.total_cycles
        if total == 0:
            return {"vertex": 0.0, "edge": 0.0, "others": 1.0}
        vertex = self.vertex_stall_cycles / total
        edge = self.edge_stall_cycles / total
        return {"vertex": vertex, "edge": edge, "others": 1.0 - vertex - edge}


class CPUMemory:
    """MemoryModel charging the engine's accesses to an L1/L2/L3 stack.

    Vertex records and edge slots live in disjoint address regions (CSR
    offsets array followed by the neighbors array), so spatial locality
    within adjacency slices is modeled faithfully through the 64-byte lines.
    Stall attribution: the L1 latency is considered pipelined/overlappable
    (part of compute); anything beyond L1 counts as stall cycles for the
    access's dimension — mirroring how VTune attributes memory-bound stalls
    in the paper's Fig. 3 methodology.
    """

    def __init__(self, graph: CSRGraph, config: CPUConfig | None = None) -> None:
        self.config = config if config is not None else CPUConfig()
        cfg = self.config
        self.depth = 0
        self.breakdown = CPUTimeBreakdown()
        self._edge_region_base = graph.num_vertices * cfg.entry_bytes
        self._num_edge_slots = len(graph.neighbors)
        # Optional post-L2 miss observer (repro.obs.hooks attaches one for
        # access-traced runs): called with (byte_address, is_vertex,
        # went_to_dram) after the stall is charged.  Purely observational.
        self.observer = None

        def level(total_bytes: int) -> SetAssociativeCache:
            lines = max(cfg.ways, total_bytes // cfg.line_bytes)
            return SetAssociativeCache(
                num_sets=max(1, lines // cfg.ways),
                ways=cfg.ways,
                line_size=cfg.line_bytes,
                policy=LRUPolicy(),
            )

        self.l1 = level(cfg.l1_bytes)
        self.l2 = level(cfg.l2_bytes)
        self.l3 = level(cfg.l3_bytes)

    def _charge(self, byte_address: int, is_vertex: bool) -> None:
        cfg = self.config
        bd = self.breakdown
        bd.accesses += 1
        bd.compute_cycles += cfg.cycles_per_access + cfg.l1_latency
        if self.l1.access(byte_address):
            return
        if self.l2.access(byte_address):
            stall = int(cfg.l2_latency * cfg.l2_stall_fraction)
            bd.compute_cycles += cfg.l2_latency - stall
            if stall == 0:
                return
        else:
            stall = cfg.l2_latency + cfg.l3_latency
            l3_hit = self.l3.access(byte_address)
            if not l3_hit:
                stall += cfg.dram_latency
            if self.observer is not None:
                self.observer(byte_address, is_vertex, not l3_hit)
        if is_vertex:
            bd.vertex_stall_cycles += stall
        else:
            bd.edge_stall_cycles += stall

    def warm(self) -> None:
        """Pre-load the graph sequentially and zero the counters.

        The paper starts timing "once the input graph is loaded to the
        memory of the server", so steady-state cache contents — not cold
        misses — drive its measurements.  At proxy scale a cold pass is a
        visible fraction of the whole (small) run, so experiments warm the
        hierarchy with one sequential sweep of both regions first.
        """
        line = self.config.line_bytes
        total = self._edge_region_base + self._num_edge_slots * self.config.entry_bytes
        for address in range(0, total, line):
            self.l1.access(address)
            self.l2.access(address)
            self.l3.access(address)
        self.breakdown = CPUTimeBreakdown()
        for cache in (self.l1, self.l2, self.l3):
            cache.stats.reset()

    def vertex(self, vid: int) -> None:
        self._charge(vid * self.config.entry_bytes, is_vertex=True)

    def edge(self, index: int, src: int) -> None:
        self._charge(
            self._edge_region_base + index * self.config.entry_bytes,
            is_vertex=False,
        )

    def charge_candidate(self, count: int = 1) -> None:
        """Framework overhead for processing ``count`` candidates."""
        self.breakdown.compute_cycles += (
            count * self.config.cycles_per_candidate
        )

    def seconds(self, extra_overhead_s: float = 0.0) -> float:
        """Wall-clock estimate: parallel replay plus fixed overheads."""
        cfg = self.config
        serial = self.breakdown.total_cycles / (cfg.freq_ghz * 1e9)
        return serial / cfg.effective_parallelism + extra_overhead_s
