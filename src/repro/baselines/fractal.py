"""Fractal-model baseline (Dias et al., SIGMOD'19 — the paper's CPU DFS rival).

Fractal mines with a depth-first execution model on the JVM/Spark.  The
paper benchmarks its single-machine version on all 14 cores and *excludes*
Spark's setup (task partition, worker registration) but keeps its runtime
behaviour, noting that for small graphs "the initialization and
multi-thread management overheads under CPU would dominate".

The model therefore: (a) replays the identical DFS enumeration through the
CPU cache hierarchy of :mod:`repro.baselines.cpu`; (b) charges the per-
candidate framework overhead; (c) adds a fixed task-management overhead per
run.  Constants are documented calibration values (DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.graph.csr import CSRGraph
from repro.mining.apps.base import Application, MiningResult
from repro.mining.engine import run_dfs

from .cpu import CPUConfig, CPUMemory, CPUTimeBreakdown

if TYPE_CHECKING:
    from repro.obs.access import AccessTrace

__all__ = ["FractalModel", "BaselineResult", "FRACTAL_TASK_OVERHEAD_S"]

# Fixed multi-thread task-management overhead (visible even with Spark setup
# excluded; dominates the paper's small-graph cells, e.g. 0.15 s for a 10 ms
# mining job on Citeseer).
FRACTAL_TASK_OVERHEAD_S = 0.14


@dataclass(frozen=True)
class BaselineResult:
    """Outcome of a software-baseline model run."""

    system: str
    mining: MiningResult
    seconds: float
    breakdown: CPUTimeBreakdown
    failed: str | None = None  # 'N/A' (out of disk) / '-' (timeout) markers

    @property
    def available(self) -> bool:
        """Whether the run completed (paper cells show N/A or '-' otherwise)."""
        return self.failed is None


# Instructions retired per candidate in Fractal's JVM/Spark runtime —
# object churn, canonicality hashing, task bookkeeping.  Back-computed from
# the paper's own numbers (e.g. 4-MC on Mico: 642 s × 14 cores × 2.4 GHz
# over ~10^10 embeddings ≈ 2000 cycles/embedding; we charge a conservative
# fraction since candidates outnumber embeddings).
FRACTAL_CYCLES_PER_CANDIDATE = 800


class FractalModel:
    """The DFS CPU baseline."""

    name = "Fractal"

    def __init__(
        self,
        cpu_config: CPUConfig | None = None,
        task_overhead_s: float = FRACTAL_TASK_OVERHEAD_S,
        cycles_per_candidate: int = FRACTAL_CYCLES_PER_CANDIDATE,
    ) -> None:
        from dataclasses import replace

        base = cpu_config if cpu_config is not None else CPUConfig()
        self.cpu_config = replace(
            base, cycles_per_candidate=cycles_per_candidate
        )
        self.task_overhead_s = task_overhead_s

    def run(
        self,
        graph: CSRGraph,
        app: Application,
        access_trace: "AccessTrace | None" = None,
    ) -> BaselineResult:
        """Mine ``graph`` with ``app``; returns results plus modeled time.

        ``access_trace`` attaches the post-L2 miss observer (purely
        observational — the result is identical to an untraced run).
        """
        memory = CPUMemory(graph, self.cpu_config)
        memory.warm()  # timing starts after the graph is loaded (§VI-B)
        if access_trace is not None:
            from repro.obs.hooks import attach_cpu_observer

            attach_cpu_observer(memory, access_trace)
        run_dfs(graph, app, mem=memory)
        memory.charge_candidate(app.candidates_checked)
        return BaselineResult(
            system=self.name,
            mining=app.result(),
            seconds=memory.seconds(extra_overhead_s=self.task_overhead_s),
            breakdown=memory.breakdown,
        )
