"""RStream-model baseline (Wang et al., OSDI'18 — the paper's disk-based rival).

RStream is a single-machine, out-of-core graph mining system with a
BFS/level-synchronous execution model: every iteration materialises the full
intermediate-embedding relation on SSD and streams it back for the next join
(§V-A, §VII).  Its defining costs are therefore (a) the CPU work of the
level-by-level enumeration and (b) the disk traffic of the intermediates —
and its defining failure mode is running *out of disk* when the
combinatorial explosion hits (the 'N/A' cells of Table III).

The model runs the BFS engine through the CPU cache hierarchy while a
frontier observer charges each completed level's embeddings to the disk
model (written once, read back once).  A frontier cap maps the paper's disk
exhaustion to a typed failure instead of an OOM.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.graph.csr import CSRGraph
from repro.memory.disk import DiskModel, OutOfDiskError
from repro.mining.apps.base import Application
from repro.mining.engine import FrontierOverflowError, run_bfs

from .cpu import CPUConfig, CPUMemory
from .fractal import BaselineResult

if TYPE_CHECKING:
    from repro.obs.access import AccessTrace

__all__ = [
    "RStreamModel",
    "RSTREAM_STARTUP_OVERHEAD_S",
    "RSTREAM_CYCLES_PER_CANDIDATE",
]

# Lightweight native-runtime startup (no JVM): table/stream initialisation.
RSTREAM_STARTUP_OVERHEAD_S = 0.005

# Per-tuple cost of RStream's relational GAS plan (C++, but every candidate
# is materialised as a join tuple rather than checked in registers).
RSTREAM_CYCLES_PER_CANDIDATE = 250

_BYTES_PER_EMBEDDING_VERTEX = 8  # vertex ID + pattern bookkeeping per column
_BYTES_PER_JOIN_TUPLE = 24  # (embedding id, candidate, payload) join row


class RStreamModel:
    """The BFS + SSD CPU baseline."""

    name = "RStream"

    def __init__(
        self,
        cpu_config: CPUConfig | None = None,
        disk: DiskModel | None = None,
        startup_overhead_s: float = RSTREAM_STARTUP_OVERHEAD_S,
        max_frontier: int = 2_000_000,
        cycles_per_candidate: int = RSTREAM_CYCLES_PER_CANDIDATE,
    ) -> None:
        from dataclasses import replace

        base = cpu_config if cpu_config is not None else CPUConfig()
        self.cpu_config = replace(
            base, cycles_per_candidate=cycles_per_candidate
        )
        self.disk = disk if disk is not None else DiskModel()
        self.startup_overhead_s = startup_overhead_s
        self.max_frontier = max_frontier

    def run(
        self,
        graph: CSRGraph,
        app: Application,
        access_trace: "AccessTrace | None" = None,
    ) -> BaselineResult:
        """Mine ``graph`` level-synchronously; returns results + modeled time.

        On frontier/disk exhaustion returns a failed result carrying the
        paper's 'N/A' marker.  ``access_trace`` attaches the post-L2 miss
        observer plus the embedding-region disk-spill emitter (purely
        observational — the result is identical to an untraced run).
        """
        memory = CPUMemory(graph, self.cpu_config)
        memory.warm()  # timing starts after the graph is loaded (§VI-B)
        disk = self.disk
        emit_spill = None
        if access_trace is not None:
            from repro.obs.hooks import attach_cpu_observer, disk_spill_emitter

            attach_cpu_observer(memory, access_trace)
            emit_spill = disk_spill_emitter(access_trace)

        def observe_frontier(size: int, count: int, candidates: int) -> None:
            # RStream's relational plan materialises the join intermediates
            # (one tuple per extension candidate) and the surviving
            # embeddings of the level; both stream to SSD and the
            # embeddings stream back as the next iteration's input.
            join_bytes = candidates * _BYTES_PER_JOIN_TUPLE
            level_bytes = count * size * _BYTES_PER_EMBEDDING_VERTEX
            disk.write(join_bytes + level_bytes)
            disk.read(level_bytes)
            disk.free(join_bytes + level_bytes)
            if emit_spill is not None:
                emit_spill(join_bytes + level_bytes, "w")
                emit_spill(level_bytes, "r")

        try:
            run_bfs(
                graph,
                app,
                mem=memory,
                max_frontier=self.max_frontier,
                frontier_observer=observe_frontier,
            )
        except (FrontierOverflowError, OutOfDiskError):
            return BaselineResult(
                system=self.name,
                mining=app.result(),
                seconds=float("inf"),
                breakdown=memory.breakdown,
                failed="N/A",
            )
        memory.charge_candidate(app.candidates_checked)
        seconds = (
            memory.seconds(extra_overhead_s=self.startup_overhead_s)
            + disk.seconds
        )
        return BaselineResult(
            system=self.name,
            mining=app.result(),
            seconds=seconds,
            breakdown=memory.breakdown,
        )
