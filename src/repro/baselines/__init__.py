"""CPU software baselines: cache-hierarchy model, Fractal, RStream."""

from .cpu import CPUConfig, CPUMemory, CPUTimeBreakdown
from .fractal import FRACTAL_TASK_OVERHEAD_S, BaselineResult, FractalModel
from .rstream import RSTREAM_STARTUP_OVERHEAD_S, RStreamModel

__all__ = [
    "CPUConfig",
    "CPUMemory",
    "CPUTimeBreakdown",
    "FRACTAL_TASK_OVERHEAD_S",
    "BaselineResult",
    "FractalModel",
    "RSTREAM_STARTUP_OVERHEAD_S",
    "RStreamModel",
]
