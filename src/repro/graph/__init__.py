"""Graph substrate: CSR storage, generators, IO, store, statistics, reordering."""

from .csr import CSRGraph
from .generators import (
    clique,
    complete_bipartite,
    cycle,
    erdos_renyi,
    grid,
    path,
    powerlaw_cluster,
    random_labels,
    rmat,
    star,
)
from .io import load_edge_list, parse_edge_list, save_edge_list
from .reorder import (
    ReorderResult,
    rank_permutation,
    reorder_by_on1,
    reorder_by_scores,
)
from .stats import DegreeStats, degree_stats, gini_coefficient, top_share
from .store import (
    GRAPH_FORMAT_VERSION,
    GraphArtifactError,
    GraphStore,
    default_graph_store,
    reset_default_graph_store,
)

__all__ = [
    "CSRGraph",
    "GRAPH_FORMAT_VERSION",
    "GraphArtifactError",
    "GraphStore",
    "default_graph_store",
    "reset_default_graph_store",
    "clique",
    "complete_bipartite",
    "cycle",
    "erdos_renyi",
    "grid",
    "path",
    "powerlaw_cluster",
    "random_labels",
    "rmat",
    "star",
    "load_edge_list",
    "parse_edge_list",
    "save_edge_list",
    "ReorderResult",
    "rank_permutation",
    "reorder_by_on1",
    "reorder_by_scores",
    "DegreeStats",
    "degree_stats",
    "gini_coefficient",
    "top_share",
]
