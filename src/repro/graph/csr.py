"""Compressed sparse row (CSR) graph.

GRAMER stores the input graph in CSR form (paper §VI-A: "All graphs are
considered undirected and stored in the CSR").  The CSR arrays are the
*physical* layout the accelerator addresses, so this module is the ground
truth for every memory-trace and cache model in the repository:

* ``offsets[v] .. offsets[v + 1]`` delimits vertex ``v``'s adjacency slice
  inside ``neighbors``; a *vertex access* in the simulators reads the
  offset/degree entry for ``v``, an *edge access* reads one slot of
  ``neighbors``.
* Adjacency slices are kept sorted so connectivity checks can be performed
  with binary search, matching the extend-check access model of §II-B.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left
from collections.abc import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["CSRGraph"]


class CSRGraph:
    """An immutable undirected graph in compressed sparse row form.

    Parameters
    ----------
    num_vertices:
        Number of vertices; vertex IDs are ``0 .. num_vertices - 1``.
    edges:
        Iterable of ``(u, v)`` pairs.  The graph is undirected: each pair is
        stored in both adjacency lists.  Self loops and duplicate edges are
        dropped (real-world mining systems de-duplicate on load).
    labels:
        Optional per-vertex integer labels (used by FSM).  Defaults to all
        zeros, i.e. an unlabeled graph.
    """

    __slots__ = ("offsets", "neighbors", "labels", "_num_edges", "_content_digest")

    def __init__(
        self,
        num_vertices: int,
        edges: Iterable[tuple[int, int]],
        labels: Sequence[int] | None = None,
    ) -> None:
        pairs = np.array(list(edges), dtype=np.int64).reshape(-1, 2)
        self._init_from_pairs(num_vertices, pairs, labels)

    def _init_from_pairs(
        self,
        num_vertices: int,
        pairs: np.ndarray,
        labels: Sequence[int] | None,
    ) -> None:
        if num_vertices < 0:
            raise ValueError(f"num_vertices must be >= 0, got {num_vertices}")
        if len(pairs):
            if pairs.min() < 0 or pairs.max() >= num_vertices:
                bad = pairs[
                    (pairs.min(axis=1) < 0) | (pairs.max(axis=1) >= num_vertices)
                ][0]
                raise ValueError(
                    f"edge ({bad[0]}, {bad[1]}) out of range for "
                    f"{num_vertices} vertices"
                )
            pairs = pairs[pairs[:, 0] != pairs[:, 1]]  # drop self loops
        if len(pairs):
            lo = pairs.min(axis=1)
            hi = pairs.max(axis=1)
            # De-duplicate on the canonical (min, max) encoding.
            encoded = np.unique(lo * num_vertices + hi)
            lo = encoded // num_vertices
            hi = encoded % num_vertices
            src = np.concatenate([lo, hi])
            dst = np.concatenate([hi, lo])
            degree = np.bincount(src, minlength=num_vertices)
            self.offsets = np.zeros(num_vertices + 1, dtype=np.int64)
            np.cumsum(degree, out=self.offsets[1:])
            # Sort by (source, neighbor): slices come out sorted for
            # binary-search membership checks.
            order = np.lexsort((dst, src))
            self.neighbors = dst[order]
            self._num_edges = len(encoded)
        else:
            self.offsets = np.zeros(num_vertices + 1, dtype=np.int64)
            self.neighbors = np.zeros(0, dtype=np.int64)
            self._num_edges = 0

        if labels is None:
            self.labels = np.zeros(num_vertices, dtype=np.int64)
        else:
            if len(labels) != num_vertices:
                raise ValueError(
                    f"labels has length {len(labels)}, expected {num_vertices}"
                )
            self.labels = np.asarray(labels, dtype=np.int64).copy()
        self._content_digest: str | None = None

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_edge_array(
        cls,
        num_vertices: int,
        pairs: np.ndarray,
        labels: Sequence[int] | None = None,
    ) -> "CSRGraph":
        """Build from an ``(E, 2)`` int64 edge array, fully vectorised.

        Same semantics as the main constructor (self loops dropped,
        duplicates de-duplicated on the canonical encoding, slices sorted)
        without materialising a Python list of tuples — the path the
        streaming edge-list parser and the bulk loaders use.
        """
        graph = cls.__new__(cls)
        pairs = np.ascontiguousarray(pairs, dtype=np.int64).reshape(-1, 2)
        graph._init_from_pairs(num_vertices, pairs, labels)
        return graph

    @classmethod
    def from_arrays(
        cls,
        offsets: np.ndarray,
        neighbors: np.ndarray,
        labels: Sequence[int] | None = None,
    ) -> "CSRGraph":
        """Build directly from validated CSR arrays — zero copy.

        The arrays must describe a symmetric, de-duplicated, per-slice-sorted
        undirected graph; instead of re-running the dedup/sort build path
        this validates invariants (monotone offsets, neighbor ID range) and
        adopts the arrays as-is — symmetry is trusted.  Memory-mapped inputs
        (the graph store's artifacts) stay memory-mapped: no array is copied,
        so N readers of one artifact share OS pages.  Use the main
        constructor when in doubt.
        """
        graph = cls.__new__(cls)
        offsets = np.asarray(offsets, dtype=np.int64)
        neighbors = np.asarray(neighbors, dtype=np.int64)
        if offsets.ndim != 1 or len(offsets) == 0:
            raise ValueError("offsets must be a non-empty 1-D array")
        if np.any(np.diff(offsets) < 0) or offsets[0] != 0:
            raise ValueError("offsets must start at 0 and be non-decreasing")
        if offsets[-1] != len(neighbors):
            raise ValueError("offsets[-1] must equal len(neighbors)")
        n = len(offsets) - 1
        if len(neighbors) and (neighbors.min() < 0 or neighbors.max() >= n):
            raise ValueError("neighbor IDs out of range")
        graph.offsets = offsets
        graph.neighbors = neighbors
        graph._num_edges = len(neighbors) // 2
        if labels is None:
            graph.labels = np.zeros(n, dtype=np.int64)
        else:
            if len(labels) != n:
                raise ValueError(f"labels has length {len(labels)}, expected {n}")
            graph.labels = np.asarray(labels, dtype=np.int64)
        graph._content_digest = None
        return graph

    # -- basic queries ---------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``|V|``."""
        return len(self.offsets) - 1

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``|E|`` (each counted once)."""
        return self._num_edges

    def content_digest(self) -> str:
        """SHA-256 over the raw CSR arrays — the graph's content address.

        Computed at most once per graph object: the digest is memoized on
        first use, and graphs opened from the :class:`~repro.graph.store.
        GraphStore` arrive with it pre-set from the artifact header, so
        store-backed graphs are addressed without ever re-hashing their
        (potentially huge, memory-mapped) arrays.
        """
        digest = getattr(self, "_content_digest", None)
        if digest is None:
            hasher = hashlib.sha256()
            hasher.update(np.ascontiguousarray(self.offsets).tobytes())
            hasher.update(np.ascontiguousarray(self.neighbors).tobytes())
            hasher.update(np.ascontiguousarray(self.labels).tobytes())
            digest = hasher.hexdigest()
            self._content_digest = digest
        return digest

    def degree(self, v: int) -> int:
        """Degree of vertex ``v``."""
        return int(self.offsets[v + 1] - self.offsets[v])

    def degrees(self) -> np.ndarray:
        """Degrees of all vertices as an array."""
        return np.diff(self.offsets)

    def neighbors_of(self, v: int) -> np.ndarray:
        """Sorted adjacency slice of ``v`` (a view, do not mutate)."""
        return self.neighbors[self.offsets[v] : self.offsets[v + 1]]

    def label(self, v: int) -> int:
        """Label of vertex ``v`` (0 for unlabeled graphs)."""
        return int(self.labels[v])

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``(u, v)`` exists (binary search)."""
        lo, hi = int(self.offsets[u]), int(self.offsets[u + 1])
        i = lo + bisect_left(self.neighbors[lo:hi], v)
        return bool(i < hi and self.neighbors[i] == v)

    def edge_index(self, u: int, v: int) -> int | None:
        """Index into ``neighbors`` where ``v`` sits in ``u``'s slice.

        This is the *physical address* of the directed edge record
        ``u -> v``; the memory models key edge accesses on it.  Returns
        ``None`` when the edge does not exist.
        """
        lo, hi = int(self.offsets[u]), int(self.offsets[u + 1])
        i = lo + bisect_left(self.neighbors[lo:hi], v)
        if i < hi and self.neighbors[i] == v:
            return i
        return None

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate undirected edges once each, as ``(u, v)`` with ``u < v``."""
        for u in range(self.num_vertices):
            for v in self.neighbors_of(u):
                if u < v:
                    yield u, int(v)

    # -- transformations --------------------------------------------------------

    def relabeled(self, permutation: Sequence[int]) -> "CSRGraph":
        """Return a copy with vertex ``v`` renamed to ``permutation[v]``.

        Graph reordering (paper §IV-C) renames vertices so the ID *is* the
        ON1 rank; this produces the renamed CSR the accelerator then loads.
        Fully vectorised — reordering cost is part of the preprocessing
        overhead Fig. 11(b) measures, so it must not carry Python-loop
        overhead the paper's native implementation would not have.
        """
        perm = np.asarray(permutation, dtype=np.int64)
        n = self.num_vertices
        if len(perm) != n or not np.array_equal(
            np.sort(perm), np.arange(n)
        ):
            raise ValueError("permutation must be a bijection on vertex IDs")
        new_labels = np.zeros(n, dtype=np.int64)
        new_labels[perm] = self.labels
        if len(self.neighbors) == 0:
            return CSRGraph.from_arrays(
                np.zeros(n + 1, dtype=np.int64),
                np.zeros(0, dtype=np.int64),
                labels=new_labels,
            )
        # New source per slot, new neighbor per slot; then regroup/sort.
        src = np.repeat(np.arange(n, dtype=np.int64), np.diff(self.offsets))
        new_src = perm[src]
        new_dst = perm[self.neighbors]
        order = np.lexsort((new_dst, new_src))
        new_degrees = np.bincount(new_src, minlength=n)
        new_offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(new_degrees, out=new_offsets[1:])
        return CSRGraph.from_arrays(
            new_offsets, new_dst[order], labels=new_labels
        )

    def induced_adjacency(self, vertices: Sequence[int]) -> int:
        """Adjacency bitmask of the induced subgraph on ``vertices``.

        Bit ``i * k + j`` (for ``k = len(vertices)``) is set when
        ``vertices[i]`` and ``vertices[j]`` are adjacent.  Used to derive the
        pattern of an embedding.
        """
        k = len(vertices)
        mask = 0
        for i in range(k):
            for j in range(i + 1, k):
                if self.has_edge(vertices[i], vertices[j]):
                    mask |= (1 << (i * k + j)) | (1 << (j * k + i))
        return mask

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CSRGraph(num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges})"
        )
