"""Synthetic graph generators.

The paper evaluates on SNAP/NBER datasets (Citeseer, P2P, Astro, Mico,
Patents, YouTube, LiveJournal).  Those files are not available offline, so
the experiment harness substitutes synthetic proxies built here.  What the
GRAMER design exploits is the *shape* of real-world graphs — the power-law
degree distribution that concentrates extension-time accesses on a few hot
vertices (§II-D) — so the generators are chosen for their degree
distributions:

* :func:`erdos_renyi` — near-uniform degrees (Citeseer proxy; the paper's
  Citeseer is a small, thin citation graph).
* :func:`powerlaw_cluster` — preferential attachment with optional triad
  closure, heavy-tailed degrees and tunable clustering (all other proxies).
* Structured generators (:func:`clique`, :func:`star`, :func:`cycle`,
  :func:`complete_bipartite`, :func:`grid`) used throughout the tests as
  graphs with known mining results.

All generators are deterministic given ``seed``.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph

__all__ = [
    "erdos_renyi",
    "powerlaw_cluster",
    "rmat",
    "clique",
    "star",
    "cycle",
    "path",
    "complete_bipartite",
    "grid",
    "random_labels",
]


def erdos_renyi(num_vertices: int, num_edges: int, seed: int = 0) -> CSRGraph:
    """G(n, m) random graph: ``num_edges`` distinct edges chosen uniformly."""
    max_edges = num_vertices * (num_vertices - 1) // 2
    if num_edges > max_edges:
        raise ValueError(
            f"requested {num_edges} edges but only {max_edges} are possible"
        )
    rng = np.random.default_rng(seed)
    edges: set[tuple[int, int]] = set()
    # Sample in batches; for sparse graphs a couple of rounds suffice.
    while len(edges) < num_edges:
        need = num_edges - len(edges)
        us = rng.integers(0, num_vertices, size=2 * need + 8)
        vs = rng.integers(0, num_vertices, size=2 * need + 8)
        for u, v in zip(us.tolist(), vs.tolist()):
            if u == v:
                continue
            edges.add((u, v) if u < v else (v, u))
            if len(edges) == num_edges:
                break
    return CSRGraph(num_vertices, edges)


def powerlaw_cluster(
    num_vertices: int,
    edges_per_vertex: int,
    triad_probability: float = 0.3,
    seed: int = 0,
    max_degree: int | None = None,
) -> CSRGraph:
    """Preferential-attachment graph with triad closure (Holme–Kim style).

    Each arriving vertex attaches ``edges_per_vertex`` edges; each edge
    either targets an endpoint sampled proportionally to degree or, with
    ``triad_probability``, closes a triangle with a neighbour of the previous
    target.  The result has a power-law degree tail (the property §II-D's
    extension-locality argument rests on) and non-trivial clustering, which
    real mining datasets such as Mico and Astro exhibit.

    ``max_degree`` truncates the tail: attachment to a vertex already at the
    cap is rejected.  The dataset proxies use this to keep combinatorial
    workloads (hub-degree-cubed terms in 4-MC) tractable for the pure-Python
    simulator while preserving the degree *skew* the paper's locality
    argument needs — see DESIGN.md.

    Vertex IDs are shuffled after construction.  Preferential attachment
    natively assigns hubs the lowest IDs (they are the oldest vertices),
    which would correlate ID order with degree; real SNAP datasets have
    arbitrary IDs, and the mining engine's ID-based canonicality checks make
    that correlation behaviourally significant (a low-ID hub is rarely a
    canonical extension candidate).  Shuffling restores ID ⊥ degree.
    """
    m = edges_per_vertex
    if m < 1:
        raise ValueError("edges_per_vertex must be >= 1")
    if num_vertices <= m:
        raise ValueError("num_vertices must exceed edges_per_vertex")
    if not 0.0 <= triad_probability <= 1.0:
        raise ValueError("triad_probability must be in [0, 1]")
    if max_degree is not None and max_degree < m + 1:
        raise ValueError("max_degree must be > edges_per_vertex")

    rng = np.random.default_rng(seed)
    edges: set[tuple[int, int]] = set()
    # `targets` holds one entry per edge endpoint so uniform sampling from it
    # is degree-proportional sampling (the classic BA trick).
    targets: list[int] = list(range(m))
    adjacency: list[list[int]] = [[] for _ in range(num_vertices)]

    def add_edge(u: int, v: int) -> bool:
        key = (u, v) if u < v else (v, u)
        if u == v or key in edges:
            return False
        if max_degree is not None and (
            len(adjacency[u]) >= max_degree or len(adjacency[v]) >= max_degree
        ):
            return False
        edges.add(key)
        adjacency[u].append(v)
        adjacency[v].append(u)
        return True

    for v in range(m, num_vertices):
        chosen: list[int] = []
        prev_target: int | None = None
        attempts = 0
        while len(chosen) < m and attempts < 50 * m:
            attempts += 1
            if (
                prev_target is not None
                and adjacency[prev_target]
                and rng.random() < triad_probability
            ):
                candidate = int(
                    adjacency[prev_target][
                        rng.integers(0, len(adjacency[prev_target]))
                    ]
                )
            else:
                candidate = int(targets[rng.integers(0, len(targets))])
            if add_edge(v, candidate):
                chosen.append(candidate)
                prev_target = candidate
        for u in chosen:
            targets.append(u)
            targets.append(v)
    permutation = rng.permutation(num_vertices)
    shuffled = (
        (int(permutation[u]), int(permutation[v])) for u, v in edges
    )
    return CSRGraph(num_vertices, shuffled)


def rmat(
    scale: int,
    edge_factor: int = 8,
    probabilities: tuple[float, float, float, float] = (0.57, 0.19, 0.19, 0.05),
    seed: int = 0,
) -> CSRGraph:
    """R-MAT / Kronecker graph (Graph500 defaults).

    ``2**scale`` vertices, ``edge_factor × 2**scale`` directed samples
    (deduplicated and symmetrised).  The recursive quadrant descent
    produces the heavy-tailed, community-ish structure accelerator papers
    conventionally benchmark on; IDs are shuffled for the same reason as in
    :func:`powerlaw_cluster`.
    """
    if scale < 1 or scale > 24:
        raise ValueError("scale must be in [1, 24]")
    if edge_factor < 1:
        raise ValueError("edge_factor must be >= 1")
    a, b, c, d = probabilities
    if abs(a + b + c + d - 1.0) > 1e-9 or min(a, b, c, d) < 0:
        raise ValueError("probabilities must be non-negative and sum to 1")

    rng = np.random.default_rng(seed)
    n = 1 << scale
    num_samples = edge_factor * n
    # Vectorised descent: one random draw per (sample, level).
    draws = rng.random((num_samples, scale))
    us = np.zeros(num_samples, dtype=np.int64)
    vs = np.zeros(num_samples, dtype=np.int64)
    for level in range(scale):
        r = draws[:, level]
        # Quadrants: a (u0,v0), b (u0,v1), c (u1,v0), d (u1,v1).
        in_b = (r >= a) & (r < a + b)
        in_c = (r >= a + b) & (r < a + b + c)
        in_d = r >= a + b + c
        us = (us << 1) | (in_c | in_d)
        vs = (vs << 1) | (in_b | in_d)
    permutation = rng.permutation(n)
    edges = zip(permutation[us].tolist(), permutation[vs].tolist())
    return CSRGraph(n, edges)


def clique(num_vertices: int) -> CSRGraph:
    """Complete graph K_n."""
    return CSRGraph(
        num_vertices,
        (
            (u, v)
            for u in range(num_vertices)
            for v in range(u + 1, num_vertices)
        ),
    )


def star(num_leaves: int) -> CSRGraph:
    """Star: vertex 0 connected to ``num_leaves`` leaves."""
    return CSRGraph(num_leaves + 1, ((0, i) for i in range(1, num_leaves + 1)))


def cycle(num_vertices: int) -> CSRGraph:
    """Cycle C_n (requires n >= 3)."""
    if num_vertices < 3:
        raise ValueError("a cycle needs at least 3 vertices")
    return CSRGraph(
        num_vertices,
        ((i, (i + 1) % num_vertices) for i in range(num_vertices)),
    )


def path(num_vertices: int) -> CSRGraph:
    """Path P_n."""
    return CSRGraph(num_vertices, ((i, i + 1) for i in range(num_vertices - 1)))


def complete_bipartite(left: int, right: int) -> CSRGraph:
    """Complete bipartite graph K_{left,right}."""
    return CSRGraph(
        left + right,
        ((u, left + v) for u in range(left) for v in range(right)),
    )


def grid(rows: int, cols: int) -> CSRGraph:
    """2-D grid graph (rows × cols)."""
    def vid(r: int, c: int) -> int:
        return r * cols + c

    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((vid(r, c), vid(r, c + 1)))
            if r + 1 < rows:
                edges.append((vid(r, c), vid(r + 1, c)))
    return CSRGraph(rows * cols, edges)


def random_labels(
    graph: CSRGraph, num_labels: int, seed: int = 0
) -> CSRGraph:
    """Return a copy of ``graph`` with uniform random labels in ``[0, num_labels)``.

    FSM needs labeled vertices (patterns are label-aware); the SNAP proxies
    are unlabeled, so experiments label them with this helper, mirroring how
    the mining-systems literature labels Mico/Patents variants.
    """
    if num_labels < 1:
        raise ValueError("num_labels must be >= 1")
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, num_labels, size=graph.num_vertices)
    return CSRGraph.from_arrays(graph.offsets, graph.neighbors, labels=labels)
