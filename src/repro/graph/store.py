"""Content-addressed, memory-mapped graph store.

The paper's whole locality argument rests on the CSR arrays being a
compact physical layout the accelerator can address directly (§VI-A); this
module gives the *reproduction* the same property.  A graph — whether a
registry proxy generator or a parsed SNAP edge list — is **materialized
once** into a single binary artifact holding the raw ``offsets`` /
``neighbors`` / ``labels`` arrays, and every later consumer opens it as an
immutable :class:`~repro.graph.csr.CSRGraph` backed by read-only
:func:`numpy.memmap` views.  N processes opening the same artifact share
one set of OS page-cache pages instead of each pickling, re-parsing, or
regenerating the graph.

Addressing is by **content digest**: SHA-256 over the raw CSR array bytes
(``offsets`` then ``neighbors`` then ``labels``), the exact digest
:func:`CSRGraph.content_digest` computes — so the store, the ON1-rank
cache, and job-result keys all agree on one address per graph, and graphs
opened from the store carry their digest with them (no re-hashing, ever).

Artifact format (``<cache_root>/graphstore/<digest>.graph``)::

    magic "GRMGRAPH" | header_len u64le | data_start u64le   (24 bytes)
    header JSON (canonical, self-checksummed)                (header_len)
    zero padding to data_start (64-byte aligned)
    offsets   int64le[]   \\
    neighbors int64le[]    } each 64-byte aligned, per-array SHA-256
    labels    int64le[]   /    recorded in the header

Integrity follows the artifact cache's CACHE_VERSION=2 convention
(docs/resilience.md): the header records a format version, a self
checksum, and one SHA-256 per array; anything that fails verification —
truncation, a bit flip, version skew — is **quarantined** (moved to
``<cache_root>/quarantine/``) and reported as missing so callers rebuild.
Corruption can never surface as a wrong graph.

Named sources (dataset proxies, imported edge lists) are bound to digests
through tiny ``refs/`` files — ``stable_hash(key) -> digest`` — so
:meth:`GraphStore.load` is "look up the ref, open the artifact, else build
once and materialize".
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.obs.log import get_logger

from .csr import CSRGraph
from .io import load_edge_list

__all__ = [
    "GRAPH_FORMAT_VERSION",
    "GraphArtifactError",
    "GraphStore",
    "default_graph_store",
    "reset_default_graph_store",
]

#: Bump to invalidate every stored graph artifact when the layout changes.
GRAPH_FORMAT_VERSION = 1

_MAGIC = b"GRMGRAPH"
_PREAMBLE_LEN = 24  # magic + header_len + data_start
_ALIGN = 64
_MAX_HEADER_BYTES = 1 << 20
_ARRAY_ORDER = ("offsets", "neighbors", "labels")
_SUFFIX = ".graph"
_STORE_DIR = "graphstore"
_REFS_DIR = "refs"
_QUARANTINE_DIR = "quarantine"

_log = get_logger("graph.store")


class GraphArtifactError(Exception):
    """A graph artifact is missing, unreadable, or failed verification."""


class _ArtifactCorrupt(Exception):
    """Internal: artifact failed integrity verification (quarantine it)."""


def _resolve_cache_root() -> Path:
    # Lazy import: ``repro.runtime`` sits *above* the graph layer (its
    # backends import this module), so the root/hash helpers are pulled in
    # at call time to keep imports acyclic.
    from repro.runtime.cache import default_cache_root

    return default_cache_root()


def _stable_key_hash(key: Any) -> str:
    from repro.runtime.cache import stable_hash

    return stable_hash({"graphstore": key, "format": GRAPH_FORMAT_VERSION})


def _align(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


def _header_self_digest(header: dict[str, Any]) -> str:
    payload = {k: v for k, v in header.items() if k != "header_sha256"}
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def _write_artifact(path: Path, graph: CSRGraph, content_digest: str) -> None:
    """Serialize ``graph`` atomically (tmp + ``os.replace``) to ``path``."""
    arrays: dict[str, np.ndarray] = {
        "offsets": np.ascontiguousarray(graph.offsets, dtype=np.int64),
        "neighbors": np.ascontiguousarray(graph.neighbors, dtype=np.int64),
        "labels": np.ascontiguousarray(graph.labels, dtype=np.int64),
    }
    layout: dict[str, dict[str, Any]] = {}
    rel = 0
    for name in _ARRAY_ORDER:
        arr = arrays[name]
        layout[name] = {
            "offset": rel,
            "items": int(arr.size),
            "sha256": hashlib.sha256(arr.tobytes()).hexdigest(),
        }
        rel = _align(rel + arr.nbytes)
    header: dict[str, Any] = {
        "format": "gramer-graphstore",
        "format_version": GRAPH_FORMAT_VERSION,
        "content_digest": content_digest,
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "dtype": "<i8",
        "arrays": layout,
    }
    header["header_sha256"] = _header_self_digest(header)
    header_bytes = json.dumps(
        header, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    data_start = _align(_PREAMBLE_LEN + len(header_bytes))

    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as handle:
            handle.write(_MAGIC)
            handle.write(len(header_bytes).to_bytes(8, "little"))
            handle.write(data_start.to_bytes(8, "little"))
            handle.write(header_bytes)
            handle.write(b"\x00" * (data_start - _PREAMBLE_LEN - len(header_bytes)))
            pos = 0
            for name in _ARRAY_ORDER:
                arr = arrays[name]
                target = int(layout[name]["offset"])
                handle.write(b"\x00" * (target - pos))
                handle.write(arr.tobytes())
                pos = target + arr.nbytes
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)  # atomic under concurrent pool workers
    finally:
        try:
            tmp.unlink(missing_ok=True)
        except OSError:
            pass


def _read_header(path: Path) -> tuple[dict[str, Any], int]:
    """Read and verify the artifact header; return ``(header, data_start)``.

    Raises :class:`_ArtifactCorrupt` for any structural defect — the
    caller decides whether that means quarantine.
    """
    with open(path, "rb") as handle:
        preamble = handle.read(_PREAMBLE_LEN)
        if len(preamble) != _PREAMBLE_LEN or preamble[:8] != _MAGIC:
            raise _ArtifactCorrupt("bad magic or truncated preamble")
        header_len = int.from_bytes(preamble[8:16], "little")
        data_start = int.from_bytes(preamble[16:24], "little")
        if not 0 < header_len <= _MAX_HEADER_BYTES:
            raise _ArtifactCorrupt(f"implausible header length {header_len}")
        if data_start < _PREAMBLE_LEN + header_len:
            raise _ArtifactCorrupt("data_start overlaps the header")
        header_bytes = handle.read(header_len)
    if len(header_bytes) != header_len:
        raise _ArtifactCorrupt("truncated header")
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise _ArtifactCorrupt(f"undecodable header: {exc}") from exc
    if not isinstance(header, dict):
        raise _ArtifactCorrupt("header is not a JSON object")
    if header.get("format_version") != GRAPH_FORMAT_VERSION:
        raise _ArtifactCorrupt(
            f"format version skew: artifact "
            f"v{header.get('format_version')!r} vs runtime "
            f"v{GRAPH_FORMAT_VERSION}"
        )
    if header.get("header_sha256") != _header_self_digest(header):
        raise _ArtifactCorrupt("header checksum mismatch")
    tables = header.get("arrays")
    if not isinstance(tables, dict) or set(tables) != set(_ARRAY_ORDER):
        raise _ArtifactCorrupt("header arrays table malformed")
    size = path.stat().st_size
    try:
        for name in _ARRAY_ORDER:
            meta = tables[name]
            end = data_start + int(meta["offset"]) + int(meta["items"]) * 8
            if int(meta["offset"]) < 0 or int(meta["items"]) < 0:
                raise _ArtifactCorrupt(f"array {name!r} has a negative extent")
            if end > size:
                raise _ArtifactCorrupt(
                    f"truncated artifact: array {name!r} extends past EOF"
                )
    except (KeyError, TypeError, ValueError) as exc:
        raise _ArtifactCorrupt(f"header arrays table malformed: {exc}") from exc
    return header, data_start


def _map_arrays(
    path: Path, header: dict[str, Any], data_start: int
) -> dict[str, np.ndarray]:
    """Memory-map each array read-only; no bytes are copied."""
    mapped: dict[str, np.ndarray] = {}
    for name in _ARRAY_ORDER:
        meta = header["arrays"][name]
        mapped[name] = np.memmap(
            path,
            dtype=np.int64,
            mode="r",
            offset=data_start + int(meta["offset"]),
            shape=(int(meta["items"]),),
        )
    return mapped


def _verify_arrays(
    header: dict[str, Any], mapped: dict[str, np.ndarray]
) -> None:
    for name in _ARRAY_ORDER:
        expected = header["arrays"][name].get("sha256")
        actual = hashlib.sha256(mapped[name].tobytes()).hexdigest()
        if actual != expected:
            raise _ArtifactCorrupt(f"array {name!r} checksum mismatch")


class GraphStore:
    """Content-addressed store of memory-mapped CSR graph artifacts.

    ``cache_root`` defaults to the artifact cache's root (honouring
    ``GRAMER_CACHE_DIR``); artifacts live under ``<cache_root>/graphstore``
    and share the cache's ``<cache_root>/quarantine`` convention.  Open
    graphs are memoized per digest per process, so repeated
    :meth:`open`/:meth:`load` calls return the *same* object.
    """

    def __init__(self, cache_root: str | os.PathLike[str] | None = None) -> None:
        self.cache_root = (
            Path(cache_root) if cache_root is not None else _resolve_cache_root()
        )
        self.root = self.cache_root / _STORE_DIR
        self._open_graphs: dict[str, CSRGraph] = {}
        #: Artifacts moved to quarantine by this store instance.
        self.quarantined = 0

    # -- addressing ---------------------------------------------------------

    def artifact_path(self, digest: str) -> Path:
        """Disk location of ``digest`` (whether or not it exists)."""
        return self.root / f"{digest}{_SUFFIX}"

    def _ref_path(self, key: Any) -> Path:
        return self.root / _REFS_DIR / f"{_stable_key_hash(key)}.ref"

    def digests(self) -> list[str]:
        """Digests of every artifact currently on disk, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(p.stem for p in self.root.glob(f"*{_SUFFIX}"))

    # -- core operations ----------------------------------------------------

    def put(self, graph: CSRGraph) -> str:
        """Materialize ``graph`` (idempotent); return its content digest."""
        digest = graph.content_digest()
        path = self.artifact_path(digest)
        if not path.exists():
            _write_artifact(path, graph, digest)
            _log.debug(
                "materialized graph %s (|V|=%d, |E|=%d)",
                digest[:12],
                graph.num_vertices,
                graph.num_edges,
            )
        return digest

    def open(self, digest: str) -> CSRGraph:
        """Open the artifact as an immutable mmap-backed ``CSRGraph``.

        Per-array checksums are verified on first open; a failing
        artifact is quarantined and reported via
        :class:`GraphArtifactError` — never returned as a wrong graph.
        Subsequent opens of the same digest return the memoized object.
        """
        cached = self._open_graphs.get(digest)
        if cached is not None:
            return cached
        path = self.artifact_path(digest)
        if not path.exists():
            raise GraphArtifactError(
                f"no graph artifact {digest[:12]}... under {self.root}"
            )
        try:
            graph = self._open_path(path, digest)
        except _ArtifactCorrupt as exc:
            self._quarantine(path, str(exc))
            raise GraphArtifactError(
                f"graph artifact {digest[:12]}... failed verification "
                f"({exc}); quarantined"
            ) from exc
        except OSError as exc:
            raise GraphArtifactError(
                f"cannot read graph artifact {digest[:12]}...: {exc}"
            ) from exc
        self._open_graphs[digest] = graph
        return graph

    def _open_path(self, path: Path, expected_digest: str | None) -> CSRGraph:
        header, data_start = _read_header(path)
        if (
            expected_digest is not None
            and header.get("content_digest") != expected_digest
        ):
            raise _ArtifactCorrupt(
                "content digest does not match the artifact's address"
            )
        mapped = _map_arrays(path, header, data_start)
        _verify_arrays(header, mapped)
        try:
            graph = CSRGraph.from_arrays(
                mapped["offsets"], mapped["neighbors"], labels=mapped["labels"]
            )
        except ValueError as exc:
            raise _ArtifactCorrupt(f"CSR invariants violated: {exc}") from exc
        # The digest rides in from the verified header: store-backed graphs
        # are addressed without ever re-hashing their arrays.
        graph._content_digest = str(header["content_digest"])
        return graph

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a failed-verification artifact aside for post-mortem."""
        self.quarantined += 1
        target = self.cache_root / _QUARANTINE_DIR / f"{_STORE_DIR}-{path.name}"
        _log.warning("quarantining graph artifact %s: %s", path.name, reason)
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError:
            # Out of moves too?  Best effort: drop the bad artifact so a
            # rebuilt one can take its slot.
            try:
                path.unlink(missing_ok=True)
            except OSError:
                _log.warning(
                    "could not remove corrupt graph artifact %s", path
                )

    # -- named sources (refs) -----------------------------------------------

    def _read_ref(self, ref: Path) -> str | None:
        try:
            text = ref.read_text(encoding="utf-8").strip()
        except OSError:
            return None
        if len(text) == 64 and all(c in "0123456789abcdef" for c in text):
            return text
        _log.warning("dropping malformed graph ref %s", ref.name)
        try:
            ref.unlink(missing_ok=True)
        except OSError:
            pass
        return None

    def _write_ref(self, ref: Path, digest: str) -> None:
        tmp = ref.with_name(f"{ref.name}.tmp.{os.getpid()}")
        try:
            ref.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(digest, encoding="utf-8")
            os.replace(tmp, ref)
        except OSError as exc:
            _log.warning("could not persist graph ref %s: %s", ref.name, exc)
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass

    def materialize(self, key: Any, builder: Callable[[], CSRGraph]) -> str:
        """Digest for the named source ``key``, building at most once.

        ``key`` must be JSON-canonical (same contract as the artifact
        cache).  A dangling or quarantined artifact behind the ref is
        rebuilt via ``builder`` — corruption degrades to recomputation,
        exactly like the artifact cache.
        """
        ref = self._ref_path(key)
        digest = self._read_ref(ref)
        if digest is not None:
            try:
                self.open(digest)
            except GraphArtifactError as exc:
                _log.warning(
                    "graph artifact behind ref %s unavailable (%s); "
                    "rebuilding",
                    ref.name,
                    exc,
                )
            else:
                return digest
        digest = self.put(builder())
        self._write_ref(ref, digest)
        return digest

    def load(self, key: Any, builder: Callable[[], CSRGraph]) -> CSRGraph:
        """Mmap-backed graph for the named source ``key`` (build-once)."""
        return self.open(self.materialize(key, builder))

    def import_edge_list(
        self, filename: str | os.PathLike[str], comment_prefix: str = "#"
    ) -> str:
        """Materialize a SNAP-style edge-list file; return its digest.

        Keyed by the file's *byte* hash, so re-importing an unchanged file
        is a ref lookup, not a re-parse.
        """
        path = Path(filename)
        hasher = hashlib.sha256()
        with open(path, "rb") as handle:
            for block in iter(lambda: handle.read(1 << 20), b""):
                hasher.update(block)
        key = {
            "source": "edge-list",
            "file_sha256": hasher.hexdigest(),
            "comment_prefix": comment_prefix,
        }
        return self.materialize(
            key, lambda: load_edge_list(path, comment_prefix=comment_prefix)
        )

    # -- inspection ---------------------------------------------------------

    def info(self, digest: str) -> dict[str, Any]:
        """Header-level facts about an artifact (no arrays are hashed)."""
        path = self.artifact_path(digest)
        if not path.exists():
            raise GraphArtifactError(
                f"no graph artifact {digest[:12]}... under {self.root}"
            )
        try:
            header, _ = _read_header(path)
        except _ArtifactCorrupt as exc:
            raise GraphArtifactError(
                f"graph artifact {digest[:12]}... is corrupt: {exc}"
            ) from exc
        except OSError as exc:
            raise GraphArtifactError(
                f"cannot read graph artifact {digest[:12]}...: {exc}"
            ) from exc
        return {
            "digest": digest,
            "path": str(path),
            "bytes": path.stat().st_size,
            "format_version": int(header["format_version"]),
            "num_vertices": int(header["num_vertices"]),
            "num_edges": int(header["num_edges"]),
        }

    def verify(self, digest: str) -> dict[str, Any]:
        """Full integrity check from disk (header + every array checksum).

        Unlike :meth:`open` this never uses the in-process memo; a
        failing artifact is quarantined and raised.
        """
        path = self.artifact_path(digest)
        if not path.exists():
            raise GraphArtifactError(
                f"no graph artifact {digest[:12]}... under {self.root}"
            )
        try:
            self._open_path(path, digest)
        except _ArtifactCorrupt as exc:
            self._quarantine(path, str(exc))
            self._open_graphs.pop(digest, None)
            raise GraphArtifactError(
                f"graph artifact {digest[:12]}... failed verification "
                f"({exc}); quarantined"
            ) from exc
        except OSError as exc:
            raise GraphArtifactError(
                f"cannot read graph artifact {digest[:12]}...: {exc}"
            ) from exc
        return self.info(digest)


_default_store: GraphStore | None = None


def default_graph_store() -> GraphStore:
    """The process-wide store singleton, re-rooted if the cache root moves.

    Unlike the artifact-cache singleton this one re-resolves
    ``default_cache_root()`` on every call: tests (and ``GRAMER_CACHE_DIR``
    flips generally) get a store under the new root without an explicit
    reset.
    """
    global _default_store
    root = _resolve_cache_root()
    if _default_store is None or _default_store.cache_root != root:
        _default_store = GraphStore(root)
    return _default_store


def reset_default_graph_store() -> None:
    """Forget the singleton (drops every memoized open graph)."""
    global _default_store
    _default_store = None
