"""Degree-distribution statistics.

Used by the dataset registry to verify that each synthetic proxy keeps the
degree *skew* of its real counterpart — the property GRAMER's extension
locality depends on (§II-D) — and by examples that report graph shape.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRGraph

__all__ = ["DegreeStats", "degree_stats", "gini_coefficient", "top_share"]


@dataclass(frozen=True)
class DegreeStats:
    """Summary of a graph's degree distribution."""

    num_vertices: int
    num_edges: int
    min_degree: int
    max_degree: int
    mean_degree: float
    median_degree: float
    gini: float
    top5_degree_share: float

    def describe(self) -> str:
        """One-line human-readable description."""
        return (
            f"|V|={self.num_vertices} |E|={self.num_edges} "
            f"deg[min={self.min_degree} med={self.median_degree:.0f} "
            f"mean={self.mean_degree:.2f} max={self.max_degree}] "
            f"gini={self.gini:.3f} top5%={self.top5_degree_share:.1%}"
        )


def gini_coefficient(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative sample (0 = uniform, →1 = skewed)."""
    values = np.sort(np.asarray(values, dtype=np.float64))
    n = len(values)
    if n == 0:
        raise ValueError("gini of an empty sample is undefined")
    total = values.sum()
    if total == 0:
        return 0.0
    ranks = np.arange(1, n + 1)
    return float((2 * (ranks * values).sum()) / (n * total) - (n + 1) / n)


def top_share(values: np.ndarray, fraction: float) -> float:
    """Fraction of the total mass held by the top ``fraction`` of entries.

    ``top_share(degrees, 0.05)`` is "what share of edge endpoints belong to
    the top-5% highest-degree vertices", the quantity behind Fig. 5's 5%
    threshold choice.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    values = np.sort(np.asarray(values, dtype=np.float64))[::-1]
    total = values.sum()
    if total == 0:
        return 0.0
    k = max(1, int(round(fraction * len(values))))
    return float(values[:k].sum() / total)


def degree_stats(graph: CSRGraph) -> DegreeStats:
    """Compute :class:`DegreeStats` for ``graph``."""
    degrees = graph.degrees()
    if len(degrees) == 0:
        raise ValueError("cannot summarize an empty graph")
    return DegreeStats(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        min_degree=int(degrees.min()),
        max_degree=int(degrees.max()),
        mean_degree=float(degrees.mean()),
        median_degree=float(np.median(degrees)),
        gini=gini_coefficient(degrees),
        top5_degree_share=top_share(degrees, 0.05),
    )
