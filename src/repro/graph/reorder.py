"""Graph reordering (paper §IV-C).

GRAMER needs ``Rank(ON1(v))`` at runtime to classify priority and pick cache
victims, but computing or storing the rank per request is too costly.  The
paper's trick is to *reorder* the graph so the vertex ID equals the rank:
after reordering, extracting the ID of a request is extracting its rank.

:func:`rank_permutation` turns a score vector into the renaming permutation,
:func:`reorder_by_scores` applies it, and :func:`reorder_by_on1` is the
full preprocessing step (ON1 scoring + reordering) whose wall-clock time the
Fig. 11(b) preprocessing-overhead experiment measures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .csr import CSRGraph

__all__ = [
    "rank_permutation",
    "reorder_by_scores",
    "reorder_by_on1",
    "ReorderResult",
]


def rank_permutation(scores: np.ndarray) -> np.ndarray:
    """Permutation mapping old vertex ID -> rank of its score (0 = highest).

    Ties are broken by original ID so the permutation is deterministic.
    """
    scores = np.asarray(scores)
    order = np.lexsort((np.arange(len(scores)), -scores))
    perm = np.empty(len(scores), dtype=np.int64)
    perm[order] = np.arange(len(scores))
    return perm


def reorder_by_scores(graph: CSRGraph, scores: np.ndarray) -> CSRGraph:
    """Relabel ``graph`` so IDs ascend by descending ``scores``.

    After this, vertex 0 is the highest-scored vertex and
    ``Rank(score(v)) == v`` for every vertex, which is the invariant the
    LAMH controller and replacement policy rely on.
    """
    if len(scores) != graph.num_vertices:
        raise ValueError("scores must have one entry per vertex")
    return graph.relabeled(rank_permutation(scores))


@dataclass(frozen=True)
class ReorderResult:
    """Output of the full ON1 preprocessing step."""

    graph: CSRGraph
    permutation: np.ndarray  # old ID -> new ID
    scores: np.ndarray  # ON1 score indexed by *old* ID
    seconds: float  # wall-clock preprocessing time (Fig. 11b)


def reorder_by_on1(graph: CSRGraph) -> ReorderResult:
    """Run GRAMER's preprocessing: score by ON1, reorder so ID == rank."""
    # Imported here to avoid a package cycle (locality depends on graph).
    from repro.locality.occurrence import occurrence_numbers

    start = time.perf_counter()
    scores = occurrence_numbers(graph, hops=1)
    perm = rank_permutation(scores)
    reordered = graph.relabeled(perm)
    elapsed = time.perf_counter() - start
    return ReorderResult(
        graph=reordered, permutation=perm, scores=scores, seconds=elapsed
    )
