"""Edge-list graph IO: a chunked, bounded-memory SNAP-format parser.

The SNAP datasets the paper uses ship as whitespace-separated edge lists;
this module reads and writes that format so users can run the reproduction
on the real files (``gramer graph build --graph patents.txt``) and
round-trips the synthetic proxies.

The parser is built for real-scale files (Patents/YouTube/LiveJournal are
tens of millions of lines): lines are consumed in fixed-size chunks, each
chunk is vectorised into an ``(k, 2)`` int64 array, and
:func:`load_edge_list` makes **two passes** over the file — a cheap counting
pass that sizes the final edge array exactly, then a fill pass — so peak
memory is one int64 pair per edge plus one chunk, never a Python
list-of-tuples plus an ID set.  Real-format quirks are handled explicitly:
``#`` comment lines, blank lines, CRLF line endings, trailing whitespace,
extra columns, sparse vertex ID spaces, and duplicate directed pairs
(including duplicates that straddle chunk boundaries — de-duplication is
global, applied once over the assembled edge array).

Prefer addressing graphs through :class:`repro.graph.store.GraphStore`
(which memoizes the parsed CSR as a memory-mapped artifact) over calling
these functions directly; ``gramer check`` rule GRM901 enforces that in
library code.
"""

from __future__ import annotations

import os
from collections.abc import Iterable, Iterator

import numpy as np

from .csr import CSRGraph

__all__ = ["load_edge_list", "save_edge_list", "parse_edge_list"]

#: Lines per parser chunk.  Bounds peak parse memory at roughly
#: ``CHUNK_LINES`` split token strings regardless of file size.
CHUNK_LINES = 1 << 16


def _parse_chunk(
    chunk: list[tuple[int, str]], comment_prefix: str
) -> np.ndarray:
    """Vectorise one chunk of ``(lineno, line)`` pairs into an (k, 2) array.

    Comment and blank lines are skipped; extra columns beyond the first two
    are ignored (SNAP files carry timestamps/weights there).  Raises
    ``ValueError`` naming the first offending line for short or
    non-integer records.
    """
    tokens: list[str] = []
    kept: list[tuple[int, str]] = []
    for lineno, line in chunk:
        stripped = line.strip()
        if not stripped or stripped.startswith(comment_prefix):
            continue
        parts = stripped.split()
        if len(parts) < 2:
            raise ValueError(
                f"line {lineno}: expected two vertex IDs, got {line!r}"
            )
        tokens.append(parts[0])
        tokens.append(parts[1])
        kept.append((lineno, stripped))
    if not tokens:
        return np.zeros((0, 2), dtype=np.int64)
    try:
        flat = np.array(tokens, dtype=np.int64)
    except (ValueError, OverflowError) as exc:
        # Re-scan to name the offending line — the vectorised conversion
        # only says *a* token was bad.
        for lineno, stripped in kept:
            for token in stripped.split()[:2]:
                try:
                    int(token)
                except ValueError:
                    raise ValueError(
                        f"line {lineno}: non-integer vertex ID {token!r}"
                    ) from exc
        raise ValueError(f"non-integer vertex ID: {exc}") from exc
    return flat.reshape(-1, 2)


def _compact_and_build(pairs: np.ndarray) -> CSRGraph:
    """Remap sparse IDs to ``0..n-1`` (sorted original order) and build CSR.

    De-duplication of repeated directed pairs — wherever they fell in the
    chunk stream — happens inside the CSR build, globally over the whole
    edge array.
    """
    ids = np.unique(pairs)
    remapped = np.searchsorted(ids, pairs)
    return CSRGraph.from_edge_array(len(ids), remapped)


def _iter_chunks(
    lines: Iterable[str], chunk_lines: int
) -> Iterator[list[tuple[int, str]]]:
    buffer: list[tuple[int, str]] = []
    for lineno, line in enumerate(lines, start=1):
        buffer.append((lineno, line))
        if len(buffer) >= chunk_lines:
            yield buffer
            buffer = []
    if buffer:
        yield buffer


def parse_edge_list(
    lines: Iterable[str],
    comment_prefix: str = "#",
    chunk_lines: int = CHUNK_LINES,
) -> CSRGraph:
    """Parse SNAP-style edge-list lines into a :class:`CSRGraph`.

    Vertex IDs are compacted to ``0..n-1`` preserving the sorted order of
    the original IDs, since SNAP files routinely have sparse ID spaces.
    Accepts any iterable of lines (a file handle, a list, a generator);
    one pass is made over it, accumulating compact per-chunk int64 arrays.
    For path-based loading prefer :func:`load_edge_list`, whose two-pass
    form pre-sizes the edge array exactly.
    """
    chunks = [
        _parse_chunk(chunk, comment_prefix)
        for chunk in _iter_chunks(lines, chunk_lines)
    ]
    chunks = [chunk for chunk in chunks if len(chunk)]
    if chunks:
        pairs = np.concatenate(chunks) if len(chunks) > 1 else chunks[0]
    else:
        pairs = np.zeros((0, 2), dtype=np.int64)
    return _compact_and_build(pairs)


def load_edge_list(
    filename: str | os.PathLike[str],
    comment_prefix: str = "#",
    chunk_lines: int = CHUNK_LINES,
) -> CSRGraph:
    """Load an undirected graph from a SNAP-style edge-list file.

    Two passes: the first counts data lines (validating record shape as it
    goes) so the edge array can be allocated at its exact final size; the
    second fills it chunk by chunk.  Peak memory is 16 bytes per edge plus
    one chunk of line strings.
    """
    count = 0
    with open(filename, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(comment_prefix):
                continue
            if len(stripped.split()) < 2:
                raise ValueError(
                    f"line {lineno}: expected two vertex IDs, got {line!r}"
                )
            count += 1

    pairs = np.empty((count, 2), dtype=np.int64)
    filled = 0
    with open(filename, "r", encoding="utf-8") as handle:
        for chunk in _iter_chunks(handle, chunk_lines):
            parsed = _parse_chunk(chunk, comment_prefix)
            if filled + len(parsed) > count:
                raise ValueError(
                    f"{filename}: file grew between parser passes"
                )
            pairs[filled : filled + len(parsed)] = parsed
            filled += len(parsed)
    if filled != count:
        raise ValueError(f"{filename}: file shrank between parser passes")
    return _compact_and_build(pairs)


def save_edge_list(graph: CSRGraph, filename: str | os.PathLike[str]) -> None:
    """Write ``graph`` as an edge list, one ``u v`` pair per line."""
    with open(filename, "w", encoding="utf-8") as handle:
        handle.write(f"# {graph.num_vertices} vertices, {graph.num_edges} edges\n")
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")
