"""Edge-list graph IO.

The SNAP datasets the paper uses ship as whitespace-separated edge lists;
this module reads and writes that format so users can run the reproduction
on the real files when they have them (``gramer mine --graph patents.txt``),
and round-trips the synthetic proxies for caching.
"""

from __future__ import annotations

import os
from collections.abc import Iterable

from .csr import CSRGraph

__all__ = ["load_edge_list", "save_edge_list", "parse_edge_list"]


def parse_edge_list(
    lines: Iterable[str], comment_prefix: str = "#"
) -> CSRGraph:
    """Parse SNAP-style edge-list lines into a :class:`CSRGraph`.

    Vertex IDs are compacted to ``0..n-1`` preserving first-seen order of the
    sorted original IDs, since SNAP files routinely have sparse ID spaces.
    Lines starting with ``comment_prefix`` and blank lines are skipped.
    """
    raw_edges: list[tuple[int, int]] = []
    ids: set[int] = set()
    for lineno, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith(comment_prefix):
            continue
        parts = stripped.split()
        if len(parts) < 2:
            raise ValueError(f"line {lineno}: expected two vertex IDs, got {line!r}")
        try:
            u, v = int(parts[0]), int(parts[1])
        except ValueError as exc:
            raise ValueError(f"line {lineno}: non-integer vertex ID") from exc
        raw_edges.append((u, v))
        ids.add(u)
        ids.add(v)

    remap = {original: compact for compact, original in enumerate(sorted(ids))}
    edges = ((remap[u], remap[v]) for u, v in raw_edges)
    return CSRGraph(len(remap), edges)


def load_edge_list(filename: str | os.PathLike[str]) -> CSRGraph:
    """Load an undirected graph from a SNAP-style edge-list file."""
    with open(filename, "r", encoding="utf-8") as handle:
        return parse_edge_list(handle)


def save_edge_list(graph: CSRGraph, filename: str | os.PathLike[str]) -> None:
    """Write ``graph`` as an edge list, one ``u v`` pair per line."""
    with open(filename, "w", encoding="utf-8") as handle:
        handle.write(f"# {graph.num_vertices} vertices, {graph.num_edges} edges\n")
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")
